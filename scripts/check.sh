#!/usr/bin/env bash
# Tier-1 verification matrix: build and run the full test suite plain,
# then again under AddressSanitizer + UBSan (-fno-sanitize-recover=all,
# so any finding is a hard failure).
#
# Usage: scripts/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${1:-$(($(nproc) + 1))}"

run_matrix() {
    local preset="$1"
    echo "== ${preset}: configure =="
    cmake --preset "${preset}"
    echo "== ${preset}: build =="
    cmake --build --preset "${preset}" -j "${jobs}"
    echo "== ${preset}: test =="
    # --timeout catches a wedged simulator instead of hanging CI; the
    # service watchdog tests exercise deliberate wedges.
    ctest --preset "${preset}" -j "${jobs}" --timeout 120
}

run_matrix default
run_matrix asan-ubsan

echo "All checks passed (plain + asan-ubsan)."
