#!/usr/bin/env bash
# Tier-1 verification matrix: build and run the full test suite plain,
# then again under AddressSanitizer + UBSan (-fno-sanitize-recover=all,
# so any finding is a hard failure), run the multi-threaded service
# tests plus the quick conformance corpus under ThreadSanitizer, run a
# time-boxed differential fuzz sweep and the mutation self-check with
# the conformance_fuzz tool, drive a seeded chaos storm against the
# sharded service, and smoke the benchmark binaries.
#
# Usage: scripts/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${1:-$(($(nproc) + 1))}"

run_matrix() {
    local preset="$1"
    echo "== ${preset}: configure =="
    cmake --preset "${preset}"
    echo "== ${preset}: build =="
    cmake --build --preset "${preset}" -j "${jobs}"
    echo "== ${preset}: test =="
    # --timeout catches a wedged simulator instead of hanging CI; the
    # service watchdog tests exercise deliberate wedges.
    ctest --preset "${preset}" -j "${jobs}" --timeout 120
}

run_matrix default
run_matrix asan-ubsan

# The thread-pool and shard-stitching paths under ThreadSanitizer:
# the concurrency-relevant tests plus the conformance corpus (which
# drives the sharded service at 1/2/4 workers), so the TSan leg stays
# fast while still replaying every committed corpus case across all
# oracle configurations.
echo "== tsan: configure =="
cmake --preset tsan
echo "== tsan: build =="
cmake --build --preset tsan -j "${jobs}" \
    --target service_sharded_test service_test service_chaos_test \
    multipattern_test service_dict_test conformance_corpus_test \
    telemetry_metrics_test telemetry_reqobs_test
echo "== tsan: test =="
ctest --test-dir build-tsan --timeout 240 --output-on-failure \
    -R 'service_sharded_test|service_test|service_chaos_test|multipattern_test|service_dict_test|conformance_corpus_test|telemetry_metrics_test|telemetry_reqobs_test'

# Conformance legs on the plain build: a time-boxed differential fuzz
# sweep across the full oracle registry, and the mutation self-check --
# the harness must catch every seeded bug (off-by-one overlap
# stitching, dropped wild-card plane, wrong latch phase, ...), or the
# script fails: a fuzzer that cannot catch planted bugs proves nothing
# about the absence of real ones.
echo "== conformance: time-boxed fuzz =="
build/tools/conformance_fuzz --cases 1000000 --seconds 10
echo "== conformance: mutation self-check =="
build/tools/conformance_fuzz --mutants

# The SIMD kernel tiers under AddressSanitizer: a time-boxed
# differential sweep focused on the simd-parallel oracles (best ISA
# plus every forced-down tier), so out-of-bounds plane or mask
# arithmetic in the vector paths trips ASan instead of shipping as a
# rare wrong bit. Uses the asan-ubsan build from the matrix above.
echo "== conformance: simd kernel fuzz under asan =="
build-asan-ubsan/tools/conformance_fuzz --cases 1000000 --seconds 10 \
    --focus simd-parallel --no-extensions --no-golden

# The multi-pattern tier under AddressSanitizer: the dict oracles run
# the bit-sliced plane sweep, its no-dedup ablation, the Aho-Corasick
# automaton and the chunked carry protocol against each other on every
# case, so an out-of-bounds shifted-word read or a stale arena slice
# trips ASan here instead of shipping as a rare wrong hit bit.
echo "== conformance: dict fuzz under asan =="
build-asan-ubsan/tools/conformance_fuzz --cases 1000000 --seconds 10 \
    --dict --no-extensions --no-golden

# Chaos leg on the plain build: a seeded mixed storm (stalls, hangs,
# throws, silent bit flips against the primaries) must end with every
# request either recovered bit-exact or failed typed -- chaos_storm
# exits non-zero on any silent corruption or lost request. A second
# storm disables the per-chunk reference cross-check so only the
# overlap comparison stands between boundary corruption and a wrong
# answer: one boundary-bit flip per faulted slot (--corrupt-at 4 is
# the first kept bit of slices 1..3 with the default pattern length 5)
# must be detected and repaired, never served. The deep TSan coverage
# of the same code paths comes from service_chaos_test in the tsan leg
# above.
echo "== chaos: mixed storm =="
build/tools/chaos_storm --requests 16 --text-len 1024 \
    --deadline-ms 100 --hang-ms 200 --quiet
echo "== chaos: overlap-only detection =="
build/tools/chaos_storm --requests 8 --text-len 1024 \
    --no-cross-check --corrupt 1 --stall 0 --hang 0 --throw 0 \
    --cap 1 --corrupt-at 4 --targets 1,2,3 --quiet

# Smoke-run every benchmark binary: each prints its report with a
# scaled-down sweep and one-iteration timings, so a crash or a shape
# regression in a bench fails CI without costing a full run. Every
# bench gets an explicit --json into build/ -- without it, benches
# with a jsonDefaultPath() would overwrite their committed repo-root
# baselines with smoke-run numbers.
echo "== bench: smoke =="
cmake --build --preset default -j "${jobs}"
for bench in build/bench/bench_*; do
    echo "-- ${bench} --smoke"
    "${bench}" --smoke --json "build/$(basename "${bench}").smoke.json" \
        > /dev/null
done
test -s build/bench_e13_throughput.smoke.json

# Bench-regression gate: re-run every bench with a committed baseline
# in smoke mode and diff the JSON reports with bench_diff. Throughput
# keys must stay within the tolerance band (>= 0.5x baseline), latency
# keys within 4x, "agrees"-style strings exact -- a silently disabled
# fast path or a broken oracle hard-fails CI here instead of shipping
# as a quiet slowdown.
echo "== bench: regression gate vs committed baselines =="
for pair in \
    "BENCH_E13.json bench_e13_throughput" \
    "BENCH_E15.json bench_e15_telemetry" \
    "BENCH_E16.json bench_e16_faultgrade" \
    "BENCH_E17.json bench_e17_chaos" \
    "BENCH_E18.json bench_e18_simd" \
    "BENCH_E19.json bench_e19_dict" \
    "BENCH_E20.json bench_e20_reqobs"; do
    set -- ${pair}
    baseline="$1"
    bin="$2"
    fresh="build/${baseline%.json}.fresh.json"
    echo "-- ${bin} vs ${baseline}"
    "build/bench/${bin}" --smoke --json "${fresh}" > /dev/null
    build/tools/bench_diff "${baseline}" "${fresh}"
done

# Telemetry leg. Four contracts: (1) the SPM_TELEM_OFF build compiles
# and passes the quick suite with every instrumentation site expanded
# to nothing; (2) runtime-enabled telemetry costs at most 5% on the
# streaming service (E15's paired measurement); (3) trace_view's
# snapshot renderings match the committed goldens byte for byte;
# (4) a real traced sharded run exports Chrome trace JSON that passes
# the schema check.
# Fault-grading legs. Three contracts: (1) the grading pipeline runs
# clean under AddressSanitizer + UBSan on a scaled-down configuration
# (exit status also proves the serial cross-check agreed); (2) grading
# the collapsed classes is exactly as good as grading the raw
# universe -- the equivalence-collapsing lockstep test, part of the
# quick suite, re-checks this on the stdcell library under ASan; (3)
# the --golden report matches the committed golden byte for byte, like
# the trace_view goldens.
echo "== fault grading: asan smoke =="
cmake --build --preset asan-ubsan -j "${jobs}" --target fault_grade
build-asan-ubsan/tools/fault_grade --cells 4 --text-len 24 \
    --workloads 2 --cross-check 16 > /dev/null
echo "== fault grading: collapsed-vs-uncollapsed equivalence =="
ctest --test-dir build-asan-ubsan --timeout 120 --output-on-failure \
    -R 'fault_collapse_test|fault_grade_test'
echo "== fault grading: golden report =="
build/tools/fault_grade --golden |
    diff -u tests/golden/fault_grade_report.txt -

echo "== telemetry: compile-out build =="
cmake --preset telem-off
cmake --build --preset telem-off -j "${jobs}"
ctest --test-dir build-telem-off -L quick -j "${jobs}" --timeout 120
build-telem-off/bench/bench_e15_telemetry --smoke \
    --json build-telem-off/BENCH_E15.smoke.json > /dev/null
grep -q '"telemetry.compiled_out": 1' build-telem-off/BENCH_E15.smoke.json

echo "== telemetry: enabled-overhead gate =="
build/bench/bench_e15_telemetry --smoke --json build/BENCH_E15.smoke.json \
    > /dev/null
overhead=$(sed -n \
    's/.*"telemetry.enabled_overhead_frac": \([0-9.eE+-]*\).*/\1/p' \
    build/BENCH_E15.smoke.json)
echo "enabled overhead: ${overhead} (limit 0.05)"
awk -v o="${overhead}" 'BEGIN { exit (o + 0 <= 0.05) ? 0 : 1 }'

# Request-observability gate (E20): the per-request stage clocks, SLO
# log-histograms and exemplar reservoirs together must stay within 2%
# on the streaming service's end-to-end path, and the telem-off build
# must report the layer as compiled out entirely.
echo "== reqobs: enabled-overhead gate =="
build/bench/bench_e20_reqobs --smoke --json build/BENCH_E20.smoke.json \
    > /dev/null
reqobs_overhead=$(sed -n \
    's/.*"reqobs.enabled_overhead_frac": \([0-9.eE+-]*\).*/\1/p' \
    build/BENCH_E20.smoke.json)
echo "reqobs enabled overhead: ${reqobs_overhead} (limit 0.02)"
awk -v o="${reqobs_overhead}" 'BEGIN { exit (o + 0 <= 0.02) ? 0 : 1 }'
build-telem-off/bench/bench_e20_reqobs --smoke \
    --json build-telem-off/BENCH_E20.smoke.json > /dev/null
grep -q '"reqobs.compiled_out": 1' build-telem-off/BENCH_E20.smoke.json

echo "== telemetry: trace_view goldens and trace schema =="
build/tools/trace_view --table tests/golden/telemetry_snapshot.json |
    diff -u tests/golden/telemetry_snapshot.table.txt -
build/tools/trace_view --prom tests/golden/telemetry_snapshot.json |
    diff -u tests/golden/telemetry_snapshot.prom.txt -
build/tools/trace_view --demo-trace > build/demo_trace.json
build/tools/trace_view --check build/demo_trace.json

echo "All checks passed (plain + asan-ubsan + tsan + chaos storm +"
echo "bench smoke + bench-regression gate + fault grading + telemetry +"
echo "reqobs overhead gate)."
