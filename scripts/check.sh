#!/usr/bin/env bash
# Tier-1 verification matrix: build and run the full test suite plain,
# then again under AddressSanitizer + UBSan (-fno-sanitize-recover=all,
# so any finding is a hard failure), run the multi-threaded service
# tests under ThreadSanitizer, and smoke the benchmark binaries.
#
# Usage: scripts/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${1:-$(($(nproc) + 1))}"

run_matrix() {
    local preset="$1"
    echo "== ${preset}: configure =="
    cmake --preset "${preset}"
    echo "== ${preset}: build =="
    cmake --build --preset "${preset}" -j "${jobs}"
    echo "== ${preset}: test =="
    # --timeout catches a wedged simulator instead of hanging CI; the
    # service watchdog tests exercise deliberate wedges.
    ctest --preset "${preset}" -j "${jobs}" --timeout 120
}

run_matrix default
run_matrix asan-ubsan

# The thread-pool and shard-stitching paths under ThreadSanitizer:
# only the concurrency-relevant tests, so the TSan leg stays fast.
echo "== tsan: configure =="
cmake --preset tsan
echo "== tsan: build =="
cmake --build --preset tsan -j "${jobs}" \
    --target service_sharded_test service_test
echo "== tsan: test =="
ctest --test-dir build-tsan --timeout 240 --output-on-failure \
    -R 'service_sharded_test|service_test'

# Smoke-run every benchmark binary: each prints its report with a
# scaled-down sweep and one-iteration timings, so a crash or a shape
# regression in a bench fails CI without costing a full run. E13 also
# exercises the machine-readable JSON side channel.
echo "== bench: smoke =="
cmake --build --preset default -j "${jobs}"
for bench in build/bench/bench_*; do
    echo "-- ${bench} --smoke"
    "${bench}" --smoke > /dev/null
done
build/bench/bench_e13_throughput --smoke --json build/BENCH_E13.smoke.json \
    > /dev/null
test -s build/BENCH_E13.smoke.json

echo "All checks passed (plain + asan-ubsan + tsan + bench smoke)."
