#include "gate/levelized.hh"

#include "telemetry/telem.hh"

#include "util/logging.hh"

namespace spm::gate
{

LevelizedNetlist::LevelizedNetlist(Netlist &netlist)
    : net(netlist), compiledDevices(netlist.devices.size())
{
    const std::vector<Device> &devs = net.devices;
    const std::size_t nd = devs.size();
    const std::size_t nn = net.nodes.size();

    auto isStatic = [&](std::size_t d) {
        return devs[d].kind != DeviceKind::PassGate;
    };

    // Kahn's algorithm over static-gate dependency edges. An input
    // driven by a pass transistor (or a primary input) is a boundary
    // of the ordered region and contributes no edge.
    std::vector<std::uint32_t> indegree(nd, 0);
    auto staticDriverOf = [&](NodeId node) -> std::int32_t {
        const std::int32_t drv = net.nodes[node].driver;
        if (drv >= 0 && isStatic(static_cast<std::size_t>(drv)))
            return drv;
        return -1;
    };
    for (std::size_t d = 0; d < nd; ++d) {
        if (!isStatic(d))
            continue;
        if (staticDriverOf(devs[d].inA) >= 0)
            ++indegree[d];
        if (devs[d].inB != invalidNode && devs[d].inB != devs[d].inA &&
            staticDriverOf(devs[d].inB) >= 0)
            ++indegree[d];
    }

    topo.reserve(nd);
    std::vector<std::uint32_t> ready;
    for (std::size_t d = 0; d < nd; ++d)
        if (isStatic(d) && indegree[d] == 0)
            ready.push_back(static_cast<std::uint32_t>(d));
    std::vector<std::uint8_t> ordered(nd, 0);
    while (!ready.empty()) {
        const std::uint32_t d = ready.back();
        ready.pop_back();
        topo.push_back(d);
        ordered[d] = 1;
        for (std::uint32_t consumer : net.fanout[devs[d].out]) {
            if (!isStatic(consumer))
                continue;
            if (--indegree[consumer] == 0)
                ready.push_back(consumer);
        }
    }
    // Producers were pushed before consumers but LIFO popping can
    // interleave levels; re-sorting is unnecessary because Kahn only
    // releases a gate once every static producer is already placed.

    isFallback.assign(nd, 0);
    for (std::size_t d = 0; d < nd; ++d) {
        if (!ordered[d]) {
            // Pass transistor, or a static gate inside a feedback
            // cycle (e.g. the static shift register's regeneration
            // loop): event-driven relaxation handles it.
            isFallback[d] = 1;
            ++nFallback;
        }
    }

    fallbackFanout.resize(nn);
    for (NodeId node = 0; node < nn; ++node)
        for (std::uint32_t consumer : net.fanout[node])
            if (isFallback[consumer])
                fallbackFanout[node].push_back(consumer);

    pending.assign(nd, 0);
    dirty.assign(nn, 0);
}

LevelizedNetlist::~LevelizedNetlist()
{
    detach();
}

void
LevelizedNetlist::detach()
{
    if (net.accelerator() == this)
        net.attachAccelerator(nullptr);
}

bool
LevelizedNetlist::writeNode(NodeId node, LogicValue v)
{
    Netlist::NodeState &n = net.nodes[node];
    if (n.stuck || n.value == v)
        return false;
    n.value = v;
    if (!dirty[node]) {
        dirty[node] = 1;
        touched.push_back(node);
    }
    for (std::uint32_t consumer : fallbackFanout[node])
        worklist.push_back(consumer);
    return true;
}

bool
LevelizedNetlist::evaluateFallback(std::uint32_t dev_idx, Picoseconds now)
{
    // Mirrors Netlist::evaluateDevice exactly, including the charge
    // refresh bookkeeping, so stuck/decay semantics stay identical.
    ++net.evals;
    ++nFallbackEvals;
    const Device &d = net.devices[dev_idx];
    if (d.kind == DeviceKind::PassGate) {
        const LogicValue ctl = net.nodes[d.ctl].value;
        if (ctl == LogicValue::H) {
            net.nodes[d.out].lastRefresh = now;
            return writeNode(d.out, net.nodes[d.inA].value);
        }
        if (ctl == LogicValue::X)
            return writeNode(d.out, LogicValue::X);
        return false; // ctl low: output retains its charge
    }
    const LogicValue a = net.nodes[d.inA].value;
    const LogicValue b = d.inB == invalidNode ? LogicValue::X
                                              : net.nodes[d.inB].value;
    net.nodes[d.out].lastRefresh = now;
    return writeNode(d.out, Device::evalGate(d.kind, a, b));
}

void
LevelizedNetlist::settle(Picoseconds now)
{
    spm_assert(net.devices.size() == compiledDevices,
               "netlist '", net.name(), "' grew after levelization (",
               compiledDevices, " -> ", net.devices.size(),
               " devices); rebuild the LevelizedNetlist");

    // Seed from the netlist's pending worklist: evaluations scheduled
    // by setInput, forceStuckAt, clearStuckAt and decayCharge.
    for (std::uint32_t dev : net.worklist) {
        if (isFallback[dev])
            worklist.push_back(dev);
        else
            pending[dev] = 1;
    }
    net.worklist.clear();

    const std::uint64_t round_limit = 64 + 4 * net.devices.size();
    const std::uint64_t eval_limit =
        64 + 16ULL * net.devices.size() * (net.devices.size() + 1);
    std::uint64_t rounds = 0;
    std::uint64_t fallback_steps = 0;
    [[maybe_unused]] const std::uint64_t evals_before = net.evals;
    for (;;) {
        bool changed = false;

        // Flat compiled pass: every ordered gate visited once, in
        // producer-before-consumer order, evaluated only when an
        // input changed (or an external event forced it). In-pass
        // propagation is free: a changed output dirties a node all
        // of whose ordered readers come later in the order.
        for (std::uint32_t d : topo) {
            const Device &dev = net.devices[d];
            if (!pending[d] && !dirty[dev.inA] &&
                (dev.inB == invalidNode || !dirty[dev.inB])) {
                ++nGatedSkips;
                continue;
            }
            pending[d] = 0;
            ++net.evals;
            ++nFlatEvals;
            const LogicValue a = net.nodes[dev.inA].value;
            const LogicValue b = dev.inB == invalidNode
                ? LogicValue::X
                : net.nodes[dev.inB].value;
            net.nodes[dev.out].lastRefresh = now;
            changed |= writeNode(dev.out, Device::evalGate(dev.kind, a, b));
        }

        // The flat pass consumed every dirty mark visible to ordered
        // gates; clear them so the next round only reacts to what the
        // fallback phase changes.
        for (NodeId node : touched)
            dirty[node] = 0;
        touched.clear();

        // Event-driven relaxation of the fallback devices, same LIFO
        // discipline as Netlist::settle.
        while (!worklist.empty()) {
            const std::uint32_t dev = worklist.back();
            worklist.pop_back();
            changed |= evaluateFallback(dev, now);
            if (++fallback_steps > eval_limit)
                spm_panic("levelized netlist '", net.name(),
                          "' failed to settle (", fallback_steps,
                          " fallback evaluations; oscillating "
                          "feedback?)");
        }

        if (!changed)
            break;
        if (++rounds > round_limit)
            spm_panic("levelized netlist '", net.name(),
                      "' failed to settle after ", rounds, " rounds");
    }

    for (NodeId node : touched)
        dirty[node] = 0;
    touched.clear();

    SPM_TCOUNT_GLOBAL("gate.device_evals", net.evals - evals_before);
    SPM_THIST_GLOBAL("gate.settle_rounds", 0.0, 16.0, 16,
                     static_cast<double>(rounds + 1));
}

} // namespace spm::gate
