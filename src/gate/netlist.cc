#include "gate/netlist.hh"

#include "gate/levelized.hh"
#include "telemetry/telem.hh"
#include "util/logging.hh"

namespace spm::gate
{

Netlist::Netlist(std::string netlist_name) : netName(std::move(netlist_name))
{
}

NodeId
Netlist::addNode(const std::string &node_name)
{
    NodeState n;
    n.name = node_name;
    nodes.push_back(std::move(n));
    fanout.emplace_back();
    return static_cast<NodeId>(nodes.size() - 1);
}

void
Netlist::addInverter(NodeId in, NodeId out)
{
    spm_assert(in < nodes.size() && out < nodes.size(), "bad node id");
    spm_assert(nodes[out].driver < 0, "node '", nodes[out].name,
               "' already driven");
    Device d;
    d.kind = DeviceKind::Inverter;
    d.inA = in;
    d.out = out;
    devices.push_back(d);
    const auto idx = static_cast<std::uint32_t>(devices.size() - 1);
    nodes[out].driver = static_cast<std::int32_t>(idx);
    fanout[in].push_back(idx);
}

void
Netlist::addGate(DeviceKind kind, NodeId a, NodeId b, NodeId out)
{
    spm_assert(kind != DeviceKind::PassGate && kind != DeviceKind::Inverter,
               "addGate: use addPassGate/addInverter");
    spm_assert(a < nodes.size() && b < nodes.size() && out < nodes.size(),
               "bad node id");
    spm_assert(nodes[out].driver < 0, "node '", nodes[out].name,
               "' already driven");
    Device d;
    d.kind = kind;
    d.inA = a;
    d.inB = b;
    d.out = out;
    devices.push_back(d);
    const auto idx = static_cast<std::uint32_t>(devices.size() - 1);
    nodes[out].driver = static_cast<std::int32_t>(idx);
    fanout[a].push_back(idx);
    if (b != a)
        fanout[b].push_back(idx);
}

void
Netlist::addPassGate(NodeId in, NodeId ctl, NodeId out)
{
    spm_assert(in < nodes.size() && ctl < nodes.size() && out < nodes.size(),
               "bad node id");
    spm_assert(nodes[out].driver < 0, "node '", nodes[out].name,
               "' already driven");
    Device d;
    d.kind = DeviceKind::PassGate;
    d.inA = in;
    d.ctl = ctl;
    d.out = out;
    devices.push_back(d);
    const auto idx = static_cast<std::uint32_t>(devices.size() - 1);
    nodes[out].driver = static_cast<std::int32_t>(idx);
    nodes[out].dynamic = true;
    fanout[in].push_back(idx);
    fanout[ctl].push_back(idx);
}

void
Netlist::markInput(NodeId node)
{
    spm_assert(node < nodes.size(), "bad node id");
    spm_assert(nodes[node].driver < 0, "input node '", nodes[node].name,
               "' has an internal driver");
    nodes[node].isInput = true;
}

NodeId
Netlist::findNode(const std::string &node_name) const
{
    for (NodeId id = 0; id < nodes.size(); ++id)
        if (nodes[id].name == node_name)
            return id;
    return invalidNode;
}

void
Netlist::forceStuckAt(NodeId node, LogicValue v, Picoseconds now)
{
    spm_assert(node < nodes.size(), "bad node id");
    NodeState &n = nodes[node];
    n.stuck = false; // let the forced write through
    n.lastRefresh = now;
    setNodeValue(node, v);
    n.stuck = true;
}

void
Netlist::clearStuckAt(NodeId node)
{
    spm_assert(node < nodes.size(), "bad node id");
    nodes[node].stuck = false;
    // The node re-evaluates from its driver on the next fanout pass.
    if (nodes[node].driver >= 0)
        worklist.push_back(
            static_cast<std::uint32_t>(nodes[node].driver));
}

std::size_t
Netlist::stuckCount() const
{
    std::size_t n = 0;
    for (const NodeState &s : nodes)
        n += s.stuck ? 1 : 0;
    return n;
}

void
Netlist::setInput(NodeId node, LogicValue v, Picoseconds now)
{
    spm_assert(node < nodes.size(), "bad node id");
    spm_assert(nodes[node].isInput, "setInput on non-input node '",
               nodes[node].name, "'");
    if (tap)
        tap->onSetInput(node, v);
    nodes[node].lastRefresh = now;
    if (nodes[node].stuck || nodes[node].value == v)
        return;
    nodes[node].value = v;
    scheduleFanout(node);
}

void
Netlist::scheduleFanout(NodeId node)
{
    // Duplicates on the worklist are harmless: device evaluation is
    // idempotent, and settle() bounds total work.
    for (std::uint32_t dev : fanout[node])
        worklist.push_back(dev);
}

void
Netlist::setNodeValue(NodeId node, LogicValue v)
{
    if (nodes[node].stuck || nodes[node].value == v)
        return;
    nodes[node].value = v;
    scheduleFanout(node);
}

void
Netlist::evaluateDevice(std::size_t dev_idx, Picoseconds now)
{
    ++evals;
    const Device &d = devices[dev_idx];
    if (d.kind == DeviceKind::PassGate) {
        const LogicValue ctl = nodes[d.ctl].value;
        if (ctl == LogicValue::H) {
            nodes[d.out].lastRefresh = now;
            setNodeValue(d.out, nodes[d.inA].value);
        } else if (ctl == LogicValue::X) {
            // An undefined clock could either conduct or not: the
            // stored value becomes unknown.
            setNodeValue(d.out, LogicValue::X);
        }
        // ctl == L: transistor off; the output retains its charge.
        return;
    }
    const LogicValue a = nodes[d.inA].value;
    const LogicValue b =
        d.inB == invalidNode ? LogicValue::X : nodes[d.inB].value;
    nodes[d.out].lastRefresh = now;
    setNodeValue(d.out, Device::evalGate(d.kind, a, b));
}

void
Netlist::settle(Picoseconds now)
{
    if (tap)
        tap->onSettle();
    if (fastPath) {
        fastPath->settle(now);
        return;
    }
    // Bound the number of evaluations to detect oscillating feedback
    // (which the paper's purely feed-forward cells never produce).
    const std::uint64_t limit =
        64 + 16ULL * devices.size() * (devices.size() + 1);
    std::uint64_t steps = 0;
    while (!worklist.empty()) {
        const std::uint32_t dev = worklist.back();
        worklist.pop_back();
        evaluateDevice(dev, now);
        if (++steps > limit)
            spm_panic("netlist '", netName, "' failed to settle (", steps,
                      " evaluations; oscillating feedback?)");
    }
    SPM_TCOUNT_GLOBAL("gate.device_evals", steps);
    SPM_THIST_GLOBAL("gate.settle_evals", 0.0, 256.0, 16,
                     static_cast<double>(steps));
}

std::size_t
Netlist::decayCharge(Picoseconds now, Picoseconds retention_ps)
{
    std::size_t decayed = 0;
    for (NodeId id = 0; id < nodes.size(); ++id) {
        NodeState &n = nodes[id];
        if (!n.dynamic || n.stuck || n.value == LogicValue::X)
            continue;
        // A dynamic node is only storing (not driven) while its pass
        // transistor is off.
        const Device &drv = devices[static_cast<std::size_t>(n.driver)];
        if (nodes[drv.ctl].value == LogicValue::H)
            continue;
        if (now > n.lastRefresh && now - n.lastRefresh > retention_ps) {
            if (tap)
                tap->onDecay(id);
            n.value = LogicValue::X;
            scheduleFanout(id);
            ++decayed;
        }
    }
    if (decayed > 0)
        settle(now);
    return decayed;
}

LogicValue
Netlist::value(NodeId node) const
{
    spm_assert(node < nodes.size(), "bad node id");
    return nodes[node].value;
}

bool
Netlist::boolValue(NodeId node) const
{
    const LogicValue v = value(node);
    spm_assert(v != LogicValue::X, "node '", nodes[node].name,
               "' is X, not a definite level");
    return v == LogicValue::H;
}

const std::string &
Netlist::nodeName(NodeId node) const
{
    spm_assert(node < nodes.size(), "bad node id");
    return nodes[node].name;
}

std::int32_t
Netlist::driverOf(NodeId node) const
{
    spm_assert(node < nodes.size(), "bad node id");
    return nodes[node].driver;
}

std::size_t
Netlist::readerCount(NodeId node) const
{
    spm_assert(node < nodes.size(), "bad node id");
    return fanout[node].size();
}

bool
Netlist::isInputNode(NodeId node) const
{
    spm_assert(node < nodes.size(), "bad node id");
    return nodes[node].isInput;
}

bool
Netlist::isDynamicNode(NodeId node) const
{
    spm_assert(node < nodes.size(), "bad node id");
    return nodes[node].dynamic;
}

unsigned
Netlist::transistorCount() const
{
    unsigned total = 0;
    for (const Device &d : devices)
        total += Device::transistorCount(d.kind);
    return total;
}

std::size_t
Netlist::countKind(DeviceKind kind) const
{
    std::size_t n = 0;
    for (const Device &d : devices)
        n += d.kind == kind ? 1 : 0;
    return n;
}

} // namespace spm::gate
