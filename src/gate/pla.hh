/**
 * @file
 * Programmed logic array (PLA) generation.
 *
 * Section 3.3.3 weighs "a random logic implementation of the cell
 * circuitry ... rather than a more structured approach using standard
 * PLA and register layouts", concluding random logic wins only
 * because the matcher's cells "contain only four gates each". This
 * module provides the structured alternative: a sum-of-products
 * specification compiled into a two-plane array, so the trade can be
 * measured rather than asserted (experiment A1).
 */

#ifndef SPM_GATE_PLA_HH
#define SPM_GATE_PLA_HH

#include <cstdint>
#include <string>
#include <vector>

#include "gate/netlist.hh"

namespace spm::gate
{

/**
 * One product term of a PLA: which inputs it tests (careMask), the
 * polarity it requires of them (valueMask, 1 = true literal), and
 * which outputs it feeds (outputMask).
 */
struct PlaTerm
{
    std::uint32_t careMask = 0;
    std::uint32_t valueMask = 0;
    std::uint32_t outputMask = 0;
};

/** A sum-of-products specification. */
struct PlaSpec
{
    unsigned numInputs = 0;
    unsigned numOutputs = 0;
    std::vector<PlaTerm> terms;

    /** Validate masks against the declared widths. */
    void check() const;

    /**
     * Evaluate the specification in software: returns the output
     * mask for the given input mask. Used by tests as the oracle.
     */
    std::uint32_t evaluate(std::uint32_t inputs) const;

    /**
     * Transistor estimate for a real NOR-NOR PLA: one pulldown per
     * used literal in the AND plane, one per term-output connection
     * in the OR plane, a pullup per term and per output, and two
     * transistors per input inverter.
     */
    unsigned transistorEstimate() const;
};

/**
 * Instantiate the PLA in a netlist using the generic gate primitives
 * (an AND/OR tree per plane; functionally identical to the NOR-NOR
 * array, with the transistor economics reported by
 * PlaSpec::transistorEstimate for the real structure).
 *
 * @param inputs one node per PLA input, in bit order
 * @param outputs pre-created nodes the OR plane will drive
 */
void buildPla(Netlist &net, const std::string &prefix,
              const PlaSpec &spec, const std::vector<NodeId> &inputs,
              const std::vector<NodeId> &outputs);

/**
 * The accumulator cell's combinational core as a PLA (Section 3.3.3
 * alternative): inputs lambda, x, d, r, t; outputs r_out, t_next
 * implementing
 *
 *     tm     = t AND (x OR d)
 *     r_out  = lambda ? tm : r
 *     t_next = lambda OR tm
 */
PlaSpec accumulatorPlaSpec();

} // namespace spm::gate

#endif // SPM_GATE_PLA_HH
