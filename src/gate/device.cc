#include "gate/device.hh"

#include "util/logging.hh"

namespace spm::gate
{

LogicValue
Device::evalGate(DeviceKind kind, LogicValue a, LogicValue b)
{
    switch (kind) {
      case DeviceKind::Inverter:
        return logicNot(a);
      case DeviceKind::Nand2:
        return logicNot(logicAnd(a, b));
      case DeviceKind::Nor2:
        return logicNot(logicOr(a, b));
      case DeviceKind::And2:
        return logicAnd(a, b);
      case DeviceKind::Or2:
        return logicOr(a, b);
      case DeviceKind::Xor2:
        return logicXor(a, b);
      case DeviceKind::Xnor2:
        return logicXnor(a, b);
      case DeviceKind::PassGate:
        spm_panic("evalGate called on a pass transistor");
      default:
        spm_panic("unknown device kind");
    }
}

unsigned
Device::transistorCount(DeviceKind kind)
{
    // Transistor budgets for silicon-gate NMOS with depletion loads,
    // following the Mead-Conway cell conventions: an inverter is one
    // pulldown plus one pullup; NAND/NOR add one pulldown per input;
    // XOR/XNOR are built from two inverters plus a two-level
    // AND-OR-INVERT structure.
    switch (kind) {
      case DeviceKind::Inverter:
        return 2;
      case DeviceKind::Nand2:
      case DeviceKind::Nor2:
        return 3;
      case DeviceKind::And2:
      case DeviceKind::Or2:
        return 5; // NAND/NOR followed by an inverter
      case DeviceKind::Xor2:
      case DeviceKind::Xnor2:
        return 8;
      case DeviceKind::PassGate:
        return 1;
      default:
        spm_panic("unknown device kind");
    }
}

const char *
Device::kindName(DeviceKind kind)
{
    switch (kind) {
      case DeviceKind::Inverter:
        return "inv";
      case DeviceKind::Nand2:
        return "nand2";
      case DeviceKind::Nor2:
        return "nor2";
      case DeviceKind::And2:
        return "and2";
      case DeviceKind::Or2:
        return "or2";
      case DeviceKind::Xor2:
        return "xor2";
      case DeviceKind::Xnor2:
        return "xnor2";
      case DeviceKind::PassGate:
        return "pass";
      default:
        return "?";
    }
}

} // namespace spm::gate
