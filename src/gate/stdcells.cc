#include "gate/stdcells.hh"

namespace spm::gate
{

NodeId
buildShiftStage(Netlist &net, const std::string &prefix, NodeId in,
                NodeId clk)
{
    const NodeId stored = net.addNode(prefix + ".st");
    const NodeId out = net.addNode(prefix + ".out");
    net.addPassGate(in, clk, stored);
    net.addInverter(stored, out);
    return out;
}

NodeId
buildStaticShiftStage(Netlist &net, const std::string &prefix, NodeId in,
                      NodeId clk, NodeId shift)
{
    // load = clk AND shift; the latch follows `in` while load is
    // high and regenerates through its feedback otherwise.
    const NodeId load = net.addNode(prefix + ".load");
    const NodeId nload = net.addNode(prefix + ".nload");
    net.addGate(DeviceKind::And2, clk, shift, load);
    net.addInverter(load, nload);

    const NodeId master = net.addNode(prefix + ".master");
    const NodeId out = net.addNode(prefix + ".out");
    const NodeId fb = net.addNode(prefix + ".fb");
    net.addInverter(master, out);
    net.addInverter(out, fb);

    // master = (in AND load) OR (fb AND NOT load) OR (in AND fb).
    // The consensus term (in AND fb) keeps the loop glitch-free
    // while load switches -- the "regeneration circuitry" cost the
    // paper counts against static registers. Every node here is
    // statically driven, so nothing decays during a clock stall.
    const NodeId sel_in = net.addNode(prefix + ".sel_in");
    const NodeId sel_fb = net.addNode(prefix + ".sel_fb");
    const NodeId keep = net.addNode(prefix + ".keep");
    const NodeId partial = net.addNode(prefix + ".partial");
    net.addGate(DeviceKind::And2, in, load, sel_in);
    net.addGate(DeviceKind::And2, fb, nload, sel_fb);
    net.addGate(DeviceKind::And2, in, fb, keep);
    net.addGate(DeviceKind::Or2, sel_in, sel_fb, partial);
    net.addGate(DeviceKind::Or2, partial, keep, master);
    (void)out; // internal inverter pair; fb carries the true value
    return fb;
}

void
buildComparator(Netlist &net, const std::string &prefix,
                const ComparatorPorts &ports, NodeId clk, bool positive)
{
    // The p and s shift register stages: pass transistor onto a
    // storage node, then an inverter driving the neighbor (Fig 3-5).
    const NodeId p_st = net.addNode(prefix + ".p_st");
    const NodeId s_st = net.addNode(prefix + ".s_st");
    const NodeId d_st = net.addNode(prefix + ".d_st");
    net.addPassGate(ports.pIn, clk, p_st);
    net.addPassGate(ports.sIn, clk, s_st);
    net.addPassGate(ports.dIn, clk, d_st);

    net.addInverter(p_st, ports.pOut);
    net.addInverter(s_st, ports.sOut);

    if (positive) {
        // Figure 3-6: the equality gate taps the inverter outputs
        // (equality is invariant under complementing both inputs) and
        // the NAND combines it with the stored d bit:
        //   dOut <- d NAND (p == s)
        const NodeId eq = net.addNode(prefix + ".eq");
        net.addGate(DeviceKind::Xnor2, ports.pOut, ports.sOut, eq);
        net.addGate(DeviceKind::Nand2, d_st, eq, ports.dOut);
    } else {
        // Inverted twin: inputs are ~p, ~s, ~d; outputs are positive.
        // The inverters above already restore positive p and s. The
        // result must be dOut = d AND (p == s) = NOR(~d, p XOR s).
        const NodeId neq = net.addNode(prefix + ".neq");
        net.addGate(DeviceKind::Xor2, ports.pOut, ports.sOut, neq);
        net.addGate(DeviceKind::Nor2, d_st, neq, ports.dOut);
    }
}

void
buildAccumulator(Netlist &net, const std::string &prefix,
                 const AccumulatorPorts &ports, NodeId clkA, NodeId clkB,
                 bool positive)
{
    // Input latches on the cell's active phase.
    const NodeId l_st = net.addNode(prefix + ".l_st");
    const NodeId x_st = net.addNode(prefix + ".x_st");
    const NodeId d_st = net.addNode(prefix + ".d_st");
    const NodeId r_st = net.addNode(prefix + ".r_st");
    net.addPassGate(ports.lambdaIn, clkA, l_st);
    net.addPassGate(ports.xIn, clkA, x_st);
    net.addPassGate(ports.dIn, clkA, d_st);
    net.addPassGate(ports.rIn, clkA, r_st);

    // Positive-sense internal signals. For the positive twin the
    // latched values are already positive and the output inverters
    // double as the lambda/x shift register output stages; the
    // inverted twin's restoring inverters drive the outputs directly.
    NodeId lambda_pos, x_pos, d_pos, r_pos;
    if (positive) {
        lambda_pos = l_st;
        x_pos = x_st;
        d_pos = d_st;
        r_pos = r_st;
        net.addInverter(l_st, ports.lambdaOut);
        net.addInverter(x_st, ports.xOut);
    } else {
        lambda_pos = ports.lambdaOut;
        x_pos = ports.xOut;
        d_pos = net.addNode(prefix + ".d_pos");
        r_pos = net.addNode(prefix + ".r_pos");
        net.addInverter(l_st, ports.lambdaOut);
        net.addInverter(x_st, ports.xOut);
        net.addInverter(d_st, d_pos);
        net.addInverter(r_st, r_pos);
    }

    // The temporary result t lives in a master-slave loop: t_old is
    // the value visible during this active beat (latched on clkA from
    // the slave), t_next the freshly computed value (latched into the
    // slave on clkB while the cell is otherwise idle). This realizes
    // the ordered sequence "rOut <- t; t <- TRUE" the paper's cell
    // timing discussion requires (Section 4).
    const NodeId t_slave = net.addNode(prefix + ".t_slave");
    const NodeId t_old = net.addNode(prefix + ".t_old");
    net.addPassGate(t_slave, clkA, t_old);

    // m = x OR d : the wild card bit tells the accumulator to ignore
    // the comparator result (Section 3.2.1).
    const NodeId m = net.addNode(prefix + ".m");
    net.addGate(DeviceKind::Or2, x_pos, d_pos, m);

    // tm = t AND m : the updated partial result, output on the lambda
    // beat and carried forward otherwise.
    const NodeId tm = net.addNode(prefix + ".tm");
    net.addGate(DeviceKind::And2, t_old, m, tm);

    // t_next = lambda ? TRUE : tm  ==  lambda OR tm.
    const NodeId t_next = net.addNode(prefix + ".t_next");
    net.addGate(DeviceKind::Or2, lambda_pos, tm, t_next);
    net.addPassGate(t_next, clkB, t_slave);

    // rOut = lambda ? tm : r, produced in the polarity the left
    // neighbor expects.
    const NodeId lambda_n = net.addNode(prefix + ".l_n");
    net.addInverter(lambda_pos, lambda_n);
    const NodeId sel_t = net.addNode(prefix + ".sel_t");
    const NodeId sel_r = net.addNode(prefix + ".sel_r");
    net.addGate(DeviceKind::And2, lambda_pos, tm, sel_t);
    net.addGate(DeviceKind::And2, lambda_n, r_pos, sel_r);
    if (positive) {
        // Positive twin emits the inverted result for the neighbor.
        net.addGate(DeviceKind::Nor2, sel_t, sel_r, ports.rOut);
    } else {
        net.addGate(DeviceKind::Or2, sel_t, sel_r, ports.rOut);
    }
}

} // namespace spm::gate
