/**
 * @file
 * Three-valued logic for the NMOS gate-level simulator.
 *
 * Nodes carry low, high, or unknown (X). X arises from uninitialized
 * dynamic storage and from charge decay on nodes that have not been
 * refreshed within the retention limit (Section 3.3.3: the dynamic
 * shift registers "are incapable of holding data for more than about
 * 1 ms without shifting").
 */

#ifndef SPM_GATE_LOGIC_HH
#define SPM_GATE_LOGIC_HH

namespace spm::gate
{

/** A logic level on a circuit node. */
enum class LogicValue : unsigned char
{
    L = 0, ///< driven or stored low
    H = 1, ///< driven or stored high
    X = 2, ///< unknown / decayed charge
};

/** Logical NOT with X propagation. */
constexpr LogicValue
logicNot(LogicValue a)
{
    switch (a) {
      case LogicValue::L:
        return LogicValue::H;
      case LogicValue::H:
        return LogicValue::L;
      default:
        return LogicValue::X;
    }
}

/** Logical AND; L is controlling. */
constexpr LogicValue
logicAnd(LogicValue a, LogicValue b)
{
    if (a == LogicValue::L || b == LogicValue::L)
        return LogicValue::L;
    if (a == LogicValue::H && b == LogicValue::H)
        return LogicValue::H;
    return LogicValue::X;
}

/** Logical OR; H is controlling. */
constexpr LogicValue
logicOr(LogicValue a, LogicValue b)
{
    if (a == LogicValue::H || b == LogicValue::H)
        return LogicValue::H;
    if (a == LogicValue::L && b == LogicValue::L)
        return LogicValue::L;
    return LogicValue::X;
}

/** Logical XOR; X in either input yields X. */
constexpr LogicValue
logicXor(LogicValue a, LogicValue b)
{
    if (a == LogicValue::X || b == LogicValue::X)
        return LogicValue::X;
    return a == b ? LogicValue::L : LogicValue::H;
}

/** Equality gate (exclusive NOR), as used in the comparator cell. */
constexpr LogicValue
logicXnor(LogicValue a, LogicValue b)
{
    return logicNot(logicXor(a, b));
}

/** Convert a bool to a logic level. */
constexpr LogicValue
toLogic(bool b)
{
    return b ? LogicValue::H : LogicValue::L;
}

/** True when the value is a definite level (not X). */
constexpr bool
isKnown(LogicValue a)
{
    return a != LogicValue::X;
}

/** Printable character: '0', '1' or 'X'. */
constexpr char
logicChar(LogicValue a)
{
    switch (a) {
      case LogicValue::L:
        return '0';
      case LogicValue::H:
        return '1';
      default:
        return 'X';
    }
}

} // namespace spm::gate

#endif // SPM_GATE_LOGIC_HH
