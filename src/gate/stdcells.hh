/**
 * @file
 * The pattern matcher's standard cells at gate level.
 *
 * "Since each cell inverts its inputs before sending them to its
 * neighbors, two versions of each cell must be constructed. One version
 * operates on positive inputs to produce inverted outputs, while the
 * other computes positive outputs from inverted inputs" (Section
 * 3.2.2). Each builder constructs one cell instance inside a Netlist.
 * Callers pre-create all port nodes (the inter-cell wires) and pass
 * them in, so arrays can be wired in any construction order -- just as
 * the layout's cell boundary step fixes the wire positions before the
 * cells are placed (Section 4).
 *
 * The positive comparator is exactly the circuit of Figure 3-6: three
 * pass transistors gated by the cell's clock phase, two inverters for
 * the p and s shift register stages, an equality (XNOR) gate, and a
 * NAND that combines the stored d bit with the equality result.
 */

#ifndef SPM_GATE_STDCELLS_HH
#define SPM_GATE_STDCELLS_HH

#include <string>

#include "gate/netlist.hh"

namespace spm::gate
{

/** Port nodes of one comparator cell (Figure 3-6 and its twin). */
struct ComparatorPorts
{
    NodeId pIn;  ///< pattern bit from the left neighbor
    NodeId sIn;  ///< string bit from the right neighbor
    NodeId dIn;  ///< partial comparison result from the cell above
    NodeId pOut; ///< pattern bit to the right neighbor (inverted sense)
    NodeId sOut; ///< string bit to the left neighbor (inverted sense)
    NodeId dOut; ///< comparison result to the cell below (inverted)
};

/** Port nodes of one accumulator cell (Section 3.2.1 algorithm). */
struct AccumulatorPorts
{
    NodeId lambdaIn; ///< end-of-pattern marker, flows with the pattern
    NodeId xIn;      ///< don't-care (wild card) bit, flows with pattern
    NodeId dIn;      ///< comparison result from the comparator above
    NodeId rIn;      ///< result stream from the right neighbor
    NodeId lambdaOut;
    NodeId xOut;
    NodeId rOut;     ///< result stream to the left neighbor
};

/**
 * Build one shift register stage (Figure 3-5): a pass transistor
 * followed by an inverter. Returns the (inverted) output node.
 */
NodeId buildShiftStage(Netlist &net, const std::string &prefix, NodeId in,
                       NodeId clk);

/**
 * Build one *static* shift register stage, the alternative Section
 * 3.3.3 weighs against the dynamic design: "regeneration circuitry
 * in every stage so that data can be held indefinitely without
 * shifting it. A third signal, in addition to the two clock phases,
 * is needed to command the register to shift."
 *
 * Implemented as a hazard-free mux-feedback latch: the stage loads
 * from @p in when both @p clk and @p shift are high and otherwise
 * regenerates itself through a statically driven feedback loop, so
 * it survives arbitrarily long clock stalls. Unlike the dynamic
 * stage it does not invert. Returns the output node.
 */
NodeId buildStaticShiftStage(Netlist &net, const std::string &prefix,
                             NodeId in, NodeId clk, NodeId shift);

/**
 * Build a comparator cell between pre-created port nodes.
 *
 * @param positive when true, the Figure 3-6 positive version (positive
 *        inputs, inverted outputs):
 *          pOut <- NOT pIn
 *          sOut <- NOT sIn
 *          dOut <- dIn NAND (pIn == sIn)
 *        when false, the inverted twin (inverted inputs, positive
 *        outputs).
 * @param clk the clock phase on which this cell latches
 */
void buildComparator(Netlist &net, const std::string &prefix,
                     const ComparatorPorts &ports, NodeId clk,
                     bool positive);

/**
 * Build an accumulator cell implementing the cell algorithm
 *
 *     lambdaOut <- lambdaIn
 *     xOut      <- xIn
 *     IF lambdaIn THEN rOut <- t AND (xIn OR dIn); t <- TRUE
 *     ELSE            rOut <- rIn;  t <- t AND (xIn OR dIn)
 *
 * The temporary result t is held in a two-phase master-slave loop:
 * inputs and the old t latch on @p clkA (the cell's active phase) and
 * the new t latches on @p clkB (the opposite phase), realizing the
 * "cell timing signals" sequencing the paper calls for in Section 4.
 *
 * @param positive polarity convention as for buildComparator
 */
void buildAccumulator(Netlist &net, const std::string &prefix,
                      const AccumulatorPorts &ports, NodeId clkA,
                      NodeId clkB, bool positive);

} // namespace spm::gate

#endif // SPM_GATE_STDCELLS_HH
