#include "gate/pla.hh"

#include <bit>

#include "util/logging.hh"

namespace spm::gate
{

void
PlaSpec::check() const
{
    spm_assert(numInputs >= 1 && numInputs <= 32, "bad input count");
    spm_assert(numOutputs >= 1 && numOutputs <= 32, "bad output count");
    const std::uint32_t in_mask =
        numInputs == 32 ? ~0u : (1u << numInputs) - 1;
    const std::uint32_t out_mask =
        numOutputs == 32 ? ~0u : (1u << numOutputs) - 1;
    for (const PlaTerm &t : terms) {
        spm_assert((t.careMask & ~in_mask) == 0, "term tests unknown input");
        spm_assert((t.valueMask & ~t.careMask) == 0,
                   "term values outside care set");
        spm_assert((t.outputMask & ~out_mask) == 0,
                   "term feeds unknown output");
        spm_assert(t.careMask != 0, "empty product term");
        spm_assert(t.outputMask != 0, "term feeds no output");
    }
}

std::uint32_t
PlaSpec::evaluate(std::uint32_t inputs) const
{
    std::uint32_t out = 0;
    for (const PlaTerm &t : terms) {
        if ((inputs & t.careMask) == t.valueMask)
            out |= t.outputMask;
    }
    return out;
}

unsigned
PlaSpec::transistorEstimate() const
{
    unsigned count = 2 * numInputs; // input inverters (true/comp rails)
    count += static_cast<unsigned>(terms.size()); // AND plane pullups
    count += numOutputs;                          // OR plane pullups
    for (const PlaTerm &t : terms) {
        count += static_cast<unsigned>(std::popcount(t.careMask));
        count += static_cast<unsigned>(std::popcount(t.outputMask));
    }
    return count;
}

void
buildPla(Netlist &net, const std::string &prefix, const PlaSpec &spec,
         const std::vector<NodeId> &inputs,
         const std::vector<NodeId> &outputs)
{
    spec.check();
    spm_assert(inputs.size() == spec.numInputs, "input node count");
    spm_assert(outputs.size() == spec.numOutputs, "output node count");

    // Complement rails, created lazily per input actually used in
    // complemented form.
    std::vector<NodeId> comp(spec.numInputs, invalidNode);
    auto comp_rail = [&](unsigned bit) {
        if (comp[bit] == invalidNode) {
            comp[bit] =
                net.addNode(prefix + ".nin" + std::to_string(bit));
            net.addInverter(inputs[bit], comp[bit]);
        }
        return comp[bit];
    };

    // AND plane: fold each term's literals through And2 gates.
    std::vector<NodeId> term_nodes;
    term_nodes.reserve(spec.terms.size());
    for (std::size_t ti = 0; ti < spec.terms.size(); ++ti) {
        const PlaTerm &t = spec.terms[ti];
        NodeId acc = invalidNode;
        unsigned gate_idx = 0;
        for (unsigned bit = 0; bit < spec.numInputs; ++bit) {
            if (!(t.careMask & (1u << bit)))
                continue;
            const NodeId literal = (t.valueMask & (1u << bit))
                ? inputs[bit]
                : comp_rail(bit);
            if (acc == invalidNode) {
                acc = literal;
            } else {
                const NodeId next = net.addNode(
                    prefix + ".t" + std::to_string(ti) + "_" +
                    std::to_string(gate_idx++));
                net.addGate(DeviceKind::And2, acc, literal, next);
                acc = next;
            }
        }
        term_nodes.push_back(acc);
    }

    // OR plane: fold each output's terms through Or2 gates into the
    // pre-created output node.
    for (unsigned out = 0; out < spec.numOutputs; ++out) {
        std::vector<NodeId> feeding;
        for (std::size_t ti = 0; ti < spec.terms.size(); ++ti) {
            if (spec.terms[ti].outputMask & (1u << out))
                feeding.push_back(term_nodes[ti]);
        }
        spm_assert(!feeding.empty(), "output ", out, " has no terms");
        NodeId acc = feeding[0];
        for (std::size_t i = 1; i < feeding.size(); ++i) {
            const bool last = i + 1 == feeding.size();
            const NodeId next = last
                ? outputs[out]
                : net.addNode(prefix + ".o" + std::to_string(out) +
                              "_" + std::to_string(i));
            net.addGate(DeviceKind::Or2, acc, feeding[i], next);
            acc = next;
        }
        if (feeding.size() == 1) {
            // Single term: buffer it into the output node through a
            // double inversion to respect single-driver wiring.
            const NodeId mid =
                net.addNode(prefix + ".o" + std::to_string(out) + "_b");
            net.addInverter(acc, mid);
            net.addInverter(mid, outputs[out]);
        }
    }
}

PlaSpec
accumulatorPlaSpec()
{
    // Input bit order: 0 = lambda, 1 = x, 2 = d, 3 = r, 4 = t.
    // Output bit order: 0 = r_out, 1 = t_next.
    constexpr std::uint32_t LAMBDA = 1u << 0;
    constexpr std::uint32_t X = 1u << 1;
    constexpr std::uint32_t D = 1u << 2;
    constexpr std::uint32_t R = 1u << 3;
    constexpr std::uint32_t T = 1u << 4;
    constexpr std::uint32_t ROUT = 1u << 0;
    constexpr std::uint32_t TNEXT = 1u << 1;

    PlaSpec spec;
    spec.numInputs = 5;
    spec.numOutputs = 2;
    // t_next = lambda + t x + t d ; r_out = lambda t x + lambda t d
    //          + ~lambda r.
    spec.terms = {
        {LAMBDA, LAMBDA, TNEXT},
        {T | X, T | X, TNEXT},
        {T | D, T | D, TNEXT},
        {LAMBDA | T | X, LAMBDA | T | X, ROUT},
        {LAMBDA | T | D, LAMBDA | T | D, ROUT},
        {LAMBDA | R, R, ROUT}, // ~lambda r
    };
    spec.check();
    return spec;
}

} // namespace spm::gate
