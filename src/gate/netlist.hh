/**
 * @file
 * The event-driven gate-level netlist simulator.
 *
 * A Netlist holds named nodes and primitive devices and propagates
 * value changes until the circuit settles, exactly as the static NMOS
 * logic between clock edges would. Dynamic storage is modeled
 * faithfully: a node whose only driver is a pass transistor holds
 * charge while the transistor is off, and that charge decays to X if
 * the node is not refreshed within the retention limit -- the paper's
 * "about 1 ms" constraint on dynamic shift registers (Section 3.3.3).
 */

#ifndef SPM_GATE_NETLIST_HH
#define SPM_GATE_NETLIST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "gate/device.hh"
#include "gate/logic.hh"
#include "util/types.hh"

namespace spm::gate
{

class LevelizedNetlist;

/** Default dynamic-node retention: about 1 ms (Section 3.3.3). */
inline constexpr Picoseconds defaultRetentionPs = 1'000'000'000;

/**
 * Observer of the netlist's external stimulus stream. The fault
 * grader (fault/wordsim.hh) installs one to capture an exact,
 * replayable trace of a protocol run: every external input write,
 * every settle boundary, and any dynamic-charge decay. Taps see
 * events in execution order, before the event takes effect.
 */
class NetTap
{
  public:
    virtual ~NetTap() = default;

    /** An external setInput() of @p v on @p node (even if unchanged). */
    virtual void onSetInput(NodeId node, LogicValue v) = 0;

    /** A settle() boundary (fires once, also for the levelized path). */
    virtual void onSettle() = 0;

    /** Node @p node lost its dynamic charge to X in decayCharge(). */
    virtual void onDecay(NodeId node) = 0;
};

/**
 * A flat netlist of nodes and devices with event-driven settling.
 *
 * Construction phase: create nodes and attach devices. Each node may
 * have at most one driver. Simulation phase: change external inputs
 * or clock nodes with setInput(), then call settle() to propagate.
 */
class Netlist
{
  public:
    explicit Netlist(std::string netlist_name = "netlist");

    // --- construction ---------------------------------------------------

    /** Create a named node; initial value X (uninitialized charge). */
    NodeId addNode(const std::string &node_name);

    /** Attach a one-input static gate. */
    void addInverter(NodeId in, NodeId out);

    /** Attach a two-input static gate of kind @p kind. */
    void addGate(DeviceKind kind, NodeId a, NodeId b, NodeId out);

    /**
     * Attach a pass transistor: while @p ctl is high, @p out follows
     * @p in and its charge is refreshed; while low, @p out stores
     * charge subject to decay.
     */
    void addPassGate(NodeId in, NodeId ctl, NodeId out);

    /** Mark @p node as an external (primary) input. */
    void markInput(NodeId node);

    /** Look up a node by its addNode() name; invalidNode if absent. */
    NodeId findNode(const std::string &node_name) const;

    // --- simulation -----------------------------------------------------

    /**
     * Drive an external input to @p v at simulated time @p now and
     * propagate the change; @p node must have no internal driver.
     */
    void setInput(NodeId node, LogicValue v, Picoseconds now);

    /**
     * Propagate all pending changes until the circuit settles. With a
     * levelized accelerator attached (gate/levelized.hh) the flat
     * compiled pass runs instead of the event-driven worklist; the
     * settled node values are identical either way.
     */
    void settle(Picoseconds now);

    /**
     * Attach (or, with nullptr, detach) a levelized fast path that
     * takes over settle(). The accelerator must outlive the
     * attachment and must have been built from this netlist's final
     * device list.
     */
    void attachAccelerator(LevelizedNetlist *accel) { fastPath = accel; }

    /** The attached levelized fast path, or nullptr. */
    LevelizedNetlist *accelerator() const { return fastPath; }

    /**
     * Decay dynamic charge: any node stored through an off pass
     * transistor and not refreshed within @p retention_ps becomes X.
     * Returns the number of nodes that decayed.
     */
    std::size_t decayCharge(Picoseconds now,
                            Picoseconds retention_ps = defaultRetentionPs);

    /**
     * Inject a permanent stuck-at device fault: @p node is forced to
     * @p v and ignores every subsequent driver write, charge decay,
     * and (for input nodes) setInput. This is how cell-level fault
     * campaigns lower onto the gate-level simulator. The change is
     * propagated through the fanout; call settle() afterwards.
     */
    void forceStuckAt(NodeId node, LogicValue v, Picoseconds now);

    /** Remove a stuck-at fault; the node resumes normal operation. */
    void clearStuckAt(NodeId node);

    /** Number of nodes currently stuck. */
    std::size_t stuckCount() const;

    // --- observation ----------------------------------------------------

    /** Current value of @p node. */
    LogicValue value(NodeId node) const;

    /** Convenience: value as bool; panics when the node is X. */
    bool boolValue(NodeId node) const;

    /** Name given at addNode time. */
    const std::string &nodeName(NodeId node) const;

    std::size_t nodeCount() const { return nodes.size(); }
    std::size_t deviceCount() const { return devices.size(); }

    /** Equivalent NMOS transistor count across all devices. */
    unsigned transistorCount() const;

    /** Count of devices of one kind. */
    std::size_t countKind(DeviceKind kind) const;

    /** Total device evaluations performed (simulation effort). */
    std::uint64_t evalCount() const { return evals; }

    /** All devices, for layout generation and reporting. */
    const std::vector<Device> &deviceList() const { return devices; }

    /** Device index driving @p node, or -1 (external/undriven). */
    std::int32_t driverOf(NodeId node) const;

    /** Devices reading @p node (as inA, inB or ctl). */
    std::size_t readerCount(NodeId node) const;

    /** Whether @p node was marked as an external input. */
    bool isInputNode(NodeId node) const;

    /** Whether @p node is the output of a pass transistor. */
    bool isDynamicNode(NodeId node) const;

    /**
     * Attach (or, with nullptr, detach) a stimulus tap. At most one
     * tap may be attached; it must outlive the attachment.
     */
    void setTap(NetTap *t) { tap = t; }

    const std::string &name() const { return netName; }

  private:
    friend class LevelizedNetlist;

    struct NodeState
    {
        std::string name;
        LogicValue value = LogicValue::X;
        bool isInput = false;
        /** Device driving this node, or -1. */
        std::int32_t driver = -1;
        /** True when the driver is a pass transistor (dynamic node). */
        bool dynamic = false;
        /** Stuck-at fault: the node ignores writes while set. */
        bool stuck = false;
        /** Last time the node was actively driven/refreshed. */
        Picoseconds lastRefresh = 0;
    };

    void scheduleFanout(NodeId node);
    void evaluateDevice(std::size_t dev_idx, Picoseconds now);
    void setNodeValue(NodeId node, LogicValue v);

    std::string netName;
    std::vector<NodeState> nodes;
    std::vector<Device> devices;
    /** For each node, devices that read it (as inA, inB or ctl). */
    std::vector<std::vector<std::uint32_t>> fanout;
    std::vector<std::uint32_t> worklist;
    std::uint64_t evals = 0;
    LevelizedNetlist *fastPath = nullptr;
    NetTap *tap = nullptr;
};

} // namespace spm::gate

#endif // SPM_GATE_NETLIST_HH
