/**
 * @file
 * Gate-level devices: static logic gates and the NMOS pass transistor.
 *
 * These are the circuit elements used by the pattern matching chip
 * (Section 3.2.2): inverters and NAND/NOR/XNOR gates built from
 * enhancement pulldowns with depletion pullups, plus pass transistors
 * that gate data into storage nodes under control of the two-phase
 * clock (Figures 3-5 and 3-6).
 */

#ifndef SPM_GATE_DEVICE_HH
#define SPM_GATE_DEVICE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "gate/logic.hh"

namespace spm::gate
{

class Netlist;

/** Index of a node within a Netlist. */
using NodeId = std::uint32_t;

/** Sentinel meaning "no node". */
inline constexpr NodeId invalidNode = 0xFFFFFFFF;

/** The kinds of primitive devices the simulator evaluates. */
enum class DeviceKind : unsigned char
{
    Inverter,  ///< depletion-load inverter
    Nand2,     ///< 2-input NAND
    Nor2,      ///< 2-input NOR
    And2,      ///< 2-input AND (NAND + inverter, counted as one)
    Or2,       ///< 2-input OR
    Xor2,      ///< 2-input exclusive OR
    Xnor2,     ///< 2-input equality gate
    PassGate,  ///< pass transistor: in -> out while ctl is high
};

/**
 * A primitive device instance.
 *
 * Static gates drive their output continuously. The pass transistor is
 * the only dynamic element: while its control (clock) node is high it
 * conducts, copying the input level onto the output node and
 * refreshing its charge; while low, the output node merely stores
 * charge, which the netlist decays to X after the retention limit.
 */
struct Device
{
    DeviceKind kind;
    NodeId inA = invalidNode;  ///< first input (or pass-gate source)
    NodeId inB = invalidNode;  ///< second input (unused for 1-input)
    NodeId ctl = invalidNode;  ///< pass-gate control (clock) node
    NodeId out = invalidNode;  ///< driven / charged output node

    /**
     * Combinational result of this device for input levels @p a and
     * @p b. Not meaningful for PassGate, which the netlist handles
     * specially.
     */
    static LogicValue evalGate(DeviceKind kind, LogicValue a, LogicValue b);

    /** Number of equivalent NMOS transistors, for area accounting. */
    static unsigned transistorCount(DeviceKind kind);

    /** Human-readable device kind name. */
    static const char *kindName(DeviceKind kind);
};

} // namespace spm::gate

#endif // SPM_GATE_DEVICE_HH
