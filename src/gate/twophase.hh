/**
 * @file
 * The two-phase non-overlapping clock driver.
 *
 * "A clock with two non-overlapping phases controls the pass
 * transistors. Adjacent transistors are turned on by opposite phases of
 * the clock, so that there is never a closed path between inverters
 * that are separated by two transistors" (Section 3.2.2, Figure 3-5).
 *
 * One *beat* corresponds to one phase pulse: cells whose pass
 * transistors are clocked by phi1 latch on even beats, cells clocked by
 * phi2 latch on odd beats. This is exactly how the chip makes "the
 * alternation of active and idle inverters ... mirror the alternation
 * of active and idle cells in the algorithm."
 */

#ifndef SPM_GATE_TWOPHASE_HH
#define SPM_GATE_TWOPHASE_HH

#include "gate/netlist.hh"
#include "util/types.hh"

namespace spm::gate
{

/**
 * Drives the phi1/phi2 clock nodes of a netlist through beats.
 *
 * The driver owns simulated time. Each beat raises exactly one phase,
 * lets the circuit settle, and lowers it again, guaranteeing
 * non-overlap by construction. stall() models a stopped clock so that
 * dynamic-charge decay (Section 3.3.3) can be exercised.
 */
class TwoPhaseClock
{
  public:
    /**
     * @param net the netlist whose clocks we drive; phi1/phi2 nodes
     *        are created here and marked as inputs
     * @param beat_period_ps duration of one beat (250 ns prototype)
     * @param retention_ps dynamic node retention limit (~1 ms)
     */
    TwoPhaseClock(Netlist &net,
                  Picoseconds beat_period_ps = prototypeBeatPs,
                  Picoseconds retention_ps = defaultRetentionPs);

    /** The phi1 clock node (even beats). */
    NodeId phi1() const { return phi1Node; }

    /** The phi2 clock node (odd beats). */
    NodeId phi2() const { return phi2Node; }

    /** Clock node for a cell at checkerboard parity @p parity. */
    NodeId phaseFor(unsigned parity) const
    {
        return parity % 2 == 0 ? phi1Node : phi2Node;
    }

    /**
     * Run one beat: pulse the phase selected by the current beat
     * parity and settle the netlist before and after the falling edge.
     */
    void tickBeat();

    /** Run @p n beats. */
    void run(Beat n);

    /** Current beat count. */
    Beat beat() const { return beatCount; }

    /** Simulated time now. */
    Picoseconds now() const { return timePs; }

    /**
     * Stop the clock for @p duration_ps of simulated time, then apply
     * charge decay. Returns the number of storage nodes that lost
     * their data -- nonzero once the stall exceeds the retention
     * limit, reproducing the dynamic shift register failure mode.
     */
    std::size_t stall(Picoseconds duration_ps);

    /** Lower both phases and settle (used at initialization). */
    void quiesce();

  private:
    Netlist &netlist;
    Picoseconds periodPs;
    Picoseconds retentionPs;
    NodeId phi1Node;
    NodeId phi2Node;
    Beat beatCount = 0;
    Picoseconds timePs = 0;
};

} // namespace spm::gate

#endif // SPM_GATE_TWOPHASE_HH
