/**
 * @file
 * The levelized compiled fast path for the gate-level simulator.
 *
 * Between clock edges the pattern matcher's netlist is almost
 * entirely feed-forward static logic, and the checkerboard discipline
 * means half of it sees no input change on any given beat. The
 * event-driven worklist of Netlist::settle pays queue churn and
 * duplicate evaluations for generality it rarely needs; this module
 * compiles the settled netlist once -- after construction, per phase
 * configuration -- into a topologically ordered flat array of static
 * gates and then settles by linear passes with activity gating (a
 * gate whose inputs did not change is skipped without evaluation).
 *
 * What cannot be levelized falls back to the event-driven discipline
 * inside the same fixpoint loop: pass transistors (dynamic nodes with
 * charge and clock semantics) and any static gate caught in a
 * feedback cycle (the static shift register's regeneration loop).
 * Values, stuck-at faults, charge refresh times and X propagation are
 * shared with the wrapped Netlist, so the fast path is observably
 * bit-identical node for node -- which the property tests verify
 * against Netlist::settle on every standard cell and the full chip.
 */

#ifndef SPM_GATE_LEVELIZED_HH
#define SPM_GATE_LEVELIZED_HH

#include <cstdint>
#include <vector>

#include "gate/netlist.hh"

namespace spm::gate
{

/**
 * Compiled evaluation order over a finished Netlist.
 *
 * Build one after the netlist's construction phase is complete, then
 * either call settle() directly or attach() it so Netlist::settle
 * delegates here and existing drivers (TwoPhaseClock, GateChip, the
 * fault injector) transparently use the fast path.
 */
class LevelizedNetlist
{
  public:
    /** Compile @p netlist's current device list. */
    explicit LevelizedNetlist(Netlist &netlist);

    ~LevelizedNetlist();

    LevelizedNetlist(const LevelizedNetlist &) = delete;
    LevelizedNetlist &operator=(const LevelizedNetlist &) = delete;

    /** Route the netlist's settle() through this fast path. */
    void attach() { net.attachAccelerator(this); }

    /** Restore the event-driven settle(). */
    void detach();

    /**
     * Settle the netlist: consume the pending worklist, run flat
     * activity-gated passes over the ordered gates interleaved with
     * event-driven relaxation of the fallback devices, until no node
     * changes. Panics on oscillation, like Netlist::settle.
     */
    void settle(Picoseconds now);

    /** Static gates in the compiled topological order. */
    std::size_t orderedCount() const { return topo.size(); }

    /** Pass transistors and cyclic gates left to the worklist. */
    std::size_t fallbackCount() const { return nFallback; }

    /** @{ Cumulative effort statistics across settle() calls. */
    std::uint64_t flatEvals() const { return nFlatEvals; }
    std::uint64_t fallbackEvals() const { return nFallbackEvals; }
    /** Ordered gates scanned and skipped because no input changed. */
    std::uint64_t gatedSkips() const { return nGatedSkips; }
    /** @} */

  private:
    bool writeNode(NodeId node, LogicValue v);
    bool evaluateFallback(std::uint32_t dev_idx, Picoseconds now);

    Netlist &net;
    /** Device count at compile time; settle() rejects a grown netlist. */
    std::size_t compiledDevices;

    /** Ordered static-gate device indices, producers first. */
    std::vector<std::uint32_t> topo;
    /** Per device: true when handled by the event-driven fallback. */
    std::vector<std::uint8_t> isFallback;
    /** Per node: fallback devices reading it. */
    std::vector<std::vector<std::uint32_t>> fallbackFanout;
    std::size_t nFallback = 0;

    /** Per device: forced evaluation pending (seeded from worklist). */
    std::vector<std::uint8_t> pending;
    /** Per node: changed since the last flat pass consumed it. */
    std::vector<std::uint8_t> dirty;
    std::vector<NodeId> touched;
    std::vector<std::uint32_t> worklist;

    std::uint64_t nFlatEvals = 0;
    std::uint64_t nFallbackEvals = 0;
    std::uint64_t nGatedSkips = 0;
};

} // namespace spm::gate

#endif // SPM_GATE_LEVELIZED_HH
