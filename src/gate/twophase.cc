#include "gate/twophase.hh"

namespace spm::gate
{

TwoPhaseClock::TwoPhaseClock(Netlist &net, Picoseconds beat_period_ps,
                             Picoseconds retention_ps)
    : netlist(net), periodPs(beat_period_ps), retentionPs(retention_ps)
{
    phi1Node = netlist.addNode("phi1");
    phi2Node = netlist.addNode("phi2");
    netlist.markInput(phi1Node);
    netlist.markInput(phi2Node);
    quiesce();
}

void
TwoPhaseClock::quiesce()
{
    netlist.setInput(phi1Node, LogicValue::L, timePs);
    netlist.setInput(phi2Node, LogicValue::L, timePs);
    netlist.settle(timePs);
}

void
TwoPhaseClock::tickBeat()
{
    const NodeId phase = beatCount % 2 == 0 ? phi1Node : phi2Node;

    // Rising edge at the beat's first quarter; inputs for this beat
    // must have been applied by the caller before tickBeat().
    timePs += periodPs / 4;
    netlist.setInput(phase, LogicValue::H, timePs);
    netlist.settle(timePs);

    // Falling edge at the third quarter; storage nodes now hold their
    // newly refreshed charge and outputs are stable for neighbors.
    timePs += periodPs / 2;
    netlist.setInput(phase, LogicValue::L, timePs);
    netlist.settle(timePs);

    // Remainder of the beat.
    timePs += periodPs - periodPs / 4 - periodPs / 2;
    ++beatCount;
}

void
TwoPhaseClock::run(Beat n)
{
    for (Beat i = 0; i < n; ++i)
        tickBeat();
}

std::size_t
TwoPhaseClock::stall(Picoseconds duration_ps)
{
    timePs += duration_ps;
    return netlist.decayCharge(timePs, retentionPs);
}

} // namespace spm::gate
