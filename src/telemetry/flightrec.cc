#include "telemetry/flightrec.hh"

#include <cstdio>
#include <sstream>
#include <utility>

#include "util/logging.hh"

namespace spm::telem
{

const char *
flightKindName(FlightKind kind)
{
    switch (kind) {
      case FlightKind::ChunkCommit: return "chunk_commit";
      case FlightKind::WatchdogTrip: return "watchdog_trip";
      case FlightKind::CrossCheckMismatch: return "crosscheck_mismatch";
      case FlightKind::LadderTransition: return "ladder_transition";
      case FlightKind::ConformanceFailure: return "conformance_failure";
      case FlightKind::ShardFailover: return "shard_failover";
      case FlightKind::OverlapMismatch: return "overlap_mismatch";
      case FlightKind::Quarantine: return "quarantine";
      case FlightKind::Note: return "note";
    }
    return "unknown";
}

std::string
FlightEvent::render() const
{
    std::ostringstream os;
    os << "#" << seq << " " << flightKindName(kind) << " beat=" << beat
       << " shard=" << shard << " req=" << requestId
       << " offset=" << offset;
    if (!code.empty())
        os << " code=" << code;
    if (!caseId.empty())
        os << " case=" << caseId;
    if (!note.empty())
        os << " note=" << note;
    return os.str();
}

FlightRecorder::FlightRecorder(std::size_t event_capacity)
    : cap(event_capacity == 0 ? 1 : event_capacity)
{
}

FlightRecorder &
FlightRecorder::global()
{
    // Leaked: the conformance harness may trip during teardown.
    static FlightRecorder *g = new FlightRecorder(128);
    return *g;
}

void
FlightRecorder::record(FlightEvent ev)
{
    std::lock_guard<std::mutex> lock(mu);
    ev.seq = nextSeq++;
    ring.push_back(std::move(ev));
    while (ring.size() > cap)
        ring.pop_front();
}

std::string
FlightRecorder::trip(const std::string &reason, FlightEvent ev)
{
    std::function<void(const std::string &)> sink;
    std::string dump;
    {
        std::lock_guard<std::mutex> lock(mu);
        ev.seq = nextSeq++;

        std::ostringstream os;
        os << "=== flight dump: " << reason << " (" << ring.size()
           << " prior events) ===\n";
        for (const FlightEvent &prior : ring)
            os << "  " << prior.render() << "\n";
        os << "  " << ev.render() << "  <-- trigger\n";
        os << "=== end flight dump ===";
        dump = os.str();

        ring.push_back(std::move(ev));
        while (ring.size() > cap)
            ring.pop_front();
        ++trips;
        last = dump;
        sink = dumpSink;
    }
    // Sink runs outside the lock; it may log or call back in.
    if (sink)
        sink(dump);
    else
        spm_warn(dump);
    return dump;
}

std::string
FlightRecorder::lastDump() const
{
    std::lock_guard<std::mutex> lock(mu);
    return last;
}

std::uint64_t
FlightRecorder::tripCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return trips;
}

std::vector<FlightEvent>
FlightRecorder::events() const
{
    std::lock_guard<std::mutex> lock(mu);
    return {ring.begin(), ring.end()};
}

std::uint64_t
FlightRecorder::recordedTotal() const
{
    std::lock_guard<std::mutex> lock(mu);
    return nextSeq;
}

void
FlightRecorder::setDumpSink(std::function<void(const std::string &)> sink)
{
    std::lock_guard<std::mutex> lock(mu);
    dumpSink = std::move(sink);
}

void
FlightRecorder::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    ring.clear();
    last.clear();
}

namespace
{

/** Hex '.'-joined symbols, '*' wild, '-' empty; matches conformance. */
std::string
encodeStream(const std::vector<Symbol> &syms)
{
    if (syms.empty())
        return "-";
    std::string out;
    char buf[20];
    for (std::size_t i = 0; i < syms.size(); ++i) {
        if (i != 0)
            out += '.';
        if (syms[i] == wildcardSymbol) {
            out += '*';
        } else {
            std::snprintf(buf, sizeof(buf), "%llx",
                          static_cast<unsigned long long>(syms[i]));
            out += buf;
        }
    }
    return out;
}

} // namespace

std::string
literalCaseId(BitWidth bits, const std::vector<Symbol> &pattern,
              const std::vector<Symbol> &text)
{
    return "l1:" + std::to_string(bits) + ":" + encodeStream(pattern) +
           ":" + encodeStream(text);
}

} // namespace spm::telem
