/**
 * @file
 * The degradation flight recorder.
 *
 * When the serving stack misbehaves — a watchdog trips, the
 * degradation ladder falls a rung, the conformance harness finds a
 * disagreement — the interesting history is the last handful of
 * chunks, not the aggregate counters. Each service shard (and the
 * process-wide FlightRecorder::global()) keeps a bounded ring of
 * recent structured events; trip() freezes that history into a
 * human-readable dump carrying each event's beat index, shard id,
 * error-taxonomy code, and — crucially — the triggering chunk's
 * replayable conformance case ID, so a post-mortem starts from
 * `conformance_fuzz replay <id>` instead of from a log grep.
 *
 * Recording events is always on (it is cheap and load-bearing for
 * post-mortems); only the per-beat span layer compiles away under
 * SPM_TELEM_OFF.
 */

#ifndef SPM_TELEMETRY_FLIGHTREC_HH
#define SPM_TELEMETRY_FLIGHTREC_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "util/types.hh"

namespace spm::telem
{

/** What happened; mirrors the service error taxonomy where it can. */
enum class FlightKind : std::uint8_t
{
    ChunkCommit,        ///< a chunk of text was served and committed
    WatchdogTrip,       ///< beat budget exceeded
    CrossCheckMismatch, ///< fast rung disagreed with the reference
    LadderTransition,   ///< degradation ladder changed rungs
    ConformanceFailure, ///< differential harness found a disagreement
    ShardFailover,      ///< a shard slice was retried on a spare slot
    OverlapMismatch,    ///< neighbor shards disagreed on the k-1 overlap
    Quarantine,         ///< a shard slot's circuit breaker opened
    Note,               ///< free-form marker
};

/** Render the kind as a stable short token ("watchdog_trip", ...). */
const char *flightKindName(FlightKind kind);

/** One structured event in the ring. */
struct FlightEvent
{
    FlightKind kind = FlightKind::Note;
    std::uint64_t seq = 0; ///< per-recorder sequence number
    Beat beat = 0;         ///< engine beat when recorded
    std::uint32_t shard = 0;
    std::uint64_t requestId = 0;
    std::uint64_t offset = 0;  ///< chunk offset in the stream
    std::string code;          ///< error-taxonomy code token
    std::string caseId;        ///< replayable conformance case ID
    std::string note;          ///< free-form detail

    /** "watchdog_trip beat=… shard=… case=…" one-liner. */
    std::string render() const;
};

/**
 * A bounded ring of recent FlightEvents. record() is mutex-guarded
 * (events are rare relative to beats: one per chunk at most), trip()
 * renders the current history plus the triggering event into a dump
 * string, hands it to the configured sink (spm_warn by default) and
 * remembers it for tests/tools via lastDump().
 */
class FlightRecorder
{
  public:
    explicit FlightRecorder(std::size_t event_capacity = 64);

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /** Process-wide recorder (conformance harness, tools). */
    static FlightRecorder &global();

    /** Append one event; oldest events fall off the ring. */
    void record(FlightEvent ev);

    /**
     * Record @p ev and dump: the ring history (oldest first), then
     * the triggering event, rendered under a "=== flight dump" header
     * naming @p reason. The dump goes to the sink and lastDump().
     */
    std::string trip(const std::string &reason, FlightEvent ev);

    /** The most recent trip() dump; empty until the first trip. */
    std::string lastDump() const;

    /** Number of trips so far. */
    std::uint64_t tripCount() const;

    /** Recent events, oldest first. */
    std::vector<FlightEvent> events() const;

    /** Total events ever recorded (ring may have dropped some). */
    std::uint64_t recordedTotal() const;

    /**
     * Replace the dump sink (default: spm_warn). Tests install a
     * capturing sink; pass nullptr to restore the default.
     */
    void setDumpSink(std::function<void(const std::string &)> sink);

    std::size_t capacity() const { return cap; }

    /** Forget history and dumps (not the trip/recorded totals). */
    void clear();

  private:
    const std::size_t cap;
    mutable std::mutex mu;
    std::deque<FlightEvent> ring;
    std::uint64_t nextSeq = 0;
    std::uint64_t trips = 0;
    std::string last;
    std::function<void(const std::string &)> dumpSink;
};

/**
 * The replayable conformance case ID for a literal pattern/text pair,
 * byte-identical to conformance::encodeLiteral. Re-implemented here
 * (the format is tiny and frozen) because the conformance library
 * layers above the service this module instruments.
 */
std::string literalCaseId(BitWidth bits,
                          const std::vector<Symbol> &pattern,
                          const std::vector<Symbol> &text);

} // namespace spm::telem

#endif // SPM_TELEMETRY_FLIGHTREC_HH
