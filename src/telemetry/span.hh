/**
 * @file
 * Beat-stamped span tracing with Chrome trace-event export.
 *
 * The systolic design's central property is per-beat predictability;
 * spans make that visible on a timeline. A ScopedSpan brackets a
 * region of work (a served chunk, a conformance case, a batch of
 * shards) as one Chrome 'X' complete event; instant() drops an 'I'
 * marker (a watchdog trip, a ladder fall). Both carry the simulated
 * beat index alongside the wall-clock timestamp, so a Perfetto
 * timeline can be read in either time base.
 *
 * Recording is lock-free on the hot path: each thread appends to its
 * own fixed-capacity ring with plain stores. The contract is the
 * classic collect-at-quiescence one — exportChromeJson()/clear() may
 * only run when no thread is concurrently recording, with a
 * happens-before edge between the writers and the exporter (the
 * sharded service's batch join provides exactly that). Rings wrap:
 * the buffer always holds the most recent events per thread.
 *
 * The whole layer compiles away under -DSPM_TELEM_OFF via the macros
 * in telem.hh; this header's classes still exist in that build (the
 * exporter tooling links them) but no instrumentation site creates
 * them.
 */

#ifndef SPM_TELEMETRY_SPAN_HH
#define SPM_TELEMETRY_SPAN_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/types.hh"

namespace spm::telem
{

/** Trace categories; a bitmask filters recording per category. */
namespace cat
{
constexpr std::uint32_t engine = 1u << 0;      ///< beat-loop internals
constexpr std::uint32_t gate = 1u << 1;        ///< gate-level settle
constexpr std::uint32_t service = 1u << 2;     ///< chunk serving
constexpr std::uint32_t sharded = 1u << 3;     ///< thread-pool batches
constexpr std::uint32_t hostbus = 1u << 4;     ///< host transfers
constexpr std::uint32_t conformance = 1u << 5; ///< differential cases
constexpr std::uint32_t all = ~0u;

/** Render "service,sharded"-style lists; unknown bits are dropped. */
std::string names(std::uint32_t mask);
/** Parse a comma-separated category list; unknown names panic. */
std::uint32_t maskOf(const std::string &list);
} // namespace cat

/** One recorded event; fixed-size, name by pointer to a literal. */
struct SpanEvent
{
    enum class Phase : std::uint8_t
    {
        Complete, ///< 'X': begin + duration
        Instant,  ///< 'I': a point in time
    };

    const char *name = "";     ///< static-storage string only
    std::uint64_t startUs = 0; ///< wall-clock µs since buffer epoch
    std::uint64_t durUs = 0;   ///< Complete only
    Beat beat = 0;             ///< simulated beat stamp
    std::uint64_t arg = 0;     ///< one free payload (chunk id, code)
    std::uint32_t category = 0;
    std::uint32_t tid = 0; ///< recording thread, dense ids from 0
    Phase phase = Phase::Complete;
};

/**
 * A bounded multi-thread trace sink. Each recording thread gets a
 * private ring of `capacityPerThread` slots on first use; recording
 * is wait-free (plain stores into the ring). Enable/disable and the
 * category mask are runtime switches so the same binary can measure
 * its own tracing overhead.
 */
class TraceBuffer
{
  public:
    explicit TraceBuffer(std::size_t capacity_per_thread = 4096);
    ~TraceBuffer();

    TraceBuffer(const TraceBuffer &) = delete;
    TraceBuffer &operator=(const TraceBuffer &) = delete;

    /** The process-wide buffer the SPM_TSPAN macros record into. */
    static TraceBuffer &global();

    void setEnabled(bool on) { on_.store(on, std::memory_order_relaxed); }
    bool enabled() const { return on_.load(std::memory_order_relaxed); }

    /** Restrict recording to categories in @p mask. */
    void setCategoryMask(std::uint32_t mask)
    {
        mask_.store(mask, std::memory_order_relaxed);
    }
    std::uint32_t categoryMask() const
    {
        return mask_.load(std::memory_order_relaxed);
    }

    /** Whether an event in @p category would currently be recorded. */
    bool wants(std::uint32_t category) const
    {
        return enabled() && (categoryMask() & category) != 0;
    }

    /** Record one event (hot path; no locks once a ring exists). */
    void record(const SpanEvent &ev);

    /** µs since this buffer's construction; the trace time base. */
    std::uint64_t nowUs() const;

    /**
     * Events recorded so far, oldest lost to wraparound. Requires
     * quiescence: no concurrent record() calls, and a happens-before
     * edge from every recording thread. Sorted by start time.
     */
    std::vector<SpanEvent> collect() const;

    /**
     * Chrome trace-event JSON: an array of objects with ph/ts/pid/
     * tid/name/cat fields, loadable in chrome://tracing / Perfetto.
     * Same quiescence contract as collect().
     */
    std::string exportChromeJson(const std::string &processName =
                                     "spm") const;

    /**
     * Drop all recorded events; the recorded/dropped totals reset
     * with them (quiescence contract applies).
     */
    void clear();

    /** Total events recorded (including overwritten) since clear(). */
    std::uint64_t recordedTotal() const;
    /** Events lost to ring wraparound. */
    std::uint64_t droppedTotal() const;

    std::size_t ringCapacity() const { return capacity; }

    struct Ring; ///< per-thread ring; public for the cc-local cache

  private:

    Ring &threadRing();

    const std::size_t capacity;
    const std::uint64_t bufferId; ///< unique; keys thread-local cache
    std::atomic<bool> on_{false};
    std::atomic<std::uint32_t> mask_{cat::all};
    std::uint64_t epochNs;

    mutable std::mutex ringsMu; ///< guards the rings list only
    std::vector<std::unique_ptr<Ring>> rings;
};

/**
 * Validate Chrome trace-event JSON structure: a non-empty array whose
 * entries all carry ph/ts/pid/tid/name. Returns an empty string when
 * valid, else a description of the first violation.
 */
std::string validateChromeTrace(const std::string &json);

/**
 * RAII recorder for one 'X' complete event. Times the enclosed scope
 * with the buffer clock; the beat stamp may be updated before exit so
 * the span carries the beat it ended on.
 */
class ScopedSpan
{
  public:
    /** @param span_name static-storage string literal only. */
    ScopedSpan(TraceBuffer &buffer, const char *span_name,
               std::uint32_t category, Beat beat_stamp = 0,
               std::uint64_t arg_value = 0)
        : buf(&buffer), name(span_name), category(category),
          beat(beat_stamp), arg(arg_value), live(buffer.wants(category)),
          startUs(live ? buffer.nowUs() : 0)
    {
    }

    ~ScopedSpan()
    {
        if (live)
            finishNow();
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    /** Update the beat stamp the span will be recorded with. */
    void setBeat(Beat b) { beat = b; }
    /** Update the free payload (chunk id, case count, ...). */
    void setArg(std::uint64_t a) { arg = a; }

  private:
    void finishNow();

    TraceBuffer *buf;
    const char *name;
    std::uint32_t category;
    Beat beat;
    std::uint64_t arg;
    bool live;
    std::uint64_t startUs;
};

/** Record one 'I' instant event (no-op when filtered out). */
void instant(TraceBuffer &buffer, const char *name,
             std::uint32_t category, Beat beat = 0,
             std::uint64_t arg = 0);

} // namespace spm::telem

#endif // SPM_TELEMETRY_SPAN_HH
