#include "telemetry/reqobs.hh"

#include <algorithm>
#include <chrono>
#include <sstream>

namespace spm::telem
{

namespace
{

/** splitmix64: the deterministic draw behind the uniform reservoir. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

const char *
stageName(Stage s)
{
    switch (s) {
    case Stage::Admit:
        return "admit";
    case Stage::QueueWait:
        return "queue_wait";
    case Stage::Kernel:
        return "kernel";
    case Stage::CrossCheck:
        return "cross_check";
    case Stage::Journal:
        return "journal";
    case Stage::Commit:
        return "commit";
    }
    return "?";
}

// --------------------------------------------------------------- Exemplar

std::string
Exemplar::render() const
{
    std::ostringstream os;
    os << "exemplar service=" << service << " req=" << requestId
       << " latency_ns=" << latencyNs << " beats=" << beats << " seq="
       << seq;
    if (forced)
        os << " forced(" << reason << ")";
    os << "\n  stages:";
    for (std::size_t i = 0; i < stageCount; ++i) {
        if (stageNs[i])
            os << " " << stageName(static_cast<Stage>(i)) << "="
               << stageNs[i] << "ns";
    }
    os << "\n  case=" << (caseId.empty() ? "-" : caseId) << "\n";
    return os.str();
}

// ----------------------------------------------------- ExemplarReservoir

ExemplarReservoir::ExemplarReservoir(std::size_t slowest_capacity,
                                     std::size_t uniform_capacity,
                                     std::size_t forced_capacity,
                                     std::uint64_t reservoir_seed)
    : slowCap(slowest_capacity), uniCap(uniform_capacity),
      forceCap(forced_capacity), seed(reservoir_seed)
{
}

void
ExemplarReservoir::offer(Exemplar &&e,
                         const std::function<std::string()> &case_id_fn)
{
    std::lock_guard<std::mutex> lock(mu);
    e.seq = seq++;

    // Decide every class before materializing the case ID: the common
    // path (not retained anywhere) must stay O(1).
    bool keep_forced = e.forced && forceCap > 0;

    std::size_t slow_victim = slow.size(); // == size: append
    bool keep_slow = slowCap > 0;
    if (keep_slow && slow.size() >= slowCap) {
        auto min_it = std::min_element(
            slow.begin(), slow.end(), [](const auto &a, const auto &b) {
                return a.latencyNs < b.latencyNs;
            });
        if (min_it->latencyNs >= e.latencyNs)
            keep_slow = false;
        else
            slow_victim = static_cast<std::size_t>(min_it - slow.begin());
    }

    std::uint64_t draw = mix64(seed ^ e.seq) % (e.seq + 1);
    bool keep_uniform = uniCap > 0 && draw < uniCap;

    if (!keep_forced && !keep_slow && !keep_uniform)
        return;

    if (case_id_fn && e.caseId.empty())
        e.caseId = case_id_fn();
    ++retainedCount;

    if (keep_slow) {
        if (slow_victim == slow.size())
            slow.push_back(e);
        else
            slow[slow_victim] = e;
    }
    if (keep_uniform) {
        if (uni.size() < uniCap)
            uni.push_back(e);
        else
            uni[static_cast<std::size_t>(draw)] = e;
    }
    if (keep_forced) {
        if (force.size() >= forceCap)
            force.pop_front();
        force.push_back(std::move(e));
    }
}

std::vector<Exemplar>
ExemplarReservoir::slowest() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<Exemplar> out = slow;
    std::sort(out.begin(), out.end(), [](const auto &a, const auto &b) {
        return a.latencyNs > b.latencyNs;
    });
    return out;
}

std::vector<Exemplar>
ExemplarReservoir::uniform() const
{
    std::lock_guard<std::mutex> lock(mu);
    return uni;
}

std::vector<Exemplar>
ExemplarReservoir::forced() const
{
    std::lock_guard<std::mutex> lock(mu);
    return {force.begin(), force.end()};
}

std::uint64_t
ExemplarReservoir::offered() const
{
    std::lock_guard<std::mutex> lock(mu);
    return seq;
}

std::uint64_t
ExemplarReservoir::retained() const
{
    std::lock_guard<std::mutex> lock(mu);
    return retainedCount;
}

std::string
ExemplarReservoir::renderText() const
{
    std::ostringstream os;
    os << "exemplars offered=" << offered()
       << " retained=" << retained() << "\n";
    auto section = [&](const char *title,
                       const std::vector<Exemplar> &es) {
        os << "[" << title << " " << es.size() << "]\n";
        for (const Exemplar &e : es)
            os << e.render();
    };
    section("forced", forced());
    section("slowest", slowest());
    section("uniform", uniform());
    return os.str();
}

void
ExemplarReservoir::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    slow.clear();
    uni.clear();
    force.clear();
    seq = 0;
    retainedCount = 0;
}

// ------------------------------------------------------- RequestObserver

#ifndef SPM_TELEM_OFF

RequestObserver::RequestObserver(Registry &reg,
                                 std::string service_label,
                                 ExemplarReservoir *res)
    : serviceLabel(std::move(service_label)), reservoir(res),
      latencyNsHist(reg.logHistogram("req.latency_ns")),
      latencyBeatsHist(reg.logHistogram("req.latency_beats"))
{
    for (std::size_t i = 0; i < stageCount; ++i) {
        stageHists[i] = &reg.logHistogram(
            std::string("req.stage.") +
            stageName(static_cast<Stage>(i)) + "_ns");
    }
}

void
RequestObserver::observe(const StageClock &clock,
                         std::uint64_t request_id, bool force,
                         const char *force_reason,
                         const std::function<std::string()> &case_id_fn)
{
    if (!clock.running())
        return;
    std::uint64_t total = clock.totalNs();
    latencyNsHist.sample(static_cast<double>(total));
    latencyBeatsHist.sample(static_cast<double>(clock.beats()));
    for (std::size_t i = 0; i < stageCount; ++i) {
        std::uint64_t v = clock.stageNs(static_cast<Stage>(i));
        if (v)
            stageHists[i]->sample(static_cast<double>(v));
    }
    if (!reservoir)
        return;
    Exemplar e;
    e.service = serviceLabel;
    e.requestId = request_id;
    e.latencyNs = total;
    e.beats = clock.beats();
    for (std::size_t i = 0; i < stageCount; ++i)
        e.stageNs[i] = clock.stageNs(static_cast<Stage>(i));
    e.forced = force;
    if (force && force_reason)
        e.reason = force_reason;
    reservoir->offer(std::move(e), case_id_fn);
}

void
RequestObserver::noteQueueWait(std::uint64_t wait_ns)
{
    if (samplingEnabled())
        stageHists[static_cast<std::size_t>(Stage::QueueWait)]->sample(
            static_cast<double>(wait_ns));
}

#else // SPM_TELEM_OFF: the observer exists but registers and records
      // nothing -- req.* metrics vanish from snapshots entirely.

RequestObserver::RequestObserver(Registry &, std::string service_label,
                                 ExemplarReservoir *res)
    : serviceLabel(std::move(service_label)), reservoir(res)
{
}

void
RequestObserver::observe(const StageClock &, std::uint64_t, bool,
                         const char *,
                         const std::function<std::string()> &)
{
}

void
RequestObserver::noteQueueWait(std::uint64_t)
{
}

#endif // SPM_TELEM_OFF

} // namespace spm::telem
