/**
 * @file
 * Request-level observability: SLO latency recording, per-stage
 * attribution, and tail-sampled exemplar traces.
 *
 * The metrics registry (telemetry/metrics) measures components; this
 * layer measures *requests* — the boundary Foster & Kung argue a
 * special-purpose engine must be judged at. Three pieces:
 *
 *   StageClock         rides along one request and splits its wall
 *                      latency into admit / queue-wait / kernel /
 *                      cross-check / journal / commit stages, plus
 *                      the beat count the simulated chip charged;
 *   RequestObserver    folds finished clocks into per-service
 *                      LogHistograms ("req.latency_ns",
 *                      "req.latency_beats", "req.stage.<stage>_ns")
 *                      so p50/p90/p99/p999 and a per-stage tail
 *                      breakdown fall out of any registry snapshot;
 *   ExemplarReservoir  keeps a bounded set of full per-request stage
 *                      traces — the slowest-N, a uniform sample, and
 *                      every force-retained request (watchdog trips,
 *                      ladder falls, cross-check mismatches) — each
 *                      linked to a replayable conformance case ID so
 *                      a bad exemplar can be re-executed offline.
 *
 * Cost discipline: StageClock's marks are two relaxed loads and a
 * steady_clock read when sampling is runtime-enabled, nothing when it
 * is not, and the whole layer compiles to empty inline bodies under
 * SPM_TELEM_OFF (the classes stay so call sites need no #ifdefs).
 * Case-ID strings are O(text) to build, so observe() takes a lazy
 * builder that only runs once the reservoir has decided to retain.
 */

#ifndef SPM_TELEMETRY_REQOBS_HH
#define SPM_TELEMETRY_REQOBS_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/metrics.hh"
#include "util/types.hh"

namespace spm::telem
{

/** Wall clock for request latency: monotonic nanoseconds. */
std::uint64_t nowNs();

/** The stages one request's latency decomposes into. */
enum class Stage : unsigned char
{
    Admit,      ///< validation, session setup, window assembly
    QueueWait,  ///< admission / shard queue residency
    Kernel,     ///< the matcher itself (any rung of the ladder)
    CrossCheck, ///< reference / overlap verification
    Journal,    ///< replay-journal recording
    Commit,     ///< bus transfer, result emission, checkpoint
};

inline constexpr std::size_t stageCount = 6;

/** Stable lowercase token ("queue_wait") for names and renders. */
const char *stageName(Stage s);

/**
 * Per-request stage attribution. start() arms the clock (capturing
 * the runtime sampling gate once), mark(s) credits the time since the
 * previous mark to stage @p s, note(s, ns) credits externally
 * measured time (queue waits timed by an enqueue stamp), addBeats
 * accumulates the simulated-chip cost. Everything is a no-op when
 * sampling was disabled at start() or under SPM_TELEM_OFF.
 */
class StageClock
{
  public:
#ifndef SPM_TELEM_OFF
    void start()
    {
        armed = samplingEnabled();
        if (armed)
            t0 = last = nowNs();
    }

    void mark(Stage s)
    {
        if (!armed)
            return;
        std::uint64_t now = nowNs();
        ns[static_cast<std::size_t>(s)] += now - last;
        last = now;
    }

    /** Credit externally measured time without moving the mark. */
    void note(Stage s, std::uint64_t duration_ns)
    {
        if (armed)
            ns[static_cast<std::size_t>(s)] += duration_ns;
    }

    void addBeats(Beat b)
    {
        if (armed)
            beatCount += b;
    }

    bool running() const { return armed; }
    std::uint64_t stageNs(Stage s) const
    {
        return ns[static_cast<std::size_t>(s)];
    }
    /** Wall nanoseconds since start(); live until observed. */
    std::uint64_t totalNs() const { return armed ? nowNs() - t0 : 0; }
    Beat beats() const { return beatCount; }
#else
    void start() {}
    void mark(Stage) {}
    void note(Stage, std::uint64_t) {}
    void addBeats(Beat) {}
    bool running() const { return false; }
    std::uint64_t stageNs(Stage) const { return 0; }
    std::uint64_t totalNs() const { return 0; }
    Beat beats() const { return 0; }
#endif

  private:
    bool armed = false;
    std::uint64_t t0 = 0;
    std::uint64_t last = 0;
    std::array<std::uint64_t, stageCount> ns{};
    Beat beatCount = 0;
};

/** One retained request trace: the stage split plus its replay link. */
struct Exemplar
{
    std::string service;   ///< observer label ("stream", "sharded", ...)
    std::uint64_t requestId = 0;
    std::uint64_t latencyNs = 0;
    Beat beats = 0;
    std::array<std::uint64_t, stageCount> stageNs{};
    std::string caseId;    ///< replayable conformance case ID
    bool forced = false;
    std::string reason;    ///< why it was force-retained
    std::uint64_t seq = 0; ///< observation sequence number

    /** Multi-line human rendering (stage split + case ID). */
    std::string render() const;
};

/**
 * Bounded tail-sampling reservoir. Three retention classes:
 *
 *   slowest   the N largest latencies seen (min-replacement);
 *   uniform   a classic reservoir sample of all observations, so the
 *             body of the distribution is represented too (the draw
 *             is a deterministic hash of (seed, seq): two runs over
 *             the same request stream retain the same exemplars);
 *   forced    a ring of the most recent force-retained requests —
 *             watchdog trips and ladder falls never compete with
 *             ordinary slow requests for space.
 *
 * The case-ID builder passed to offer() runs only when some class
 * retains the request, so the common fast path never materializes
 * O(text) strings.
 */
class ExemplarReservoir
{
  public:
    explicit ExemplarReservoir(std::size_t slowest_capacity = 8,
                               std::size_t uniform_capacity = 8,
                               std::size_t forced_capacity = 8,
                               std::uint64_t seed = 0x5eed);

    /** Consider one finished request; thread-safe. */
    void offer(Exemplar &&e,
               const std::function<std::string()> &case_id_fn);

    std::vector<Exemplar> slowest() const;  ///< sorted, slowest first
    std::vector<Exemplar> uniform() const;
    std::vector<Exemplar> forced() const;   ///< oldest first

    std::uint64_t offered() const;
    std::uint64_t retained() const;

    /** All three classes rendered for a dashboard / dump. */
    std::string renderText() const;

    void clear();

  private:
    mutable std::mutex mu;
    std::size_t slowCap, uniCap, forceCap;
    std::uint64_t seed;
    std::uint64_t seq = 0;
    std::uint64_t retainedCount = 0;
    std::vector<Exemplar> slow;
    std::vector<Exemplar> uni;
    std::deque<Exemplar> force;
};

/**
 * The per-service fold: binds the request-level LogHistograms in one
 * registry and feeds them (and an optional reservoir) from finished
 * StageClocks. One observer per service front end; the sharded
 * service's lives on its supervision registry so its metrics render
 * under the "sharded." prefix its snapshot already applies.
 */
class RequestObserver
{
  public:
    /**
     * @param reg registry the req.* histograms register in
     * @param service_label stamped on exemplars ("stream", "batch"...)
     * @param reservoir exemplar sink; may be nullptr (histograms only)
     */
    RequestObserver(Registry &reg, std::string service_label,
                    ExemplarReservoir *reservoir);

    /**
     * Fold one finished request. @p case_id_fn builds the replayable
     * conformance case ID lazily (see ExemplarReservoir). @p force
     * retains the trace regardless of latency; @p force_reason says
     * why ("watchdog trip", "ladder fall", ...).
     */
    void observe(const StageClock &clock, std::uint64_t request_id,
                 bool force, const char *force_reason,
                 const std::function<std::string()> &case_id_fn);

    /**
     * Extra queue-wait samples that don't ride a full StageClock: the
     * batch front end serves many queued requests in one pass, so
     * each member's wait feeds the stage histogram directly.
     */
    void noteQueueWait(std::uint64_t wait_ns);

    const std::string &label() const { return serviceLabel; }

  private:
    std::string serviceLabel;
    ExemplarReservoir *reservoir;
#ifndef SPM_TELEM_OFF
    LogHistogram &latencyNsHist;
    LogHistogram &latencyBeatsHist;
    std::array<LogHistogram *, stageCount> stageHists{};
#endif
};

} // namespace spm::telem

#endif // SPM_TELEMETRY_REQOBS_HH
