#include "telemetry/jsonlite.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace spm::telem
{

const JsonValue *
JsonValue::member(const std::string &name) const
{
    if (k != Kind::Object)
        return nullptr;
    const JsonValue *found = nullptr;
    for (const auto &[key, v] : members)
        if (key == name)
            found = &v;
    return found;
}

namespace
{

/** Recursive-descent parser over a string; pos advances on success. */
class Parser
{
  public:
    explicit Parser(const std::string &s) : text(s) {}

    std::optional<JsonValue>
    parseDocument()
    {
        auto v = parseValue();
        if (!v)
            return std::nullopt;
        skipSpace();
        if (pos != text.size())
            return std::nullopt; // trailing garbage
        return v;
    }

  private:
    void
    skipSpace()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r')) {
            ++pos;
        }
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    consumeWord(const char *w)
    {
        std::size_t n = 0;
        while (w[n])
            ++n;
        if (text.compare(pos, n, w) != 0)
            return false;
        pos += n;
        return true;
    }

    std::optional<JsonValue>
    parseValue()
    {
        skipSpace();
        if (pos >= text.size())
            return std::nullopt;
        // Nesting bound: malformed deeply-nested input must not
        // overflow the parser's own stack.
        if (depth > 200)
            return std::nullopt;
        char c = text[pos];
        if (c == '{')
            return parseObject();
        if (c == '[')
            return parseArray();
        if (c == '"')
            return parseString();
        if (c == 't' || c == 'f')
            return parseBool();
        if (c == 'n')
            return parseNull();
        return parseNumber();
    }

    std::optional<JsonValue>
    parseObject()
    {
        ++pos; // '{'
        ++depth;
        JsonValue v;
        v.k = JsonValue::Kind::Object;
        skipSpace();
        if (consume('}')) {
            --depth;
            return v;
        }
        while (true) {
            skipSpace();
            if (pos >= text.size() || text[pos] != '"')
                return std::nullopt;
            auto key = parseString();
            if (!key)
                return std::nullopt;
            if (!consume(':'))
                return std::nullopt;
            auto val = parseValue();
            if (!val)
                return std::nullopt;
            v.members.emplace_back(key->text, std::move(*val));
            if (consume(','))
                continue;
            if (consume('}'))
                break;
            return std::nullopt;
        }
        --depth;
        return v;
    }

    std::optional<JsonValue>
    parseArray()
    {
        ++pos; // '['
        ++depth;
        JsonValue v;
        v.k = JsonValue::Kind::Array;
        skipSpace();
        if (consume(']')) {
            --depth;
            return v;
        }
        while (true) {
            auto item = parseValue();
            if (!item)
                return std::nullopt;
            v.items.push_back(std::move(*item));
            if (consume(','))
                continue;
            if (consume(']'))
                break;
            return std::nullopt;
        }
        --depth;
        return v;
    }

    std::optional<JsonValue>
    parseString()
    {
        ++pos; // '"'
        JsonValue v;
        v.k = JsonValue::Kind::String;
        while (pos < text.size()) {
            char c = text[pos++];
            if (c == '"')
                return v;
            if (static_cast<unsigned char>(c) < 0x20)
                return std::nullopt; // raw control character
            if (c != '\\') {
                v.text.push_back(c);
                continue;
            }
            if (pos >= text.size())
                return std::nullopt;
            char e = text[pos++];
            switch (e) {
              case '"': v.text.push_back('"'); break;
              case '\\': v.text.push_back('\\'); break;
              case '/': v.text.push_back('/'); break;
              case 'b': v.text.push_back('\b'); break;
              case 'f': v.text.push_back('\f'); break;
              case 'n': v.text.push_back('\n'); break;
              case 'r': v.text.push_back('\r'); break;
              case 't': v.text.push_back('\t'); break;
              case 'u': {
                  if (pos + 4 > text.size())
                      return std::nullopt;
                  unsigned cp = 0;
                  for (int i = 0; i < 4; ++i) {
                      char h = text[pos++];
                      cp <<= 4;
                      if (h >= '0' && h <= '9')
                          cp |= static_cast<unsigned>(h - '0');
                      else if (h >= 'a' && h <= 'f')
                          cp |= static_cast<unsigned>(h - 'a' + 10);
                      else if (h >= 'A' && h <= 'F')
                          cp |= static_cast<unsigned>(h - 'A' + 10);
                      else
                          return std::nullopt;
                  }
                  // UTF-8 encode the basic-plane code point; the
                  // telemetry writers never emit surrogate pairs.
                  if (cp < 0x80) {
                      v.text.push_back(static_cast<char>(cp));
                  } else if (cp < 0x800) {
                      v.text.push_back(
                          static_cast<char>(0xC0 | (cp >> 6)));
                      v.text.push_back(
                          static_cast<char>(0x80 | (cp & 0x3F)));
                  } else {
                      v.text.push_back(
                          static_cast<char>(0xE0 | (cp >> 12)));
                      v.text.push_back(
                          static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
                      v.text.push_back(
                          static_cast<char>(0x80 | (cp & 0x3F)));
                  }
                  break;
              }
              default:
                  return std::nullopt;
            }
        }
        return std::nullopt; // unterminated
    }

    std::optional<JsonValue>
    parseBool()
    {
        JsonValue v;
        v.k = JsonValue::Kind::Boolean;
        if (consumeWord("true")) {
            v.boolean = true;
            return v;
        }
        if (consumeWord("false")) {
            v.boolean = false;
            return v;
        }
        return std::nullopt;
    }

    std::optional<JsonValue>
    parseNull()
    {
        if (!consumeWord("null"))
            return std::nullopt;
        return JsonValue{};
    }

    std::optional<JsonValue>
    parseNumber()
    {
        std::size_t start = pos;
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        std::size_t digits = pos;
        while (pos < text.size() && std::isdigit(
                   static_cast<unsigned char>(text[pos]))) {
            ++pos;
        }
        if (pos == digits)
            return std::nullopt;
        if (pos < text.size() && text[pos] == '.') {
            ++pos;
            std::size_t frac = pos;
            while (pos < text.size() && std::isdigit(
                       static_cast<unsigned char>(text[pos]))) {
                ++pos;
            }
            if (pos == frac)
                return std::nullopt;
        }
        if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-')) {
                ++pos;
            }
            std::size_t exp = pos;
            while (pos < text.size() && std::isdigit(
                       static_cast<unsigned char>(text[pos]))) {
                ++pos;
            }
            if (pos == exp)
                return std::nullopt;
        }
        JsonValue v;
        v.k = JsonValue::Kind::Number;
        v.number = std::strtod(text.substr(start, pos - start).c_str(),
                               nullptr);
        return v;
    }

    const std::string &text;
    std::size_t pos = 0;
    int depth = 0;
};

} // namespace

std::optional<JsonValue>
jsonParse(const std::string &text)
{
    return Parser(text).parseDocument();
}

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

} // namespace spm::telem
