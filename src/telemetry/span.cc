#include "telemetry/span.hh"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "telemetry/jsonlite.hh"
#include "util/logging.hh"

namespace spm::telem
{

namespace cat
{

namespace
{
constexpr std::pair<const char *, std::uint32_t> kCategories[] = {
    {"engine", engine},       {"gate", gate},
    {"service", service},     {"sharded", sharded},
    {"hostbus", hostbus},     {"conformance", conformance},
};
} // namespace

std::string
names(std::uint32_t mask)
{
    std::string out;
    for (const auto &[name, bit] : kCategories) {
        if (mask & bit) {
            if (!out.empty())
                out.push_back(',');
            out += name;
        }
    }
    return out;
}

std::uint32_t
maskOf(const std::string &list)
{
    if (list == "all" || list.empty())
        return all;
    std::uint32_t mask = 0;
    std::size_t start = 0;
    while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        if (comma == std::string::npos)
            comma = list.size();
        std::string token = list.substr(start, comma - start);
        bool found = false;
        for (const auto &[name, bit] : kCategories) {
            if (token == name) {
                mask |= bit;
                found = true;
                break;
            }
        }
        if (!found)
            spm_panic("unknown trace category '", token, "'");
        start = comma + 1;
    }
    return mask;
}

} // namespace cat

/**
 * Per-thread event ring. Only the owning thread writes slots and
 * head; the exporter reads them at quiescence under the collect()
 * contract, so plain (relaxed-published) accesses suffice and the
 * hot path stays wait-free.
 */
struct TraceBuffer::Ring
{
    explicit Ring(std::size_t cap, std::uint32_t tid_value)
        : tid(tid_value), slots(cap)
    {
    }

    std::uint32_t tid;
    std::uint64_t head = 0; ///< total events ever written
    std::vector<SpanEvent> slots;
};

namespace
{

/** Cache entry resolving (buffer id) -> ring without the lock. */
struct RingCacheEntry
{
    std::uint64_t bufferId;
    TraceBuffer::Ring *ring;
};

std::uint64_t
nextBufferId()
{
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t
monotonicNowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

TraceBuffer::TraceBuffer(std::size_t capacity_per_thread)
    : capacity(std::max<std::size_t>(capacity_per_thread, 8)),
      bufferId(nextBufferId()), epochNs(monotonicNowNs())
{
}

TraceBuffer::~TraceBuffer() = default;

TraceBuffer &
TraceBuffer::global()
{
    // Leaked: instrumented code may record during static destruction.
    static TraceBuffer *g = new TraceBuffer(8192);
    return *g;
}

TraceBuffer::Ring &
TraceBuffer::threadRing()
{
    // Buffer ids increase monotonically and are never reused, so a
    // stale cache entry for a destroyed buffer can never falsely
    // match a live one.
    thread_local std::vector<RingCacheEntry> cache;
    for (const RingCacheEntry &e : cache)
        if (e.bufferId == bufferId)
            return *e.ring;

    std::lock_guard<std::mutex> lock(ringsMu);
    auto ring = std::make_unique<Ring>(
        capacity, static_cast<std::uint32_t>(rings.size()));
    Ring *raw = ring.get();
    rings.push_back(std::move(ring));
    cache.push_back({bufferId, raw});
    return *raw;
}

void
TraceBuffer::record(const SpanEvent &ev)
{
    Ring &ring = threadRing();
    SpanEvent &slot = ring.slots[ring.head % capacity];
    slot = ev;
    slot.tid = ring.tid;
    ++ring.head;
}

std::uint64_t
TraceBuffer::nowUs() const
{
    return (monotonicNowNs() - epochNs) / 1000;
}

std::vector<SpanEvent>
TraceBuffer::collect() const
{
    std::vector<SpanEvent> events;
    std::lock_guard<std::mutex> lock(ringsMu);
    for (const auto &ring : rings) {
        std::uint64_t n = std::min<std::uint64_t>(ring->head, capacity);
        std::uint64_t first = ring->head - n;
        for (std::uint64_t i = 0; i < n; ++i)
            events.push_back(ring->slots[(first + i) % capacity]);
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const SpanEvent &a, const SpanEvent &b) {
                         return a.startUs < b.startUs;
                     });
    return events;
}

std::string
TraceBuffer::exportChromeJson(const std::string &processName) const
{
    std::vector<SpanEvent> events = collect();
    std::ostringstream os;
    os << "[";
    // Metadata event names the process in the Perfetto track list.
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"ts\":0,"
          "\"name\":\"process_name\",\"args\":{\"name\":"
       << jsonQuote(processName) << "}}";
    for (const SpanEvent &ev : events) {
        os << ",{\"ph\":\""
           << (ev.phase == SpanEvent::Phase::Complete ? "X" : "I")
           << "\",\"pid\":1,\"tid\":" << ev.tid
           << ",\"ts\":" << ev.startUs;
        if (ev.phase == SpanEvent::Phase::Complete)
            os << ",\"dur\":" << ev.durUs;
        else
            os << ",\"s\":\"t\"";
        os << ",\"name\":" << jsonQuote(ev.name)
           << ",\"cat\":" << jsonQuote(cat::names(ev.category))
           << ",\"args\":{\"beat\":" << ev.beat << ",\"arg\":" << ev.arg
           << "}}";
    }
    os << "]";
    return os.str();
}

void
TraceBuffer::clear()
{
    std::lock_guard<std::mutex> lock(ringsMu);
    for (auto &ring : rings)
        ring->head = 0;
}

std::uint64_t
TraceBuffer::recordedTotal() const
{
    std::lock_guard<std::mutex> lock(ringsMu);
    std::uint64_t total = 0;
    for (const auto &ring : rings)
        total += ring->head;
    return total;
}

std::uint64_t
TraceBuffer::droppedTotal() const
{
    std::lock_guard<std::mutex> lock(ringsMu);
    std::uint64_t dropped = 0;
    for (const auto &ring : rings)
        if (ring->head > capacity)
            dropped += ring->head - capacity;
    return dropped;
}

std::string
validateChromeTrace(const std::string &json)
{
    auto root = jsonParse(json);
    if (!root)
        return "not valid JSON";
    if (!root->isArray())
        return "root is not an array";
    if (root->arrayItems().empty())
        return "event array is empty";
    std::size_t i = 0;
    for (const JsonValue &ev : root->arrayItems()) {
        std::string where = "event " + std::to_string(i++);
        if (!ev.isObject())
            return where + " is not an object";
        const JsonValue *ph = ev.member("ph");
        if (!ph || !ph->isString() || ph->asString().empty())
            return where + " lacks a string 'ph'";
        const JsonValue *ts = ev.member("ts");
        if (!ts || !ts->isNumber())
            return where + " lacks a numeric 'ts'";
        const JsonValue *pid = ev.member("pid");
        if (!pid || !pid->isNumber())
            return where + " lacks a numeric 'pid'";
        const JsonValue *tid = ev.member("tid");
        if (!tid || !tid->isNumber())
            return where + " lacks a numeric 'tid'";
        const JsonValue *name = ev.member("name");
        if (!name || !name->isString())
            return where + " lacks a string 'name'";
        if (ph->asString() == "X") {
            const JsonValue *dur = ev.member("dur");
            if (!dur || !dur->isNumber())
                return where + " is 'X' but lacks a numeric 'dur'";
        }
    }
    return "";
}

void
ScopedSpan::finishNow()
{
    SpanEvent ev;
    ev.name = name;
    ev.startUs = startUs;
    ev.durUs = buf->nowUs() - startUs;
    ev.beat = beat;
    ev.arg = arg;
    ev.category = category;
    ev.phase = SpanEvent::Phase::Complete;
    buf->record(ev);
}

void
instant(TraceBuffer &buffer, const char *name, std::uint32_t category,
        Beat beat, std::uint64_t arg)
{
    if (!buffer.wants(category))
        return;
    SpanEvent ev;
    ev.name = name;
    ev.startUs = buffer.nowUs();
    ev.beat = beat;
    ev.arg = arg;
    ev.category = category;
    ev.phase = SpanEvent::Phase::Instant;
    buffer.record(ev);
}

} // namespace spm::telem
