#include "telemetry/metrics.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "telemetry/jsonlite.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace spm::telem
{

namespace
{

std::atomic<bool> gSampling{true};

std::size_t
roundUpPow2(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

/** Format a double the way the JSON snapshot and stat lines expect. */
std::string
formatDouble(double v)
{
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        std::abs(v) < 1e15) {
        return std::to_string(static_cast<long long>(v));
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

template <typename Vec>
auto
findEntry(Vec &entries, const std::string &name)
{
    return std::find_if(entries.begin(), entries.end(),
                        [&](const auto &e) { return e.first == name; });
}

template <typename Vec, typename Value>
void
setSorted(Vec &entries, const std::string &name, Value &&v)
{
    auto it = findEntry(entries, name);
    if (it != entries.end()) {
        it->second = std::forward<Value>(v);
        return;
    }
    auto pos = std::lower_bound(
        entries.begin(), entries.end(), name,
        [](const auto &e, const std::string &n) { return e.first < n; });
    entries.insert(pos, {name, std::forward<Value>(v)});
}

/** Prometheus metric names: [a-zA-Z0-9_], dots become underscores. */
std::string
promName(const std::string &name)
{
    std::string out = "spm_";
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_';
        out.push_back(ok ? c : '_');
    }
    return out;
}

} // namespace

void
setSamplingEnabled(bool enabled)
{
    gSampling.store(enabled, std::memory_order_relaxed);
}

bool
samplingEnabled()
{
    return gSampling.load(std::memory_order_relaxed);
}

std::size_t
threadStripe()
{
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t stripe =
        next.fetch_add(1, std::memory_order_relaxed);
    return stripe;
}

// ---------------------------------------------------------------- Counter

Counter::Counter(std::string metric_name, std::size_t stripes)
    : metricName(std::move(metric_name))
{
    std::size_t n = roundUpPow2(std::max<std::size_t>(stripes, 1));
    mask = n - 1;
    cells = std::make_unique<StripeCell[]>(n);
}

std::uint64_t
Counter::value() const
{
    std::uint64_t total = 0;
    for (std::size_t i = 0; i <= mask; ++i)
        total += cells[i].v.load(std::memory_order_relaxed);
    return total;
}

void
Counter::reset()
{
    for (std::size_t i = 0; i <= mask; ++i)
        cells[i].v.store(0, std::memory_order_relaxed);
}

// -------------------------------------------------------------- Histogram

Histogram::Histogram(std::string metric_name, double range_lo,
                     double range_hi, std::size_t buckets,
                     std::size_t stripe_count)
    : metricName(std::move(metric_name)), lo(range_lo), hi(range_hi),
      nBuckets(buckets)
{
    spm_assert(range_lo < range_hi,
               "histogram '", metricName, "': lo must be < hi");
    spm_assert(buckets > 0,
               "histogram '", metricName, "': needs at least one bucket");
    stripes = roundUpPow2(std::max<std::size_t>(stripe_count, 1));
    cells = std::make_unique<std::atomic<std::uint64_t>[]>(
        stripes * (nBuckets + 3));
    for (std::size_t i = 0; i < stripes * (nBuckets + 3); ++i)
        cells[i].store(0, std::memory_order_relaxed);
    sumCells = std::make_unique<StripeCell[]>(stripes);
}

void
Histogram::sample(double v)
{
    std::size_t stripe = threadStripe() & (stripes - 1);
    if (std::isnan(v)) {
        // NaN fails both range comparisons; without this check it
        // would fall into the bucket-index cast (undefined behavior)
        // and poison the sum. Count it where a dashboard can see it.
        cells[cellIndex(stripe, nBuckets + 2)].fetch_add(
            1, std::memory_order_relaxed);
        return;
    }
    std::size_t slot;
    if (v < lo) {
        slot = nBuckets; // underflow
    } else if (v >= hi) {
        slot = nBuckets + 1; // overflow
    } else {
        auto i = static_cast<std::size_t>((v - lo) / (hi - lo) *
                                          static_cast<double>(nBuckets));
        slot = std::min(i, nBuckets - 1);
    }
    cells[cellIndex(stripe, slot)].fetch_add(1, std::memory_order_relaxed);
    // Sums accumulate in milli-units so one atomic integer carries
    // fractional samples (utilization fractions, millisecond latencies).
    auto milli = static_cast<std::int64_t>(std::llround(v * 1000.0));
    sumCells[stripe].v.fetch_add(static_cast<std::uint64_t>(milli),
                                 std::memory_order_relaxed);
}

std::uint64_t
Histogram::slotTotal(std::size_t slot) const
{
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < stripes; ++s)
        total += cells[cellIndex(s, slot)].load(std::memory_order_relaxed);
    return total;
}

std::uint64_t
Histogram::bucketValue(std::size_t i) const
{
    spm_assert(i < nBuckets, "histogram '", metricName,
               "': bucket ", i, " out of range");
    return slotTotal(i);
}

std::uint64_t
Histogram::underflows() const
{
    return slotTotal(nBuckets);
}

std::uint64_t
Histogram::overflows() const
{
    return slotTotal(nBuckets + 1);
}

std::uint64_t
Histogram::invalids() const
{
    return slotTotal(nBuckets + 2);
}

std::uint64_t
Histogram::samples() const
{
    std::uint64_t total = 0;
    for (std::size_t slot = 0; slot < nBuckets + 2; ++slot)
        total += slotTotal(slot);
    return total;
}

double
Histogram::sum() const
{
    std::int64_t milli = 0;
    for (std::size_t s = 0; s < stripes; ++s)
        milli += static_cast<std::int64_t>(
            sumCells[s].v.load(std::memory_order_relaxed));
    return static_cast<double>(milli) / 1000.0;
}

void
Histogram::reset()
{
    for (std::size_t i = 0; i < stripes * (nBuckets + 3); ++i)
        cells[i].store(0, std::memory_order_relaxed);
    for (std::size_t s = 0; s < stripes; ++s)
        sumCells[s].v.store(0, std::memory_order_relaxed);
}

// ----------------------------------------------------------- LogHistogram

std::size_t
LogHistogram::bucketIndex(std::uint64_t u, unsigned sub_bits)
{
    const std::uint64_t sub = std::uint64_t{1} << sub_bits;
    if (u < 2 * sub)
        return static_cast<std::size_t>(u); // exact low range
#if defined(__GNUC__) || defined(__clang__)
    const unsigned msb = 63u - static_cast<unsigned>(__builtin_clzll(u));
#else
    unsigned msb = 0;
    for (std::uint64_t w = u; w >>= 1;)
        ++msb;
#endif
    const unsigned shift = msb - sub_bits;
    return static_cast<std::size_t>((shift + 1) * sub + (u >> shift) - sub);
}

std::uint64_t
LogHistogram::bucketFloor(std::size_t index, unsigned sub_bits)
{
    const std::uint64_t sub = std::uint64_t{1} << sub_bits;
    if (index < 2 * sub)
        return index;
    const std::size_t shift = index / sub - 1;
    return (sub + index % sub) << shift;
}

std::size_t
LogHistogram::bucketCountFor(unsigned sub_bits)
{
    // Values up to 2^64-1 map to index (64 - sub_bits)*sub + sub - 1.
    return static_cast<std::size_t>(65 - sub_bits)
           << sub_bits;
}

LogHistogram::LogHistogram(std::string metric_name, unsigned sub_bits,
                           std::size_t stripe_count)
    : metricName(std::move(metric_name)), subBitsN(sub_bits)
{
    spm_assert(sub_bits <= 6, "log histogram '", metricName,
               "': sub_bits must be <= 6");
    nBuckets = bucketCountFor(sub_bits);
    stripes = roundUpPow2(std::max<std::size_t>(stripe_count, 1));
    cells = std::make_unique<std::atomic<std::uint64_t>[]>(
        stripes * (nBuckets + 1));
    for (std::size_t i = 0; i < stripes * (nBuckets + 1); ++i)
        cells[i].store(0, std::memory_order_relaxed);
    sumCells = std::make_unique<StripeCell[]>(stripes);
}

void
LogHistogram::sample(double v)
{
    std::size_t stripe = threadStripe() & (stripes - 1);
    if (std::isnan(v) || v < 0.0) {
        cells[cellIndex(stripe, nBuckets)].fetch_add(
            1, std::memory_order_relaxed);
        return;
    }
    // Latencies are integer beat / nanosecond counts; round and clamp
    // to the llround-safe range (the top buckets absorb the rest).
    std::uint64_t u = v >= 9.0e18
                          ? std::uint64_t{9'000'000'000'000'000'000}
                          : static_cast<std::uint64_t>(std::llround(v));
    cells[cellIndex(stripe, bucketIndex(u, subBitsN))].fetch_add(
        1, std::memory_order_relaxed);
    sumCells[stripe].v.fetch_add(u, std::memory_order_relaxed);
}

std::uint64_t
LogHistogram::bucketValue(std::size_t i) const
{
    spm_assert(i < nBuckets, "log histogram '", metricName,
               "': bucket ", i, " out of range");
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < stripes; ++s)
        total += cells[cellIndex(s, i)].load(std::memory_order_relaxed);
    return total;
}

std::uint64_t
LogHistogram::invalids() const
{
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < stripes; ++s)
        total +=
            cells[cellIndex(s, nBuckets)].load(std::memory_order_relaxed);
    return total;
}

std::uint64_t
LogHistogram::samples() const
{
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < stripes; ++s)
        for (std::size_t i = 0; i < nBuckets; ++i)
            total += cells[cellIndex(s, i)].load(std::memory_order_relaxed);
    return total;
}

double
LogHistogram::sum() const
{
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < stripes; ++s)
        total += sumCells[s].v.load(std::memory_order_relaxed);
    return static_cast<double>(total);
}

double
LogHistogram::quantile(double q) const
{
    Snapshot::LogHistogramData data;
    data.subBits = subBitsN;
    data.buckets.resize(nBuckets);
    for (std::size_t i = 0; i < nBuckets; ++i)
        data.buckets[i] = bucketValue(i);
    return data.quantile(q);
}

void
LogHistogram::reset()
{
    for (std::size_t i = 0; i < stripes * (nBuckets + 1); ++i)
        cells[i].store(0, std::memory_order_relaxed);
    for (std::size_t s = 0; s < stripes; ++s)
        sumCells[s].v.store(0, std::memory_order_relaxed);
}

// --------------------------------------------------------------- Snapshot

std::uint64_t
Snapshot::HistogramData::samples() const
{
    std::uint64_t total = under + over;
    for (std::uint64_t b : buckets)
        total += b;
    return total;
}

double
Snapshot::HistogramData::mean() const
{
    std::uint64_t n = samples();
    return n ? sum / static_cast<double>(n) : 0.0;
}

std::uint64_t
Snapshot::LogHistogramData::samples() const
{
    std::uint64_t total = 0;
    for (std::uint64_t b : buckets)
        total += b;
    return total;
}

double
Snapshot::LogHistogramData::mean() const
{
    std::uint64_t n = samples();
    return n ? sum / static_cast<double>(n) : 0.0;
}

double
Snapshot::LogHistogramData::quantile(double q) const
{
    std::uint64_t n = samples();
    if (n == 0)
        return 0.0;
    double qr = std::ceil(std::clamp(q, 0.0, 1.0) *
                          static_cast<double>(n));
    std::uint64_t rank = std::clamp<std::uint64_t>(
        static_cast<std::uint64_t>(qr), 1, n);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        seen += buckets[i];
        if (seen >= rank) {
            std::uint64_t floor_v = LogHistogram::bucketFloor(i, subBits);
            std::uint64_t width =
                LogHistogram::bucketFloor(i + 1, subBits) - floor_v;
            // Bucket midpoint above the exact range, the value itself
            // inside it.
            return static_cast<double>(floor_v) +
                   (width > 1 ? static_cast<double>(width - 1) / 2.0
                              : 0.0);
        }
    }
    return 0.0;
}

void
Snapshot::setCounter(const std::string &name, std::uint64_t v)
{
    setSorted(counters, name, v);
}

void
Snapshot::setGauge(const std::string &name, double v)
{
    setSorted(gauges, name, v);
}

void
Snapshot::setHistogram(const std::string &name, HistogramData h)
{
    setSorted(histograms, name, std::move(h));
}

void
Snapshot::setLogHistogram(const std::string &name, LogHistogramData h)
{
    setSorted(logHistograms, name, std::move(h));
}

std::uint64_t
Snapshot::counterValue(const std::string &name) const
{
    auto it = findEntry(counters, name);
    return it == counters.end() ? 0 : it->second;
}

std::optional<double>
Snapshot::gaugeValue(const std::string &name) const
{
    auto it = findEntry(gauges, name);
    if (it == gauges.end())
        return std::nullopt;
    return it->second;
}

const Snapshot::HistogramData *
Snapshot::histogram(const std::string &name) const
{
    auto it = findEntry(histograms, name);
    return it == histograms.end() ? nullptr : &it->second;
}

const Snapshot::LogHistogramData *
Snapshot::logHistogram(const std::string &name) const
{
    auto it = findEntry(logHistograms, name);
    return it == logHistograms.end() ? nullptr : &it->second;
}

void
Snapshot::merge(const Snapshot &other)
{
    for (const auto &[name, v] : other.counters)
        setCounter(name, counterValue(name) + v);
    for (const auto &[name, v] : other.gauges) {
        auto mine = gaugeValue(name);
        setGauge(name, mine ? *mine + v : v);
    }
    for (const auto &[name, h] : other.histograms) {
        auto it = findEntry(histograms, name);
        if (it == histograms.end()) {
            setHistogram(name, h);
            continue;
        }
        HistogramData &mine = it->second;
        spm_assert(mine.buckets.size() == h.buckets.size() &&
                       mine.lo == h.lo && mine.hi == h.hi,
                   "snapshot merge: histogram '", name,
                   "' has mismatched shape");
        for (std::size_t i = 0; i < h.buckets.size(); ++i)
            mine.buckets[i] += h.buckets[i];
        mine.under += h.under;
        mine.over += h.over;
        mine.invalid += h.invalid;
        mine.sum += h.sum;
    }
    for (const auto &[name, h] : other.logHistograms) {
        auto it = findEntry(logHistograms, name);
        if (it == logHistograms.end()) {
            setLogHistogram(name, h);
            continue;
        }
        LogHistogramData &mine = it->second;
        spm_assert(mine.subBits == h.subBits, "snapshot merge: log "
                   "histogram '", name, "' has mismatched resolution");
        if (mine.buckets.size() < h.buckets.size())
            mine.buckets.resize(h.buckets.size(), 0);
        for (std::size_t i = 0; i < h.buckets.size(); ++i)
            mine.buckets[i] += h.buckets[i];
        mine.invalid += h.invalid;
        mine.sum += h.sum;
    }
}

Snapshot
Snapshot::delta(const Snapshot &earlier) const
{
    // A metric that shrank between the snapshots (registry reset, a
    // service replaced) reports its current value: sub() clamps.
    auto sub = [](std::uint64_t cur, std::uint64_t prev) {
        return cur >= prev ? cur - prev : cur;
    };
    Snapshot out;
    for (const auto &[name, v] : counters)
        out.setCounter(name, sub(v, earlier.counterValue(name)));
    for (const auto &[name, v] : gauges)
        out.setGauge(name, v);
    for (const auto &[name, h] : histograms) {
        const HistogramData *prev = earlier.histogram(name);
        if (!prev || prev->buckets.size() != h.buckets.size() ||
            prev->lo != h.lo || prev->hi != h.hi) {
            out.setHistogram(name, h);
            continue;
        }
        HistogramData d = h;
        for (std::size_t i = 0; i < d.buckets.size(); ++i)
            d.buckets[i] = sub(d.buckets[i], prev->buckets[i]);
        d.under = sub(d.under, prev->under);
        d.over = sub(d.over, prev->over);
        d.invalid = sub(d.invalid, prev->invalid);
        d.sum = h.sum >= prev->sum ? h.sum - prev->sum : h.sum;
        out.setHistogram(name, std::move(d));
    }
    for (const auto &[name, h] : logHistograms) {
        const LogHistogramData *prev = earlier.logHistogram(name);
        if (!prev || prev->subBits != h.subBits ||
            prev->buckets.size() > h.buckets.size()) {
            out.setLogHistogram(name, h);
            continue;
        }
        LogHistogramData d = h;
        for (std::size_t i = 0; i < prev->buckets.size(); ++i)
            d.buckets[i] = sub(d.buckets[i], prev->buckets[i]);
        d.invalid = sub(d.invalid, prev->invalid);
        d.sum = h.sum >= prev->sum ? h.sum - prev->sum : h.sum;
        out.setLogHistogram(name, std::move(d));
    }
    return out;
}

std::string
Snapshot::renderText(const std::string &prefix) const
{
    std::ostringstream os;
    for (const auto &[name, v] : counters)
        os << prefix << name << " = " << v << "\n";
    for (const auto &[name, v] : gauges)
        os << prefix << name << " = " << formatDouble(v) << "\n";
    for (const auto &[name, h] : histograms) {
        os << prefix << name << " = samples:" << h.samples()
           << " mean:" << formatDouble(h.mean())
           << " under:" << h.under << " over:" << h.over
           << " invalid:" << h.invalid << "\n";
    }
    for (const auto &[name, h] : logHistograms) {
        os << prefix << name << " = samples:" << h.samples()
           << " mean:" << formatDouble(h.mean())
           << " p50:" << formatDouble(h.quantile(0.50))
           << " p90:" << formatDouble(h.quantile(0.90))
           << " p99:" << formatDouble(h.quantile(0.99))
           << " p999:" << formatDouble(h.quantile(0.999))
           << " invalid:" << h.invalid << "\n";
    }
    return os.str();
}

std::string
Snapshot::renderTable(const std::string &title) const
{
    Table t(title);
    t.setHeader({"metric", "kind", "value"});
    for (const auto &[name, v] : counters)
        t.addRow({name, "counter", std::to_string(v)});
    for (const auto &[name, v] : gauges)
        t.addRow({name, "gauge", formatDouble(v)});
    for (const auto &[name, h] : histograms) {
        std::ostringstream cell;
        cell << "n=" << h.samples() << " mean=" << formatDouble(h.mean())
             << " [" << formatDouble(h.lo) << "," << formatDouble(h.hi)
             << ")x" << h.buckets.size() << " under=" << h.under
             << " over=" << h.over << " invalid=" << h.invalid;
        t.addRow({name, "histogram", cell.str()});
    }
    for (const auto &[name, h] : logHistograms) {
        std::ostringstream cell;
        cell << "n=" << h.samples()
             << " p50=" << formatDouble(h.quantile(0.50))
             << " p90=" << formatDouble(h.quantile(0.90))
             << " p99=" << formatDouble(h.quantile(0.99))
             << " p999=" << formatDouble(h.quantile(0.999))
             << " invalid=" << h.invalid;
        t.addRow({name, "loghist", cell.str()});
    }
    return t.toString();
}

std::string
Snapshot::renderPrometheus() const
{
    std::ostringstream os;
    for (const auto &[name, v] : counters) {
        std::string p = promName(name);
        os << "# TYPE " << p << " counter\n" << p << " " << v << "\n";
    }
    for (const auto &[name, v] : gauges) {
        std::string p = promName(name);
        os << "# TYPE " << p << " gauge\n"
           << p << " " << formatDouble(v) << "\n";
    }
    for (const auto &[name, h] : histograms) {
        std::string p = promName(name);
        os << "# TYPE " << p << " histogram\n";
        std::uint64_t cumulative = h.under;
        double width =
            (h.hi - h.lo) / static_cast<double>(h.buckets.size());
        for (std::size_t i = 0; i < h.buckets.size(); ++i) {
            cumulative += h.buckets[i];
            os << p << "_bucket{le=\""
               << formatDouble(h.lo + width * static_cast<double>(i + 1))
               << "\"} " << cumulative << "\n";
        }
        os << p << "_bucket{le=\"+Inf\"} " << h.samples() << "\n";
        os << p << "_sum " << formatDouble(h.sum) << "\n";
        os << p << "_count " << h.samples() << "\n";
        os << "# TYPE " << p << "_edge counter\n";
        os << p << "_edge{kind=\"under\"} " << h.under << "\n";
        os << p << "_edge{kind=\"over\"} " << h.over << "\n";
        os << p << "_edge{kind=\"invalid\"} " << h.invalid << "\n";
    }
    for (const auto &[name, h] : logHistograms) {
        std::string p = promName(name);
        os << "# TYPE " << p << " summary\n";
        for (double q : {0.5, 0.9, 0.99, 0.999}) {
            os << p << "{quantile=\"" << formatDouble(q) << "\"} "
               << formatDouble(h.quantile(q)) << "\n";
        }
        os << p << "_sum " << formatDouble(h.sum) << "\n";
        os << p << "_count " << h.samples() << "\n";
        os << "# TYPE " << p << "_edge counter\n";
        os << p << "_edge{kind=\"invalid\"} " << h.invalid << "\n";
    }
    return os.str();
}

std::string
Snapshot::toJson() const
{
    std::ostringstream os;
    os << "{\"counters\":{";
    for (std::size_t i = 0; i < counters.size(); ++i) {
        if (i)
            os << ",";
        os << jsonQuote(counters[i].first) << ":" << counters[i].second;
    }
    os << "},\"gauges\":{";
    for (std::size_t i = 0; i < gauges.size(); ++i) {
        if (i)
            os << ",";
        os << jsonQuote(gauges[i].first) << ":"
           << formatDouble(gauges[i].second);
    }
    os << "},\"histograms\":{";
    for (std::size_t i = 0; i < histograms.size(); ++i) {
        if (i)
            os << ",";
        const auto &[name, h] = histograms[i];
        os << jsonQuote(name) << ":{\"lo\":" << formatDouble(h.lo)
           << ",\"hi\":" << formatDouble(h.hi) << ",\"buckets\":[";
        for (std::size_t b = 0; b < h.buckets.size(); ++b) {
            if (b)
                os << ",";
            os << h.buckets[b];
        }
        os << "],\"under\":" << h.under << ",\"over\":" << h.over
           << ",\"invalid\":" << h.invalid
           << ",\"sum\":" << formatDouble(h.sum) << "}";
    }
    os << "}";
    // Pre-reqobs snapshots had no log histograms; the key is omitted
    // when empty so their committed JSON keeps round-tripping.
    if (!logHistograms.empty()) {
        os << ",\"loghistograms\":{";
        for (std::size_t i = 0; i < logHistograms.size(); ++i) {
            if (i)
                os << ",";
            const auto &[name, h] = logHistograms[i];
            os << jsonQuote(name) << ":{\"subbits\":" << h.subBits
               << ",\"buckets\":[";
            for (std::size_t b = 0; b < h.buckets.size(); ++b) {
                if (b)
                    os << ",";
                os << h.buckets[b];
            }
            os << "],\"invalid\":" << h.invalid
               << ",\"sum\":" << formatDouble(h.sum) << "}";
        }
        os << "}";
    }
    os << "}";
    return os.str();
}

std::optional<Snapshot>
Snapshot::fromJson(const std::string &text)
{
    auto root = jsonParse(text);
    if (!root || !root->isObject())
        return std::nullopt;

    Snapshot snap;
    if (const JsonValue *cs = root->member("counters")) {
        if (!cs->isObject())
            return std::nullopt;
        for (const auto &[name, v] : cs->objectMembers()) {
            if (!v.isNumber())
                return std::nullopt;
            snap.setCounter(name,
                            static_cast<std::uint64_t>(v.asNumber()));
        }
    }
    if (const JsonValue *gs = root->member("gauges")) {
        if (!gs->isObject())
            return std::nullopt;
        for (const auto &[name, v] : gs->objectMembers()) {
            if (!v.isNumber())
                return std::nullopt;
            snap.setGauge(name, v.asNumber());
        }
    }
    if (const JsonValue *hs = root->member("histograms")) {
        if (!hs->isObject())
            return std::nullopt;
        for (const auto &[name, v] : hs->objectMembers()) {
            if (!v.isObject())
                return std::nullopt;
            const JsonValue *lo = v.member("lo");
            const JsonValue *hi = v.member("hi");
            const JsonValue *buckets = v.member("buckets");
            const JsonValue *under = v.member("under");
            const JsonValue *over = v.member("over");
            const JsonValue *sum = v.member("sum");
            if (!lo || !hi || !buckets || !under || !over || !sum ||
                !lo->isNumber() || !hi->isNumber() ||
                !buckets->isArray() || !under->isNumber() ||
                !over->isNumber() || !sum->isNumber()) {
                return std::nullopt;
            }
            HistogramData h;
            h.lo = lo->asNumber();
            h.hi = hi->asNumber();
            for (const JsonValue &b : buckets->arrayItems()) {
                if (!b.isNumber())
                    return std::nullopt;
                h.buckets.push_back(
                    static_cast<std::uint64_t>(b.asNumber()));
            }
            h.under = static_cast<std::uint64_t>(under->asNumber());
            h.over = static_cast<std::uint64_t>(over->asNumber());
            // Optional: snapshots committed before the invalid cell
            // existed parse as zero.
            if (const JsonValue *invalid = v.member("invalid")) {
                if (!invalid->isNumber())
                    return std::nullopt;
                h.invalid =
                    static_cast<std::uint64_t>(invalid->asNumber());
            }
            h.sum = sum->asNumber();
            snap.setHistogram(name, std::move(h));
        }
    }
    if (const JsonValue *ls = root->member("loghistograms")) {
        if (!ls->isObject())
            return std::nullopt;
        for (const auto &[name, v] : ls->objectMembers()) {
            if (!v.isObject())
                return std::nullopt;
            const JsonValue *subbits = v.member("subbits");
            const JsonValue *buckets = v.member("buckets");
            const JsonValue *invalid = v.member("invalid");
            const JsonValue *sum = v.member("sum");
            if (!subbits || !buckets || !invalid || !sum ||
                !subbits->isNumber() || !buckets->isArray() ||
                !invalid->isNumber() || !sum->isNumber()) {
                return std::nullopt;
            }
            LogHistogramData h;
            h.subBits = static_cast<unsigned>(subbits->asNumber());
            for (const JsonValue &b : buckets->arrayItems()) {
                if (!b.isNumber())
                    return std::nullopt;
                h.buckets.push_back(
                    static_cast<std::uint64_t>(b.asNumber()));
            }
            h.invalid = static_cast<std::uint64_t>(invalid->asNumber());
            h.sum = sum->asNumber();
            snap.setLogHistogram(name, std::move(h));
        }
    }
    return snap;
}

// --------------------------------------------------------------- Registry

Registry::Registry(std::size_t stripe_count)
    : stripes(roundUpPow2(std::max<std::size_t>(stripe_count, 1)))
{
}

Registry &
Registry::global()
{
    // Leaked intentionally: worker threads may still bump counters
    // during static destruction.
    static Registry *g = new Registry(16);
    return *g;
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu);
    for (auto &c : counters)
        if (c->name() == name)
            return *c;
    counters.push_back(std::make_unique<Counter>(name, stripes));
    return *counters.back();
}

const Counter &
Registry::counter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu);
    for (const auto &c : counters)
        if (c->name() == name)
            return *c;
    spm_panic("telemetry: no counter named '", name, "'");
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu);
    for (auto &g : gauges)
        if (g->name() == name)
            return *g;
    gauges.push_back(std::make_unique<Gauge>(name));
    return *gauges.back();
}

Histogram &
Registry::histogram(const std::string &name, double lo, double hi,
                    std::size_t buckets)
{
    std::lock_guard<std::mutex> lock(mu);
    for (auto &h : histograms) {
        if (h->name() == name) {
            spm_assert(h->rangeLo() == lo && h->rangeHi() == hi &&
                           h->bucketCount() == buckets,
                       "telemetry: histogram '", name,
                       "' re-registered with a different shape");
            return *h;
        }
    }
    histograms.push_back(
        std::make_unique<Histogram>(name, lo, hi, buckets, stripes));
    return *histograms.back();
}

const Histogram &
Registry::histogram(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu);
    for (const auto &h : histograms)
        if (h->name() == name)
            return *h;
    spm_panic("telemetry: no histogram named '", name, "'");
}

LogHistogram &
Registry::logHistogram(const std::string &name, unsigned sub_bits)
{
    std::lock_guard<std::mutex> lock(mu);
    for (auto &h : logHists) {
        if (h->name() == name) {
            spm_assert(h->subBits() == sub_bits,
                       "telemetry: log histogram '", name,
                       "' re-registered with a different resolution");
            return *h;
        }
    }
    logHists.push_back(
        std::make_unique<LogHistogram>(name, sub_bits, stripes));
    return *logHists.back();
}

const LogHistogram &
Registry::logHistogram(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu);
    for (const auto &h : logHists)
        if (h->name() == name)
            return *h;
    spm_panic("telemetry: no log histogram named '", name, "'");
}

Snapshot
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu);
    Snapshot snap;
    for (const auto &c : counters)
        snap.setCounter(c->name(), c->value());
    for (const auto &g : gauges)
        snap.setGauge(g->name(), g->value());
    for (const auto &h : histograms) {
        Snapshot::HistogramData data;
        data.lo = h->rangeLo();
        data.hi = h->rangeHi();
        data.buckets.resize(h->bucketCount());
        for (std::size_t i = 0; i < h->bucketCount(); ++i)
            data.buckets[i] = h->bucketValue(i);
        data.under = h->underflows();
        data.over = h->overflows();
        data.invalid = h->invalids();
        data.sum = h->sum();
        snap.setHistogram(h->name(), std::move(data));
    }
    for (const auto &h : logHists) {
        Snapshot::LogHistogramData data;
        data.subBits = h->subBits();
        // Trim the dense tail: latencies cluster low, and the trimmed
        // vector is what merge/JSON carry around.
        std::size_t top = 0;
        for (std::size_t i = 0; i < h->bucketCount(); ++i) {
            std::uint64_t v = h->bucketValue(i);
            if (v) {
                if (data.buckets.size() <= i)
                    data.buckets.resize(i + 1, 0);
                data.buckets[i] = v;
                top = i + 1;
            }
        }
        data.buckets.resize(top);
        data.invalid = h->invalids();
        data.sum = h->sum();
        snap.setLogHistogram(h->name(), std::move(data));
    }
    return snap;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mu);
    for (auto &c : counters)
        c->reset();
    for (auto &g : gauges)
        g->set(0.0);
    for (auto &h : histograms)
        h->reset();
    for (auto &h : logHists)
        h->reset();
}

std::size_t
Registry::metricCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return counters.size() + gauges.size() + histograms.size() +
           logHists.size();
}

} // namespace spm::telem
