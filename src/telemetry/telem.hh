/**
 * @file
 * Hot-path instrumentation macros and the SPM_TELEM_OFF switch.
 *
 * Instrumentation sites in the simulators and the service go through
 * these macros rather than calling the telemetry classes directly, so
 * one compile-time switch removes every per-beat cost:
 *
 *   default build        macros expand to real spans / samples /
 *                        global-registry bumps, individually gated at
 *                        runtime (TraceBuffer enable + category mask,
 *                        telem::samplingEnabled());
 *   -DSPM_TELEM_OFF      macros expand to nothing ("((void)0)"), so
 *                        the instrumented hot loops compile exactly as
 *                        if the telemetry layer did not exist.
 *
 * Only *optional* instrumentation goes through macros. Load-bearing
 * metrics — the counters statsDump() reports and tests assert on —
 * use the registry classes directly and exist in every build; the
 * TELEM_OFF contract is "tracing compiles to nothing", not "the
 * simulator stops counting beats".
 *
 * Span macros create a scope-local RAII object; the name is built
 * with __LINE__ so two spans can share a scope.
 */

#ifndef SPM_TELEMETRY_TELEM_HH
#define SPM_TELEMETRY_TELEM_HH

#include "telemetry/metrics.hh"
#include "telemetry/span.hh"

#define SPM_TELEM_CONCAT2(a, b) a##b
#define SPM_TELEM_CONCAT(a, b) SPM_TELEM_CONCAT2(a, b)

#ifndef SPM_TELEM_OFF

/**
 * Time the enclosing scope as a Chrome 'X' span in the global trace
 * buffer. @p name must be a string literal; @p category a telem::cat
 * bit; @p beat and @p arg are stamped on the event.
 */
#define SPM_TSPAN(name, category, beat, arg)                          \
    ::spm::telem::ScopedSpan SPM_TELEM_CONCAT(spmTelemSpan_,          \
                                              __LINE__)(             \
        ::spm::telem::TraceBuffer::global(), name, category,          \
        beat, arg)

/** Same, but named so the scope can setBeat()/setArg() before exit. */
#define SPM_TSPAN_NAMED(var, name, category, beat, arg)               \
    ::spm::telem::ScopedSpan var(                                     \
        ::spm::telem::TraceBuffer::global(), name, category, beat, arg)

/** Drop a Chrome 'I' instant into the global trace buffer. */
#define SPM_TINSTANT(name, category, beat, arg)                       \
    ::spm::telem::instant(::spm::telem::TraceBuffer::global(), name,  \
                          category, beat, arg)

/** Sample @p value into @p hist if sampling is runtime-enabled. */
#define SPM_THIST(hist, value)                                        \
    do {                                                              \
        if (::spm::telem::samplingEnabled())                          \
            (hist).sample(value);                                     \
    } while (0)

/** Bump a named counter in the global registry (cached lookup). */
#define SPM_TCOUNT_GLOBAL(name, by)                                   \
    do {                                                              \
        static ::spm::telem::Counter &SPM_TELEM_CONCAT(               \
            spmTelemCtr_, __LINE__) =                                 \
            ::spm::telem::Registry::global().counter(name);           \
        SPM_TELEM_CONCAT(spmTelemCtr_, __LINE__).add(by);             \
    } while (0)

/** Sample into a named global-registry histogram (cached lookup). */
#define SPM_THIST_GLOBAL(name, lo, hi, buckets, value)                \
    do {                                                              \
        if (::spm::telem::samplingEnabled()) {                        \
            static ::spm::telem::Histogram &SPM_TELEM_CONCAT(         \
                spmTelemHist_, __LINE__) =                            \
                ::spm::telem::Registry::global().histogram(           \
                    name, lo, hi, buckets);                           \
            SPM_TELEM_CONCAT(spmTelemHist_, __LINE__).sample(value);  \
        }                                                             \
    } while (0)

#else // SPM_TELEM_OFF: every site compiles to nothing.

namespace spm::telem
{
/** Stand-in for a named span so setBeat()/setArg() still compile. */
struct NullSpan
{
    void setBeat(Beat) {}
    void setArg(std::uint64_t) {}
};
} // namespace spm::telem

#define SPM_TSPAN(name, category, beat, arg) ((void)0)
#define SPM_TSPAN_NAMED(var, name, category, beat, arg)               \
    [[maybe_unused]] ::spm::telem::NullSpan var
#define SPM_TINSTANT(name, category, beat, arg) ((void)0)
#define SPM_THIST(hist, value) ((void)0)
#define SPM_TCOUNT_GLOBAL(name, by) ((void)0)
#define SPM_THIST_GLOBAL(name, lo, hi, buckets, value) ((void)0)

#endif // SPM_TELEM_OFF

#endif // SPM_TELEMETRY_TELEM_HH
