/**
 * @file
 * The unified metrics registry.
 *
 * Every simulated component used to carry its own ad-hoc counter
 * struct (Engine's StatGroup, HostBusModel's transfer counters, the
 * service's Stats); this module replaces them with one substrate so
 * throughput, degradation and utilization claims are all measured by
 * the same instrument. Three metric kinds cover everything the
 * reproduction reports:
 *
 *   Counter       monotonically increasing count (beats, chars, chunks);
 *   Gauge         last-written level (queue depth, thread count);
 *   Histogram     fixed-bucket distribution over [lo, hi) with explicit
 *                 under/overflow/invalid cells (per-chunk latency,
 *                 settle effort);
 *   LogHistogram  log-scaled (HDR-style) distribution over the
 *                 non-negative integers with bounded relative error,
 *                 built for SLO latency percentiles: p50/p90/p99/p999
 *                 extraction by exact-count rank over the recorded
 *                 buckets (request latency in beats and wall-ns).
 *
 * Collection is cheap and thread-safe: each metric owns a small power-
 * of-two array of cache-line padded relaxed-atomic cells, and every
 * thread writes the cell its thread-local stripe index selects, so
 * concurrent writers (the sharded service's workers, the gate
 * simulator inside them) never contend on one line. Reading is the
 * periodic aggregation: value() and snapshot() sum the stripes.
 *
 * A Snapshot is the registry frozen at one instant: it can be merged
 * with other snapshots (the sharded service merges its shards),
 * rendered as a human table (src/util/table), as Prometheus-style
 * exposition text, or as a JSON object that Snapshot::fromJson and
 * tools/trace_view read back.
 */

#ifndef SPM_TELEMETRY_METRICS_HH
#define SPM_TELEMETRY_METRICS_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace spm::telem
{

/**
 * Global kill-switch for hot-path distribution sampling (the
 * SPM_THIST macro): per-beat histogram samples are skipped while
 * disabled so the beat-rate cost of telemetry can be measured and
 * turned off at runtime. Counters and gauges are not affected; they
 * are load-bearing statistics, not optional instrumentation.
 */
void setSamplingEnabled(bool enabled);
bool samplingEnabled();

/** One cache line of counter state; padded to avoid false sharing. */
struct alignas(64) StripeCell
{
    std::atomic<std::uint64_t> v{0};
};

/** Stable thread-local stripe index (assigned on first use). */
std::size_t threadStripe();

/** A named monotonically increasing counter with striped cells. */
class Counter
{
  public:
    Counter(std::string metric_name, std::size_t stripes);

    Counter(const Counter &) = delete;
    Counter &operator=(const Counter &) = delete;

    void add(std::uint64_t by = 1)
    {
        cells[threadStripe() & mask].v.fetch_add(
            by, std::memory_order_relaxed);
    }
    void increment(std::uint64_t by = 1) { add(by); }

    /** Aggregate across stripes. */
    std::uint64_t value() const;

    void reset();

    const std::string &name() const { return metricName; }

  private:
    std::string metricName;
    std::size_t mask;
    std::unique_ptr<StripeCell[]> cells;
};

/** A named last-write-wins level. */
class Gauge
{
  public:
    explicit Gauge(std::string metric_name)
        : metricName(std::move(metric_name)) {}

    Gauge(const Gauge &) = delete;
    Gauge &operator=(const Gauge &) = delete;

    void set(double v) { level.store(v, std::memory_order_relaxed); }
    double value() const { return level.load(std::memory_order_relaxed); }

    const std::string &name() const { return metricName; }

  private:
    std::string metricName;
    std::atomic<double> level{0.0};
};

/**
 * A named fixed-bucket histogram over [lo, hi): bucket i counts
 * samples in [lo + i*w, lo + (i+1)*w) with w = (hi-lo)/buckets;
 * samples below lo and at or above hi land in the underflow and
 * overflow cells, and NaN samples land in an explicit invalid cell
 * (they are not part of the distribution and excluded from the sum).
 * Bucket cells are striped like Counter's.
 */
class Histogram
{
  public:
    /**
     * @param metric_name registry name
     * @param lo inclusive lower bound; must be < hi
     * @param hi exclusive upper bound
     * @param buckets bucket count; must be > 0
     * @param stripes concurrency stripes (power of two)
     */
    Histogram(std::string metric_name, double lo, double hi,
              std::size_t buckets, std::size_t stripes);

    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    void sample(double v);

    std::size_t bucketCount() const { return nBuckets; }
    /** Aggregated count of bucket @p i. */
    std::uint64_t bucketValue(std::size_t i) const;
    std::uint64_t underflows() const;
    std::uint64_t overflows() const;
    /** NaN samples (counted, excluded from buckets and sum). */
    std::uint64_t invalids() const;
    /** Total samples including under/overflows; excludes invalids. */
    std::uint64_t samples() const;
    /** Sum of all sampled values (mean = sum / samples). */
    double sum() const;

    double rangeLo() const { return lo; }
    double rangeHi() const { return hi; }

    void reset();

    const std::string &name() const { return metricName; }

  private:
    /** Cell layout per stripe: buckets, then under, over, invalid. */
    std::size_t cellIndex(std::size_t stripe, std::size_t slot) const
    {
        return stripe * (nBuckets + 3) + slot;
    }
    std::uint64_t slotTotal(std::size_t slot) const;

    std::string metricName;
    double lo;
    double hi;
    std::size_t nBuckets;
    std::size_t stripes;
    std::unique_ptr<std::atomic<std::uint64_t>[]> cells;
    std::unique_ptr<StripeCell[]> sumCells; ///< sum in milli-units
};

/**
 * A named log-scaled histogram over the non-negative integers
 * (HDR-histogram bucketing): values below 2^(subBits+1) get one exact
 * bucket each, and every further power-of-two range is split into
 * 2^subBits sub-buckets, so the relative quantization error is
 * bounded by 2^-subBits everywhere. The whole uint64 range is covered
 * by (65 - subBits) * 2^subBits dense buckets -- a few KB -- which is
 * what makes p999 extraction from a latency stream cheap enough to
 * record per request. Samples are rounded to the nearest integer;
 * NaN and negative values land in an explicit invalid cell.
 *
 * Quantiles are exact-count ranks over the recorded buckets: the
 * value returned for quantile(q) is the representative of the bucket
 * holding the ceil(q*n)-th smallest sample, exact in the low range
 * and within the relative-error bound above it.
 */
class LogHistogram
{
  public:
    /**
     * @param metric_name registry name
     * @param sub_bits sub-bucket resolution (0..6); relative error
     *        bound is 2^-sub_bits
     * @param stripes concurrency stripes (power of two)
     */
    LogHistogram(std::string metric_name, unsigned sub_bits,
                 std::size_t stripes);

    LogHistogram(const LogHistogram &) = delete;
    LogHistogram &operator=(const LogHistogram &) = delete;

    void sample(double v);

    unsigned subBits() const { return subBitsN; }
    std::size_t bucketCount() const { return nBuckets; }
    std::uint64_t bucketValue(std::size_t i) const;
    std::uint64_t invalids() const;
    /** Valid samples (invalids excluded). */
    std::uint64_t samples() const;
    /** Sum of valid samples, rounded to integers at sample time. */
    double sum() const;
    /** Exact-count rank quantile; 0 when empty. */
    double quantile(double q) const;

    void reset();

    const std::string &name() const { return metricName; }

    /** Dense index of the bucket holding integer value @p u. */
    static std::size_t bucketIndex(std::uint64_t u, unsigned sub_bits);
    /** Smallest integer value mapping to bucket @p index. */
    static std::uint64_t bucketFloor(std::size_t index, unsigned sub_bits);
    /** Dense bucket count for a resolution. */
    static std::size_t bucketCountFor(unsigned sub_bits);

  private:
    /** Cell layout per stripe: buckets, then invalid. */
    std::size_t cellIndex(std::size_t stripe, std::size_t slot) const
    {
        return stripe * (nBuckets + 1) + slot;
    }

    std::string metricName;
    unsigned subBitsN;
    std::size_t nBuckets;
    std::size_t stripes;
    std::unique_ptr<std::atomic<std::uint64_t>[]> cells;
    std::unique_ptr<StripeCell[]> sumCells; ///< sum in whole units
};

/** A registry frozen at one instant; plain data, merge- and render-able. */
struct Snapshot
{
    struct HistogramData
    {
        double lo = 0;
        double hi = 0;
        std::vector<std::uint64_t> buckets;
        std::uint64_t under = 0;
        std::uint64_t over = 0;
        std::uint64_t invalid = 0;
        double sum = 0;

        /** Under + buckets + over; invalids excluded. */
        std::uint64_t samples() const;
        double mean() const;
    };

    struct LogHistogramData
    {
        unsigned subBits = 3;
        /** Dense low-index prefix; trailing zero buckets trimmed. */
        std::vector<std::uint64_t> buckets;
        std::uint64_t invalid = 0;
        double sum = 0;

        std::uint64_t samples() const;
        double mean() const;
        /** Exact-count rank quantile; 0 when empty. */
        double quantile(double q) const;
    };

    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, HistogramData>> histograms;
    std::vector<std::pair<std::string, LogHistogramData>> logHistograms;

    /** Insert-or-overwrite helpers (keep entries sorted by name). */
    void setCounter(const std::string &name, std::uint64_t v);
    void setGauge(const std::string &name, double v);
    void setHistogram(const std::string &name, HistogramData h);
    void setLogHistogram(const std::string &name, LogHistogramData h);

    /** Look up a counter; 0 when absent. */
    std::uint64_t counterValue(const std::string &name) const;
    /** Look up a gauge; nullopt when absent. */
    std::optional<double> gaugeValue(const std::string &name) const;
    /** Look up a histogram; nullptr when absent. */
    const HistogramData *histogram(const std::string &name) const;
    /** Look up a log histogram; nullptr when absent. */
    const LogHistogramData *logHistogram(const std::string &name) const;

    /**
     * Merge @p other in: counters and histogram cells add (histogram
     * shapes must agree or the merge panics), gauges take the other
     * side's value when this side lacks the entry and add otherwise
     * (the sharded service sums queue depths across shards).
     */
    void merge(const Snapshot &other);

    /**
     * The change since @p earlier: counters and histogram cells
     * subtract (clamped at zero; a reset between the two snapshots
     * yields the current values rather than garbage), gauges keep
     * this side's level, and metrics absent from @p earlier pass
     * through whole. This is what a live dashboard polls: delta over
     * the refresh interval gives rolling rates and *interval*
     * percentiles instead of since-boot ones.
     */
    Snapshot delta(const Snapshot &earlier) const;

    /**
     * "name = value" stat lines, sorted; histograms summarized. A
     * component prefix ("engine.") reproduces the legacy statsDump
     * format from a registry holding bare metric names.
     */
    std::string renderText(const std::string &prefix = "") const;

    /** Human table via util/table. */
    std::string renderTable(const std::string &title = "telemetry") const;

    /** Prometheus-style exposition text (names sanitized, spm_ prefix). */
    std::string renderPrometheus() const;

    /** One JSON object, keys sorted, stable across runs. */
    std::string toJson() const;

    /** Parse toJson() output; nullopt on malformed input. */
    static std::optional<Snapshot> fromJson(const std::string &text);
};

/**
 * A registry of named metrics. Components own one (the engine, each
 * service shard) or share the process-wide Registry::global();
 * get-or-create accessors return stable references that stay valid
 * for the registry's lifetime.
 */
class Registry
{
  public:
    /** @param stripe_count concurrency stripes, rounded up to 2^n. */
    explicit Registry(std::size_t stripe_count = 1);

    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** The process-wide registry (striped for concurrent writers). */
    static Registry &global();

    /** Get or create a counter. */
    Counter &counter(const std::string &name);
    /** Look up an existing counter; panics when missing. */
    const Counter &counter(const std::string &name) const;

    /** Get or create a gauge. */
    Gauge &gauge(const std::string &name);

    /**
     * Get or create a histogram. Getting an existing name with a
     * different shape panics: one name, one bucketing.
     */
    Histogram &histogram(const std::string &name, double lo, double hi,
                         std::size_t buckets);
    /** Look up an existing histogram; panics when missing. */
    const Histogram &histogram(const std::string &name) const;

    /**
     * Get or create a log-scaled histogram. Getting an existing name
     * with a different resolution panics: one name, one bucketing.
     */
    LogHistogram &logHistogram(const std::string &name,
                               unsigned sub_bits = 3);
    /** Look up an existing log histogram; panics when missing. */
    const LogHistogram &logHistogram(const std::string &name) const;

    /** Aggregate everything registered into a Snapshot. */
    Snapshot snapshot() const;

    /** Shorthand: snapshot().renderText(). */
    std::string renderText() const { return snapshot().renderText(); }

    /** Zero every registered metric (new measurement interval). */
    void reset();

    std::size_t metricCount() const;

  private:
    std::size_t stripes;
    mutable std::mutex mu;
    std::vector<std::unique_ptr<Counter>> counters;
    std::vector<std::unique_ptr<Gauge>> gauges;
    std::vector<std::unique_ptr<Histogram>> histograms;
    std::vector<std::unique_ptr<LogHistogram>> logHists;
};

} // namespace spm::telem

#endif // SPM_TELEMETRY_METRICS_HH
