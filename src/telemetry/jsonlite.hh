/**
 * @file
 * A minimal strict JSON reader for telemetry artifacts.
 *
 * The telemetry layer round-trips two small document shapes: registry
 * snapshots (Snapshot::toJson) and Chrome trace-event arrays
 * (TraceBuffer::exportChromeJson). This parser covers full JSON —
 * objects, arrays, strings with escapes, numbers, booleans, null —
 * and rejects trailing garbage, which is all the snapshot loader,
 * trace schema check, and tools/trace_view need. It is deliberately
 * not a serializer framework; writers emit their JSON directly.
 */

#ifndef SPM_TELEMETRY_JSONLITE_HH
#define SPM_TELEMETRY_JSONLITE_HH

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace spm::telem
{

/** One parsed JSON value; a tagged tree. */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Boolean,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind() const { return k; }
    bool isNull() const { return k == Kind::Null; }
    bool isBool() const { return k == Kind::Boolean; }
    bool isNumber() const { return k == Kind::Number; }
    bool isString() const { return k == Kind::String; }
    bool isArray() const { return k == Kind::Array; }
    bool isObject() const { return k == Kind::Object; }

    bool asBool() const { return boolean; }
    double asNumber() const { return number; }
    const std::string &asString() const { return text; }

    const std::vector<JsonValue> &arrayItems() const { return items; }

    /** Object members in document order (duplicate keys keep the last). */
    const std::vector<std::pair<std::string, JsonValue>> &
    objectMembers() const
    {
        return members;
    }

    /** Look up an object member; nullptr when absent or not an object. */
    const JsonValue *member(const std::string &name) const;

    Kind k = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string text;
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> members;
};

/**
 * Parse a complete JSON document. Returns nullopt on any syntax
 * error, including trailing non-whitespace after the root value.
 */
std::optional<JsonValue> jsonParse(const std::string &text);

/** Quote and escape a string for direct JSON emission. */
std::string jsonQuote(const std::string &s);

} // namespace spm::telem

#endif // SPM_TELEMETRY_JSONLITE_HH
