/**
 * @file
 * The bit-serial pipelined chip (Section 3.2.1, Figure 3-4).
 *
 * "Rather than using one large circuit to compare whole characters, we
 * can divide each comparator into modules that can compare single
 * bits... By staggering the bits so the high order bits enter the
 * array before the low order ones, we can make a pipeline comparator.
 * Each single bit comparator shifts its result down to meet the bits
 * coming into the next lower comparator. The active and idle
 * comparators alternate vertically as well as horizontally, so that on
 * each beat the active comparators form a checkerboard pattern."
 *
 * This is the organization actually fabricated (8 cells of 2-bit
 * characters); the gate-level chip in gatechip.hh mirrors it
 * transistor for transistor.
 */

#ifndef SPM_CORE_BITSERIAL_HH
#define SPM_CORE_BITSERIAL_HH

#include <vector>

#include "core/behavioral.hh"
#include "core/cells.hh"
#include "core/matcher.hh"
#include "systolic/engine.hh"
#include "systolic/trace.hh"

namespace spm::core
{

/**
 * A grid of single-bit comparators (bits rows by cells columns) over
 * one row of accumulators. Bit b-1 (most significant) enters row 0;
 * row r runs one beat behind row r-1; comparison results trickle down
 * one row per beat, arriving at the accumulators with the control
 * stream.
 */
class BitSerialChip
{
  public:
    /**
     * @param num_cells character cells (columns)
     * @param bits_per_char bits per character; the 1979 prototype had
     *        8 cells of 2-bit characters
     */
    BitSerialChip(std::size_t num_cells, BitWidth bits_per_char,
                  Picoseconds beat_period_ps = prototypeBeatPs);

    std::size_t cellCount() const { return numCells; }
    BitWidth bits() const { return numBits; }

    /** Force the pattern bit entering comparator row @p row. */
    void feedPatternBit(unsigned row, const BitToken &tok);

    /** Force the string bit entering comparator row @p row. */
    void feedStringBit(unsigned row, const BitToken &tok);

    /** Force the control token entering the accumulator row. */
    void feedControl(const CtlToken &tok) { ctlIn.force(tok); }

    /** Force the result slot entering the accumulator row. */
    void feedResult(const ResToken &tok) { rIn.force(tok); }

    void step() { eng.step(); }

    /** Committed result token at the left edge of the accumulators. */
    ResToken resultOut() const;

    /** Committed pattern bit leaving row @p row on the right. */
    BitToken patternBitOut(unsigned row) const;

    /** Committed string bit leaving row @p row on the left. */
    BitToken stringBitOut(unsigned row) const;

    systolic::Engine &engine() { return eng; }
    const systolic::Engine &engine() const { return eng; }

    /** Engine cell index of comparator (row, col); fault addressing. */
    std::size_t comparatorIndex(unsigned row, std::size_t col) const
    {
        return static_cast<std::size_t>(row) * numCells + col;
    }

    /** Engine cell index of accumulator @p col; fault addressing. */
    std::size_t accumulatorIndex(std::size_t col) const
    {
        return static_cast<std::size_t>(numBits) * numCells + col;
    }

    void attachTrace(systolic::TraceRecorder *rec)
    {
        eng.attachTrace(rec);
    }

  private:
    std::size_t numCells;
    BitWidth numBits;
    systolic::Engine eng;
    std::vector<systolic::Latch<BitToken>> pBitIn;
    std::vector<systolic::Latch<BitToken>> sBitIn;
    systolic::Latch<CtlToken> ctlIn;
    systolic::Latch<ResToken> rIn;
    systolic::Latch<DToken> dTop;
    /** comparators[row][col] */
    std::vector<std::vector<BitComparatorCell *>> comparators;
    std::vector<AccumulatorCell *> accumulators;
};

/**
 * Matcher over the bit-serial chip. Characters are decomposed into
 * staggered bit streams on feed and results collected from the
 * accumulator row, using the same ChipFeedPlan schedule shifted by
 * the row index.
 */
class BitSerialMatcher : public Matcher
{
  public:
    /**
     * @param num_cells cells per chip; 0 sizes to the pattern
     * @param bits_per_char bits per character; 0 derives the minimum
     *        width from the workload
     */
    explicit BitSerialMatcher(std::size_t num_cells = 0,
                              BitWidth bits_per_char = 0)
        : cells(num_cells), bitsPerChar(bits_per_char)
    {
    }

    std::vector<bool> match(const std::vector<Symbol> &text,
                            const std::vector<Symbol> &pattern) override;

    std::string name() const override { return "systolic-bitserial"; }

    Beat lastBeats() const { return beatsUsed; }

    /**
     * Install a hook run on each freshly built chip before the match
     * starts -- the seam fault campaigns use to attach an injector to
     * the chip's engine.
     */
    void setChipPrep(std::function<void(BitSerialChip &)> prep)
    {
        chipPrep = std::move(prep);
    }

  private:
    std::size_t cells;
    BitWidth bitsPerChar;
    Beat beatsUsed = 0;
    std::function<void(BitSerialChip &)> chipPrep;
};

} // namespace spm::core

#endif // SPM_CORE_BITSERIAL_HH
