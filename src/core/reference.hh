/**
 * @file
 * The executable specification of the matching problem.
 *
 * ReferenceMatcher evaluates the Section 3.1 definition of r_i
 * directly, with no cleverness; every other implementation is tested
 * against it. It also provides the reference definitions for the
 * Section 3.4 extensions (match counting and correlation).
 */

#ifndef SPM_CORE_REFERENCE_HH
#define SPM_CORE_REFERENCE_HH

#include <cstdint>
#include <vector>

#include "core/matcher.hh"

namespace spm::core
{

/** True when pattern character @p p matches text character @p s. */
inline bool
symbolMatches(Symbol p, Symbol s)
{
    return p == wildcardSymbol || p == s;
}

/** Direct O(n k) evaluation of the r_i definition. */
class ReferenceMatcher : public Matcher
{
  public:
    std::vector<bool> match(const std::vector<Symbol> &text,
                            const std::vector<Symbol> &pattern) override;

    std::string name() const override { return "reference"; }
};

/**
 * Reference for the Section 3.4 counting extension: c_i is the number
 * of positions j where s_{i-k+j} matches p_j (wild cards count as
 * matches). c_i is 0 for i < k.
 */
std::vector<unsigned> referenceMatchCounts(
    const std::vector<Symbol> &text, const std::vector<Symbol> &pattern);

/**
 * Reference for the Section 3.4 correlation extension:
 *
 *     r_i = (s_{i-k} - p_0)^2 + ... + (s_i - p_k)^2
 *
 * over integer streams; r_i is 0 for i < k.
 */
std::vector<std::int64_t> referenceCorrelation(
    const std::vector<std::int64_t> &text,
    const std::vector<std::int64_t> &pattern);

} // namespace spm::core

#endif // SPM_CORE_REFERENCE_HH
