/**
 * @file
 * The common pattern matcher interface.
 *
 * The string pattern matching problem (Section 3.1): given an input
 * text stream s_0 s_1 s_2 ... over alphabet Sigma and a pattern
 * p_0 p_1 ... p_k over Sigma plus the wild card x, produce a stream of
 * bits where
 *
 *     r_i = (s_{i-k} = p_0) AND (s_{i+1-k} = p_1) AND ... AND
 *           (s_i = p_k)
 *
 * and the wild card matches any character. Every implementation in
 * this repository -- the systolic chip at three fidelity levels, the
 * cascade, and all baseline algorithms -- implements this interface so
 * the experiments can compare them uniformly.
 */

#ifndef SPM_CORE_MATCHER_HH
#define SPM_CORE_MATCHER_HH

#include <string>
#include <vector>

#include "util/types.hh"

namespace spm::core
{

/** Abstract matcher over the Section 3.1 problem. */
class Matcher
{
  public:
    virtual ~Matcher() = default;

    /**
     * Compute the result bit stream.
     *
     * @param text the text string s_0 ... s_{n-1}
     * @param pattern the pattern p_0 ... p_k; wildcardSymbol entries
     *        match any character
     * @return r of size n; r[i] is the Section 3.1 result bit. Bits
     *         for i < k (incomplete substrings) are always false.
     */
    virtual std::vector<bool> match(const std::vector<Symbol> &text,
                                    const std::vector<Symbol> &pattern) = 0;

    /** Implementation name for reports. */
    virtual std::string name() const = 0;

    /**
     * Whether the implementation supports wild cards in the pattern.
     * The fast sequential comparison-skipping algorithms do not
     * (Section 3.1: "When wild card characters exist in the pattern
     * these methods break down").
     */
    virtual bool supportsWildcards() const { return true; }
};

} // namespace spm::core

#endif // SPM_CORE_MATCHER_HH
