/**
 * @file
 * The SIMD-widened bit-sliced matcher kernel.
 *
 * src/core/wordpar realizes the paper's one-result-bit-per-character
 * claim at 64 positions per machine word; this kernel widens the same
 * bit-sliced recurrences to 128-bit (SSE2) and 256-bit (AVX2)
 * registers, in the spirit of the packed short-pattern matchers of
 * Faro & Kulekci ("Fast Packed String Matching for Short Patterns").
 * Three things separate it from the word-parallel kernel:
 *
 *   transpose   for alphabets of at most 8 bits the text is narrowed
 *               to bytes and transposed with compare + movemask, 32
 *               characters per instruction, instead of one character
 *               per loop iteration;
 *   recurrence  patterns with k <= 64 (one result word of history)
 *               take a fused single-pass recurrence: every plane word
 *               is read once and all pattern-position factors are
 *               combined in registers, instead of one sweep over the
 *               result stream per pattern position. Longer patterns
 *               use SIMD sweeps over the equality masks;
 *   arena       all scratch (byte text, planes, equality masks, the
 *               packed result) lives in a reusable member arena, so
 *               steady-state match() calls allocate nothing.
 *
 * Instruction sets are selected at runtime (AVX2 when the CPU has it,
 * else SSE2 on x86-64, else portable uint64), and every variant is
 * bit-identical to core::ReferenceMatcher -- the conformance registry
 * carries the best-ISA kernel and the forced-down variants as
 * separate oracles. The SPM_SIMD_ISA environment variable ("scalar",
 * "sse2", "avx2") caps the auto-detected choice for A/B runs.
 */

#ifndef SPM_CORE_SIMDPAR_HH
#define SPM_CORE_SIMDPAR_HH

#include <cstdint>
#include <vector>

#include "core/matcher.hh"

namespace spm::core
{

/** Instruction-set tier the kernel dispatch can select. */
enum class SimdIsa : unsigned char
{
    Scalar, ///< portable uint64 ops (the wordpar organization)
    Sse2,   ///< 128-bit planes
    Avx2,   ///< 256-bit planes
};

/** Printable name ("scalar", "sse2", "avx2"). */
const char *simdIsaName(SimdIsa isa);

/**
 * The best tier this process may use: CPU detection capped by the
 * SPM_SIMD_ISA environment variable. Computed once, then cached.
 */
SimdIsa bestSimdIsa();

/** Whether @p isa is executable on this CPU. */
bool simdIsaSupported(SimdIsa isa);

/**
 * SIMD evaluation of the Section 3.1 problem.
 *
 * Stateless between calls apart from the scratch arena, so one
 * instance serves requests of any shape -- but, exactly like
 * WordParallelMatcher, not from two threads concurrently; the sharded
 * service and the batch front end give each worker its own instance.
 */
class SimdParallelMatcher : public Matcher
{
  public:
    /** Dispatch on the best supported tier. */
    SimdParallelMatcher();

    /**
     * Force a tier (capped at what the CPU supports); used by the
     * conformance oracles and the A/B benches. A forced instance
     * reports the tier in name() so differential reports distinguish
     * the variants.
     */
    explicit SimdParallelMatcher(SimdIsa forced);

    std::vector<bool> match(const std::vector<Symbol> &text,
                            const std::vector<Symbol> &pattern) override;

    std::string name() const override;

    /**
     * The kernel proper: the packed result stream, 64 text positions
     * per word, word w bit i corresponding to text position 64 w + i;
     * same contract as WordParallelMatcher::matchPacked. The returned
     * reference points into the arena and is valid until the next
     * call on this instance.
     */
    const std::vector<std::uint64_t> &matchPacked(
        const std::vector<Symbol> &text,
        const std::vector<Symbol> &pattern);

    /** Tier this instance dispatches to. */
    SimdIsa isa() const { return tier; }

    /** 64-bit-word-equivalent operations in the last matchPacked(). */
    std::uint64_t lastWordOps() const { return wordOps; }

    /** Bit planes built by the last matchPacked(). */
    unsigned lastPlanes() const { return planesBuilt; }

    /** Whether the last call took the fused short-pattern path. */
    bool lastShortPath() const { return usedShortPath; }

    /** High-water scratch footprint in bytes (proves arena reuse). */
    std::size_t arenaBytes() const;

  private:
    SimdIsa tier;
    bool forcedTier = false;

    // --- the scratch arena (reused across calls) ---------------------
    std::vector<std::uint8_t> byteText;    ///< narrowed text, padded
    std::vector<std::uint64_t> planeArena; ///< planesBuilt x nw, flat
    std::vector<std::uint64_t> eqArena;    ///< equality masks, flat
    std::vector<std::pair<Symbol, std::size_t>> eqIndex;
    std::vector<std::uint64_t> result;  ///< packed result words

    std::uint64_t wordOps = 0;
    unsigned planesBuilt = 0;
    bool usedShortPath = false;
};

/**
 * Expand a packed result stream (64 positions per word) into the
 * Matcher-interface bit vector. Sparse-aware: words are scanned with
 * count-trailing-zeros, so the cost is O(words + matches), not O(n).
 */
std::vector<bool> unpackResultBits(const std::vector<std::uint64_t> &packed,
                                   std::size_t n);

} // namespace spm::core

#endif // SPM_CORE_SIMDPAR_HH
