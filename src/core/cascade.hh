/**
 * @file
 * Multi-chip cascades (Section 3.4, Figure 3-7).
 *
 * "In order to make the chip extensible, more inputs and outputs must
 * be provided... Several pattern matching chips can then be cascaded
 * ... The inputs to each chip are taken from the outputs of its
 * neighbors, so that the cells on all of the chips form a single
 * linear array. The pattern is fed to the inputs of the leftmost chip,
 * and the text string is input to the rightmost chip. The result
 * output is taken from the leftmost chip. A cascade of k chips with n
 * cells each can match patterns of up to kn characters."
 *
 * ChipCascade wires independent BehavioralChip instances together pin
 * to pin, transferring each chip's committed edge outputs into its
 * neighbor's input latches every beat -- exactly the board-level
 * wiring of Figure 3-7.
 */

#ifndef SPM_CORE_CASCADE_HH
#define SPM_CORE_CASCADE_HH

#include <memory>
#include <vector>

#include "core/behavioral.hh"
#include "core/matcher.hh"

namespace spm::core
{

/** A row of cascaded chips acting as one long array. */
class ChipCascade
{
  public:
    /**
     * @param num_chips chips in the cascade (left to right)
     * @param cells_per_chip character cells on each chip
     */
    ChipCascade(std::size_t num_chips, std::size_t cells_per_chip,
                Picoseconds beat_period_ps = prototypeBeatPs);

    std::size_t chipCount() const { return chips.size(); }
    std::size_t cellsPerChip() const { return cellsEach; }
    std::size_t totalCells() const { return chips.size() * cellsEach; }

    /** @{ Host pins (Figure 3-7 board edges). */
    void feedPattern(const PatToken &tok);   ///< leftmost chip
    void feedControl(const CtlToken &tok);   ///< leftmost chip
    void feedString(const StrToken &tok);    ///< rightmost chip
    void feedResult(const ResToken &tok);    ///< rightmost chip
    ResToken resultOut() const;              ///< leftmost chip
    /** @} */

    /**
     * Advance one beat: propagate committed boundary outputs into
     * neighbor inputs, then step every chip.
     */
    void step();

    /** Access an individual chip (for stats). */
    BehavioralChip &chip(std::size_t idx);

    /**
     * Signal pins required per chip for cascading, given the
     * character width: pattern in/out, string in/out, control pair
     * in/out, result in/out, plus clock, power and ground
     * (Section 3.4's "more inputs and outputs must be provided").
     */
    static unsigned pinsPerChip(BitWidth char_bits);

  private:
    std::size_t cellsEach;
    std::vector<std::unique_ptr<BehavioralChip>> chips;
};

/** Matcher over a cascade of chips. */
class CascadeMatcher : public Matcher
{
  public:
    CascadeMatcher(std::size_t num_chips, std::size_t cells_per_chip)
        : numChips(num_chips), cellsPerChip(cells_per_chip)
    {
    }

    std::vector<bool> match(const std::vector<Symbol> &text,
                            const std::vector<Symbol> &pattern) override;

    std::string name() const override { return "systolic-cascade"; }

    Beat lastBeats() const { return beatsUsed; }

  private:
    std::size_t numChips;
    std::size_t cellsPerChip;
    Beat beatsUsed = 0;
};

} // namespace spm::core

#endif // SPM_CORE_CASCADE_HH
