#include "core/bitserial.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/strings.hh"

namespace spm::core
{

BitSerialChip::BitSerialChip(std::size_t num_cells, BitWidth bits_per_char,
                             Picoseconds beat_period_ps)
    : numCells(num_cells), numBits(bits_per_char), eng(beat_period_ps),
      pBitIn(bits_per_char), sBitIn(bits_per_char)
{
    spm_assert(num_cells > 0, "chip needs at least one cell");
    spm_assert(bits_per_char >= 1 && bits_per_char <= 16,
               "bits per character must be in [1,16]");

    // The constant TRUE entering the top of every d chain.
    dTop.force(DToken{true, true});

    comparators.resize(numBits);
    for (unsigned row = 0; row < numBits; ++row) {
        comparators[row].reserve(numCells);
        for (std::size_t c = 0; c < numCells; ++c) {
            comparators[row].push_back(&eng.makeCell<BitComparatorCell>(
                "b" + std::to_string(row) + "c" + std::to_string(c),
                static_cast<unsigned>((row + c) % 2)));
        }
    }
    accumulators.reserve(numCells);
    for (std::size_t c = 0; c < numCells; ++c) {
        accumulators.push_back(&eng.makeCell<AccumulatorCell>(
            "acc" + std::to_string(c),
            static_cast<unsigned>((numBits + c) % 2)));
    }

    for (unsigned row = 0; row < numBits; ++row) {
        for (std::size_t c = 0; c < numCells; ++c) {
            const systolic::Latch<BitToken> *p_src =
                c == 0 ? &pBitIn[row] : &comparators[row][c - 1]->pOut();
            const systolic::Latch<BitToken> *s_src =
                c == numCells - 1 ? &sBitIn[row]
                                  : &comparators[row][c + 1]->sOut();
            const systolic::Latch<DToken> *d_src =
                row == 0 ? &dTop : &comparators[row - 1][c]->dOut();
            comparators[row][c]->connect(p_src, s_src, d_src);
        }
    }
    for (std::size_t c = 0; c < numCells; ++c) {
        const systolic::Latch<CtlToken> *ctl_src =
            c == 0 ? &ctlIn : &accumulators[c - 1]->ctlOut();
        const systolic::Latch<ResToken> *r_src =
            c == numCells - 1 ? &rIn : &accumulators[c + 1]->rOut();
        accumulators[c]->connect(ctl_src, r_src,
                                 &comparators[numBits - 1][c]->dOut());
    }
}

void
BitSerialChip::feedPatternBit(unsigned row, const BitToken &tok)
{
    spm_assert(row < numBits, "row out of range");
    pBitIn[row].force(tok);
}

void
BitSerialChip::feedStringBit(unsigned row, const BitToken &tok)
{
    spm_assert(row < numBits, "row out of range");
    sBitIn[row].force(tok);
}

ResToken
BitSerialChip::resultOut() const
{
    return accumulators.front()->rOut().read();
}

BitToken
BitSerialChip::patternBitOut(unsigned row) const
{
    spm_assert(row < numBits, "row out of range");
    return comparators[row].back()->pOut().read();
}

BitToken
BitSerialChip::stringBitOut(unsigned row) const
{
    spm_assert(row < numBits, "row out of range");
    return comparators[row].front()->sOut().read();
}

std::vector<bool>
BitSerialMatcher::match(const std::vector<Symbol> &text,
                        const std::vector<Symbol> &pattern)
{
    const std::size_t n = text.size();
    const std::size_t len = pattern.size();
    std::vector<bool> result(n, false);
    if (len == 0 || n == 0 || len > n) {
        beatsUsed = 0;
        return result;
    }

    const std::size_t m = cells == 0 ? len : cells;
    BitWidth bits = bitsPerChar;
    if (bits == 0) {
        bits = std::max(requiredBits(text), requiredBits(pattern));
    }

    BitSerialChip chip(m, bits);
    if (chipPrep)
        chipPrep(chip);
    const ChipFeedPlan plan(m, pattern, n);
    const Beat total = plan.totalBeats() + bits + 2;

    // Extract bit (bits-1-row) of a token's character: the most
    // significant bit enters the top row first (Section 3.2.1).
    auto pat_bit = [&](Beat beat, unsigned row) {
        if (beat < row)
            return BitToken{};
        const PatToken tok = plan.patternAt(beat - row);
        if (!tok.valid)
            return BitToken{};
        const unsigned bit_idx = bits - 1 - row;
        return BitToken{((tok.sym >> bit_idx) & 1) != 0, true};
    };
    auto str_bit = [&](Beat beat, unsigned row) {
        if (beat < row)
            return BitToken{};
        const StrToken tok = plan.stringAt(beat - row, text);
        if (!tok.valid)
            return BitToken{};
        const unsigned bit_idx = bits - 1 - row;
        return BitToken{((tok.sym >> bit_idx) & 1) != 0, true};
    };

    std::size_t collected = 0;
    Beat beat = 0;
    for (; beat < total && collected < n; ++beat) {
        for (unsigned row = 0; row < bits; ++row) {
            chip.feedPatternBit(row, pat_bit(beat, row));
            chip.feedStringBit(row, str_bit(beat, row));
        }
        // The control and result streams enter the accumulator row
        // bits-1 beats later than the plan's single-row schedule (the
        // d result takes `bits` beats to trickle down instead of 1).
        const Beat shift = bits - 1;
        chip.feedControl(beat >= shift ? plan.controlAt(beat - shift)
                                       : CtlToken{});
        chip.feedResult(beat >= shift ? plan.resultAt(beat - shift)
                                      : ResToken{});
        chip.step();

        const ResToken out = chip.resultOut();
        if (out.valid) {
            result[collected] = collected >= len - 1 && out.value;
            ++collected;
        }
    }
    spm_assert(collected == n, "collected ", collected, " of ", n,
               " results after ", beat, " beats");
    beatsUsed = beat;
    return result;
}

} // namespace spm::core
