/**
 * @file
 * Long patterns on a small machine: the multipass driver.
 *
 * "If the pattern to be matched is longer than the capacity of the
 * available pattern matching system, the pattern can be run through
 * the system several times to match it against the entire string. If
 * the system contains a total of n character cells, each run will
 * match the complete pattern against n substrings. To cover all
 * substrings, all we need do is delay the string by n characters on
 * succeeding runs" (Section 3.4).
 *
 * With no recirculation, each cell accumulates exactly one substring
 * per run (the whole pattern streams past it once); a system of n
 * cells therefore resolves n substring positions per run.
 */

#ifndef SPM_CORE_MULTIPASS_HH
#define SPM_CORE_MULTIPASS_HH

#include "core/matcher.hh"

namespace spm::core
{

/**
 * Matcher that covers patterns longer than the array by making
 * multiple runs, delaying the string by the cell count between runs.
 */
class MultipassMatcher : public Matcher
{
  public:
    /** @param num_cells character cells in the available system. */
    explicit MultipassMatcher(std::size_t num_cells)
        : cells(num_cells)
    {
    }

    std::vector<bool> match(const std::vector<Symbol> &text,
                            const std::vector<Symbol> &pattern) override;

    std::string name() const override { return "systolic-multipass"; }

    /** Runs made by the last match() call. */
    std::size_t lastRuns() const { return runsUsed; }

    /** Total beats across all runs of the last match() call. */
    Beat lastBeats() const { return beatsUsed; }

  private:
    std::size_t cells;
    std::size_t runsUsed = 0;
    Beat beatsUsed = 0;
};

} // namespace spm::core

#endif // SPM_CORE_MULTIPASS_HH
