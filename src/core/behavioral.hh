/**
 * @file
 * The character-level behavioral chip (Figure 3-3).
 *
 * A linear array of comparator cells on top and accumulator cells on
 * the bottom. The pattern (and its lambda/x control bits) flows left
 * to right, the text string (and the result stream) right to left;
 * every character moves one cell per beat, valid characters occupy
 * alternate cells, and the pattern recirculates with period k+1.
 *
 * BehavioralChip exposes the four stream inputs and four stream
 * outputs of the extensible chip (Section 3.4, Figure 3-7), so chips
 * can be cascaded pin to pin. ChipFeedPlan computes the beat schedule
 * on which the host must drive those pins; BehavioralMatcher wraps a
 * single chip into the Matcher interface.
 */

#ifndef SPM_CORE_BEHAVIORAL_HH
#define SPM_CORE_BEHAVIORAL_HH

#include <cstddef>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/cells.hh"
#include "core/matcher.hh"
#include "systolic/engine.hh"
#include "systolic/trace.hh"

namespace spm::core
{

/**
 * Computes what the host feeds on each beat: which pattern character
 * (recirculating), which control bits, which text character, and on
 * which beats results emerge. Shared by all three chip fidelities and
 * by the cascade so that every implementation agrees on the protocol
 * of Figure 3-1.
 */
class ChipFeedPlan
{
  public:
    /**
     * @param num_cells total character cells in the array
     * @param pattern the pattern (wildcardSymbol allowed)
     * @param text_len number of text characters
     */
    ChipFeedPlan(std::size_t num_cells,
                 const std::vector<Symbol> &pattern, std::size_t text_len);

    /** Beats to run so every result has left the array. */
    Beat totalBeats() const { return total; }

    /** Pattern token to force into the pattern input before @p beat. */
    PatToken patternAt(Beat beat) const;

    /** Control token to force into the control input before @p beat. */
    CtlToken controlAt(Beat beat) const;

    /**
     * String token for @p beat, reading characters from @p text.
     * Once the text is exhausted the stream carries invalid tokens.
     */
    StrToken stringAt(Beat beat, const std::vector<Symbol> &text) const;

    /** Result-slot token to force into the result input. */
    ResToken resultAt(Beat beat) const;

    /** Text phase offset: s_i is fed before beat 2 i + phase. */
    unsigned textPhase() const { return phi; }

  private:
    std::size_t cells;
    std::vector<Symbol> pat;
    std::size_t textLen;
    unsigned phi;
    Beat total;
};

/**
 * One pattern matching chip at character-level fidelity.
 *
 * The chip owns a systolic::Engine with one comparator and one
 * accumulator per character cell. Inputs are forced into edge latches
 * before each step; outputs are the committed edge-cell latches, so a
 * cascade can copy them to a neighbor chip's inputs with the same
 * one-beat pin discipline the silicon would have.
 */
class BehavioralChip
{
  public:
    /** Comparator implementation to instantiate per cell. */
    enum class CellVariant
    {
        Plain,        ///< single comparator (the paper's cell)
        SelfChecking, ///< duplicated comparator with mismatch check
    };

    /**
     * @param num_cells character cells on this chip; the chip matches
     *        patterns of length up to num_cells (Section 3.4)
     * @param beat_period_ps simulated beat period
     * @param variant comparator variant; SelfChecking duplicates the
     *        comparison per cell and counts divergences
     */
    explicit BehavioralChip(std::size_t num_cells,
                            Picoseconds beat_period_ps = prototypeBeatPs,
                            CellVariant variant = CellVariant::Plain);

    std::size_t cellCount() const { return numCells; }

    /** @{ Input pins, forced by the host (or left neighbor) per beat. */
    void feedPattern(const PatToken &tok) { pIn.force(tok); }
    void feedControl(const CtlToken &tok) { ctlIn.force(tok); }
    void feedString(const StrToken &tok) { sIn.force(tok); }
    void feedResult(const ResToken &tok) { rIn.force(tok); }
    /** @} */

    /** Advance one beat. */
    void step() { eng.step(); }

    /** @{ Output pins: committed edge-cell latches. */
    PatToken patternOut() const;
    CtlToken controlOut() const;
    StrToken stringOut() const;
    ResToken resultOut() const;
    /** @} */

    /** The underlying engine (stats, clock, tracing). */
    systolic::Engine &engine() { return eng; }
    const systolic::Engine &engine() const { return eng; }

    /**
     * Divergences seen by self-checking comparators so far; always 0
     * for the Plain variant.
     */
    std::uint64_t selfCheckMismatches() const;

    /**
     * Engine cell index of the comparator (@p comparator true) or
     * accumulator of character cell @p c -- the addressing fault
     * models use to reach a cell's latches.
     */
    std::size_t cellIndex(std::size_t c, bool comparator) const;

    /** Attach a Figure 3-2 style trace recorder. */
    void attachTrace(systolic::TraceRecorder *rec)
    {
        eng.attachTrace(rec);
    }

  private:
    std::size_t numCells;
    systolic::Engine eng;
    systolic::Latch<PatToken> pIn;
    systolic::Latch<CtlToken> ctlIn;
    systolic::Latch<StrToken> sIn;
    systolic::Latch<ResToken> rIn;
    std::vector<CharComparatorCell *> comparators;
    std::vector<AccumulatorCell *> accumulators;
};

/**
 * Matcher interface over a single behavioral chip. A fresh chip is
 * instantiated per match() call, sized to @p num_cells (or, when 0,
 * to the pattern length).
 */
class BehavioralMatcher : public Matcher
{
  public:
    explicit BehavioralMatcher(std::size_t num_cells = 0)
        : cells(num_cells)
    {
    }

    std::vector<bool> match(const std::vector<Symbol> &text,
                            const std::vector<Symbol> &pattern) override;

    std::string name() const override { return "systolic-behavioral"; }

    /** Beats consumed by the last match() call. */
    Beat lastBeats() const { return beatsUsed; }

  private:
    std::size_t cells;
    Beat beatsUsed = 0;
};

/**
 * Drive one (or a pre-wired chain of) chip(s) through a full match,
 * collecting the result stream. Factored out so the cascade reuses
 * the identical host protocol.
 *
 * @param feed functions invoked before each beat to force host-driven
 *        pins, and a step function advancing all chips one beat
 */
struct ChipHooks
{
    std::function<void(const PatToken &, const CtlToken &,
                       const StrToken &, const ResToken &)> feedInputs;
    std::function<void()> step;
    std::function<ResToken()> resultOut;
};

/**
 * Run the Figure 3-1 protocol: feed pattern (recirculating), control,
 * text, and empty result slots; collect one result bit per text
 * character. Results for incomplete substrings (i < k) are false.
 *
 * @return pair of (result bits, beats consumed)
 */
std::pair<std::vector<bool>, Beat> runMatchProtocol(
    const ChipHooks &hooks, std::size_t total_cells,
    const std::vector<Symbol> &text, const std::vector<Symbol> &pattern);

} // namespace spm::core

#endif // SPM_CORE_BEHAVIORAL_HH
