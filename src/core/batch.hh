/**
 * @file
 * Multi-stream batched matching.
 *
 * The north-star serving shape gets its throughput from batch width
 * -- millions of short independent streams -- not from one hot
 * stream, but a bit-sliced kernel only earns its keep when its words
 * are full. BatchMatcher closes that gap: many independent streams
 * against one pattern are packed end to end into a single text and
 * pushed through one SimdParallelMatcher pass, so a 64-character
 * stream no longer wastes the tail of its last plane word on
 * padding; the next stream's characters fill it.
 *
 * Correctness of the packing rests on one observation: a match bit at
 * stream position p only looks back k-1 characters, so a position
 * with a full in-stream history (p >= k-1, counting any carry tail)
 * computes exactly its standalone value even mid-concatenation, and
 * every position without one is false *by definition* -- the
 * extraction step forces those bits regardless of what the kernel
 * computed from the neighboring stream's characters. No separators,
 * no per-stream padding.
 *
 * Streams longer than one request chunk carry across calls as a raw
 * k-1-character tail (StreamCarry): the last characters already
 * consumed are re-fed ahead of the next chunk, so chunked feeding is
 * bit-identical to matching the whole stream at once -- the property
 * tests and the conformance registry check exactly that.
 */

#ifndef SPM_CORE_BATCH_HH
#define SPM_CORE_BATCH_HH

#include <cstdint>
#include <vector>

#include "core/simdpar.hh"

namespace spm::core
{

/**
 * Per-stream carry state for chunked feeding: the raw text tail the
 * next chunk needs as look-back history. A carry is bound to one
 * stream and one pattern length; reusing it across patterns of a
 * different length is rejected (the tail would be too short to
 * reconstruct the look-back window).
 */
struct StreamCarry
{
    /** Last min(k-1, seen) characters of the stream so far. */
    std::vector<Symbol> tail;
    /** Stream characters consumed so far. */
    std::uint64_t seen = 0;
    /** Pattern length this carry was fed with (0 = not yet fed). */
    std::size_t patternLen = 0;
};

/**
 * One matcher pass over many independent streams.
 *
 * Like the kernels it wraps: stateless between calls apart from the
 * scratch arena, single-threaded per instance.
 */
class BatchMatcher
{
  public:
    /** Batch over the best-ISA SIMD kernel. */
    BatchMatcher();

    /** Batch over a forced kernel tier (conformance / A-B runs). */
    explicit BatchMatcher(SimdIsa forced);

    /**
     * Match @p streams (each a whole independent text) against
     * @p pattern in one kernel pass. Element i of the result holds
     * streams[i].size() bits with standalone-match semantics: bit p
     * set iff the pattern ends at stream position p.
     */
    std::vector<std::vector<bool>> matchMany(
        const std::vector<std::vector<Symbol>> &streams,
        const std::vector<Symbol> &pattern);

    /** As above, streams by pointer (no caller-side copies). */
    std::vector<std::vector<bool>> matchMany(
        const std::vector<const std::vector<Symbol> *> &streams,
        const std::vector<Symbol> &pattern);

    /**
     * Feed one chunk per stream: chunks[i] continues the stream
     * carried by carries[i]. Returns the match bits for exactly the
     * new chunk positions (chunks[i].size() bits each, standalone
     * whole-stream semantics) and advances every carry. Empty chunks
     * are fine; streams of different lengths pack into full words.
     *
     * @throws std::invalid_argument when carries and chunks disagree
     *         in count, or a carry was fed with a different pattern
     *         length earlier
     */
    std::vector<std::vector<bool>> feedChunks(
        std::vector<StreamCarry> &carries,
        const std::vector<std::vector<Symbol>> &chunks,
        const std::vector<Symbol> &pattern);

    /** As above, chunks by pointer (no caller-side copies). */
    std::vector<std::vector<bool>> feedChunks(
        std::vector<StreamCarry> &carries,
        const std::vector<const std::vector<Symbol> *> &chunks,
        const std::vector<Symbol> &pattern);

    /** Streams in the last pass. */
    std::size_t lastBatchWidth() const { return batchWidth; }

    /** Characters the last pass pushed through the kernel (with tails). */
    std::size_t lastKernelChars() const { return kernelChars; }

    /** The wrapped kernel (tier inspection, op counts). */
    const SimdParallelMatcher &kernel() const { return simd; }

  private:
    SimdParallelMatcher simd;

    // --- the scratch arena (reused across calls) ---------------------
    std::vector<Symbol> concat;       ///< packed tails + chunks
    std::vector<std::size_t> segBase; ///< segment start in concat
    std::vector<std::size_t> segSkip; ///< carry-tail chars to skip

    std::size_t batchWidth = 0;
    std::size_t kernelChars = 0;
};

} // namespace spm::core

#endif // SPM_CORE_BATCH_HH
