#include "core/hostbus.hh"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "telemetry/telem.hh"
#include "util/logging.hh"

namespace spm::core
{

const HostProfile &
hostPdp11()
{
    static const HostProfile p{"PDP-11/Unibus", 1.0e6};
    return p;
}

const HostProfile &
hostVax780()
{
    static const HostProfile p{"VAX-11/780 SBI", 5.0e6};
    return p;
}

const HostProfile &
hostIbm370158()
{
    static const HostProfile p{"IBM 370/158 channel", 8.0e6};
    return p;
}

HostBusModel::HostBusModel(Picoseconds beat_period_ps, BitWidth char_bits,
                           bool parity_enabled)
    : periodPs(beat_period_ps), bits(char_bits), parity(parity_enabled)
{
    // User-facing configuration errors, not internal invariants: a
    // zero beat period would make every derived rate divide by zero
    // downstream, so reject it loudly at construction.
    if (beat_period_ps == 0)
        throw std::invalid_argument(
            "HostBusModel: beat period must be positive (got 0 ps)");
    if (char_bits < 1 || char_bits > 16)
        throw std::invalid_argument(
            "HostBusModel: character width must be in [1, 16] bits, got " +
            std::to_string(char_bits));
}

bool
HostBusModel::parityBit(Symbol sym, BitWidth char_bits)
{
    const unsigned mask_bits = std::min(char_bits, BitWidth(16));
    const auto payload = static_cast<unsigned>(
        sym & ((1u << mask_bits) - 1u));
    return std::popcount(payload) % 2 != 0;
}

double
HostBusModel::chipCharsPerSec() const
{
    return 1e12 / static_cast<double>(periodPs);
}

double
HostBusModel::chipDemandBytesPerSec() const
{
    const double chars_per_sec = chipCharsPerSec();
    const double bytes_per_char = (busBitsPerChar() + 7) / 8;
    // One character in per beat; one result bit out per two beats.
    return chars_per_sec * bytes_per_char +
           chars_per_sec / 2.0 / 8.0;
}

double
HostBusModel::effectiveTextCharsPerSec(const HostProfile &host) const
{
    const double demand = chipDemandBytesPerSec();
    const double scale =
        std::min(1.0, host.bandwidthBytesPerSec / demand);
    // Half the bus beats carry text characters.
    return chipCharsPerSec() / 2.0 * scale;
}

bool
HostBusModel::chipOutrunsHost(const HostProfile &host) const
{
    return chipDemandBytesPerSec() > host.bandwidthBytesPerSec;
}

std::uint64_t
HostBusModel::busTransactions(std::size_t text_len,
                              std::size_t pattern_len,
                              std::size_t total_cells) const
{
    // The pattern recirculates for the duration of the text: one
    // pattern character per text character, plus the pipeline-fill
    // tail proportional to the array length; one result bit returns
    // per text character.
    const std::uint64_t fill = total_cells + pattern_len;
    return 2 * (static_cast<std::uint64_t>(text_len) + fill) +
           static_cast<std::uint64_t>(text_len);
}

double
HostBusModel::secondsForBeats(Beat beats) const
{
    return static_cast<double>(beats) *
           static_cast<double>(periodPs) * 1e-12;
}

bool
HostBusModel::transferChar(Symbol sent, Symbol received)
{
    ++nChars;
    SPM_TCOUNT_GLOBAL("hostbus.chars_transferred", 1);
    if (!parity)
        return true;
    if (parityBit(sent, bits) == parityBit(received, bits))
        return true;
    ++nParityErrors;
    SPM_TCOUNT_GLOBAL("hostbus.parity_errors", 1);
    return false;
}

std::uint64_t
HostBusModel::transferChunk(const Symbol *sent, const Symbol *received,
                            std::size_t n)
{
    if (n == 0)
        return 0;
    nChars += n;
    SPM_TCOUNT_GLOBAL("hostbus.chars_transferred",
                      static_cast<std::uint64_t>(n));
    if (!parity || sent == received)
        return 0;
    std::uint64_t errs = 0;
    for (std::size_t i = 0; i < n; ++i)
        if (parityBit(sent[i], bits) != parityBit(received[i], bits))
            ++errs;
    if (errs != 0) {
        nParityErrors += errs;
        SPM_TCOUNT_GLOBAL("hostbus.parity_errors", errs);
    }
    return errs;
}

void
HostBusModel::resetTransferStats()
{
    nChars = 0;
    nParityErrors = 0;
}

telem::Snapshot
HostBusModel::metricsSnapshot() const
{
    telem::Snapshot snap;
    snap.setCounter("charsTransferred", nChars);
    snap.setCounter("parityErrors", nParityErrors);
    snap.setCounter("parityEnabled", parity ? 1 : 0);
    return snap;
}

std::string
HostBusModel::statsDump() const
{
    return metricsSnapshot().renderText("hostbus.");
}

} // namespace spm::core
