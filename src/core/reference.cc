#include "core/reference.hh"

namespace spm::core
{

std::vector<bool>
ReferenceMatcher::match(const std::vector<Symbol> &text,
                        const std::vector<Symbol> &pattern)
{
    const std::size_t n = text.size();
    const std::size_t len = pattern.size();
    std::vector<bool> r(n, false);
    if (len == 0 || len > n)
        return r;

    for (std::size_t i = len - 1; i < n; ++i) {
        bool all = true;
        for (std::size_t j = 0; j < len && all; ++j)
            all = symbolMatches(pattern[j], text[i - (len - 1) + j]);
        r[i] = all;
    }
    return r;
}

std::vector<unsigned>
referenceMatchCounts(const std::vector<Symbol> &text,
                     const std::vector<Symbol> &pattern)
{
    const std::size_t n = text.size();
    const std::size_t len = pattern.size();
    std::vector<unsigned> c(n, 0);
    if (len == 0 || len > n)
        return c;

    for (std::size_t i = len - 1; i < n; ++i) {
        unsigned count = 0;
        for (std::size_t j = 0; j < len; ++j) {
            if (symbolMatches(pattern[j], text[i - (len - 1) + j]))
                ++count;
        }
        c[i] = count;
    }
    return c;
}

std::vector<std::int64_t>
referenceCorrelation(const std::vector<std::int64_t> &text,
                     const std::vector<std::int64_t> &pattern)
{
    const std::size_t n = text.size();
    const std::size_t len = pattern.size();
    std::vector<std::int64_t> r(n, 0);
    if (len == 0 || len > n)
        return r;

    for (std::size_t i = len - 1; i < n; ++i) {
        std::int64_t sum = 0;
        for (std::size_t j = 0; j < len; ++j) {
            const std::int64_t d =
                text[i - (len - 1) + j] - pattern[j];
            sum += d * d;
        }
        r[i] = sum;
    }
    return r;
}

} // namespace spm::core
