#include "core/multipass.hh"

#include <algorithm>

#include "core/behavioral.hh"
#include "util/logging.hh"

namespace spm::core
{

namespace
{

/**
 * One non-recirculating run: the whole pattern streams once through a
 * fresh array of @p m cells while text characters starting at global
 * index @p base stream the other way. Each cell accumulates exactly
 * one substring, so the run resolves result bits for substring starts
 * in [base, base + m).
 */
void
runOnce(std::size_t m, const std::vector<Symbol> &pattern,
        const std::vector<Symbol> &text, std::size_t base,
        std::vector<bool> &result, Beat &beats)
{
    const std::size_t K = pattern.size();
    const std::size_t n = text.size();
    const unsigned phi = (m - 1) % 2;
    const Beat c0 = (m - 1 + phi) / 2;

    // Feeding the pattern 2*c0 beats late shifts every meeting c0
    // cells left, so the run's first resolved substring start lands
    // in cell 0 and none of the array is wasted.
    const Beat pat_offset = 2 * c0;

    // Text characters needed by this run: the m substring starts plus
    // the pattern-length tail of the last one.
    const std::size_t text_end = std::min(n, base + m + K - 1);

    BehavioralChip chip(m);
    const Beat total =
        2 * static_cast<Beat>(m + K + c0) + static_cast<Beat>(m) + 8;

    std::size_t exited = 0; // text characters whose r slot has exited
    for (Beat u = 0; u < total; ++u) {
        // Pattern: one copy only, no recirculation.
        PatToken p{};
        CtlToken ctl{};
        if (u >= pat_offset && (u - pat_offset) % 2 == 0) {
            const auto j = static_cast<std::size_t>((u - pat_offset) / 2);
            if (j < K) {
                const Symbol sym = pattern[j];
                p = PatToken{sym == wildcardSymbol ? Symbol(0) : sym,
                             true};
            }
        }
        if (u >= pat_offset + 1 && (u - pat_offset - 1) % 2 == 0) {
            const auto j =
                static_cast<std::size_t>((u - pat_offset - 1) / 2);
            if (j < K) {
                ctl.lambda = j == K - 1;
                ctl.x = pattern[j] == wildcardSymbol;
                ctl.valid = true;
            }
        }

        StrToken s{};
        if (u >= phi && (u - phi) % 2 == 0) {
            const std::size_t i =
                base + static_cast<std::size_t>((u - phi) / 2);
            if (i < text_end)
                s = StrToken{text[i], true};
        }
        ResToken r{};
        if (u >= phi + 1 && (u - phi - 1) % 2 == 0) {
            const std::size_t i =
                base + static_cast<std::size_t>((u - phi - 1) / 2);
            if (i < text_end)
                r = ResToken{false, true};
        }

        chip.feedPattern(p);
        chip.feedControl(ctl);
        chip.feedString(s);
        chip.feedResult(r);
        chip.step();
        ++beats;

        const ResToken out = chip.resultOut();
        if (out.valid) {
            const std::size_t i = base + exited; // text index of slot
            ++exited;
            // The slot carries a resolved bit only when its substring
            // start lies in this run's coverage window.
            if (i + 1 >= K) {
                const std::size_t i0 = i + 1 - K;
                if (i0 >= base && i0 < base + m && i < n)
                    result[i] = out.value;
            }
        }
        if (exited >= text_end - base)
            break;
    }
    spm_assert(exited == text_end - base, "multipass run lost ",
               text_end - base - exited, " result slots");
}

} // namespace

std::vector<bool>
MultipassMatcher::match(const std::vector<Symbol> &text,
                        const std::vector<Symbol> &pattern)
{
    const std::size_t n = text.size();
    const std::size_t K = pattern.size();
    std::vector<bool> result(n, false);
    runsUsed = 0;
    beatsUsed = 0;
    if (K == 0 || n == 0 || K > n)
        return result;

    spm_assert(cells > 0, "multipass needs at least one cell");

    // Substring starts to cover: 0 .. n-K, in windows of `cells`.
    const std::size_t starts = n - K + 1;
    for (std::size_t base = 0; base < starts; base += cells) {
        runOnce(cells, pattern, text, base, result, beatsUsed);
        ++runsUsed;
    }
    return result;
}

} // namespace spm::core
