#include "core/batch.hh"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace spm::core
{

BatchMatcher::BatchMatcher() = default;

BatchMatcher::BatchMatcher(SimdIsa forced) : simd(forced) {}

std::vector<std::vector<bool>>
BatchMatcher::matchMany(const std::vector<std::vector<Symbol>> &streams,
                        const std::vector<Symbol> &pattern)
{
    std::vector<const std::vector<Symbol> *> ptrs;
    ptrs.reserve(streams.size());
    for (const std::vector<Symbol> &s : streams)
        ptrs.push_back(&s);
    return matchMany(ptrs, pattern);
}

std::vector<std::vector<bool>>
BatchMatcher::matchMany(
    const std::vector<const std::vector<Symbol> *> &streams,
    const std::vector<Symbol> &pattern)
{
    // A whole stream is one chunk fed to a fresh carry.
    std::vector<StreamCarry> carries(streams.size());
    return feedChunks(carries, streams, pattern);
}

std::vector<std::vector<bool>>
BatchMatcher::feedChunks(std::vector<StreamCarry> &carries,
                         const std::vector<std::vector<Symbol>> &chunks,
                         const std::vector<Symbol> &pattern)
{
    std::vector<const std::vector<Symbol> *> ptrs;
    ptrs.reserve(chunks.size());
    for (const std::vector<Symbol> &c : chunks)
        ptrs.push_back(&c);
    return feedChunks(carries, ptrs, pattern);
}

std::vector<std::vector<bool>>
BatchMatcher::feedChunks(
    std::vector<StreamCarry> &carries,
    const std::vector<const std::vector<Symbol> *> &chunks,
    const std::vector<Symbol> &pattern)
{
    if (carries.size() != chunks.size())
        throw std::invalid_argument(
            "BatchMatcher: " + std::to_string(carries.size()) +
            " carries for " + std::to_string(chunks.size()) + " chunks");
    const std::size_t width = chunks.size();
    const std::size_t k = pattern.size();
    const std::size_t hist = k == 0 ? 0 : k - 1;
    for (const StreamCarry &carry : carries)
        if (carry.seen != 0 && carry.patternLen != k)
            throw std::invalid_argument(
                "BatchMatcher: carry fed with pattern length " +
                std::to_string(carry.patternLen) +
                " reused with length " + std::to_string(k));

    // Pack carry tail + chunk per stream, end to end. The tail gives
    // every kept position its full look-back window; positions still
    // inside a stream's first k-1 characters are masked below, so the
    // kernel's cross-stream reads there are harmless.
    batchWidth = width;
    std::size_t total = 0;
    for (std::size_t i = 0; i < width; ++i)
        total += carries[i].tail.size() + chunks[i]->size();
    concat.clear();
    concat.reserve(total);
    segBase.resize(width);
    segSkip.resize(width);
    for (std::size_t i = 0; i < width; ++i) {
        const std::vector<Symbol> &tail = carries[i].tail;
        const std::vector<Symbol> &chunk = *chunks[i];
        segBase[i] = concat.size();
        segSkip[i] = tail.size();
        concat.insert(concat.end(), tail.begin(), tail.end());
        concat.insert(concat.end(), chunk.begin(), chunk.end());
    }
    kernelChars = concat.size();
    const std::vector<std::uint64_t> &packed =
        simd.matchPacked(concat, pattern);

    std::vector<std::vector<bool>> out(width);
    for (std::size_t i = 0; i < width; ++i) {
        const std::vector<Symbol> &chunk = *chunks[i];
        const std::size_t len = chunk.size();
        const std::uint64_t before = carries[i].seen;
        std::vector<bool> &bits = out[i];
        bits.assign(len, false);
        const std::size_t base = segBase[i] + segSkip[i];
        for (std::size_t c = 0; c < len; ++c) {
            if (before + c + 1 < k)
                continue; // the stream hasn't seen k characters yet
            const std::size_t g = base + c;
            bits[c] = (packed[g / 64] >> (g % 64)) & 1u;
        }

        // Advance the carry: keep the last min(k-1, seen) characters.
        StreamCarry &carry = carries[i];
        carry.seen = before + len;
        carry.patternLen = k;
        const std::size_t need = static_cast<std::size_t>(
            std::min<std::uint64_t>(hist, carry.seen));
        if (len >= need) {
            carry.tail.assign(
                chunk.end() - static_cast<std::ptrdiff_t>(need),
                chunk.end());
        } else {
            const std::size_t from_tail = need - len;
            carry.tail.erase(carry.tail.begin(),
                             carry.tail.end() -
                                 static_cast<std::ptrdiff_t>(from_tail));
            carry.tail.insert(carry.tail.end(), chunk.begin(),
                              chunk.end());
        }
    }
    return out;
}

} // namespace spm::core
