/**
 * @file
 * The pattern matching chip at gate level.
 *
 * GateChip instantiates the Figure 3-6 comparator circuit and the
 * accumulator circuit -- in their positive and inverted twin versions,
 * alternating in a checkerboard -- for every cell of the bit-serial
 * organization, wires them with the dynamic shift register discipline
 * of Figure 3-5, and drives them from a two-phase non-overlapping
 * clock. It is the simulation equivalent of the fabricated prototype
 * (Plate 2: 8 cells of 2-bit characters).
 */

#ifndef SPM_CORE_GATECHIP_HH
#define SPM_CORE_GATECHIP_HH

#include <functional>
#include <memory>
#include <vector>

#include "core/matcher.hh"
#include "gate/levelized.hh"
#include "gate/netlist.hh"
#include "gate/stdcells.hh"
#include "gate/twophase.hh"

namespace spm::core
{

/**
 * Gate-level bit-serial pattern matcher chip.
 *
 * Cell (row, col) latches on clock phase (row + col) mod 2 and is the
 * positive twin when that parity is 0. All polarity bookkeeping for
 * the host is done by the feed/observe methods: callers always work
 * in positive logic.
 */
class GateChip
{
  public:
    /**
     * @param num_cells character cells (columns)
     * @param bits_per_char comparator rows
     * @param beat_period_ps beat period (250 ns on the prototype)
     * @param retention_ps dynamic storage retention (about 1 ms)
     */
    GateChip(std::size_t num_cells, BitWidth bits_per_char,
             Picoseconds beat_period_ps = prototypeBeatPs,
             Picoseconds retention_ps = gate::defaultRetentionPs);

    std::size_t cellCount() const { return numCells; }
    BitWidth bits() const { return numBits; }

    /** Present the pattern bit entering row @p row for this beat. */
    void setPatternBit(unsigned row, bool bit);

    /** Present the string bit entering row @p row for this beat. */
    void setStringBit(unsigned row, bool bit);

    /** Present the lambda / don't-care pair for this beat. */
    void setControl(bool lambda, bool x);

    /** Present the result-stream input bit for this beat. */
    void setResultIn(bool r);

    /** Run one beat of the two-phase clock. */
    void tick();

    /** Beats elapsed. */
    Beat beat() const { return clk.beat(); }

    /**
     * The result-stream output in positive logic; X (undefined charge
     * during pipeline warm-up, or after a retention failure) reads as
     * unknown via resultKnown().
     */
    bool resultOut() const;

    /** Whether the result output node holds a definite level. */
    bool resultKnown() const;

    /** The netlist node carrying the result-stream output. */
    gate::NodeId resultNode() const { return rOutNode; }

    /**
     * Whether the result node carries inverted polarity (the positive
     * twin emits inverted outputs); resultOut() undoes the inversion.
     */
    bool resultInverted() const { return rOutInverted; }

    /**
     * Stall the clock for @p duration_ps; returns how many dynamic
     * storage nodes lost their charge (Section 3.3.3 failure mode).
     */
    std::size_t stall(Picoseconds duration_ps)
    {
        return clk.stall(duration_ps);
    }

    /** The netlist, for inspection, layout and statistics. */
    const gate::Netlist &netlist() const { return net; }
    gate::Netlist &netlist() { return net; }

    /**
     * Compile and attach the levelized fast path (gate/levelized.hh);
     * all subsequent settling runs through the flat activity-gated
     * pass. Safe at any point after construction; idempotent.
     */
    void enableLevelized();

    /** The attached fast path, or nullptr (for effort statistics). */
    const gate::LevelizedNetlist *levelized() const { return accel.get(); }

    /** The clock driver. */
    const gate::TwoPhaseClock &clock() const { return clk; }

  private:
    /** Checkerboard parity of cell (row, col). */
    unsigned parity(unsigned row, std::size_t col) const
    {
        return (row + static_cast<unsigned>(col)) % 2;
    }

    /** True when cell (row, col) is the positive twin. */
    bool positiveTwin(unsigned row, std::size_t col) const
    {
        return parity(row, col) == 0;
    }

    void drive(gate::NodeId node, bool value, bool positive_cell);

    std::size_t numCells;
    BitWidth numBits;
    gate::Netlist net;
    gate::TwoPhaseClock clk;
    std::unique_ptr<gate::LevelizedNetlist> accel;

    std::vector<gate::NodeId> pInNodes;  ///< per comparator row
    std::vector<gate::NodeId> sInNodes;  ///< per comparator row
    gate::NodeId lambdaInNode;
    gate::NodeId xInNode;
    gate::NodeId rInNode;
    gate::NodeId rOutNode;
    bool rOutInverted;
    bool lambdaInInverted;
    bool rInInverted;
};

/**
 * Matcher over the gate-level chip. Uses the same feed schedule as
 * the bit-serial behavioral model; results are collected by exit
 * beat (the hardware has no validity bits).
 */
class GateLevelMatcher : public Matcher
{
  public:
    explicit GateLevelMatcher(std::size_t num_cells = 0,
                              BitWidth bits_per_char = 0)
        : cells(num_cells), bitsPerChar(bits_per_char)
    {
    }

    std::vector<bool> match(const std::vector<Symbol> &text,
                            const std::vector<Symbol> &pattern) override;

    std::string name() const override
    {
        return useLevelized ? "systolic-gatelevel-lev"
                            : "systolic-gatelevel";
    }

    Beat lastBeats() const { return beatsUsed; }

    /**
     * Settle each per-match chip through the levelized fast path
     * instead of the event-driven worklist. Results are bit-identical
     * (verified by the property tests); only the effort differs.
     */
    void setUseLevelized(bool enable) { useLevelized = enable; }

    /** Device evaluations spent by the last match() call. */
    std::uint64_t lastEvals() const { return evalsUsed; }

    /** Transistor count of the last chip built. */
    unsigned lastTransistors() const { return transistors; }

    /**
     * Install a hook run on each freshly built chip before the match
     * protocol starts -- the seam fault campaigns use to lower
     * stuck-at faults onto the netlist (Netlist::forceStuckAt).
     */
    void setChipPrep(std::function<void(GateChip &)> prep)
    {
        chipPrep = std::move(prep);
    }

    /**
     * Install a hook run at every result-collection beat, right after
     * the protocol reads the chip's result output for text position
     * @p index -- the seam the fault grader uses to record replayable
     * observation points (fault/wordsim.hh).
     */
    void setResultObserver(
        std::function<void(std::size_t index, const GateChip &)> obs)
    {
        resultObserver = std::move(obs);
    }

  private:
    std::size_t cells;
    BitWidth bitsPerChar;
    Beat beatsUsed = 0;
    unsigned transistors = 0;
    bool useLevelized = false;
    std::uint64_t evalsUsed = 0;
    std::function<void(GateChip &)> chipPrep;
    std::function<void(std::size_t, const GateChip &)> resultObserver;
};

} // namespace spm::core

#endif // SPM_CORE_GATECHIP_HH
