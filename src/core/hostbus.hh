/**
 * @file
 * The host interface model (Figure 1-1 and Figure 3-1).
 *
 * The chip is a peripheral on a conventional host: "The pattern and
 * the text string arrive alternately over the bus one character at a
 * time" and "the data streams move at a steady rate ... with a
 * constant time between data items." This module models that bus: the
 * chip-side demand (one character per beat), the host-side supply
 * (memory bandwidth), and the resulting end-to-end throughput -- the
 * numbers behind the paper's claim that one character every 250 ns "is
 * higher than the memory bandwidth of most conventional computers."
 */

#ifndef SPM_CORE_HOSTBUS_HH
#define SPM_CORE_HOSTBUS_HH

#include <cstdint>
#include <string>

#include "telemetry/metrics.hh"
#include "util/types.hh"

namespace spm::core
{

/** Static description of a host computer's memory system. */
struct HostProfile
{
    std::string name;
    double bandwidthBytesPerSec;
};

/** A few representative host machines of the paper's era. */
const HostProfile &hostPdp11();     ///< ~1 MB/s Unibus-class
const HostProfile &hostVax780();    ///< ~5 MB/s SBI-class
const HostProfile &hostIbm370158(); ///< ~8 MB/s channel-class

/**
 * Models the bus between a host and a pattern matcher (single chip or
 * cascade). All rates are derived, not simulated; the cycle-accurate
 * simulators provide the beat counts this model prices.
 */
class HostBusModel
{
  public:
    /**
     * @param beat_period_ps chip beat period (250 ns prototype);
     *        must be positive
     * @param char_bits bits per character on the bus, in [1, 16]
     * @param parity_enabled when true, every bus character carries an
     *        even-parity bit so single-bit corruption in transit is
     *        detectable; the extra bit is priced into the demand
     *
     * @throws std::invalid_argument on a zero beat period or a
     *         character width outside [1, 16]
     */
    explicit HostBusModel(Picoseconds beat_period_ps = prototypeBeatPs,
                          BitWidth char_bits = 8,
                          bool parity_enabled = false);

    /** Characters per second the chip consumes (one per beat). */
    double chipCharsPerSec() const;

    /**
     * Bytes per second the chip-side protocol demands of the host:
     * one character per beat in, plus one result bit per two beats
     * out (results ride back interleaved with the input streams).
     */
    double chipDemandBytesPerSec() const;

    /**
     * Text characters per second actually processed when the chip is
     * attached to @p host: the slower of chip demand and host supply,
     * folded back to the text stream (half the bus beats carry text).
     */
    double effectiveTextCharsPerSec(const HostProfile &host) const;

    /** True when the chip outruns the host's memory system. */
    bool chipOutrunsHost(const HostProfile &host) const;

    /**
     * Total bus transactions for a match of @p text_len characters
     * with a pattern of @p pattern_len on an array of
     * @p total_cells cells: pattern feeds (recirculating), text
     * feeds, and result transfers.
     */
    std::uint64_t busTransactions(std::size_t text_len,
                                  std::size_t pattern_len,
                                  std::size_t total_cells) const;

    /** Wall-clock seconds for @p beats chip beats. */
    double secondsForBeats(Beat beats) const;

    Picoseconds beatPeriod() const { return periodPs; }
    BitWidth charBits() const { return bits; }

    /** Whether bus characters carry a parity bit. */
    bool parityEnabled() const { return parity; }

    /** Bits actually moved per bus character (payload + parity). */
    BitWidth busBitsPerChar() const { return bits + (parity ? 1 : 0); }

    /**
     * Even-parity bit for @p sym over @p char_bits payload bits: the
     * bit that makes the total number of ones even. This is what the
     * host computes on feed and the far edge recomputes on exit.
     */
    static bool parityBit(Symbol sym, BitWidth char_bits);

    /**
     * One end-to-end character transfer: the host computes the parity
     * bit on @p sent at the near edge; the far edge recomputes it on
     * @p received, the character as it actually arrived. A mismatch
     * (any odd number of payload bits corrupted in transit) counts a
     * parity error. With parity disabled the transfer is counted but
     * unchecked -- corruption rides through, which is exactly the
     * exposure the parity bit is priced to remove.
     *
     * @return true when the transfer checked clean (or is unchecked)
     */
    bool transferChar(Symbol sent, Symbol received);

    /**
     * Batched end-to-end transfer of @p n characters: the counter and
     * telemetry charges of n transferChar() calls amortized into one
     * update. When @p sent and @p received alias (a loopback
     * transfer, the serving layer's common case) the per-character
     * parity recomputation is skipped outright -- bit-identical
     * outcome, since equal characters always parity-match.
     *
     * @return parity mismatches detected (0 when clean or unchecked)
     */
    std::uint64_t transferChunk(const Symbol *sent,
                                const Symbol *received, std::size_t n);

    /** Characters moved through transferChar()/transferChunk() so far. */
    std::uint64_t charsTransferred() const { return nChars; }

    /** Parity mismatches detected so far. */
    std::uint64_t parityErrors() const { return nParityErrors; }

    /** Reset the transfer counters (new measurement interval). */
    void resetTransferStats();

    /**
     * The transfer counters as a telemetry snapshot (bare names;
     * parityEnabled rides along as a 0/1 counter so one snapshot
     * carries the whole bus state). The model stays a plain copyable
     * value -- ServiceConfig embeds one by value -- so the counters
     * live here and are only *rendered* through the registry types.
     */
    telem::Snapshot metricsSnapshot() const;

    /** "hostbus.x = n" stat lines for the transfer counters. */
    std::string statsDump() const;

  private:
    Picoseconds periodPs;
    BitWidth bits;
    bool parity;
    std::uint64_t nChars = 0;
    std::uint64_t nParityErrors = 0;
};

} // namespace spm::core

#endif // SPM_CORE_HOSTBUS_HH
