#include "core/wordpar.hh"

#include <algorithm>
#include <cstddef>

#include "core/simdpar.hh"

namespace spm::core
{

namespace
{

constexpr std::size_t bitsPerWord = 64;

std::size_t
wordCount(std::size_t n)
{
    return (n + bitsPerWord - 1) / bitsPerWord;
}

/** Smallest bit width that represents @p v (at least 1). */
unsigned
widthOf(Symbol v)
{
    unsigned b = 1;
    while ((static_cast<unsigned>(v) >> b) != 0)
        ++b;
    return b;
}

} // namespace

const std::vector<std::uint64_t> &
WordParallelMatcher::matchPacked(const std::vector<Symbol> &text,
                                 const std::vector<Symbol> &pattern)
{
    const std::size_t n = text.size();
    const std::size_t k = pattern.size();
    const std::size_t nw = wordCount(n);
    wordOps = 0;
    planesBuilt = 0;

    result.assign(nw, 0);
    if (k == 0 || n == 0 || k > n)
        return result;

    // The planes must cover every bit that can distinguish a text
    // character from a pattern character.
    Symbol seen = 0;
    for (Symbol c : text)
        seen = static_cast<Symbol>(seen | c);
    for (Symbol c : pattern)
        if (c != wildcardSymbol)
            seen = static_cast<Symbol>(seen | c);
    const unsigned planes = widthOf(seen);
    planesBuilt = planes;

    // Transpose the text into bit planes: plane[b] bit i = bit b of
    // s_i. This is the only per-character loop in the kernel; all
    // later work is 64 positions per operation.
    const std::size_t planeWords = static_cast<std::size_t>(planes) * nw;
    if (planeArena.size() < planeWords)
        planeArena.resize(planeWords);
    std::fill(planeArena.begin(),
              planeArena.begin() + static_cast<std::ptrdiff_t>(planeWords),
              0);
    for (std::size_t i = 0; i < n; ++i) {
        const Symbol c = text[i];
        const std::size_t w = i / bitsPerWord;
        const std::uint64_t bit = std::uint64_t(1) << (i % bitsPerWord);
        for (unsigned b = 0; b < planes; ++b)
            if ((c >> b) & 1u)
                planeArena[b * nw + w] |= bit;
    }

    // Equality masks are computed once per distinct pattern symbol
    // and cached in the arena; patterns over small alphabets (the
    // prototype's 2-bit characters) touch the text O(|Sigma|) times,
    // not O(k).
    eqIndex.clear();
    auto eqFor = [&](Symbol c) -> const std::uint64_t * {
        for (const auto &entry : eqIndex)
            if (entry.first == c)
                return eqArena.data() + entry.second;
        const std::size_t off = eqIndex.size() * nw;
        if (eqArena.size() < off + nw)
            eqArena.resize(off + nw);
        std::uint64_t *m = eqArena.data() + off;
        std::fill(m, m + nw, ~std::uint64_t(0));
        for (unsigned b = 0; b < planes; ++b) {
            const std::uint64_t *p = planeArena.data() + b * nw;
            if ((c >> b) & 1u) {
                for (std::size_t w = 0; w < nw; ++w)
                    m[w] &= p[w];
            } else {
                for (std::size_t w = 0; w < nw; ++w)
                    m[w] &= ~p[w];
            }
        }
        wordOps += static_cast<std::uint64_t>(planes) * nw;
        eqIndex.emplace_back(c, off);
        return m;
    };

    // r = AND_j shiftUp(eq(p_j), k-1-j): one shifted AND per
    // non-wild pattern position, each covering 64 text positions per
    // word. Wild cards contribute an all-ones factor and are skipped.
    for (std::uint64_t &w : result)
        w = ~std::uint64_t(0);
    for (std::size_t j = 0; j < k; ++j) {
        const Symbol c = pattern[j];
        if (c == wildcardSymbol)
            continue;
        const std::uint64_t *m = eqFor(c);
        const std::size_t s = (k - 1) - j;
        const std::size_t ws = s / bitsPerWord;
        const unsigned bs = static_cast<unsigned>(s % bitsPerWord);
        for (std::size_t w = 0; w < nw; ++w) {
            std::uint64_t v = 0;
            if (w >= ws) {
                v = m[w - ws] << bs;
                if (bs != 0 && w > ws)
                    v |= m[w - ws - 1] >> (bitsPerWord - bs);
            }
            result[w] &= v;
        }
        wordOps += nw;
    }

    // Positions with incomplete substrings (i < k-1) are 0 by
    // definition, as is the slack past the text in the last word.
    const std::size_t lead = k - 1;
    for (std::size_t w = 0; w < lead / bitsPerWord && w < nw; ++w)
        result[w] = 0;
    if (lead / bitsPerWord < nw && lead % bitsPerWord != 0)
        result[lead / bitsPerWord] &= ~std::uint64_t(0)
                                      << (lead % bitsPerWord);
    if (n % bitsPerWord != 0)
        result[nw - 1] &=
            ~std::uint64_t(0) >> (bitsPerWord - n % bitsPerWord);
    return result;
}

std::vector<bool>
WordParallelMatcher::match(const std::vector<Symbol> &text,
                           const std::vector<Symbol> &pattern)
{
    return unpackResultBits(matchPacked(text, pattern), text.size());
}

std::size_t
WordParallelMatcher::arenaBytes() const
{
    return (planeArena.capacity() + eqArena.capacity() +
            result.capacity()) *
               sizeof(std::uint64_t) +
           eqIndex.capacity() * sizeof(eqIndex[0]);
}

} // namespace spm::core
