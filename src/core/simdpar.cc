#include "core/simdpar.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>

#if defined(__x86_64__)
#define SPM_SIMD_X86 1
#include <immintrin.h>
#else
#define SPM_SIMD_X86 0
#endif

namespace spm::core
{

namespace
{

constexpr std::size_t bitsPerWord = 64;

std::size_t
wordCount(std::size_t n)
{
    return (n + bitsPerWord - 1) / bitsPerWord;
}

/** Smallest bit width that represents @p v (at least 1). */
unsigned
widthOf(Symbol v)
{
    unsigned b = 1;
    while ((static_cast<unsigned>(v) >> b) != 0)
        ++b;
    return b;
}

/** OR of all symbols, 4 symbols per 64-bit load. */
Symbol
orReduceSymbols(const Symbol *s, std::size_t n)
{
    std::uint64_t acc = 0;
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        std::uint64_t v0, v1, v2, v3;
        std::memcpy(&v0, s + i, 8);
        std::memcpy(&v1, s + i + 4, 8);
        std::memcpy(&v2, s + i + 8, 8);
        std::memcpy(&v3, s + i + 12, 8);
        acc |= v0 | v1 | v2 | v3;
    }
    acc |= (acc >> 32);
    acc |= (acc >> 16);
    Symbol out = static_cast<Symbol>(acc);
    for (; i < n; ++i)
        out = static_cast<Symbol>(out | s[i]);
    return out;
}

// ---------------------------------------------------------------------
// Portable (scalar) kernel operations. These are also the tail/edge
// helpers for the SIMD variants, so the vector bodies stay branch-free.
// ---------------------------------------------------------------------

void
narrowScalar(const Symbol *s, std::size_t n, std::uint8_t *dst)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = static_cast<std::uint8_t>(s[i]);
}

void
transposeBytesScalar(const std::uint8_t *bytes, std::size_t nw,
                     unsigned planes, std::uint64_t *plane,
                     std::size_t stride)
{
    for (std::size_t w = 0; w < nw; ++w) {
        std::uint64_t acc[8] = {0, 0, 0, 0, 0, 0, 0, 0};
        const std::uint8_t *blk = bytes + w * bitsPerWord;
        for (unsigned i = 0; i < bitsPerWord; ++i) {
            const unsigned c = blk[i];
            for (unsigned b = 0; b < planes; ++b)
                acc[b] |= static_cast<std::uint64_t>((c >> b) & 1u) << i;
        }
        for (unsigned b = 0; b < planes; ++b)
            plane[b * stride + w] = acc[b];
    }
}

/** Alphabets wider than 8 bits skip the byte narrowing. */
void
transposeWideScalar(const Symbol *s, std::size_t n, std::size_t nw,
                    unsigned planes, std::uint64_t *plane,
                    std::size_t stride)
{
    for (std::size_t w = 0; w < nw; ++w) {
        std::uint64_t acc[16] = {0};
        const std::size_t base = w * bitsPerWord;
        const unsigned lim = static_cast<unsigned>(
            std::min<std::size_t>(bitsPerWord, n - base));
        for (unsigned i = 0; i < lim; ++i) {
            const unsigned c = s[base + i];
            for (unsigned b = 0; b < planes; ++b)
                acc[b] |= static_cast<std::uint64_t>((c >> b) & 1u) << i;
        }
        for (unsigned b = 0; b < planes; ++b)
            plane[b * stride + w] = acc[b];
    }
}

void
eqSweepScalarRange(const std::uint64_t *plane, std::size_t stride,
                   unsigned planes, Symbol c, std::uint64_t *out,
                   std::size_t wBegin, std::size_t wEnd)
{
    for (std::size_t w = wBegin; w < wEnd; ++w) {
        std::uint64_t acc = ~std::uint64_t(0);
        for (unsigned b = 0; b < planes; ++b) {
            const std::uint64_t p = plane[b * stride + w];
            acc &= ((c >> b) & 1u) ? p : ~p;
        }
        out[w] = acc;
    }
}

void
eqSweepScalar(const std::uint64_t *plane, std::size_t stride,
              unsigned planes, Symbol c, std::uint64_t *out, std::size_t nw)
{
    eqSweepScalarRange(plane, stride, planes, c, out, 0, nw);
}

void
shiftAndScalarRange(std::uint64_t *r, const std::uint64_t *m, std::size_t ws,
                    unsigned bs, std::size_t wBegin, std::size_t wEnd)
{
    for (std::size_t w = wBegin; w < wEnd; ++w) {
        std::uint64_t v = 0;
        if (w >= ws) {
            v = m[w - ws] << bs;
            if (bs != 0 && w > ws)
                v |= m[w - ws - 1] >> (bitsPerWord - bs);
        }
        r[w] &= v;
    }
}

void
shiftAndScalar(std::uint64_t *r, const std::uint64_t *m, std::size_t nw,
               std::size_t ws, unsigned bs)
{
    shiftAndScalarRange(r, m, ws, bs, 0, nw);
}

// ---------------------------------------------------------------------
// SSE2 kernel operations (x86-64 baseline; 128-bit planes, 16-char
// compare + movemask transpose).
// ---------------------------------------------------------------------

#if SPM_SIMD_X86

void
narrowSse2(const Symbol *s, std::size_t n, std::uint8_t *dst)
{
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i a = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(s + i));
        const __m128i b = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(s + i + 8));
        // Exact, not saturating: the caller only narrows when every
        // symbol fits in 8 bits.
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + i),
                         _mm_packus_epi16(a, b));
    }
    narrowScalar(s + i, n - i, dst + i);
}

void
transposeBytesSse2(const std::uint8_t *bytes, std::size_t nw,
                   unsigned planes, std::uint64_t *plane, std::size_t stride)
{
    for (std::size_t w = 0; w < nw; ++w) {
        const std::uint8_t *blk = bytes + w * bitsPerWord;
        const __m128i q0 =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(blk));
        const __m128i q1 =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(blk + 16));
        const __m128i q2 =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(blk + 32));
        const __m128i q3 =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(blk + 48));
        for (unsigned b = 0; b < planes; ++b) {
            const __m128i bitv =
                _mm_set1_epi8(static_cast<char>(1u << b));
            const auto lanes = [bitv](__m128i q) {
                return static_cast<std::uint32_t>(_mm_movemask_epi8(
                    _mm_cmpeq_epi8(_mm_and_si128(q, bitv), bitv)));
            };
            plane[b * stride + w] =
                static_cast<std::uint64_t>(lanes(q0)) |
                (static_cast<std::uint64_t>(lanes(q1)) << 16) |
                (static_cast<std::uint64_t>(lanes(q2)) << 32) |
                (static_cast<std::uint64_t>(lanes(q3)) << 48);
        }
    }
}

void
eqSweepSse2(const std::uint64_t *plane, std::size_t stride, unsigned planes,
            Symbol c, std::uint64_t *out, std::size_t nw)
{
    const __m128i ones = _mm_set1_epi64x(-1);
    std::size_t w = 0;
    for (; w + 2 <= nw; w += 2) {
        __m128i acc = ones;
        for (unsigned b = 0; b < planes; ++b) {
            const __m128i p = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(plane + b * stride + w));
            acc = ((c >> b) & 1u) ? _mm_and_si128(acc, p)
                                  : _mm_andnot_si128(p, acc);
        }
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + w), acc);
    }
    eqSweepScalarRange(plane, stride, planes, c, out, w, nw);
}

void
shiftAndSse2(std::uint64_t *r, const std::uint64_t *m, std::size_t nw,
             std::size_t ws, unsigned bs)
{
    std::size_t w = std::min(nw, ws + 1);
    shiftAndScalarRange(r, m, ws, bs, 0, w);
    if (bs == 0) {
        for (; w + 2 <= nw; w += 2) {
            const __m128i v = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(m + w - ws));
            const __m128i rv = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(r + w));
            _mm_storeu_si128(reinterpret_cast<__m128i *>(r + w),
                             _mm_and_si128(rv, v));
        }
    } else {
        for (; w + 2 <= nw; w += 2) {
            const __m128i hi = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(m + w - ws));
            const __m128i lo = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(m + w - ws - 1));
            const __m128i v = _mm_or_si128(
                _mm_slli_epi64(hi, static_cast<int>(bs)),
                _mm_srli_epi64(lo, static_cast<int>(bitsPerWord - bs)));
            const __m128i rv = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(r + w));
            _mm_storeu_si128(reinterpret_cast<__m128i *>(r + w),
                             _mm_and_si128(rv, v));
        }
    }
    shiftAndScalarRange(r, m, ws, bs, w, nw);
}

// ---------------------------------------------------------------------
// AVX2 kernel operations (256-bit planes, 32-char compare + movemask
// transpose). Compiled with a target attribute so the TU builds on the
// baseline ISA; only called after __builtin_cpu_supports("avx2").
// ---------------------------------------------------------------------

__attribute__((target("avx2"))) void
narrowAvx2(const Symbol *s, std::size_t n, std::uint8_t *dst)
{
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(s + i));
        const __m256i b = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(s + i + 16));
        // packus interleaves the two 128-bit lanes; the permute puts
        // the 32 bytes back in text order.
        const __m256i p = _mm256_permute4x64_epi64(
            _mm256_packus_epi16(a, b), 0xD8);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i), p);
    }
    narrowScalar(s + i, n - i, dst + i);
}

__attribute__((target("avx2"))) void
transposeBytesAvx2(const std::uint8_t *bytes, std::size_t nw,
                   unsigned planes, std::uint64_t *plane, std::size_t stride)
{
    for (std::size_t w = 0; w < nw; ++w) {
        const std::uint8_t *blk = bytes + w * bitsPerWord;
        const __m256i lo =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(blk));
        const __m256i hi =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(blk + 32));
        for (unsigned b = 0; b < planes; ++b) {
            const __m256i bitv =
                _mm256_set1_epi8(static_cast<char>(1u << b));
            const std::uint32_t mLo =
                static_cast<std::uint32_t>(_mm256_movemask_epi8(
                    _mm256_cmpeq_epi8(_mm256_and_si256(lo, bitv), bitv)));
            const std::uint32_t mHi =
                static_cast<std::uint32_t>(_mm256_movemask_epi8(
                    _mm256_cmpeq_epi8(_mm256_and_si256(hi, bitv), bitv)));
            plane[b * stride + w] =
                static_cast<std::uint64_t>(mLo) |
                (static_cast<std::uint64_t>(mHi) << 32);
        }
    }
}

__attribute__((target("avx2"))) void
eqSweepAvx2(const std::uint64_t *plane, std::size_t stride, unsigned planes,
            Symbol c, std::uint64_t *out, std::size_t nw)
{
    const __m256i ones = _mm256_set1_epi64x(-1);
    std::size_t w = 0;
    for (; w + 4 <= nw; w += 4) {
        __m256i acc = ones;
        for (unsigned b = 0; b < planes; ++b) {
            const __m256i p = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(plane + b * stride + w));
            acc = ((c >> b) & 1u) ? _mm256_and_si256(acc, p)
                                  : _mm256_andnot_si256(p, acc);
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + w), acc);
    }
    eqSweepScalarRange(plane, stride, planes, c, out, w, nw);
}

__attribute__((target("avx2"))) void
shiftAndAvx2(std::uint64_t *r, const std::uint64_t *m, std::size_t nw,
             std::size_t ws, unsigned bs)
{
    std::size_t w = std::min(nw, ws + 1);
    shiftAndScalarRange(r, m, ws, bs, 0, w);
    if (bs == 0) {
        for (; w + 4 <= nw; w += 4) {
            const __m256i v = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(m + w - ws));
            const __m256i rv = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(r + w));
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(r + w),
                                _mm256_and_si256(rv, v));
        }
    } else {
        for (; w + 4 <= nw; w += 4) {
            const __m256i hi = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(m + w - ws));
            const __m256i lo = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(m + w - ws - 1));
            const __m256i v = _mm256_or_si256(
                _mm256_slli_epi64(hi, static_cast<int>(bs)),
                _mm256_srli_epi64(lo, static_cast<int>(bitsPerWord - bs)));
            const __m256i rv = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(r + w));
            _mm256_storeu_si256(reinterpret_cast<__m256i *>(r + w),
                                _mm256_and_si256(rv, v));
        }
    }
    shiftAndScalarRange(r, m, ws, bs, w, nw);
}

#endif // SPM_SIMD_X86

// ---------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------

struct KernelOps {
    void (*narrow)(const Symbol *, std::size_t, std::uint8_t *);
    void (*transposeBytes)(const std::uint8_t *, std::size_t, unsigned,
                           std::uint64_t *, std::size_t);
    void (*eqSweep)(const std::uint64_t *, std::size_t, unsigned, Symbol,
                    std::uint64_t *, std::size_t);
    void (*shiftAnd)(std::uint64_t *, const std::uint64_t *, std::size_t,
                     std::size_t, unsigned);
};

constexpr KernelOps scalarOps = {narrowScalar, transposeBytesScalar,
                                 eqSweepScalar, shiftAndScalar};
#if SPM_SIMD_X86
constexpr KernelOps sse2Ops = {narrowSse2, transposeBytesSse2, eqSweepSse2,
                               shiftAndSse2};
constexpr KernelOps avx2Ops = {narrowAvx2, transposeBytesAvx2, eqSweepAvx2,
                               shiftAndAvx2};
#endif

const KernelOps &
opsFor(SimdIsa isa)
{
#if SPM_SIMD_X86
    if (isa == SimdIsa::Avx2)
        return avx2Ops;
    if (isa == SimdIsa::Sse2)
        return sse2Ops;
#endif
    (void)isa;
    return scalarOps;
}

SimdIsa
detectBest()
{
    SimdIsa best = SimdIsa::Scalar;
    if (simdIsaSupported(SimdIsa::Sse2))
        best = SimdIsa::Sse2;
    if (simdIsaSupported(SimdIsa::Avx2))
        best = SimdIsa::Avx2;
    if (const char *env = std::getenv("SPM_SIMD_ISA")) {
        const std::string cap(env);
        SimdIsa capped = best;
        if (cap == "scalar")
            capped = SimdIsa::Scalar;
        else if (cap == "sse2")
            capped = SimdIsa::Sse2;
        else if (cap == "avx2")
            capped = SimdIsa::Avx2;
        if (static_cast<unsigned>(capped) < static_cast<unsigned>(best))
            best = capped;
    }
    return best;
}

} // namespace

const char *
simdIsaName(SimdIsa isa)
{
    switch (isa) {
    case SimdIsa::Sse2:
        return "sse2";
    case SimdIsa::Avx2:
        return "avx2";
    case SimdIsa::Scalar:
        break;
    }
    return "scalar";
}

bool
simdIsaSupported(SimdIsa isa)
{
    switch (isa) {
    case SimdIsa::Scalar:
        return true;
    case SimdIsa::Sse2:
        return SPM_SIMD_X86 != 0;
    case SimdIsa::Avx2:
#if SPM_SIMD_X86
        return __builtin_cpu_supports("avx2") != 0;
#else
        return false;
#endif
    }
    return false;
}

SimdIsa
bestSimdIsa()
{
    static const SimdIsa best = detectBest();
    return best;
}

SimdParallelMatcher::SimdParallelMatcher() : tier(bestSimdIsa()) {}

SimdParallelMatcher::SimdParallelMatcher(SimdIsa forced)
    : tier(forced), forcedTier(true)
{
    while (!simdIsaSupported(tier))
        tier = (tier == SimdIsa::Avx2) ? SimdIsa::Sse2 : SimdIsa::Scalar;
}

std::string
SimdParallelMatcher::name() const
{
    if (forcedTier)
        return std::string("simd-parallel-") + simdIsaName(tier);
    return "simd-parallel";
}

const std::vector<std::uint64_t> &
SimdParallelMatcher::matchPacked(const std::vector<Symbol> &text,
                                 const std::vector<Symbol> &pattern)
{
    const std::size_t n = text.size();
    const std::size_t k = pattern.size();
    const std::size_t nw = wordCount(n);
    wordOps = 0;
    planesBuilt = 0;
    usedShortPath = false;

    result.assign(nw, 0);
    if (k == 0 || n == 0 || k > n)
        return result;

    // The planes must cover every bit that can distinguish a text
    // character from a pattern character.
    Symbol seen = orReduceSymbols(text.data(), n);
    for (Symbol c : pattern)
        if (c != wildcardSymbol)
            seen = static_cast<Symbol>(seen | c);
    const unsigned planes = widthOf(seen);
    planesBuilt = planes;
    const KernelOps &ops = opsFor(tier);

    // Transpose into bit planes. Alphabets of at most 8 bits narrow
    // to bytes first so the transpose runs compare + movemask, 16 or
    // 32 characters per instruction; the pad up to the word boundary
    // is zeroed and its result bits are masked off below.
    if (planeArena.size() < static_cast<std::size_t>(planes) * nw)
        planeArena.resize(static_cast<std::size_t>(planes) * nw);
    if (planes <= 8) {
        if (byteText.size() < nw * bitsPerWord)
            byteText.resize(nw * bitsPerWord);
        ops.narrow(text.data(), n, byteText.data());
        std::fill(byteText.begin() + static_cast<std::ptrdiff_t>(n),
                  byteText.begin() +
                      static_cast<std::ptrdiff_t>(nw * bitsPerWord),
                  std::uint8_t(0));
        ops.transposeBytes(byteText.data(), nw, planes, planeArena.data(),
                           nw);
    } else {
        transposeWideScalar(text.data(), n, nw, planes, planeArena.data(),
                            nw);
    }
    wordOps += static_cast<std::uint64_t>(planes) * nw;

    if (k <= bitsPerWord) {
        // Short-pattern fused recurrence: every shift distance is
        // under one word, so the whole product
        //     r = AND_j shiftUp(eq(p_j), k-1-j)
        // folds into a single pass -- each plane word is loaded once,
        // each distinct symbol's equality word is formed in registers,
        // and the only cross-word state is the previous equality word
        // per symbol (the shifted-in history).
        usedShortPath = true;
        Symbol psym[bitsPerWord];
        unsigned pshift[bitsPerWord];
        std::size_t nPos = 0;
        for (std::size_t j = 0; j < k; ++j) {
            const Symbol c = pattern[j];
            if (c == wildcardSymbol)
                continue;
            const unsigned s = static_cast<unsigned>((k - 1) - j);
            std::size_t p = nPos;
            while (p > 0 && psym[p - 1] > c) {
                psym[p] = psym[p - 1];
                pshift[p] = pshift[p - 1];
                --p;
            }
            psym[p] = c;
            pshift[p] = s;
            ++nPos;
        }
        std::uint64_t prevEq[bitsPerWord] = {0};
        const std::uint64_t *pl = planeArena.data();
        for (std::size_t w = 0; w < nw; ++w) {
            std::uint64_t acc = ~std::uint64_t(0);
            std::size_t idx = 0;
            std::size_t g = 0;
            while (idx < nPos) {
                const Symbol c = psym[idx];
                std::uint64_t eq = ~std::uint64_t(0);
                for (unsigned b = 0; b < planes; ++b) {
                    const std::uint64_t p = pl[b * nw + w];
                    eq &= ((c >> b) & 1u) ? p : ~p;
                }
                const std::uint64_t prev = prevEq[g];
                do {
                    const unsigned s = pshift[idx];
                    acc &= s != 0
                               ? ((eq << s) | (prev >> (bitsPerWord - s)))
                               : eq;
                    ++idx;
                } while (idx < nPos && psym[idx] == c);
                prevEq[g] = eq;
                ++g;
            }
            result[w] = acc;
        }
        std::size_t nGroups = 0;
        for (std::size_t i = 0; i < nPos; ++i)
            if (i == 0 || psym[i] != psym[i - 1])
                ++nGroups;
        wordOps += nw * (static_cast<std::uint64_t>(nGroups) * planes +
                         nPos);
    } else {
        // Long patterns keep the wordpar organization -- equality
        // masks cached per distinct symbol, one shifted AND sweep per
        // non-wild pattern position -- with the sweeps vectorized.
        std::fill(result.begin(), result.end(), ~std::uint64_t(0));
        eqIndex.clear();
        for (Symbol c : pattern) {
            if (c == wildcardSymbol)
                continue;
            bool known = false;
            for (const auto &e : eqIndex)
                if (e.first == c) {
                    known = true;
                    break;
                }
            if (!known)
                eqIndex.emplace_back(c, eqIndex.size() * nw);
        }
        if (eqArena.size() < eqIndex.size() * nw)
            eqArena.resize(eqIndex.size() * nw);
        for (const auto &e : eqIndex) {
            ops.eqSweep(planeArena.data(), nw, planes, e.first,
                        eqArena.data() + e.second, nw);
            wordOps += static_cast<std::uint64_t>(planes) * nw;
        }
        for (std::size_t j = 0; j < k; ++j) {
            const Symbol c = pattern[j];
            if (c == wildcardSymbol)
                continue;
            const std::uint64_t *m = nullptr;
            for (const auto &e : eqIndex)
                if (e.first == c) {
                    m = eqArena.data() + e.second;
                    break;
                }
            const std::size_t s = (k - 1) - j;
            ops.shiftAnd(result.data(), m, nw, s / bitsPerWord,
                         static_cast<unsigned>(s % bitsPerWord));
            wordOps += nw;
        }
    }

    // Positions with incomplete substrings (i < k-1) are 0 by
    // definition, as is the slack past the text in the last word.
    const std::size_t lead = k - 1;
    for (std::size_t w = 0; w < lead / bitsPerWord && w < nw; ++w)
        result[w] = 0;
    if (lead / bitsPerWord < nw && lead % bitsPerWord != 0)
        result[lead / bitsPerWord] &= ~std::uint64_t(0)
                                      << (lead % bitsPerWord);
    if (n % bitsPerWord != 0)
        result[nw - 1] &=
            ~std::uint64_t(0) >> (bitsPerWord - n % bitsPerWord);
    return result;
}

std::vector<bool>
SimdParallelMatcher::match(const std::vector<Symbol> &text,
                           const std::vector<Symbol> &pattern)
{
    return unpackResultBits(matchPacked(text, pattern), text.size());
}

std::size_t
SimdParallelMatcher::arenaBytes() const
{
    return byteText.capacity() * sizeof(std::uint8_t) +
           (planeArena.capacity() + eqArena.capacity() +
            result.capacity()) *
               sizeof(std::uint64_t) +
           eqIndex.capacity() * sizeof(eqIndex[0]);
}

std::vector<bool>
unpackResultBits(const std::vector<std::uint64_t> &packed, std::size_t n)
{
    std::vector<bool> out(n, false);
    for (std::size_t w = 0; w < packed.size(); ++w) {
        std::uint64_t word = packed[w];
        const std::size_t base = w * bitsPerWord;
        while (word != 0) {
            const unsigned i =
                static_cast<unsigned>(__builtin_ctzll(word));
            out[base + i] = true;
            word &= word - 1;
        }
    }
    return out;
}

} // namespace spm::core
