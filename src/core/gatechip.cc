#include "core/gatechip.hh"

#include <algorithm>

#include "core/behavioral.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace spm::core
{

using gate::LogicValue;
using gate::NodeId;

GateChip::GateChip(std::size_t num_cells, BitWidth bits_per_char,
                   Picoseconds beat_period_ps, Picoseconds retention_ps)
    : numCells(num_cells), numBits(bits_per_char),
      net("pattern-matcher"), clk(net, beat_period_ps, retention_ps)
{
    spm_assert(num_cells > 0, "chip needs at least one cell");
    spm_assert(bits_per_char >= 1 && bits_per_char <= 8,
               "gate-level chip supports 1..8 bits per character");

    // Primary inputs on the chip edges.
    pInNodes.resize(numBits);
    sInNodes.resize(numBits);
    for (unsigned row = 0; row < numBits; ++row) {
        pInNodes[row] = net.addNode("p_in" + std::to_string(row));
        sInNodes[row] = net.addNode("s_in" + std::to_string(row));
        net.markInput(pInNodes[row]);
        net.markInput(sInNodes[row]);
    }
    lambdaInNode = net.addNode("lambda_in");
    xInNode = net.addNode("x_in");
    rInNode = net.addNode("r_in");
    net.markInput(lambdaInNode);
    net.markInput(xInNode);
    net.markInput(rInNode);

    // Constant logical-TRUE d inputs above the top comparator row,
    // presented in each top cell's expected polarity.
    std::vector<NodeId> d_top(numCells);
    for (std::size_t c = 0; c < numCells; ++c) {
        d_top[c] = net.addNode("d_top" + std::to_string(c));
        net.markInput(d_top[c]);
    }

    // Pre-create every inter-cell wire, then instantiate cells in any
    // order (the builders only attach devices between given nodes).
    auto wire_name = [](const char *base, unsigned row, std::size_t col) {
        return std::string(base) + std::to_string(row) + "_" +
               std::to_string(col);
    };
    // p_out[row][c]: pattern wire driven by comparator (row, c).
    // s_out[row][c]: string wire driven by comparator (row, c).
    // d_out[row][c]: comparison wire driven down by (row, c).
    std::vector<std::vector<NodeId>> p_out(numBits), s_out(numBits),
        d_out(numBits);
    for (unsigned row = 0; row < numBits; ++row) {
        p_out[row].resize(numCells);
        s_out[row].resize(numCells);
        d_out[row].resize(numCells);
        for (std::size_t c = 0; c < numCells; ++c) {
            p_out[row][c] = net.addNode(wire_name("p_o", row, c));
            s_out[row][c] = net.addNode(wire_name("s_o", row, c));
            d_out[row][c] = net.addNode(wire_name("d_o", row, c));
        }
    }
    // Accumulator row wires.
    std::vector<NodeId> l_out(numCells), x_out(numCells), r_out(numCells);
    for (std::size_t c = 0; c < numCells; ++c) {
        l_out[c] = net.addNode("l_o_" + std::to_string(c));
        x_out[c] = net.addNode("x_o_" + std::to_string(c));
        r_out[c] = net.addNode("r_o_" + std::to_string(c));
    }

    // Comparator grid.
    for (unsigned row = 0; row < numBits; ++row) {
        for (std::size_t c = 0; c < numCells; ++c) {
            gate::ComparatorPorts ports;
            ports.pIn = c == 0 ? pInNodes[row] : p_out[row][c - 1];
            ports.sIn =
                c == numCells - 1 ? sInNodes[row] : s_out[row][c + 1];
            ports.dIn = row == 0 ? d_top[c] : d_out[row - 1][c];
            ports.pOut = p_out[row][c];
            ports.sOut = s_out[row][c];
            ports.dOut = d_out[row][c];
            gate::buildComparator(
                net,
                "cmp" + std::to_string(row) + "_" + std::to_string(c),
                ports, clk.phaseFor(parity(row, c)),
                positiveTwin(row, c));
        }
    }

    // Accumulator row (row index numBits in the checkerboard).
    for (std::size_t c = 0; c < numCells; ++c) {
        gate::AccumulatorPorts ports;
        ports.lambdaIn = c == 0 ? lambdaInNode : l_out[c - 1];
        ports.xIn = c == 0 ? xInNode : x_out[c - 1];
        ports.dIn = d_out[numBits - 1][c];
        ports.rIn = c == numCells - 1 ? rInNode : r_out[c + 1];
        ports.lambdaOut = l_out[c];
        ports.xOut = x_out[c];
        ports.rOut = r_out[c];
        const unsigned par = parity(numBits, c);
        gate::buildAccumulator(net, "acc" + std::to_string(c), ports,
                               clk.phaseFor(par),
                               clk.phaseFor(1 - par),
                               positiveTwin(numBits, c));
    }

    rOutNode = r_out[0];
    // The positive twin emits inverted outputs.
    rOutInverted = positiveTwin(numBits, 0);
    lambdaInInverted = !positiveTwin(numBits, 0);
    rInInverted = !positiveTwin(numBits, numCells - 1);

    // Drive the top-row d constants once: logical TRUE in the
    // polarity each top cell expects.
    for (std::size_t c = 0; c < numCells; ++c) {
        const bool pos = positiveTwin(0, c);
        net.setInput(d_top[c], pos ? LogicValue::H : LogicValue::L, 0);
    }
    net.settle(0);
}

void
GateChip::enableLevelized()
{
    if (accel)
        return;
    accel = std::make_unique<gate::LevelizedNetlist>(net);
    accel->attach();
}

void
GateChip::drive(NodeId node, bool value, bool positive_cell)
{
    const bool level = positive_cell ? value : !value;
    net.setInput(node, level ? LogicValue::H : LogicValue::L, clk.now());
}

void
GateChip::setPatternBit(unsigned row, bool bit)
{
    spm_assert(row < numBits, "row out of range");
    drive(pInNodes[row], bit, positiveTwin(row, 0));
}

void
GateChip::setStringBit(unsigned row, bool bit)
{
    spm_assert(row < numBits, "row out of range");
    drive(sInNodes[row], bit, positiveTwin(row, numCells - 1));
}

void
GateChip::setControl(bool lambda, bool x)
{
    const bool pos = positiveTwin(numBits, 0);
    drive(lambdaInNode, lambda, pos);
    drive(xInNode, x, pos);
}

void
GateChip::setResultIn(bool r)
{
    drive(rInNode, r, positiveTwin(numBits, numCells - 1));
}

void
GateChip::tick()
{
    net.settle(clk.now());
    clk.tickBeat();
}

bool
GateChip::resultOut() const
{
    const LogicValue v = net.value(rOutNode);
    spm_assert(v != LogicValue::X, "result output is undefined");
    const bool raw = v == LogicValue::H;
    return rOutInverted ? !raw : raw;
}

bool
GateChip::resultKnown() const
{
    return net.value(rOutNode) != LogicValue::X;
}

std::vector<bool>
GateLevelMatcher::match(const std::vector<Symbol> &text,
                        const std::vector<Symbol> &pattern)
{
    const std::size_t n = text.size();
    const std::size_t len = pattern.size();
    std::vector<bool> result(n, false);
    if (len == 0 || n == 0 || len > n) {
        beatsUsed = 0;
        return result;
    }

    const std::size_t m = cells == 0 ? len : cells;
    BitWidth bits = bitsPerChar;
    if (bits == 0)
        bits = std::max(requiredBits(text), requiredBits(pattern));

    GateChip chip(m, bits);
    if (chipPrep)
        chipPrep(chip);
    if (useLevelized)
        chip.enableLevelized();
    transistors = chip.netlist().transistorCount();
    const std::uint64_t evals_before = chip.netlist().evalCount();
    const ChipFeedPlan plan(m, pattern, n);
    const unsigned phi = plan.textPhase();

    // Dynamic storage wakes up undefined (X): before the text enters,
    // the pattern must recirculate long enough for a lambda to pass
    // every accumulator and define its temporary result -- the
    // power-up priming the real chip needs too. The warm-up is even
    // so the meeting parity of the two streams is unchanged.
    const Beat warm = 2 * static_cast<Beat>(len + m);
    const Beat total = warm + plan.totalBeats() + bits + 2;

    // Result r_i exits the accumulator row's left edge on beat
    // warm + 2 i + phi + bits + m - 1 (the same schedule the
    // behavioral model exhibits; the hardware has no validity bits,
    // so exits are collected by beat number).
    const Beat first_exit = warm + phi + bits + m - 1;
    std::size_t collected = 0;

    for (Beat u = 0; u < total && collected < n; ++u) {
        for (unsigned row = 0; row < bits; ++row) {
            const unsigned bit_idx = bits - 1 - row;
            const PatToken p =
                u >= row ? plan.patternAt(u - row) : PatToken{};
            chip.setPatternBit(row,
                               p.valid && ((p.sym >> bit_idx) & 1));
            const StrToken s = u >= warm + row
                ? plan.stringAt(u - warm - row, text)
                : StrToken{};
            chip.setStringBit(row,
                              s.valid && ((s.sym >> bit_idx) & 1));
        }
        const Beat shift = bits - 1;
        const CtlToken ctl =
            u >= shift ? plan.controlAt(u - shift) : CtlToken{};
        chip.setControl(ctl.valid && ctl.lambda, ctl.valid && ctl.x);
        const ResToken r = u >= warm + shift
            ? plan.resultAt(u - warm - shift)
            : ResToken{};
        chip.setResultIn(r.valid && r.value);

        chip.tick();

        if (u >= first_exit && (u - first_exit) % 2 == 0) {
            const auto i =
                static_cast<std::size_t>((u - first_exit) / 2);
            if (i < n) {
                // Warm-up positions may still be X; they are masked
                // to 0 by the problem definition anyway.
                const bool value =
                    chip.resultKnown() && chip.resultOut();
                result[i] = i >= len - 1 && value;
                if (resultObserver)
                    resultObserver(i, chip);
                ++collected;
            }
        }
    }
    spm_assert(collected == n, "collected ", collected, " of ", n,
               " results");
    beatsUsed = chip.beat();
    evalsUsed = chip.netlist().evalCount() - evals_before;
    return result;
}

} // namespace spm::core
