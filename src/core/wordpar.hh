/**
 * @file
 * The bit-sliced word-parallel matcher kernel.
 *
 * The chip's whole argument is one result bit per text character per
 * beat (Section 3.1); this kernel is the software counterpart that
 * sustains that rate on a modern word machine. The text is first
 * transposed into bit planes -- plane b holds bit b of 64 consecutive
 * characters per machine word, exactly the bit-serial organization of
 * Section 3.3.2 turned sideways -- and every pattern position is then
 * applied with Shift-And-style word recurrences:
 *
 *     eq(c)[i] = AND_b (plane_b[i] == bit b of c)      (XNOR + AND)
 *     r[i]     = AND_j eq(p_j)[i - (k-1) + j]          (shift + AND)
 *
 * so one 64-bit AND evaluates 64 text positions at once. Wild cards
 * cost nothing: their factor is all-ones and is skipped. The kernel
 * handles any pattern length (shifts cross word boundaries) and is
 * verified bit-identical against core::ReferenceMatcher by the
 * property tests.
 */

#ifndef SPM_CORE_WORDPAR_HH
#define SPM_CORE_WORDPAR_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "core/matcher.hh"

namespace spm::core
{

/**
 * Word-parallel evaluation of the Section 3.1 problem.
 *
 * Stateless between calls apart from the scratch arena (planes,
 * equality masks, the packed result), which is retained and reused so
 * steady-state match() calls allocate nothing. One matcher instance
 * may be shared across requests of any shape, but not across threads
 * concurrently; the sharded service gives each shard its own
 * instance.
 */
class WordParallelMatcher : public Matcher
{
  public:
    std::vector<bool> match(const std::vector<Symbol> &text,
                            const std::vector<Symbol> &pattern) override;

    std::string name() const override { return "word-parallel"; }

    /**
     * The kernel proper: the packed result stream, 64 text positions
     * per word, word w bit i corresponding to text position 64 w + i.
     * Bits for incomplete substrings (i < k-1) are 0, as are the
     * unused bits past the text length in the last word. The returned
     * reference points into the arena and is valid until the next
     * call on this instance.
     */
    const std::vector<std::uint64_t> &matchPacked(
        const std::vector<Symbol> &text,
        const std::vector<Symbol> &pattern);

    /** 64-bit word operations performed by the last matchPacked(). */
    std::uint64_t lastWordOps() const { return wordOps; }

    /** Bit planes built by the last matchPacked(). */
    unsigned lastPlanes() const { return planesBuilt; }

    /** High-water scratch footprint in bytes (proves arena reuse). */
    std::size_t arenaBytes() const;

  private:
    std::uint64_t wordOps = 0;
    unsigned planesBuilt = 0;

    // --- the scratch arena (reused across calls) ---------------------
    std::vector<std::uint64_t> planeArena; ///< planesBuilt x nw, flat
    std::vector<std::uint64_t> eqArena;    ///< equality masks, flat
    std::vector<std::pair<Symbol, std::size_t>> eqIndex;
    std::vector<std::uint64_t> result; ///< packed result words
};

} // namespace spm::core

#endif // SPM_CORE_WORDPAR_HH
