#include "core/behavioral.hh"

#include "util/logging.hh"

namespace spm::core
{

ChipFeedPlan::ChipFeedPlan(std::size_t num_cells,
                           const std::vector<Symbol> &pattern,
                           std::size_t text_len)
    : cells(num_cells), pat(pattern), textLen(text_len)
{
    spm_assert(!pat.empty(), "empty pattern");
    spm_assert(pat.size() <= cells,
               "pattern of length ", pat.size(),
               " exceeds the chip's ", cells,
               " character cells (Section 3.4: cascade chips or use "
               "the multipass driver)");

    // Pattern characters are fed on even beats; for the two streams
    // to meet inside cells rather than pass between them, the text
    // phase must make (beat difference + cells - 1) even.
    phi = (cells - 1) % 2;

    // The last text character is fed before beat 2(n-1)+phi and its
    // result exits the array phi + cells beats after its own feed
    // beat; add a small margin.
    total = 2 * static_cast<Beat>(textLen) + phi +
            static_cast<Beat>(cells) + 4;
}

PatToken
ChipFeedPlan::patternAt(Beat beat) const
{
    if (beat % 2 != 0)
        return PatToken{}; // gaps between characters
    const std::size_t idx =
        static_cast<std::size_t>(beat / 2) % pat.size();
    const Symbol s = pat[idx];
    // Wild cards are encoded as an ordinary stored character; the x
    // control bit (not the comparator) makes them match anything.
    return PatToken{s == wildcardSymbol ? Symbol(0) : s, true};
}

CtlToken
ChipFeedPlan::controlAt(Beat beat) const
{
    // Control bits trail the pattern by one beat: the comparator's
    // result for p_j reaches the accumulator one beat after p_j
    // itself was latched.
    if (beat % 2 != 1)
        return CtlToken{};
    const std::size_t idx =
        static_cast<std::size_t>((beat - 1) / 2) % pat.size();
    CtlToken tok;
    tok.lambda = idx == pat.size() - 1;
    tok.x = pat[idx] == wildcardSymbol;
    tok.valid = true;
    return tok;
}

StrToken
ChipFeedPlan::stringAt(Beat beat, const std::vector<Symbol> &text) const
{
    if (beat % 2 != phi % 2 || beat < phi)
        return StrToken{};
    const auto i = static_cast<std::size_t>((beat - phi) / 2);
    if (i >= textLen)
        return StrToken{};
    return StrToken{text[i], true};
}

ResToken
ChipFeedPlan::resultAt(Beat beat) const
{
    // Empty result slots enter one beat after their text character,
    // riding through the accumulator row beside it.
    const unsigned r_phase = (phi + 1) % 2;
    if (beat % 2 != r_phase || beat < phi + 1)
        return ResToken{};
    const auto i = static_cast<std::size_t>((beat - phi - 1) / 2);
    if (i >= textLen)
        return ResToken{};
    return ResToken{false, true};
}

BehavioralChip::BehavioralChip(std::size_t num_cells,
                               Picoseconds beat_period_ps,
                               CellVariant variant)
    : numCells(num_cells), eng(beat_period_ps)
{
    spm_assert(num_cells > 0, "chip needs at least one cell");

    comparators.reserve(numCells);
    accumulators.reserve(numCells);
    for (std::size_t c = 0; c < numCells; ++c) {
        const auto par = static_cast<unsigned>(c % 2);
        const std::string cell_name = "cmp" + std::to_string(c);
        comparators.push_back(
            variant == CellVariant::SelfChecking
                ? &eng.makeCell<SelfCheckingComparatorCell>(cell_name,
                                                            par)
                : &eng.makeCell<CharComparatorCell>(cell_name, par));
    }
    for (std::size_t c = 0; c < numCells; ++c) {
        accumulators.push_back(&eng.makeCell<AccumulatorCell>(
            "acc" + std::to_string(c),
            static_cast<unsigned>((c + 1) % 2)));
    }

    for (std::size_t c = 0; c < numCells; ++c) {
        const systolic::Latch<PatToken> *p_src =
            c == 0 ? &pIn : &comparators[c - 1]->pOut();
        const systolic::Latch<StrToken> *s_src =
            c == numCells - 1 ? &sIn : &comparators[c + 1]->sOut();
        comparators[c]->connect(p_src, s_src);

        const systolic::Latch<CtlToken> *ctl_src =
            c == 0 ? &ctlIn : &accumulators[c - 1]->ctlOut();
        const systolic::Latch<ResToken> *r_src =
            c == numCells - 1 ? &rIn : &accumulators[c + 1]->rOut();
        accumulators[c]->connect(ctl_src, r_src,
                                 &comparators[c]->dOut());
    }
}

std::uint64_t
BehavioralChip::selfCheckMismatches() const
{
    std::uint64_t total = 0;
    for (const CharComparatorCell *c : comparators)
        total += c->selfCheckMismatches();
    return total;
}

std::size_t
BehavioralChip::cellIndex(std::size_t c, bool comparator) const
{
    spm_assert(c < numCells, "cell index out of range");
    // Comparators are inserted into the engine first, accumulators
    // after them, one of each per character cell.
    return comparator ? c : numCells + c;
}

PatToken
BehavioralChip::patternOut() const
{
    return comparators.back()->pOut().read();
}

CtlToken
BehavioralChip::controlOut() const
{
    return accumulators.back()->ctlOut().read();
}

StrToken
BehavioralChip::stringOut() const
{
    return comparators.front()->sOut().read();
}

ResToken
BehavioralChip::resultOut() const
{
    return accumulators.front()->rOut().read();
}

std::pair<std::vector<bool>, Beat>
runMatchProtocol(const ChipHooks &hooks, std::size_t total_cells,
                 const std::vector<Symbol> &text,
                 const std::vector<Symbol> &pattern)
{
    const std::size_t n = text.size();
    const std::size_t len = pattern.size();
    std::vector<bool> result(n, false);
    if (len == 0 || n == 0 || len > n)
        return {result, 0};

    const ChipFeedPlan plan(total_cells, pattern, n);
    std::size_t collected = 0;
    Beat beat = 0;
    for (; beat < plan.totalBeats() && collected < n; ++beat) {
        hooks.feedInputs(plan.patternAt(beat), plan.controlAt(beat),
                         plan.stringAt(beat, text), plan.resultAt(beat));
        hooks.step();
        const ResToken out = hooks.resultOut();
        if (out.valid) {
            spm_assert(collected < n, "more results than text characters");
            // Results for incomplete substrings (i < k) are noise
            // from partially filled cells; the problem defines them
            // as 0 (Section 3.1).
            result[collected] = collected >= len - 1 && out.value;
            ++collected;
        }
    }
    spm_assert(collected == n, "collected ", collected, " of ", n,
               " results after ", beat, " beats");
    return {result, beat};
}

std::vector<bool>
BehavioralMatcher::match(const std::vector<Symbol> &text,
                         const std::vector<Symbol> &pattern)
{
    const std::size_t m = cells == 0 ? pattern.size() : cells;
    if (pattern.empty() || text.empty() || pattern.size() > text.size()) {
        beatsUsed = 0;
        return std::vector<bool>(text.size(), false);
    }

    BehavioralChip chip(m);
    ChipHooks hooks;
    hooks.feedInputs = [&chip](const PatToken &p, const CtlToken &c,
                               const StrToken &s, const ResToken &r) {
        chip.feedPattern(p);
        chip.feedControl(c);
        chip.feedString(s);
        chip.feedResult(r);
    };
    hooks.step = [&chip] { chip.step(); };
    hooks.resultOut = [&chip] { return chip.resultOut(); };

    auto [result, beats] =
        runMatchProtocol(hooks, m, text, pattern);
    beatsUsed = beats;
    return result;
}

} // namespace spm::core
