#include "core/cells.hh"

#include <sstream>

#include "util/logging.hh"

namespace spm::core
{

namespace
{

std::string
symChar(Symbol s)
{
    if (s == wildcardSymbol)
        return "X";
    if (s < 23)
        return std::string(1, static_cast<char>('A' + s));
    return std::to_string(s);
}

using systolic::FaultOp;
using systolic::FaultPoint;

bool
corruptBit(FaultOp op, bool cur)
{
    switch (op) {
    case FaultOp::Stuck0:
        return false;
    case FaultOp::Stuck1:
        return true;
    case FaultOp::Flip:
        return !cur;
    }
    return cur;
}

Symbol
corruptSym(FaultOp op, Symbol sym, unsigned bit)
{
    const Symbol mask = static_cast<Symbol>(Symbol(1) << (bit % 16));
    switch (op) {
    case FaultOp::Stuck0:
        return sym & static_cast<Symbol>(~mask);
    case FaultOp::Stuck1:
        return sym | mask;
    case FaultOp::Flip:
        return sym ^ mask;
    }
    return sym;
}

} // namespace

CharComparatorCell::CharComparatorCell(std::string cell_name,
                                       unsigned parity)
    : CellBase(std::move(cell_name), parity)
{
}

void
CharComparatorCell::connect(const systolic::Latch<PatToken> *p_src,
                            const systolic::Latch<StrToken> *s_src)
{
    spm_assert(p_src && s_src, "comparator connected to null sources");
    pSrc = p_src;
    sSrc = s_src;
}

void
CharComparatorCell::evaluate(Beat)
{
    spm_assert(pSrc && sSrc, "comparator '", cellName(), "' not connected");
    const PatToken p_new = pSrc->read();
    const StrToken s_new = sSrc->read();

    DToken d_new;
    d_new.valid = p_new.valid && s_new.valid;
    d_new.value = d_new.valid && p_new.sym == s_new.sym;

    p.write(p_new);
    s.write(s_new);
    d.write(d_new);
}

void
CharComparatorCell::commit()
{
    p.commit();
    s.commit();
    d.commit();
}

std::string
CharComparatorCell::stateString() const
{
    std::ostringstream os;
    os << (p.read().valid ? symChar(p.read().sym) : std::string("."))
       << "/"
       << (s.read().valid ? symChar(s.read().sym) : std::string("."));
    return os.str();
}

bool
CharComparatorCell::applyFault(FaultPoint point, FaultOp op, unsigned bit)
{
    switch (point) {
    case FaultPoint::PatternLatch: {
        PatToken tok = p.read();
        tok.sym = corruptSym(op, tok.sym, bit);
        p.force(tok);
        return true;
    }
    case FaultPoint::StringLatch: {
        StrToken tok = s.read();
        tok.sym = corruptSym(op, tok.sym, bit);
        s.force(tok);
        return true;
    }
    case FaultPoint::CompareLatch: {
        DToken tok = d.read();
        tok.value = corruptBit(op, tok.value);
        d.force(tok);
        return true;
    }
    default:
        return false;
    }
}

SelfCheckingComparatorCell::SelfCheckingComparatorCell(
    std::string cell_name, unsigned parity)
    : CharComparatorCell(std::move(cell_name), parity)
{
}

void
SelfCheckingComparatorCell::evaluate(Beat beat)
{
    // Check first: by now the committed primary d has been exposed to
    // whatever fault fired after the previous commit, while the
    // shadow copy (separate duplicated hardware) has not.
    if (d.read() != dShadow.read())
        ++mismatches;

    CharComparatorCell::evaluate(beat);

    // Second, independent computation of the comparison result.
    const PatToken p_new = pSrc->read();
    const StrToken s_new = sSrc->read();
    DToken d_dup;
    d_dup.valid = p_new.valid && s_new.valid;
    d_dup.value = d_dup.valid && p_new.sym == s_new.sym;
    dShadow.write(d_dup);
}

void
SelfCheckingComparatorCell::commit()
{
    CharComparatorCell::commit();
    dShadow.commit();
}

bool
SelfCheckingComparatorCell::applyFault(FaultPoint point, FaultOp op,
                                       unsigned bit)
{
    // The shadow comparator is physically separate hardware: a fault
    // addressed at this cell lands on the primary copy only, which is
    // exactly the asymmetry the duplicate comparison detects. Stream
    // latch faults (pattern/string) corrupt the shared token both
    // copies read, so those stay the parity check's job.
    return CharComparatorCell::applyFault(point, op, bit);
}

BitComparatorCell::BitComparatorCell(std::string cell_name, unsigned parity)
    : CellBase(std::move(cell_name), parity)
{
}

void
BitComparatorCell::connect(const systolic::Latch<BitToken> *p_src,
                           const systolic::Latch<BitToken> *s_src,
                           const systolic::Latch<DToken> *d_src)
{
    spm_assert(p_src && s_src && d_src,
               "bit comparator connected to null sources");
    pSrc = p_src;
    sSrc = s_src;
    dSrc = d_src;
}

void
BitComparatorCell::evaluate(Beat)
{
    spm_assert(pSrc, "bit comparator '", cellName(), "' not connected");
    const BitToken p_new = pSrc->read();
    const BitToken s_new = sSrc->read();
    const DToken d_above = dSrc->read();

    DToken d_new;
    d_new.valid = p_new.valid && s_new.valid;
    d_new.value =
        d_new.valid && d_above.value && p_new.bit == s_new.bit;

    p.write(p_new);
    s.write(s_new);
    d.write(d_new);
}

void
BitComparatorCell::commit()
{
    p.commit();
    s.commit();
    d.commit();
}

std::string
BitComparatorCell::stateString() const
{
    std::ostringstream os;
    os << (p.read().valid ? (p.read().bit ? "1" : "0") : ".") << "/"
       << (s.read().valid ? (s.read().bit ? "1" : "0") : ".");
    return os.str();
}

bool
BitComparatorCell::applyFault(FaultPoint point, FaultOp op, unsigned)
{
    switch (point) {
    case FaultPoint::PatternLatch: {
        BitToken tok = p.read();
        tok.bit = corruptBit(op, tok.bit);
        p.force(tok);
        return true;
    }
    case FaultPoint::StringLatch: {
        BitToken tok = s.read();
        tok.bit = corruptBit(op, tok.bit);
        s.force(tok);
        return true;
    }
    case FaultPoint::CompareLatch: {
        DToken tok = d.read();
        tok.value = corruptBit(op, tok.value);
        d.force(tok);
        return true;
    }
    default:
        return false;
    }
}

AccumulatorCell::AccumulatorCell(std::string cell_name, unsigned parity)
    : CellBase(std::move(cell_name), parity)
{
}

void
AccumulatorCell::connect(const systolic::Latch<CtlToken> *ctl_src,
                         const systolic::Latch<ResToken> *r_src,
                         const systolic::Latch<DToken> *d_src)
{
    spm_assert(ctl_src && r_src && d_src,
               "accumulator connected to null sources");
    ctlSrc = ctl_src;
    rSrc = r_src;
    dSrc = d_src;
}

void
AccumulatorCell::evaluate(Beat)
{
    spm_assert(ctlSrc, "accumulator '", cellName(), "' not connected");
    const CtlToken c_new = ctlSrc->read();
    const ResToken r_in = rSrc->read();
    const DToken d_in = dSrc->read();
    const bool t_cur = t.read();

    // A valid comparison always coincides with a valid control token:
    // both ride the same pattern cadence. The converse need not hold
    // (the pattern recirculates even while no text is inside).
    spm_assert(!d_in.valid || c_new.valid,
               "accumulator '", cellName(),
               "': comparison result without control token "
               "(misaligned feed)");

    ResToken r_new = r_in;
    bool t_new = t_cur;
    if (c_new.valid) {
        const bool match = c_new.x || (d_in.valid && d_in.value);
        if (c_new.lambda) {
            // Replace the result riding with the last character of
            // the substring; slot validity is the stream's own.
            r_new.value = t_cur && match;
            t_new = true;
        } else {
            t_new = t_cur && match;
        }
    }

    ctl.write(c_new);
    r.write(r_new);
    t.write(t_new);
}

void
AccumulatorCell::commit()
{
    ctl.commit();
    r.commit();
    t.commit();
}

bool
AccumulatorCell::applyFault(FaultPoint point, FaultOp op, unsigned bit)
{
    switch (point) {
    case FaultPoint::ControlLatch: {
        CtlToken tok = ctl.read();
        // Bit 0 addresses lambda, bit 1 the wild-card flag.
        if (bit % 2 == 0)
            tok.lambda = corruptBit(op, tok.lambda);
        else
            tok.x = corruptBit(op, tok.x);
        ctl.force(tok);
        return true;
    }
    case FaultPoint::ResultLatch: {
        ResToken tok = r.read();
        tok.value = corruptBit(op, tok.value);
        r.force(tok);
        return true;
    }
    default:
        return false;
    }
}

std::string
AccumulatorCell::stateString() const
{
    std::ostringstream os;
    const CtlToken &c = ctl.read();
    if (c.valid)
        os << (c.lambda ? "L" : "-") << (c.x ? "x" : "-");
    else
        os << "..";
    os << (t.read() ? "t" : " ");
    if (r.read().valid)
        os << (r.read().value ? "R1" : "R0");
    return os.str();
}

} // namespace spm::core
