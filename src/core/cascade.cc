#include "core/cascade.hh"

#include "util/logging.hh"

namespace spm::core
{

ChipCascade::ChipCascade(std::size_t num_chips, std::size_t cells_per_chip,
                         Picoseconds beat_period_ps)
    : cellsEach(cells_per_chip)
{
    spm_assert(num_chips > 0 && cells_per_chip > 0,
               "cascade needs at least one chip with one cell");
    chips.reserve(num_chips);
    for (std::size_t i = 0; i < num_chips; ++i) {
        chips.push_back(
            std::make_unique<BehavioralChip>(cells_per_chip,
                                             beat_period_ps));
    }
}

void
ChipCascade::feedPattern(const PatToken &tok)
{
    chips.front()->feedPattern(tok);
}

void
ChipCascade::feedControl(const CtlToken &tok)
{
    chips.front()->feedControl(tok);
}

void
ChipCascade::feedString(const StrToken &tok)
{
    chips.back()->feedString(tok);
}

void
ChipCascade::feedResult(const ResToken &tok)
{
    chips.back()->feedResult(tok);
}

ResToken
ChipCascade::resultOut() const
{
    return chips.front()->resultOut();
}

void
ChipCascade::step()
{
    // Board-level wiring: every chip's committed outputs feed its
    // neighbor's input pins. Reading all outputs before stepping any
    // chip preserves the simultaneous movement of the single long
    // array -- a cascade is beat-for-beat identical to a monolithic
    // chip with the same total cell count.
    for (std::size_t i = 0; i + 1 < chips.size(); ++i) {
        // Pattern and control flow left to right.
        chips[i + 1]->feedPattern(chips[i]->patternOut());
        chips[i + 1]->feedControl(chips[i]->controlOut());
        // String and results flow right to left.
        chips[i]->feedString(chips[i + 1]->stringOut());
        chips[i]->feedResult(chips[i + 1]->resultOut());
    }
    for (auto &c : chips)
        c->step();
}

BehavioralChip &
ChipCascade::chip(std::size_t idx)
{
    spm_assert(idx < chips.size(), "chip index out of range");
    return *chips[idx];
}

unsigned
ChipCascade::pinsPerChip(BitWidth char_bits)
{
    // Pattern in + out and string in + out are char_bits wide each;
    // lambda, x in + out; result in + out; two clock phases; Vdd and
    // GND.
    return 4 * char_bits + 4 + 2 + 2 + 2;
}

std::vector<bool>
CascadeMatcher::match(const std::vector<Symbol> &text,
                      const std::vector<Symbol> &pattern)
{
    if (pattern.empty() || text.empty() || pattern.size() > text.size()) {
        beatsUsed = 0;
        return std::vector<bool>(text.size(), false);
    }

    ChipCascade cascade(numChips, cellsPerChip);
    ChipHooks hooks;
    hooks.feedInputs = [&cascade](const PatToken &p, const CtlToken &c,
                                  const StrToken &s, const ResToken &r) {
        cascade.feedPattern(p);
        cascade.feedControl(c);
        cascade.feedString(s);
        cascade.feedResult(r);
    };
    hooks.step = [&cascade] { cascade.step(); };
    hooks.resultOut = [&cascade] { return cascade.resultOut(); };

    auto [result, beats] =
        runMatchProtocol(hooks, cascade.totalCells(), text, pattern);
    beatsUsed = beats;
    return result;
}

} // namespace spm::core
