/**
 * @file
 * The pattern matcher's cells at the behavioral level.
 *
 * Section 3.2.1 splits each character cell into two modules: a
 * comparator (pattern and string streams flowing in opposite
 * directions, comparison result flowing down) and an accumulator
 * (end-of-pattern bit lambda and don't-care bit x flowing with the
 * pattern, results flowing with the string). This file implements
 * those cell algorithms verbatim over validity-tagged tokens, plus the
 * single-bit comparator of Figure 3-4 used by the bit-serial pipeline.
 *
 * Cells are connected to the latched outputs of their neighbors (or to
 * chip input latches) after construction, mirroring how the layout
 * step wires abutting cells.
 */

#ifndef SPM_CORE_CELLS_HH
#define SPM_CORE_CELLS_HH

#include <cstdint>
#include <string>

#include "systolic/cell.hh"
#include "systolic/latch.hh"
#include "util/types.hh"

namespace spm::core
{

/** A pattern character moving left to right through the comparators. */
struct PatToken
{
    Symbol sym = 0;
    bool valid = false;

    bool operator==(const PatToken &) const = default;
};

/** A text character moving right to left through the comparators. */
struct StrToken
{
    Symbol sym = 0;
    bool valid = false;

    bool operator==(const StrToken &) const = default;
};

/**
 * The pattern-side control pair moving through the accumulators:
 * lambda marks the last pattern character, x marks wild cards.
 */
struct CtlToken
{
    bool lambda = false;
    bool x = false;
    bool valid = false;

    bool operator==(const CtlToken &) const = default;
};

/** A result bit moving right to left with the string. */
struct ResToken
{
    bool value = false;
    bool valid = false;

    bool operator==(const ResToken &) const = default;
};

/** A comparison result moving down from comparator to accumulator. */
struct DToken
{
    bool value = false;
    bool valid = false;

    bool operator==(const DToken &) const = default;
};

/** A single bit of a character in the bit-serial pipeline. */
struct BitToken
{
    bool bit = false;
    bool valid = false;

    bool operator==(const BitToken &) const = default;
};

/**
 * Character-level comparator cell (Section 3.2.1):
 *
 *     pOut <- pIn
 *     sOut <- sIn
 *     dOut <- (pIn = sIn)
 *
 * The wild card is not resolved here; the x bit flowing through the
 * accumulator below overrides the comparison (Section 3.2.1).
 */
class CharComparatorCell : public systolic::CellBase
{
  public:
    CharComparatorCell(std::string cell_name, unsigned parity);

    /** Wire the cell to its left (pattern) and right (string) feeds. */
    void connect(const systolic::Latch<PatToken> *p_src,
                 const systolic::Latch<StrToken> *s_src);

    void evaluate(Beat beat) override;
    void commit() override;
    std::string stateString() const override;
    bool applyFault(systolic::FaultPoint point, systolic::FaultOp op,
                    unsigned bit) override;

    const systolic::Latch<PatToken> &pOut() const { return p; }
    const systolic::Latch<StrToken> &sOut() const { return s; }
    const systolic::Latch<DToken> &dOut() const { return d; }

    /** Mismatches seen by a self-checking variant; 0 for this cell. */
    virtual std::uint64_t selfCheckMismatches() const { return 0; }

  protected:
    const systolic::Latch<PatToken> *pSrc = nullptr;
    const systolic::Latch<StrToken> *sSrc = nullptr;
    systolic::Latch<PatToken> p;
    systolic::Latch<StrToken> s;
    systolic::Latch<DToken> d;
};

/**
 * Self-checking comparator variant (duplicated-comparator detection):
 * the d computation is carried twice, on the primary latch the
 * neighbors read and on an internal shadow latch, and the two copies
 * are compared at the start of every beat -- after any fault has had
 * the chance to corrupt the committed primary. A divergence means the
 * comparator (or its output latch) is lying, and is counted rather
 * than masked. Faults land only on the primary copy: the shadow
 * models physically separate duplicated hardware.
 */
class SelfCheckingComparatorCell : public CharComparatorCell
{
  public:
    SelfCheckingComparatorCell(std::string cell_name, unsigned parity);

    void evaluate(Beat beat) override;
    void commit() override;
    bool applyFault(systolic::FaultPoint point, systolic::FaultOp op,
                    unsigned bit) override;

    std::uint64_t selfCheckMismatches() const override
    {
        return mismatches;
    }

  private:
    systolic::Latch<DToken> dShadow;
    std::uint64_t mismatches = 0;
};

/**
 * Single-bit comparator cell (Figure 3-4): one bit of the pattern
 * flows left to right, one bit of the string right to left, and the
 * partial comparison result for the character pair flows top to
 * bottom, ANDing in this bit position:
 *
 *     pOut <- pIn
 *     sOut <- sIn
 *     dOut <- dIn AND (pIn = sIn)
 */
class BitComparatorCell : public systolic::CellBase
{
  public:
    BitComparatorCell(std::string cell_name, unsigned parity);

    /** Wire to the left/right bit feeds and the cell above. */
    void connect(const systolic::Latch<BitToken> *p_src,
                 const systolic::Latch<BitToken> *s_src,
                 const systolic::Latch<DToken> *d_src);

    void evaluate(Beat beat) override;
    void commit() override;
    std::string stateString() const override;
    bool applyFault(systolic::FaultPoint point, systolic::FaultOp op,
                    unsigned bit) override;

    const systolic::Latch<BitToken> &pOut() const { return p; }
    const systolic::Latch<BitToken> &sOut() const { return s; }
    const systolic::Latch<DToken> &dOut() const { return d; }

  private:
    const systolic::Latch<BitToken> *pSrc = nullptr;
    const systolic::Latch<BitToken> *sSrc = nullptr;
    const systolic::Latch<DToken> *dSrc = nullptr;
    systolic::Latch<BitToken> p;
    systolic::Latch<BitToken> s;
    systolic::Latch<DToken> d;
};

/**
 * Accumulator cell (Section 3.2.1): maintains the temporary result t
 * and, at the end of the pattern, uses it to replace the result
 * flowing right to left:
 *
 *     lambdaOut <- lambdaIn
 *     xOut      <- xIn
 *     IF lambdaIn THEN rOut <- t AND (xIn OR dIn); t <- TRUE
 *     ELSE            rOut <- rIn;  t <- t AND (xIn OR dIn)
 *
 * The lambda-beat comparison participates in the output so that all
 * k+1 pattern positions contribute exactly once between pattern
 * recirculations (see DESIGN.md on the published pseudo-code's
 * ambiguity here). The validity of the result slot is inherited from
 * the incoming result stream: the lambda write replaces the *value*
 * riding with the last character of its substring.
 */
class AccumulatorCell : public systolic::CellBase
{
  public:
    AccumulatorCell(std::string cell_name, unsigned parity);

    /** Wire to the control, result and comparator feeds. */
    void connect(const systolic::Latch<CtlToken> *ctl_src,
                 const systolic::Latch<ResToken> *r_src,
                 const systolic::Latch<DToken> *d_src);

    void evaluate(Beat beat) override;
    void commit() override;
    std::string stateString() const override;
    bool applyFault(systolic::FaultPoint point, systolic::FaultOp op,
                    unsigned bit) override;

    const systolic::Latch<CtlToken> &ctlOut() const { return ctl; }
    const systolic::Latch<ResToken> &rOut() const { return r; }

    /** Current temporary result (for traces and tests). */
    bool temp() const { return t.read(); }

  private:
    const systolic::Latch<CtlToken> *ctlSrc = nullptr;
    const systolic::Latch<ResToken> *rSrc = nullptr;
    const systolic::Latch<DToken> *dSrc = nullptr;
    systolic::Latch<CtlToken> ctl;
    systolic::Latch<ResToken> r;
    systolic::Latch<bool> t{true};
};

} // namespace spm::core

#endif // SPM_CORE_CELLS_HH
