#include "flow/designflow.hh"

#include <sstream>

#include "core/cascade.hh"
#include "core/gatechip.hh"
#include "gate/stdcells.hh"
#include "layout/cif.hh"
#include "layout/drc.hh"
#include "util/logging.hh"

namespace spm::flow
{

TaskGraph
figure41Graph()
{
    TaskGraph g;
    // Effort split of the paper's "about two man-months", weighted
    // toward the algorithm as Section 2 argues it should be.
    const TaskId algorithm = g.addTask(
        "Algorithm",
        "Data flow, geometry and cell functions of the systolic "
        "matcher (Section 3.2.1)",
        15);
    const TaskId combine = g.addTask(
        "Cell Combinations and Placements",
        "Decide cell sharing and assign locations; skeleton layout",
        3);
    const TaskId dataflow = g.addTask(
        "Data Flow Control Circuit",
        "Two-phase clocking, shift register design, clock routing",
        4);
    const TaskId logic = g.addTask(
        "Cell Logic Circuits",
        "Comparator and accumulator circuits, both twins (Fig 3-6)",
        5);
    const TaskId timing = g.addTask(
        "Cell Timing Signals",
        "Sequencing signals such as the accumulator's rOut<-t; t<-TRUE",
        2);
    const TaskId comm_sticks = g.addTask(
        "Communication Sticks",
        "Open network of path routings, clock and power distribution",
        3);
    const TaskId cell_sticks = g.addTask(
        "Cell Sticks",
        "Topological layout of each cell (Plate 1)",
        4);
    const TaskId cell_layout = g.addTask(
        "Cell Layouts",
        "Dimensioned mask geometry under the lambda rules",
        4);
    const TaskId boundary = g.addTask(
        "Cell Boundary Layouts",
        "Wire lengths, cell spacing, pads; complete mask description",
        3);

    g.addDependency(combine, algorithm);
    g.addDependency(dataflow, algorithm);
    g.addDependency(dataflow, combine);
    g.addDependency(logic, algorithm);
    g.addDependency(logic, combine);
    g.addDependency(logic, dataflow);
    g.addDependency(timing, logic);
    g.addDependency(timing, dataflow);
    g.addDependency(comm_sticks, dataflow);
    g.addDependency(comm_sticks, timing);
    g.addDependency(cell_sticks, comm_sticks);
    g.addDependency(cell_sticks, logic);
    g.addDependency(cell_layout, cell_sticks);
    g.addDependency(boundary, cell_layout);
    g.addDependency(boundary, comm_sticks);
    return g;
}

namespace
{

/** Build a standalone comparator cell netlist (one twin). */
std::unique_ptr<gate::Netlist>
comparatorCircuit(bool positive)
{
    auto net = std::make_unique<gate::Netlist>(
        positive ? "comparator-pos" : "comparator-neg");
    const gate::NodeId clk = net->addNode("clk");
    net->markInput(clk);
    gate::ComparatorPorts ports;
    ports.pIn = net->addNode("p_in");
    ports.sIn = net->addNode("s_in");
    ports.dIn = net->addNode("d_in");
    ports.pOut = net->addNode("p_out");
    ports.sOut = net->addNode("s_out");
    ports.dOut = net->addNode("d_out");
    net->markInput(ports.pIn);
    net->markInput(ports.sIn);
    net->markInput(ports.dIn);
    gate::buildComparator(*net, "cell", ports, clk, positive);
    return net;
}

/** Build a standalone accumulator cell netlist (one twin). */
std::unique_ptr<gate::Netlist>
accumulatorCircuit(bool positive)
{
    auto net = std::make_unique<gate::Netlist>(
        positive ? "accumulator-pos" : "accumulator-neg");
    const gate::NodeId clk_a = net->addNode("clkA");
    const gate::NodeId clk_b = net->addNode("clkB");
    net->markInput(clk_a);
    net->markInput(clk_b);
    gate::AccumulatorPorts ports;
    ports.lambdaIn = net->addNode("lambda_in");
    ports.xIn = net->addNode("x_in");
    ports.dIn = net->addNode("d_in");
    ports.rIn = net->addNode("r_in");
    ports.lambdaOut = net->addNode("lambda_out");
    ports.xOut = net->addNode("x_out");
    ports.rOut = net->addNode("r_out");
    net->markInput(ports.lambdaIn);
    net->markInput(ports.xIn);
    net->markInput(ports.dIn);
    net->markInput(ports.rIn);
    gate::buildAccumulator(*net, "cell", ports, clk_a, clk_b, positive);
    return net;
}

} // namespace

DesignFlowResult
runDesignFlow(std::size_t num_cells, BitWidth bits_per_char,
              double lambda_um)
{
    spm_assert(num_cells > 0 && bits_per_char > 0, "bad chip parameters");
    DesignFlowResult result;
    auto log = [&result](const std::string &task,
                         const std::string &artifact) {
        result.steps.push_back(FlowStep{task, artifact});
    };

    // Algorithm: parameters fixed by the caller; record the choice.
    {
        std::ostringstream os;
        os << "systolic matcher, " << num_cells << " cells x "
           << bits_per_char << "-bit characters, bidirectional "
           << "streams, recirculating pattern";
        log("Algorithm", os.str());
    }

    // Cell combinations and placements: one comparator per bit row
    // per column plus one accumulator per column; checkerboard twins.
    {
        std::ostringstream os;
        os << bits_per_char << " x " << num_cells
           << " comparator grid over " << num_cells
           << " accumulators; twin polarity = (row+col) parity";
        log("Cell Combinations and Placements", os.str());
    }

    // Data flow control: two-phase clock, one phase per parity.
    log("Data Flow Control Circuit",
        "two-phase non-overlapping clock; phi1 clocks even-parity "
        "cells, phi2 odd; shift registers per Figure 3-5");

    // Cell logic circuits: all four cell netlists.
    result.cellCircuits.push_back(comparatorCircuit(true));
    result.cellCircuits.push_back(comparatorCircuit(false));
    result.cellCircuits.push_back(accumulatorCircuit(true));
    result.cellCircuits.push_back(accumulatorCircuit(false));
    {
        std::ostringstream os;
        for (const auto &net : result.cellCircuits) {
            os << net->name() << ": " << net->deviceCount()
               << " devices / " << net->transistorCount()
               << " transistors; ";
        }
        log("Cell Logic Circuits", os.str());
    }

    // Cell timing signals: the accumulator's master-slave t loop.
    log("Cell Timing Signals",
        "accumulator t updated on the opposite phase (master-slave), "
        "sequencing rOut<-t before t<-TRUE");

    // Communication sticks: per-row routing summary.
    log("Communication Sticks",
        "p,lambda,x eastbound; s,r westbound; d southbound; clock in "
        "poly along columns; power in metal along rows");

    // Cell sticks.
    for (const auto &net : result.cellCircuits) {
        result.cellSticks.push_back(
            layout::generateCellSticks(*net, net->name() + "-sticks"));
    }
    {
        std::ostringstream os;
        for (const auto &s : result.cellSticks)
            os << s.name() << ": " << s.transistorCount()
               << " transistors, " << s.nets().size() << " nets; ";
        log("Cell Sticks", os.str());
    }

    // Cell layouts, DRC-checked.
    for (const auto &net : result.cellCircuits) {
        result.cellLayouts.push_back(
            layout::generateCellLayout(*net, net->name() + "-layout"));
    }
    {
        std::ostringstream os;
        for (const auto &l : result.cellLayouts) {
            os << l.name() << ": " << l.cellArea() << " lambda^2; ";
            for (const auto &v : layout::checkLayout(l))
                result.drcViolations.push_back(l.name() + ": " +
                                               v.toString());
        }
        log("Cell Layouts", os.str());
    }

    // Cell boundary layouts: tile the comparator grid, append the
    // accumulator row, wrap in the pad ring.
    layout::MaskLayout core = layout::tileCellArray(
        result.cellLayouts[0], result.cellLayouts[1], bits_per_char,
        static_cast<unsigned>(num_cells), "comparator-array");
    {
        const layout::Rect cmp_box = core.boundingBox();
        layout::MaskLayout acc_row = layout::tileCellArray(
            result.cellLayouts[2], result.cellLayouts[3], 1,
            static_cast<unsigned>(num_cells), "accumulator-row");
        const layout::Lambda below =
            acc_row.boundingBox().height() + 8;
        layout::MaskLayout assembled("core");
        assembled.merge(acc_row, cmp_box.x0, cmp_box.y0 - below, "acc.");
        assembled.merge(core, 0, 0, "cmp.");
        core = std::move(assembled);
    }

    result.pins =
        core::ChipCascade::pinsPerChip(bits_per_char);
    result.die = layout::addPadRing(core, result.pins, "die");
    for (const auto &v : layout::checkLayout(result.die))
        result.drcViolations.push_back("die: " + v.toString());
    {
        std::ostringstream os;
        os << "die " << result.die.boundingBox().toString() << ", "
           << result.pins << " pins";
        log("Cell Boundary Layouts", os.str());
    }

    // Whole-chip netlist for device statistics (and, in the tests,
    // for simulating the flow's own output).
    auto chip = std::make_unique<core::GateChip>(num_cells,
                                                 bits_per_char);
    result.chipNetlist =
        std::make_unique<gate::Netlist>(std::move(chip->netlist()));
    result.report =
        layout::analyzeChip(result.die, *result.chipNetlist,
                            result.pins);
    result.cif = layout::writeCif(result.die, lambda_um);
    {
        std::ostringstream os;
        os << result.report.transistors << " transistors, die "
           << result.report.dieAreaMm2(lambda_um) << " mm^2, CIF "
           << result.cif.size() << " bytes";
        log("Masks", os.str());
    }
    return result;
}

} // namespace spm::flow
