/**
 * @file
 * The executable design methodology (Section 4, Figure 4-1).
 *
 * The paper claims the design tasks below the algorithm level "are
 * relatively routine and may (in principle at least) be helped a
 * great deal by various (future) computer-aided design systems."
 * runDesignFlow *is* such a system: given the algorithm-level
 * parameters (cells, bits per character), it mechanically performs
 * every subtask of Figure 4-1 -- cell circuits, cell sticks, cell
 * layouts, array assembly, pad ring -- DRC-checks the result, writes
 * CIF, and reports area and transistor counts, ending where mask
 * making would begin.
 */

#ifndef SPM_FLOW_DESIGNFLOW_HH
#define SPM_FLOW_DESIGNFLOW_HH

#include <memory>
#include <string>
#include <vector>

#include "flow/taskgraph.hh"
#include "gate/netlist.hh"
#include "layout/cellgen.hh"
#include "layout/masklayout.hh"
#include "layout/sticks.hh"

namespace spm::flow
{

/**
 * The paper's Figure 4-1 task dependency graph with the effort
 * estimates implied by its two-man-month design anecdote.
 */
TaskGraph figure41Graph();

/** One executed subtask with a summary of the artifact it produced. */
struct FlowStep
{
    std::string task;
    std::string artifact;
};

/** Everything the flow produces on its way to mask making. */
struct DesignFlowResult
{
    /** Per-cell circuit netlists (both twins of both cell types). */
    std::vector<std::unique_ptr<gate::Netlist>> cellCircuits;

    /** Stick diagrams for each cell circuit. */
    std::vector<layout::StickDiagram> cellSticks;

    /** Mask layouts for each cell circuit. */
    std::vector<layout::MaskLayout> cellLayouts;

    /** The assembled die: tiled cell array inside the pad ring. */
    layout::MaskLayout die{"die"};

    /** Whole-chip netlist (for transistor counts and simulation). */
    std::unique_ptr<gate::Netlist> chipNetlist;

    /** Area and device summary. */
    layout::AreaReport report;

    /** CIF for the die, ready for mask making. */
    std::string cif;

    /** DRC violations found (empty for a clean run). */
    std::vector<std::string> drcViolations;

    /** Ordered log of executed subtasks. */
    std::vector<FlowStep> steps;

    /** Package pin count (cascade pins + clock + power). */
    unsigned pins = 0;
};

/**
 * Run the full algorithm-to-masks flow for a pattern matching chip.
 *
 * @param num_cells character cells (the prototype had 8)
 * @param bits_per_char bits per character (the prototype had 2)
 * @param lambda_um lambda in microns for physical area (2.5 um for
 *        the 5-micron processes of 1979)
 */
DesignFlowResult runDesignFlow(std::size_t num_cells,
                               BitWidth bits_per_char,
                               double lambda_um = 2.5);

} // namespace spm::flow

#endif // SPM_FLOW_DESIGNFLOW_HH
