/**
 * @file
 * Task dependency graphs for chip design (Section 4).
 *
 * "The way to avoid this is to carefully construct a task dependency
 * graph before beginning the design. This graph should contain all of
 * the subtasks to be performed, together with the information needed
 * for each and the precedence relations among them." TaskGraph is
 * that structure: a DAG of named design tasks with effort estimates,
 * topological scheduling, and critical path analysis.
 */

#ifndef SPM_FLOW_TASKGRAPH_HH
#define SPM_FLOW_TASKGRAPH_HH

#include <cstddef>
#include <string>
#include <vector>

namespace spm::flow
{

/** Index of a task within a TaskGraph. */
using TaskId = std::size_t;

/** One design subtask. */
struct Task
{
    std::string name;
    std::string description;
    /** Estimated effort in designer-days. */
    double effortDays = 0.0;
    /** Prerequisite tasks (information consumed). */
    std::vector<TaskId> deps;
};

/** A DAG of design tasks. */
class TaskGraph
{
  public:
    /** Add a task; returns its id. */
    TaskId addTask(const std::string &name,
                   const std::string &description, double effort_days);

    /** Declare that @p task needs @p prerequisite's outputs. */
    void addDependency(TaskId task, TaskId prerequisite);

    std::size_t taskCount() const { return tasks.size(); }
    const Task &task(TaskId id) const;

    /**
     * A valid execution order (prerequisites first); fatal error if
     * the graph has a cycle (a design whose subtasks need each
     * other's outputs cannot be decomposed).
     */
    std::vector<TaskId> topologicalOrder() const;

    /** Sum of all task efforts: the sequential design time. */
    double totalEffortDays() const;

    /**
     * Tasks on the longest dependency chain by effort: the design
     * time with unlimited designers (the division of labor Section 4
     * is after).
     */
    std::vector<TaskId> criticalPath() const;

    /** Effort along the critical path. */
    double criticalPathDays() const;

    /** Render the graph as an indented dependency listing. */
    std::string render() const;

  private:
    std::vector<Task> tasks;
};

} // namespace spm::flow

#endif // SPM_FLOW_TASKGRAPH_HH
