#include "flow/wafer.hh"

#include <cmath>

#include "util/logging.hh"

namespace spm::flow
{

Wafer::Wafer(unsigned rows, unsigned cols, double defect_prob,
             std::uint64_t seed)
    : numRows(rows), numCols(cols)
{
    spm_assert(rows > 0 && cols > 0, "empty wafer");
    spm_assert(defect_prob >= 0.0 && defect_prob <= 1.0,
               "defect probability out of range");
    Rng rng(seed);
    good.resize(static_cast<std::size_t>(rows) * cols);
    for (std::size_t i = 0; i < good.size(); ++i)
        good[i] = !rng.nextBool(defect_prob);
}

bool
Wafer::isGood(unsigned row, unsigned col) const
{
    spm_assert(row < numRows && col < numCols, "site out of range");
    return good[static_cast<std::size_t>(row) * numCols + col];
}

std::size_t
Wafer::goodCells() const
{
    std::size_t n = 0;
    for (bool g : good)
        n += g;
    return n;
}

Wafer::Harvest
Wafer::snakeHarvest() const
{
    Harvest h;
    std::size_t run_of_bad = 0;
    bool have_prev_good = false;
    for (unsigned r = 0; r < numRows; ++r) {
        for (unsigned i = 0; i < numCols; ++i) {
            // Even rows run left to right, odd rows right to left,
            // so consecutive sites in traversal order are physically
            // adjacent.
            const unsigned c = r % 2 == 0 ? i : numCols - 1 - i;
            if (isGood(r, c)) {
                ++h.chainLength;
                if (have_prev_good && run_of_bad + 1 > h.longestJump)
                    h.longestJump = run_of_bad + 1;
                have_prev_good = true;
                run_of_bad = 0;
            } else {
                // Only count a skip when it bypasses between two
                // harvested cells; leading/trailing bad sites cost
                // nothing.
                if (have_prev_good)
                    ++run_of_bad;
                ++h.skips;
            }
        }
    }
    h.harvestRatio = good.empty()
        ? 0.0
        : static_cast<double>(h.chainLength) /
              static_cast<double>(good.size());
    return h;
}

std::size_t
Wafer::dicedChips(std::size_t cells_per_chip) const
{
    spm_assert(cells_per_chip > 0, "chip needs at least one cell");
    std::size_t working = 0;
    for (std::size_t at = 0; at + cells_per_chip <= good.size();
         at += cells_per_chip) {
        bool all_good = true;
        for (std::size_t j = 0; j < cells_per_chip && all_good; ++j)
            all_good = good[at + j];
        working += all_good;
    }
    return working;
}

double
Wafer::expectedChipYield(std::size_t cells, double defect_prob)
{
    return std::pow(1.0 - defect_prob, static_cast<double>(cells));
}

} // namespace spm::flow
