#include "flow/wafer.hh"

#include <cmath>
#include <stdexcept>
#include <string>

#include "util/logging.hh"

namespace spm::flow
{

Wafer::Wafer(unsigned rows, unsigned cols, double defect_prob,
             std::uint64_t seed)
    : numRows(rows), numCols(cols)
{
    // Configuration errors, not simulator bugs: reject at the API
    // boundary so no downstream model sees a zero-site wafer or a
    // nonsensical Bernoulli parameter.
    if (rows == 0 || cols == 0)
        throw std::invalid_argument(
            "Wafer: grid must be non-empty, got " +
            std::to_string(rows) + "x" + std::to_string(cols));
    if (!(defect_prob >= 0.0 && defect_prob <= 1.0))
        throw std::invalid_argument(
            "Wafer: defect probability must be in [0, 1], got " +
            std::to_string(defect_prob));
    Rng rng(seed);
    good.resize(static_cast<std::size_t>(rows) * cols);
    for (std::size_t i = 0; i < good.size(); ++i)
        good[i] = !rng.nextBool(defect_prob);
}

bool
Wafer::isGood(unsigned row, unsigned col) const
{
    spm_assert(row < numRows && col < numCols, "site out of range");
    return good[static_cast<std::size_t>(row) * numCols + col];
}

void
Wafer::markBad(unsigned row, unsigned col)
{
    spm_assert(row < numRows && col < numCols, "site out of range");
    good[static_cast<std::size_t>(row) * numCols + col] = false;
}

std::size_t
Wafer::goodCells() const
{
    std::size_t n = 0;
    for (bool g : good)
        n += g;
    return n;
}

Wafer::Harvest
Wafer::snakeHarvest() const
{
    Harvest h;
    std::size_t run_of_bad = 0;
    bool have_prev_good = false;
    for (unsigned r = 0; r < numRows; ++r) {
        for (unsigned i = 0; i < numCols; ++i) {
            // Even rows run left to right, odd rows right to left,
            // so consecutive sites in traversal order are physically
            // adjacent.
            const unsigned c = r % 2 == 0 ? i : numCols - 1 - i;
            if (isGood(r, c)) {
                ++h.chainLength;
                if (have_prev_good && run_of_bad + 1 > h.longestJump)
                    h.longestJump = run_of_bad + 1;
                have_prev_good = true;
                run_of_bad = 0;
            } else {
                // Only count a skip when it bypasses between two
                // harvested cells; leading/trailing bad sites cost
                // nothing.
                if (have_prev_good)
                    ++run_of_bad;
                ++h.skips;
            }
        }
    }
    h.harvestRatio = good.empty()
        ? 0.0
        : static_cast<double>(h.chainLength) /
              static_cast<double>(good.size());
    return h;
}

std::vector<std::pair<unsigned, unsigned>>
Wafer::snakeSites() const
{
    std::vector<std::pair<unsigned, unsigned>> sites;
    sites.reserve(goodCells());
    for (unsigned r = 0; r < numRows; ++r) {
        for (unsigned i = 0; i < numCols; ++i) {
            const unsigned c = r % 2 == 0 ? i : numCols - 1 - i;
            if (isGood(r, c))
                sites.emplace_back(r, c);
        }
    }
    return sites;
}

std::size_t
Wafer::dicedChips(std::size_t cells_per_chip) const
{
    spm_assert(cells_per_chip > 0, "chip needs at least one cell");
    std::size_t working = 0;
    for (std::size_t at = 0; at + cells_per_chip <= good.size();
         at += cells_per_chip) {
        bool all_good = true;
        for (std::size_t j = 0; j < cells_per_chip && all_good; ++j)
            all_good = good[at + j];
        working += all_good;
    }
    return working;
}

double
Wafer::expectedChipYield(std::size_t cells, double defect_prob)
{
    return std::pow(1.0 - defect_prob, static_cast<double>(cells));
}

} // namespace spm::flow
