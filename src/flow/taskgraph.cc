#include "flow/taskgraph.hh"

#include <algorithm>
#include <sstream>

#include "util/logging.hh"

namespace spm::flow
{

TaskId
TaskGraph::addTask(const std::string &name, const std::string &description,
                   double effort_days)
{
    Task t;
    t.name = name;
    t.description = description;
    t.effortDays = effort_days;
    tasks.push_back(std::move(t));
    return tasks.size() - 1;
}

void
TaskGraph::addDependency(TaskId task, TaskId prerequisite)
{
    spm_assert(task < tasks.size() && prerequisite < tasks.size(),
               "bad task id");
    spm_assert(task != prerequisite, "task cannot depend on itself");
    tasks[task].deps.push_back(prerequisite);
}

const Task &
TaskGraph::task(TaskId id) const
{
    spm_assert(id < tasks.size(), "bad task id");
    return tasks[id];
}

std::vector<TaskId>
TaskGraph::topologicalOrder() const
{
    std::vector<unsigned> indegree(tasks.size(), 0);
    std::vector<std::vector<TaskId>> dependents(tasks.size());
    for (TaskId id = 0; id < tasks.size(); ++id) {
        for (TaskId dep : tasks[id].deps) {
            ++indegree[id];
            dependents[dep].push_back(id);
        }
    }

    std::vector<TaskId> ready;
    for (TaskId id = 0; id < tasks.size(); ++id) {
        if (indegree[id] == 0)
            ready.push_back(id);
    }

    std::vector<TaskId> order;
    while (!ready.empty()) {
        // Pop the lowest id for deterministic schedules.
        std::sort(ready.begin(), ready.end(), std::greater<>());
        const TaskId id = ready.back();
        ready.pop_back();
        order.push_back(id);
        for (TaskId dep : dependents[id]) {
            if (--indegree[dep] == 0)
                ready.push_back(dep);
        }
    }
    if (order.size() != tasks.size())
        spm_fatal("task graph has a dependency cycle");
    return order;
}

double
TaskGraph::totalEffortDays() const
{
    double total = 0.0;
    for (const Task &t : tasks)
        total += t.effortDays;
    return total;
}

std::vector<TaskId>
TaskGraph::criticalPath() const
{
    const auto order = topologicalOrder();
    // Longest path by accumulated effort ending at each task.
    std::vector<double> best(tasks.size(), 0.0);
    std::vector<long> from(tasks.size(), -1);
    for (TaskId id : order) {
        double longest = 0.0;
        long via = -1;
        for (TaskId dep : tasks[id].deps) {
            if (best[dep] > longest) {
                longest = best[dep];
                via = static_cast<long>(dep);
            }
        }
        best[id] = longest + tasks[id].effortDays;
        from[id] = via;
    }

    TaskId tail = 0;
    for (TaskId id = 0; id < tasks.size(); ++id) {
        if (best[id] > best[tail])
            tail = id;
    }

    std::vector<TaskId> path;
    for (long id = static_cast<long>(tail); id >= 0;
         id = from[static_cast<std::size_t>(id)]) {
        path.push_back(static_cast<TaskId>(id));
    }
    std::reverse(path.begin(), path.end());
    return path;
}

double
TaskGraph::criticalPathDays() const
{
    double total = 0.0;
    for (TaskId id : criticalPath())
        total += tasks[id].effortDays;
    return total;
}

std::string
TaskGraph::render() const
{
    std::ostringstream os;
    for (TaskId id : topologicalOrder()) {
        const Task &t = tasks[id];
        os << t.name << " (" << t.effortDays << " days)";
        if (!t.deps.empty()) {
            os << "  <-  ";
            for (std::size_t i = 0; i < t.deps.size(); ++i) {
                if (i)
                    os << ", ";
                os << tasks[t.deps[i]].name;
            }
        }
        os << "\n    " << t.description << "\n";
    }
    return os.str();
}

} // namespace spm::flow
