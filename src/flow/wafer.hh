/**
 * @file
 * Wafer-scale integration (Section 5).
 *
 * "Modularity of algorithms is especially important in wafer-scale
 * integration ... Manufacturing defects make it essential to be able
 * to modify the interconnections so that a defective circuit is
 * replaced by a functioning one on the same wafer. This can be done
 * easily if there are only a few types of circuits with regular
 * interconnections."
 *
 * Because the pattern matcher is a linear array of identical cells,
 * harvesting a working machine from a defective wafer reduces to
 * threading a chain through the good sites. Wafer models a grid of
 * cell sites with independent defects; snakeHarvest() builds the
 * chain a boustrophedon route would wire, and dicedYield() gives the
 * conventional alternative of sawing the wafer into fixed chips.
 */

#ifndef SPM_FLOW_WAFER_HH
#define SPM_FLOW_WAFER_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "util/rng.hh"

namespace spm::flow
{

/** A wafer of identical cell sites with fabrication defects. */
class Wafer
{
  public:
    /**
     * @param rows,cols grid of cell sites; the grid must be non-empty
     * @param defect_prob independent probability a site is bad,
     *        in [0, 1]
     * @param seed deterministic defect map seed
     *
     * @throws std::invalid_argument when rows*cols == 0 or
     *         defect_prob lies outside [0, 1]
     */
    Wafer(unsigned rows, unsigned cols, double defect_prob,
          std::uint64_t seed);

    unsigned rows() const { return numRows; }
    unsigned cols() const { return numCols; }
    std::size_t siteCount() const { return good.size(); }

    /** Whether the site at (row, col) fabricated correctly. */
    bool isGood(unsigned row, unsigned col) const;

    /**
     * Retire the site at (row, col): a cell that died at runtime is
     * indistinguishable from a fabrication defect to the routing, so
     * the same snake reconfiguration degrades the machine from N to
     * N-k cells by re-harvesting around it.
     */
    void markBad(unsigned row, unsigned col);

    /** Number of working sites on the wafer. */
    std::size_t goodCells() const;

    /** Result of threading a linear array through the good sites. */
    struct Harvest
    {
        /** Working cells wired into one linear array. */
        std::size_t chainLength = 0;
        /** Defective sites bypassed. */
        std::size_t skips = 0;
        /**
         * Longest run of consecutive bypassed sites plus one: the
         * longest single wire the reconfiguration needs, which
         * bounds the slowed beat of the harvested machine.
         */
        std::size_t longestJump = 1;
        /** Fraction of fabricated sites harvested. */
        double harvestRatio = 0.0;
    };

    /**
     * Boustrophedon (snake) reconfiguration: traverse row 0 left to
     * right, row 1 right to left, and so on, wiring consecutive good
     * sites together and bypassing bad ones.
     */
    Harvest snakeHarvest() const;

    /**
     * The (row, col) sites of the harvested chain in snake order:
     * position i of the linear array lives at snakeSites()[i]. This
     * is the map bypass recovery uses to translate a dead array cell
     * back to the wafer site to retire.
     */
    std::vector<std::pair<unsigned, unsigned>> snakeSites() const;

    /**
     * The conventional alternative: dice the wafer into chips of
     * @p cells_per_chip consecutive sites (row-major) and keep only
     * the chips with every cell good. Returns working chips.
     */
    std::size_t dicedChips(std::size_t cells_per_chip) const;

    /** Analytic yield of an n-cell monolithic chip: (1-p)^n. */
    static double expectedChipYield(std::size_t cells,
                                    double defect_prob);

  private:
    unsigned numRows;
    unsigned numCols;
    std::vector<bool> good;
};

} // namespace spm::flow

#endif // SPM_FLOW_WAFER_HH
