#include "baselines/staticarray.hh"

#include "core/reference.hh"

namespace spm::baselines
{

std::vector<bool>
StaticArrayMatcher::match(const std::vector<Symbol> &text,
                          const std::vector<Symbol> &pattern)
{
    const std::size_t n = text.size();
    const std::size_t len = pattern.size();
    std::vector<bool> r(n, false);
    beatsUsed = 0;
    loadBeats = 0;
    if (len == 0 || len > n)
        return r;

    // Loading phase: one pattern character shifted in per beat.
    struct Cell
    {
        Symbol p = 0;
        bool x = false;
    };
    std::vector<Cell> cells(len);
    for (std::size_t j = 0; j < len; ++j) {
        cells[j].p = pattern[j] == wildcardSymbol ? 0 : pattern[j];
        cells[j].x = pattern[j] == wildcardSymbol;
        ++loadBeats;
    }
    beatsUsed = loadBeats;

    // Matching phase. Text character s_i is at cell c on beat i + c;
    // the result token for substring start i0 sits at cell c on beats
    // i0 + 2c and i0 + 2c + 1 (half speed), accumulating on arrival,
    // when exactly s_{i0+c} is passing through.
    // Because result tokens enter every beat but advance only every
    // other beat, each cell holds two of them: the one that arrived
    // this beat (young) and the one resting from last beat (old).
    struct ResTok
    {
        std::size_t start = 0;
        bool value = true;
        bool active = false;
    };
    std::vector<ResTok> young(len), old(len);

    const Beat total = static_cast<Beat>(n) + 2 * len + 2;
    for (Beat t = 0; t < total; ++t) {
        // Old tokens leave their cells; young ones become old.
        std::vector<ResTok> arriving(len);
        for (std::size_t c = 0; c < len; ++c) {
            if (!old[c].active)
                continue;
            if (c + 1 < len) {
                arriving[c + 1] = old[c];
            } else {
                const std::size_t end = old[c].start + len - 1;
                if (end < n)
                    r[end] = old[c].value;
            }
        }
        old = young;
        young = std::move(arriving);

        // A new result token enters cell 0 on every beat while its
        // substring start exists.
        if (t < n)
            young[0] = ResTok{static_cast<std::size_t>(t), true, true};

        // Accumulate: each newly arrived token sees the text
        // character passing its cell this beat.
        for (std::size_t c = 0; c < len; ++c) {
            if (!young[c].active)
                continue;
            const std::size_t s_idx = young[c].start + c;
            if (s_idx >= n) {
                young[c].value = false;
                continue;
            }
            const bool here = cells[c].x || cells[c].p == text[s_idx];
            young[c].value = young[c].value && here;
        }
        ++beatsUsed;
    }
    return r;
}

} // namespace spm::baselines
