/**
 * @file
 * Knuth-Morris-Pratt matching.
 *
 * One of the "fast sequential algorithms" the paper's Section 3.3.1
 * rules out for hardware: it needs dynamically changing communication
 * (the failure-function jumps), and its self-overlap precomputation
 * "breaks down" under wild cards because the matches relation is no
 * longer transitive (Section 3.1). Included as the strongest exact-
 * match software baseline alongside Boyer-Moore.
 */

#ifndef SPM_BASELINES_KMP_HH
#define SPM_BASELINES_KMP_HH

#include "core/matcher.hh"

namespace spm::baselines
{

/** Classic KMP; exact patterns only. */
class KmpMatcher : public core::Matcher
{
  public:
    std::vector<bool> match(const std::vector<Symbol> &text,
                            const std::vector<Symbol> &pattern) override;

    std::string name() const override { return "kmp"; }

    bool supportsWildcards() const override { return false; }

    /** Character comparisons performed by the last match() call. */
    std::uint64_t lastComparisons() const { return comparisons; }

    /** Compute the KMP failure function (exposed for tests). */
    static std::vector<std::size_t> failureFunction(
        const std::vector<Symbol> &pattern);

  private:
    std::uint64_t comparisons = 0;
};

} // namespace spm::baselines

#endif // SPM_BASELINES_KMP_HH
