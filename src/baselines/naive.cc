#include "baselines/naive.hh"

#include "core/reference.hh"

namespace spm::baselines
{

std::vector<bool>
NaiveMatcher::match(const std::vector<Symbol> &text,
                    const std::vector<Symbol> &pattern)
{
    const std::size_t n = text.size();
    const std::size_t len = pattern.size();
    comparisons = 0;
    std::vector<bool> r(n, false);
    if (len == 0 || len > n)
        return r;

    for (std::size_t start = 0; start + len <= n; ++start) {
        bool all = true;
        for (std::size_t j = 0; j < len; ++j) {
            ++comparisons;
            if (!core::symbolMatches(pattern[j], text[start + j])) {
                all = false;
                break;
            }
        }
        if (all)
            r[start + len - 1] = true;
    }
    return r;
}

} // namespace spm::baselines
