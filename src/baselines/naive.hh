/**
 * @file
 * The obvious software baseline.
 *
 * Position-by-position comparison with early exit: what a host
 * computer without a pattern matching peripheral would run. Handles
 * wild cards, O(n k) worst case, O(n) on random text.
 */

#ifndef SPM_BASELINES_NAIVE_HH
#define SPM_BASELINES_NAIVE_HH

#include "core/matcher.hh"

namespace spm::baselines
{

/** Early-exit naive matcher. */
class NaiveMatcher : public core::Matcher
{
  public:
    std::vector<bool> match(const std::vector<Symbol> &text,
                            const std::vector<Symbol> &pattern) override;

    std::string name() const override { return "naive"; }

    /** Character comparisons performed by the last match() call. */
    std::uint64_t lastComparisons() const { return comparisons; }

  private:
    std::uint64_t comparisons = 0;
};

} // namespace spm::baselines

#endif // SPM_BASELINES_NAIVE_HH
