/**
 * @file
 * Boyer-Moore matching.
 *
 * The second fast sequential baseline (Section 3.3.1); skips over
 * parts of the text using the bad-character and good-suffix rules.
 * Sublinear on average, exact patterns only.
 */

#ifndef SPM_BASELINES_BOYERMOORE_HH
#define SPM_BASELINES_BOYERMOORE_HH

#include "core/matcher.hh"

namespace spm::baselines
{

/** Boyer-Moore with both classic shift rules; exact patterns only. */
class BoyerMooreMatcher : public core::Matcher
{
  public:
    std::vector<bool> match(const std::vector<Symbol> &text,
                            const std::vector<Symbol> &pattern) override;

    std::string name() const override { return "boyer-moore"; }

    bool supportsWildcards() const override { return false; }

    /** Character comparisons performed by the last match() call. */
    std::uint64_t lastComparisons() const { return comparisons; }

  private:
    std::uint64_t comparisons = 0;
};

} // namespace spm::baselines

#endif // SPM_BASELINES_BOYERMOORE_HH
