#include "baselines/fftmatch.hh"

#include <cmath>
#include <numbers>

#include "util/logging.hh"

namespace spm::baselines
{

void
fft(std::vector<std::complex<double>> &a, bool inverse)
{
    const std::size_t n = a.size();
    spm_assert((n & (n - 1)) == 0, "FFT size must be a power of two");
    if (n <= 1)
        return;

    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(a[i], a[j]);
    }

    for (std::size_t stage = 2; stage <= n; stage <<= 1) {
        const double angle = (inverse ? 2.0 : -2.0) *
                             std::numbers::pi /
                             static_cast<double>(stage);
        const std::complex<double> w_base(std::cos(angle),
                                          std::sin(angle));
        for (std::size_t block = 0; block < n; block += stage) {
            std::complex<double> w(1.0, 0.0);
            for (std::size_t off = 0; off < stage / 2; ++off) {
                const auto u = a[block + off];
                const auto v = a[block + off + stage / 2] * w;
                a[block + off] = u + v;
                a[block + off + stage / 2] = u - v;
                w *= w_base;
            }
        }
    }
    if (inverse) {
        for (auto &v : a)
            v /= static_cast<double>(n);
    }
}

std::vector<double>
crossCorrelate(const std::vector<double> &x, const std::vector<double> &y)
{
    spm_assert(y.size() <= x.size(), "kernel longer than signal");
    std::size_t size = 1;
    while (size < x.size() + y.size())
        size <<= 1;

    std::vector<std::complex<double>> fx(size), fy(size);
    for (std::size_t i = 0; i < x.size(); ++i)
        fx[i] = x[i];
    // Cross-correlation is convolution with the reversed kernel.
    for (std::size_t j = 0; j < y.size(); ++j)
        fy[y.size() - 1 - j] = y[j];

    fft(fx, false);
    fft(fy, false);
    for (std::size_t i = 0; i < size; ++i)
        fx[i] *= fy[i];
    fft(fx, true);

    std::vector<double> out(x.size() - y.size() + 1);
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = fx[i + y.size() - 1].real();
    return out;
}

std::vector<bool>
FftMatcher::match(const std::vector<Symbol> &text,
                  const std::vector<Symbol> &pattern)
{
    const std::size_t n = text.size();
    const std::size_t len = pattern.size();
    std::vector<bool> r(n, false);
    if (len == 0 || len > n)
        return r;

    // Encode: wild cards become 0 and drop out of every term; real
    // characters are shifted by one so no character encodes to zero.
    std::vector<double> a(len), b(n);
    for (std::size_t j = 0; j < len; ++j) {
        a[j] = pattern[j] == wildcardSymbol
            ? 0.0
            : static_cast<double>(pattern[j]) + 1.0;
    }
    for (std::size_t i = 0; i < n; ++i) {
        spm_assert(text[i] != wildcardSymbol,
                   "wild cards appear only in the pattern");
        b[i] = static_cast<double>(text[i]) + 1.0;
    }

    auto powv = [](const std::vector<double> &v, int e) {
        std::vector<double> out(v.size());
        for (std::size_t i = 0; i < v.size(); ++i)
            out[i] = std::pow(v[i], e);
        return out;
    };

    // M(i0) = sum a^3 b - 2 sum a^2 b^2 + sum a b^3.
    const auto t1 = crossCorrelate(b, powv(a, 3));
    const auto t2 = crossCorrelate(powv(b, 2), powv(a, 2));
    const auto t3 = crossCorrelate(powv(b, 3), a);

    for (std::size_t i0 = 0; i0 + len <= n; ++i0) {
        const double mismatch = t1[i0] - 2.0 * t2[i0] + t3[i0];
        if (std::abs(mismatch) < integerThreshold)
            r[i0 + len - 1] = true;
    }
    return r;
}

} // namespace spm::baselines
