#include "baselines/boyermoore.hh"

#include <algorithm>
#include <map>

#include "util/logging.hh"

namespace spm::baselines
{

namespace
{

/** Bad-character rule: last occurrence of each symbol in the pattern. */
std::map<Symbol, std::size_t>
badCharTable(const std::vector<Symbol> &pattern)
{
    std::map<Symbol, std::size_t> last;
    for (std::size_t j = 0; j < pattern.size(); ++j)
        last[pattern[j]] = j;
    return last;
}

/**
 * Good-suffix rule shifts, via the standard two-pass border
 * computation (Knuth et al. 77 formulation).
 */
std::vector<std::size_t>
goodSuffixTable(const std::vector<Symbol> &pattern)
{
    const std::size_t len = pattern.size();
    std::vector<std::size_t> shift(len + 1, 0);
    std::vector<std::size_t> border(len + 1, 0);

    // Pass 1: borders of suffixes.
    std::size_t i = len;
    std::size_t j = len + 1;
    border[i] = j;
    while (i > 0) {
        while (j <= len && pattern[i - 1] != pattern[j - 1]) {
            if (shift[j] == 0)
                shift[j] = j - i;
            j = border[j];
        }
        --i;
        --j;
        border[i] = j;
    }

    // Pass 2: fill remaining shifts from the widest border.
    j = border[0];
    for (i = 0; i <= len; ++i) {
        if (shift[i] == 0)
            shift[i] = j;
        if (i == j)
            j = border[j];
    }
    return shift;
}

} // namespace

std::vector<bool>
BoyerMooreMatcher::match(const std::vector<Symbol> &text,
                         const std::vector<Symbol> &pattern)
{
    const std::size_t n = text.size();
    const std::size_t len = pattern.size();
    comparisons = 0;
    std::vector<bool> r(n, false);
    if (len == 0 || len > n)
        return r;

    for (Symbol p : pattern) {
        if (p == wildcardSymbol)
            spm_fatal("Boyer-Moore cannot handle wild card patterns "
                      "(Section 3.1)");
    }

    const auto bad = badCharTable(pattern);
    const auto good = goodSuffixTable(pattern);

    std::size_t start = 0;
    while (start + len <= n) {
        std::size_t j = len;
        while (j > 0) {
            ++comparisons;
            if (pattern[j - 1] != text[start + j - 1])
                break;
            --j;
        }
        if (j == 0) {
            r[start + len - 1] = true;
            start += good[0];
        } else {
            const Symbol mismatched = text[start + j - 1];
            const auto it = bad.find(mismatched);
            const std::size_t last_at =
                it == bad.end() ? 0 : it->second + 1;
            const std::size_t bc_shift =
                j > last_at ? j - last_at : 1;
            start += std::max(good[j], bc_shift);
        }
    }
    return r;
}

} // namespace spm::baselines
