#include "baselines/broadcast.hh"

#include "core/reference.hh"

namespace spm::baselines
{

Picoseconds
BroadcastCost::stretchedBeatPs(Picoseconds base_ps) const
{
    return base_ps +
           base_ps * static_cast<Picoseconds>(fanout) / driverStrength;
}

std::vector<bool>
BroadcastMatcher::match(const std::vector<Symbol> &text,
                        const std::vector<Symbol> &pattern)
{
    const std::size_t n = text.size();
    const std::size_t len = pattern.size();
    std::vector<bool> r(n, false);
    beatsUsed = 0;
    loadBeats = 0;
    cost = BroadcastCost{len};
    if (len == 0 || len > n)
        return r;

    // Loading phase: the pattern is shifted into the cells one
    // character per beat -- the setup cost the bidirectional systolic
    // design avoids (Section 3.3.1: "Loading the cells in preparation
    // for a pattern match would require extra time and circuitry").
    struct Cell
    {
        Symbol p = 0;
        bool x = false;
        bool partial = false;
    };
    std::vector<Cell> cells(len);
    for (std::size_t j = 0; j < len; ++j) {
        cells[j].p = pattern[j] == wildcardSymbol ? 0 : pattern[j];
        cells[j].x = pattern[j] == wildcardSymbol;
        ++loadBeats;
    }
    beatsUsed = loadBeats;

    // Matching phase: one text character broadcast to all cells per
    // beat; partial results ripple one cell per beat through a chain
    // of AND gates, so cell j holds the conjunction over the last
    // j + 1 characters.
    for (std::size_t i = 0; i < n; ++i) {
        const Symbol s = text[i];
        // All cells update simultaneously from the previous beat's
        // partials; iterate right to left so reads see old values.
        for (std::size_t j = len; j-- > 0;) {
            const bool here = cells[j].x || cells[j].p == s;
            const bool chain = j == 0 ? true : cells[j - 1].partial;
            cells[j].partial = here && chain;
        }
        ++beatsUsed;
        if (cells[len - 1].partial)
            r[i] = true;
    }
    return r;
}

} // namespace spm::baselines
