/**
 * @file
 * Mukhopadhyay's broadcast cellular matcher.
 *
 * "[Mukhopadhyay 79] has proposed several machines in which each cell
 * stores a character of the pattern, and the text string is broadcast
 * character by character to all cells. The broadcast communication is
 * the major disadvantage of this algorithm. Each cell requires a
 * connection to the broadcast channel, which either increases the
 * power requirements of the system as a whole or decreases its speed"
 * (Section 3.3.1).
 *
 * The machine is simulated beat for beat, and the broadcast cost is
 * made explicit with a first-order RC wire model: driving k cell
 * loads either stretches the beat (single driver) or costs k units of
 * driver power (distributed repeaters).
 */

#ifndef SPM_BASELINES_BROADCAST_HH
#define SPM_BASELINES_BROADCAST_HH

#include "core/matcher.hh"

namespace spm::baselines
{

/** Cost model for the broadcast channel. */
struct BroadcastCost
{
    /** Cells hanging on the channel. */
    std::size_t fanout = 0;

    /**
     * Beat period when one driver charges the whole channel:
     * base * (1 + fanout / driverStrength), linear in the load.
     */
    Picoseconds stretchedBeatPs(Picoseconds base_ps) const;

    /**
     * Relative driver power when the beat is held at the base period
     * instead: proportional to the load being switched every beat.
     */
    double driverPowerUnits() const
    {
        return static_cast<double>(fanout);
    }

    /** Loads one minimum-size driver can switch without slowdown. */
    static constexpr std::size_t driverStrength = 4;
};

/**
 * Beat-level simulation of the broadcast matcher: a loading phase
 * stores the pattern (one character per beat), then each text
 * character is broadcast to every cell; cell j compares it with its
 * stored p_j and ANDs the partial result arriving from cell j-1.
 */
class BroadcastMatcher : public core::Matcher
{
  public:
    std::vector<bool> match(const std::vector<Symbol> &text,
                            const std::vector<Symbol> &pattern) override;

    std::string name() const override { return "broadcast-mukhopadhyay"; }

    /** Beats of the last match() call, including pattern loading. */
    Beat lastBeats() const { return beatsUsed; }

    /** Beats spent loading the pattern before matching could begin. */
    Beat lastLoadBeats() const { return loadBeats; }

    /** Broadcast cost of the last match() call. */
    BroadcastCost lastCost() const { return cost; }

  private:
    Beat beatsUsed = 0;
    Beat loadBeats = 0;
    BroadcastCost cost;
};

} // namespace spm::baselines

#endif // SPM_BASELINES_BROADCAST_HH
