/**
 * @file
 * The rejected one-directional static-pattern array.
 *
 * "An algorithm that is similar to ours uses a linear array of cells
 * with data flowing in only one direction. The pattern is permanently
 * stored in the array of cells, and the text string moves past it.
 * Partial results move at half the speed of the text so that they
 * accumulate results from an entire substring match. This algorithm
 * was rejected because of the static storage of the pattern. Loading
 * the cells in preparation for a pattern match would require extra
 * time and circuitry" (Section 3.3.1).
 *
 * Simulated beat for beat: text advances one cell per beat, result
 * tokens one cell every two beats, so a result token meets exactly
 * the right text character at every cell it passes.
 */

#ifndef SPM_BASELINES_STATICARRAY_HH
#define SPM_BASELINES_STATICARRAY_HH

#include "core/matcher.hh"

namespace spm::baselines
{

/** One-directional systolic matcher with a statically loaded pattern. */
class StaticArrayMatcher : public core::Matcher
{
  public:
    std::vector<bool> match(const std::vector<Symbol> &text,
                            const std::vector<Symbol> &pattern) override;

    std::string name() const override { return "static-one-directional"; }

    /** Beats of the last match() call, including pattern loading. */
    Beat lastBeats() const { return beatsUsed; }

    /** Beats spent loading the pattern. */
    Beat lastLoadBeats() const { return loadBeats; }

  private:
    Beat beatsUsed = 0;
    Beat loadBeats = 0;
};

} // namespace spm::baselines

#endif // SPM_BASELINES_STATICARRAY_HH
