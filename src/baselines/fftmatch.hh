/**
 * @file
 * Fischer-Paterson style wild card matching via convolution.
 *
 * "The fastest algorithm known for string matching with wild card
 * characters is based on multiplication of large integers [Fischer
 * and Paterson 74], and requires more than linear time" (Section
 * 3.1). This is that algorithm in its modern FFT form: encode wild
 * cards as zero and evaluate, for every alignment, the mismatch sum
 *
 *     M(i0) = sum_j a_j * b_{i0+j} * (a_j - b_{i0+j})^2
 *           = sum a^3 b  -  2 sum a^2 b^2  +  sum a b^3
 *
 * which is zero exactly when the pattern matches. Three cross
 * correlations, each one FFT-sized pass: O(n log n) total, the
 * superlinear software comparator the systolic chip beats.
 */

#ifndef SPM_BASELINES_FFTMATCH_HH
#define SPM_BASELINES_FFTMATCH_HH

#include <complex>
#include <vector>

#include "core/matcher.hh"

namespace spm::baselines
{

/** In-place iterative radix-2 FFT; size must be a power of two. */
void fft(std::vector<std::complex<double>> &a, bool inverse);

/**
 * Cross-correlation c[i] = sum_j x[i + j] * y[j] for
 * i = 0 .. |x| - |y|, computed with FFTs.
 */
std::vector<double> crossCorrelate(const std::vector<double> &x,
                                   const std::vector<double> &y);

/** FFT-based wild card matcher. */
class FftMatcher : public core::Matcher
{
  public:
    std::vector<bool> match(const std::vector<Symbol> &text,
                            const std::vector<Symbol> &pattern) override;

    std::string name() const override { return "fischer-paterson-fft"; }

  private:
    static constexpr double integerThreshold = 0.5;
};

} // namespace spm::baselines

#endif // SPM_BASELINES_FFTMATCH_HH
