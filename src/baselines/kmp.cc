#include "baselines/kmp.hh"

#include "util/logging.hh"

namespace spm::baselines
{

std::vector<std::size_t>
KmpMatcher::failureFunction(const std::vector<Symbol> &pattern)
{
    const std::size_t len = pattern.size();
    std::vector<std::size_t> fail(len, 0);
    std::size_t k = 0;
    for (std::size_t i = 1; i < len; ++i) {
        while (k > 0 && pattern[k] != pattern[i])
            k = fail[k - 1];
        if (pattern[k] == pattern[i])
            ++k;
        fail[i] = k;
    }
    return fail;
}

std::vector<bool>
KmpMatcher::match(const std::vector<Symbol> &text,
                  const std::vector<Symbol> &pattern)
{
    const std::size_t n = text.size();
    const std::size_t len = pattern.size();
    comparisons = 0;
    std::vector<bool> r(n, false);
    if (len == 0 || len > n)
        return r;

    for (Symbol p : pattern) {
        if (p == wildcardSymbol)
            spm_fatal("KMP cannot handle wild card patterns "
                      "(Section 3.1: the matches relation is not "
                      "transitive)");
    }

    const std::vector<std::size_t> fail = failureFunction(pattern);
    std::size_t q = 0;
    for (std::size_t i = 0; i < n; ++i) {
        while (q > 0 && pattern[q] != text[i]) {
            ++comparisons;
            q = fail[q - 1];
        }
        ++comparisons;
        if (pattern[q] == text[i])
            ++q;
        if (q == len) {
            r[i] = true;
            q = fail[q - 1];
        }
    }
    return r;
}

} // namespace spm::baselines
