#pragma once
/**
 * Aho-Corasick software baseline: the classic goto/fail/output
 * automaton, compiled into contiguous node storage (node vector +
 * one shared sorted edge vector, binary-searched goto) so traversal
 * touches two flat arrays -- the same layout discipline the
 * hardware-co-design papers use for on-chip state tables.
 *
 * The automaton handles literal dictionaries only (wild cards have no
 * failure-function analogue); the bit-sliced realization in
 * planes.hh covers wild cards.  Matching streams natively: one state
 * id plus a position counter is the complete carry, so chunked
 * feeding is exact by construction.
 */

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "multipattern/dict.hh"
#include "util/types.hh"

namespace spm::multipattern
{

class AhoCorasickAutomaton
{
  public:
    /** Compile @p dict.  Empty members are legal (their hit rows stay
     *  all-false); wild cards throw std::invalid_argument. */
    explicit AhoCorasickAutomaton(const DictPatterns &dict);

    /** One-shot match over @p text. */
    DictHits matchAll(const std::vector<Symbol> &text) const;

    /** Streaming carry: the current automaton state is the complete
     *  history summary. */
    struct StreamState {
        std::uint32_t node = 0;
        std::uint64_t seen = 0;
    };

    /** Feed one chunk; appends nothing, returns hit bits for exactly
     *  the chunk's positions and advances @p state. */
    DictHits feed(StreamState &state,
                  const std::vector<Symbol> &chunk) const;

    std::size_t patternCount() const { return patternLens.size(); }
    std::size_t stateCount() const { return nodes.size(); }
    std::size_t edgeCount() const { return edges.size(); }
    std::size_t patternLen(std::size_t p) const { return patternLens[p]; }

  private:
    struct Node {
        std::uint32_t fail = 0;
        // Next terminal node on the failure chain (0 = none): hit
        // emission walks dictLink instead of every fail link.
        std::uint32_t dictLink = 0;
        std::uint32_t edgeBegin = 0;
        std::uint32_t edgeEnd = 0;
        std::uint32_t outBegin = 0;
        std::uint32_t outEnd = 0;
    };

    std::uint32_t gotoEdge(std::uint32_t node, Symbol c) const;
    std::uint32_t step(std::uint32_t node, Symbol c) const;
    void emit(std::uint32_t node, std::size_t pos, DictHits &out) const;

    std::vector<Node> nodes;
    std::vector<std::pair<Symbol, std::uint32_t>> edges; // sorted per span
    std::vector<std::uint32_t> outIds; // pattern ids, spans per node
    std::vector<std::size_t> patternLens;
};

/** DictMatcher adapter: recompiles when the dictionary changes, so
 *  repeated scans against one rule set pay compilation once. */
class AhoCorasickMatcher final : public DictMatcher
{
  public:
    DictHits matchAll(const std::vector<Symbol> &text,
                      const DictPatterns &dict) override;
    std::string name() const override { return "dict-ac"; }
    bool supportsWildcards() const override { return false; }

  private:
    DictPatterns compiledDict;
    std::unique_ptr<AhoCorasickAutomaton> automaton;
};

} // namespace spm::multipattern
