#include "multipattern/acmatch.hh"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace spm::multipattern
{

namespace
{

/** Build-time trie node; flattened into contiguous storage after the
 *  BFS pass. */
struct BuildNode {
    std::vector<std::pair<Symbol, std::uint32_t>> kids; // sorted
    std::vector<std::uint32_t> outs;
    std::uint32_t fail = 0;
    std::uint32_t dictLink = 0;
};

std::uint32_t
buildChild(std::vector<BuildNode> &trie, std::uint32_t node, Symbol c)
{
    auto &kids = trie[node].kids;
    auto it = std::lower_bound(
        kids.begin(), kids.end(), c,
        [](const auto &edge, Symbol sym) { return edge.first < sym; });
    if (it != kids.end() && it->first == c)
        return it->second;
    const auto fresh = static_cast<std::uint32_t>(trie.size());
    kids.insert(it, {c, fresh});
    trie.emplace_back();
    return fresh;
}

std::uint32_t
buildGoto(const std::vector<BuildNode> &trie, std::uint32_t node, Symbol c)
{
    const auto &kids = trie[node].kids;
    auto it = std::lower_bound(
        kids.begin(), kids.end(), c,
        [](const auto &edge, Symbol sym) { return edge.first < sym; });
    if (it != kids.end() && it->first == c)
        return it->second;
    return 0;
}

} // namespace

AhoCorasickAutomaton::AhoCorasickAutomaton(const DictPatterns &dict)
{
    patternLens.reserve(dict.size());

    std::vector<BuildNode> trie(1);
    for (std::size_t p = 0; p < dict.size(); ++p) {
        patternLens.push_back(dict[p].size());
        if (dict[p].empty())
            continue; // an empty member matches nowhere, like the bit kernels
        std::uint32_t node = 0;
        for (Symbol c : dict[p]) {
            if (c == wildcardSymbol)
                throw std::invalid_argument(
                    "AhoCorasickAutomaton: wild cards are not supported; "
                    "use the bit-sliced dictionary matcher");
            node = buildChild(trie, node, c);
        }
        trie[node].outs.push_back(static_cast<std::uint32_t>(p));
    }

    // BFS failure links.  fail(child of root) = root; otherwise
    // follow the parent's failure chain to the deepest proper suffix
    // that is also a trie path.  dictLink short-circuits the chain to
    // the next terminal node so emission is O(hits), not O(depth).
    std::queue<std::uint32_t> bfs;
    for (const auto &[sym, child] : trie[0].kids) {
        (void)sym;
        trie[child].fail = 0;
        bfs.push(child);
    }
    while (!bfs.empty()) {
        const std::uint32_t node = bfs.front();
        bfs.pop();
        const std::uint32_t viaFail = trie[node].fail;
        trie[node].dictLink = trie[viaFail].outs.empty()
                                  ? trie[viaFail].dictLink
                                  : viaFail;
        for (const auto &[sym, child] : trie[node].kids) {
            std::uint32_t f = trie[node].fail;
            while (f != 0 && buildGoto(trie, f, sym) == 0)
                f = trie[f].fail;
            const std::uint32_t target = buildGoto(trie, f, sym);
            trie[child].fail = (target == child) ? 0 : target;
            bfs.push(child);
        }
    }

    // Flatten into contiguous storage: one node vector, one shared
    // sorted edge vector (goto = binary search of the node's span),
    // one shared output-id vector.
    nodes.resize(trie.size());
    for (std::size_t v = 0; v < trie.size(); ++v) {
        Node &node = nodes[v];
        node.fail = trie[v].fail;
        node.dictLink = trie[v].dictLink;
        node.edgeBegin = static_cast<std::uint32_t>(edges.size());
        for (const auto &edge : trie[v].kids)
            edges.push_back(edge);
        node.edgeEnd = static_cast<std::uint32_t>(edges.size());
        node.outBegin = static_cast<std::uint32_t>(outIds.size());
        for (std::uint32_t id : trie[v].outs)
            outIds.push_back(id);
        node.outEnd = static_cast<std::uint32_t>(outIds.size());
    }
}

std::uint32_t
AhoCorasickAutomaton::gotoEdge(std::uint32_t node, Symbol c) const
{
    const Node &v = nodes[node];
    const auto *begin = edges.data() + v.edgeBegin;
    const auto *end = edges.data() + v.edgeEnd;
    const auto *it = std::lower_bound(
        begin, end, c,
        [](const auto &edge, Symbol sym) { return edge.first < sym; });
    if (it != end && it->first == c)
        return it->second;
    return 0;
}

std::uint32_t
AhoCorasickAutomaton::step(std::uint32_t node, Symbol c) const
{
    std::uint32_t next = gotoEdge(node, c);
    while (next == 0 && node != 0) {
        node = nodes[node].fail;
        next = gotoEdge(node, c);
    }
    return next;
}

void
AhoCorasickAutomaton::emit(std::uint32_t node, std::size_t pos,
                           DictHits &out) const
{
    std::uint32_t v =
        nodes[node].outBegin != nodes[node].outEnd ? node
                                                   : nodes[node].dictLink;
    while (v != 0) {
        for (std::uint32_t o = nodes[v].outBegin; o < nodes[v].outEnd; ++o)
            out.bits[outIds[o]][pos] = true;
        v = nodes[v].dictLink;
    }
}

DictHits
AhoCorasickAutomaton::matchAll(const std::vector<Symbol> &text) const
{
    StreamState state;
    return feed(state, text);
}

DictHits
AhoCorasickAutomaton::feed(StreamState &state,
                           const std::vector<Symbol> &chunk) const
{
    DictHits out;
    out.bits.assign(patternLens.size(),
                    std::vector<bool>(chunk.size(), false));
    std::uint32_t node = state.node;
    for (std::size_t i = 0; i < chunk.size(); ++i) {
        node = step(node, chunk[i]);
        emit(node, i, out);
    }
    state.node = node;
    state.seen += chunk.size();
    return out;
}

DictHits
AhoCorasickMatcher::matchAll(const std::vector<Symbol> &text,
                             const DictPatterns &dict)
{
    if (automaton == nullptr || dict != compiledDict) {
        automaton = std::make_unique<AhoCorasickAutomaton>(dict);
        compiledDict = dict;
    }
    return automaton->matchAll(text);
}

} // namespace spm::multipattern
