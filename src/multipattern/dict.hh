#pragma once
/**
 * Multi-pattern dictionary matching: shared types, the naive
 * per-pattern reference, and the chunked-feeding carry protocol.
 *
 * A dictionary is an ordered list of patterns; matching reports, for
 * every pattern p and text position i, whether the window ending at i
 * equals pattern p (same Section 3.1 semantics as the single-pattern
 * Matcher: bits for i < k_p - 1 are always false, wild cards match
 * any character).  All realizations in this directory must agree
 * bit-for-bit; the conformance registry pairs them against each other
 * and against the single-pattern reference.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hh"

namespace spm::multipattern
{

/** An ordered dictionary; member order is the hit-report order. */
using DictPatterns = std::vector<std::vector<Symbol>>;

/** Per-pattern hit bits: bits[p][i] = pattern p ends at text position
 *  i.  Rows always have one entry per text position. */
struct DictHits {
    std::vector<std::vector<bool>> bits;

    std::uint64_t totalHits() const;
    bool operator==(const DictHits &other) const { return bits == other.bits; }
};

/** Length of the longest dictionary member (0 for an empty dict). */
std::size_t longestPattern(const DictPatterns &dict);

/** Interface for whole-dictionary matchers.  Implementations may keep
 *  per-dictionary compiled state internally; matchAll must be a pure
 *  function of (text, dict). */
class DictMatcher
{
  public:
    virtual ~DictMatcher() = default;

    virtual DictHits matchAll(const std::vector<Symbol> &text,
                              const DictPatterns &dict) = 0;
    virtual std::string name() const = 0;
    virtual bool supportsWildcards() const { return true; }
};

/** Trusted baseline: one single-pattern reference scan per member.
 *  O(p * n * k) -- the oracle every faster realization is diffed
 *  against. */
class NaiveDictMatcher final : public DictMatcher
{
  public:
    DictHits matchAll(const std::vector<Symbol> &text,
                      const DictPatterns &dict) override;
    std::string name() const override { return "dict-naive"; }
};

/**
 * Carry state for chunked feeding, mirroring core::StreamCarry: the
 * tail holds the last min(kmax - 1, seen) characters so any window
 * straddling a chunk boundary can be replayed, and seen counts total
 * stream characters so positions with insufficient history stay
 * false.  Chunked results must be bit-identical to a one-shot
 * matchAll over the concatenated stream.
 */
struct DictStreamState {
    std::vector<Symbol> tail;
    std::uint64_t seen = 0;
};

/** Feed one chunk through @p m with windowed replay.  Returns hit
 *  bits for exactly the chunk's positions (bits[p][c] = pattern p
 *  ends at stream position state.seen + c) and advances the carry. */
DictHits feedDictChunk(DictMatcher &m, DictStreamState &state,
                       const std::vector<Symbol> &chunk,
                       const DictPatterns &dict);

} // namespace spm::multipattern
