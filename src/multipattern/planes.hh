#pragma once
/**
 * Bit-sliced multi-pattern realization on the word-parallel kernel
 * organization (core/wordpar.hh): the text is transposed into bit
 * planes once, equality masks are built once per distinct character
 * class, and the per-pattern AND chains are fused through a reversed
 * (suffix) trie so dictionaries sharing suffix structure cost less
 * than p independent scans.
 *
 * A pattern's window bit r_p[i] factors by end offset d = k_p-1-j:
 * r_p = AND_d shiftUp(eq(p[k_p-1-d]), d), so two patterns with a
 * common suffix share a prefix of their factor chains -- exactly a
 * trie over reversed patterns.  Each trie node holds one partial AND;
 * a topological walk per 64-position word evaluates every chain with
 * one AND per node instead of one per pattern character.  Wild-card
 * positions contribute an all-ones factor and collapse to a shared
 * wild edge.  Up to 64 patterns are fused per sweep; larger
 * dictionaries run ceil(p/64) sweeps over the same planes.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "multipattern/dict.hh"
#include "util/types.hh"

namespace spm::multipattern
{

class BitSlicedDictMatcher final : public DictMatcher
{
  public:
    /** Patterns fused per sweep (one result lane per packed word bit
     *  is not required -- the cap bounds trie width per walk). */
    static constexpr std::size_t fusedGroupPatterns = 64;

    /** @p dedup_planes disables suffix-trie node merging and
     *  equality-mask caching when false; the no-dedup variant exists
     *  so conformance can prove dedup changes cost, never hits. */
    explicit BitSlicedDictMatcher(bool dedup_planes = true)
        : dedup(dedup_planes)
    {
    }

    DictHits matchAll(const std::vector<Symbol> &text,
                      const DictPatterns &dict) override;
    std::string name() const override
    {
        return dedup ? "dict-planes" : "dict-planes-nodedup";
    }

    /** Counters from the last matchAll, for telemetry and the E19
     *  dedup ablation. */
    unsigned lastPlanes() const { return planesBuilt; }
    std::size_t lastEqMasks() const { return eqBuilt; }
    std::size_t lastTrieNodes() const { return trieNodes; }
    std::size_t lastPatternChars() const { return patternChars; }
    std::size_t lastSweeps() const { return sweeps; }
    std::uint64_t lastWordOps() const { return wordOps; }
    std::size_t arenaBytes() const;

  private:
    struct TrieNode {
        std::uint32_t parent; // index into the walk order; 0 = root
        std::uint32_t classId; // index into classSyms; wildClass = wild
        std::uint32_t offset;  // end offset d of this factor
    };

    const bool dedup;

    unsigned planesBuilt = 0;
    std::size_t eqBuilt = 0;
    std::size_t trieNodes = 0;
    std::size_t patternChars = 0;
    std::size_t sweeps = 0;
    std::uint64_t wordOps = 0;

    // Arenas reused across calls, wordpar-style.
    std::vector<std::uint64_t> planeArena;
    std::vector<std::uint64_t> eqArena;
    std::vector<std::pair<Symbol, std::size_t>> eqIndex;
    std::vector<std::uint64_t> rowArena;
    std::vector<std::uint64_t> valArena;
    std::vector<TrieNode> trie;
    std::vector<std::uint32_t> termNode;
    std::vector<Symbol> classSyms;
};

} // namespace spm::multipattern
