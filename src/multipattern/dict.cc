#include "multipattern/dict.hh"

#include <algorithm>
#include <stdexcept>

#include "core/reference.hh"

namespace spm::multipattern
{

std::uint64_t
DictHits::totalHits() const
{
    std::uint64_t total = 0;
    for (const auto &row : bits)
        for (bool b : row)
            total += b ? 1 : 0;
    return total;
}

std::size_t
longestPattern(const DictPatterns &dict)
{
    std::size_t kmax = 0;
    for (const auto &p : dict)
        kmax = std::max(kmax, p.size());
    return kmax;
}

DictHits
NaiveDictMatcher::matchAll(const std::vector<Symbol> &text,
                           const DictPatterns &dict)
{
    core::ReferenceMatcher ref;
    DictHits hits;
    hits.bits.reserve(dict.size());
    for (const auto &pattern : dict)
        hits.bits.push_back(ref.match(text, pattern));
    return hits;
}

DictHits
feedDictChunk(DictMatcher &m, DictStreamState &state,
              const std::vector<Symbol> &chunk, const DictPatterns &dict)
{
    const std::size_t kmax = longestPattern(dict);
    const std::size_t keep = kmax == 0 ? 0 : kmax - 1;
    if (state.tail.size() > keep)
        throw std::invalid_argument(
            "feedDictChunk: carry tail longer than dictionary allows");

    // Replay the carried tail plus the chunk.  The tail holds
    // min(kmax - 1, seen) characters: either every window ending in
    // the chunk has its full history in the replay window, or the
    // window IS the whole stream so far -- in both cases the
    // window-local bit at skip + c equals the stream-global bit at
    // state.seen + c, including the leading always-false positions.
    std::vector<Symbol> window;
    window.reserve(state.tail.size() + chunk.size());
    window.insert(window.end(), state.tail.begin(), state.tail.end());
    window.insert(window.end(), chunk.begin(), chunk.end());

    const DictHits full = m.matchAll(window, dict);
    const std::size_t skip = state.tail.size();

    DictHits out;
    out.bits.assign(dict.size(), std::vector<bool>(chunk.size(), false));
    for (std::size_t p = 0; p < dict.size(); ++p)
        for (std::size_t c = 0; c < chunk.size(); ++c)
            out.bits[p][c] = full.bits[p][skip + c];

    state.seen += chunk.size();
    if (keep == 0) {
        state.tail.clear();
    } else if (window.size() <= keep) {
        state.tail = std::move(window);
    } else {
        state.tail.assign(window.end() - static_cast<std::ptrdiff_t>(keep),
                          window.end());
    }
    return out;
}

} // namespace spm::multipattern
