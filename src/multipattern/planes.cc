#include "multipattern/planes.hh"

#include <algorithm>
#include <cstddef>

#include "core/simdpar.hh"

namespace spm::multipattern
{

namespace
{

constexpr std::size_t bitsPerWord = 64;
constexpr std::uint32_t wildClass = 0xFFFFFFFFu;
constexpr std::uint32_t rootNode = 0xFFFFFFFFu;
constexpr std::uint32_t noTerm = 0xFFFFFFFFu;

std::size_t
wordCount(std::size_t n)
{
    return (n + bitsPerWord - 1) / bitsPerWord;
}

/** Smallest bit width that represents @p v (at least 1). */
unsigned
widthOf(Symbol v)
{
    unsigned b = 1;
    while ((static_cast<unsigned>(v) >> b) != 0)
        ++b;
    return b;
}

/** Word @p w of eq shifted up by @p d positions (the end-offset
 *  factor from wordpar's AND recurrence). */
std::uint64_t
shiftedWord(const std::uint64_t *eq, std::size_t d, std::size_t w)
{
    const std::size_t ws = d / bitsPerWord;
    const unsigned bs = static_cast<unsigned>(d % bitsPerWord);
    if (w < ws)
        return 0;
    std::uint64_t v = eq[w - ws] << bs;
    if (bs != 0 && w > ws)
        v |= eq[w - ws - 1] >> (bitsPerWord - bs);
    return v;
}

/** Clear the always-false lead (i < k-1) and the slack past the text
 *  in a packed row. */
void
maskRow(std::uint64_t *row, std::size_t nw, std::size_t k, std::size_t n)
{
    const std::size_t lead = k - 1;
    for (std::size_t w = 0; w < lead / bitsPerWord && w < nw; ++w)
        row[w] = 0;
    if (lead / bitsPerWord < nw && lead % bitsPerWord != 0)
        row[lead / bitsPerWord] &= ~std::uint64_t(0) << (lead % bitsPerWord);
    if (n % bitsPerWord != 0)
        row[nw - 1] &= ~std::uint64_t(0) >> (bitsPerWord - n % bitsPerWord);
}

} // namespace

DictHits
BitSlicedDictMatcher::matchAll(const std::vector<Symbol> &text,
                               const DictPatterns &dict)
{
    const std::size_t n = text.size();
    const std::size_t nw = wordCount(n);
    const std::size_t p = dict.size();

    planesBuilt = 0;
    eqBuilt = 0;
    trieNodes = 0;
    patternChars = 0;
    sweeps = 0;
    wordOps = 0;

    DictHits hits;
    hits.bits.assign(p, std::vector<bool>(n, false));
    for (const auto &member : dict)
        patternChars += member.size();
    if (n == 0 || p == 0)
        return hits;

    // One transpose covers every pattern: plane[b] bit i = bit b of
    // s_i, exactly the wordpar layout.
    Symbol seen = 0;
    for (Symbol c : text)
        seen = static_cast<Symbol>(seen | c);
    for (const auto &member : dict)
        for (Symbol c : member)
            if (c != wildcardSymbol)
                seen = static_cast<Symbol>(seen | c);
    const unsigned planes = widthOf(seen);
    planesBuilt = planes;

    const std::size_t planeWords = static_cast<std::size_t>(planes) * nw;
    if (planeArena.size() < planeWords)
        planeArena.resize(planeWords);
    std::fill(planeArena.begin(),
              planeArena.begin() + static_cast<std::ptrdiff_t>(planeWords),
              0);
    for (std::size_t i = 0; i < n; ++i) {
        const Symbol c = text[i];
        const std::size_t w = i / bitsPerWord;
        const std::uint64_t bit = std::uint64_t(1) << (i % bitsPerWord);
        for (unsigned b = 0; b < planes; ++b)
            if ((c >> b) & 1u)
                planeArena[b * nw + w] |= bit;
    }

    auto buildEqInto = [&](Symbol c, std::uint64_t *m) {
        std::fill(m, m + nw, ~std::uint64_t(0));
        for (unsigned b = 0; b < planes; ++b) {
            const std::uint64_t *pl = planeArena.data() + b * nw;
            if ((c >> b) & 1u) {
                for (std::size_t w = 0; w < nw; ++w)
                    m[w] &= pl[w];
            } else {
                for (std::size_t w = 0; w < nw; ++w)
                    m[w] &= ~pl[w];
            }
        }
        ++eqBuilt;
        wordOps += static_cast<std::uint64_t>(planes) * nw;
    };

    if (rowArena.size() < p * nw)
        rowArena.resize(p * nw);
    std::fill(rowArena.begin(),
              rowArena.begin() + static_cast<std::ptrdiff_t>(p * nw), 0);

    if (!dedup) {
        // Ablation variant: every pattern runs its own wordpar-style
        // AND chain with its own equality masks -- p independent
        // scans sharing only the transpose.  Must produce the exact
        // hit set of the deduplicated sweep; only the cost differs.
        for (std::size_t pi = 0; pi < p; ++pi) {
            const auto &member = dict[pi];
            const std::size_t k = member.size();
            trieNodes += k;
            if (k == 0 || k > n)
                continue;
            std::uint64_t *row = rowArena.data() + pi * nw;
            std::fill(row, row + nw, ~std::uint64_t(0));
            eqIndex.clear();
            for (std::size_t j = 0; j < k; ++j) {
                const Symbol c = member[j];
                if (c == wildcardSymbol)
                    continue;
                std::size_t off = eqArena.size();
                bool found = false;
                for (const auto &entry : eqIndex)
                    if (entry.first == c) {
                        off = entry.second;
                        found = true;
                        break;
                    }
                if (!found) {
                    off = eqIndex.size() * nw;
                    if (eqArena.size() < off + nw)
                        eqArena.resize(off + nw);
                    buildEqInto(c, eqArena.data() + off);
                    eqIndex.emplace_back(c, off);
                }
                const std::uint64_t *m = eqArena.data() + off;
                const std::size_t d = (k - 1) - j;
                for (std::size_t w = 0; w < nw; ++w)
                    row[w] &= shiftedWord(m, d, w);
                wordOps += nw;
            }
            maskRow(row, nw, k, n);
            ++sweeps;
        }
    } else {
        // Shared character-class planes: one equality mask per
        // distinct literal symbol across the whole dictionary.
        classSyms.clear();
        eqIndex.clear();
        auto classOf = [&](Symbol c) -> std::uint32_t {
            for (std::size_t i = 0; i < classSyms.size(); ++i)
                if (classSyms[i] == c)
                    return static_cast<std::uint32_t>(i);
            const auto id = static_cast<std::uint32_t>(classSyms.size());
            classSyms.push_back(c);
            const std::size_t off = static_cast<std::size_t>(id) * nw;
            if (eqArena.size() < off + nw)
                eqArena.resize(off + nw);
            buildEqInto(c, eqArena.data() + off);
            return id;
        };

        if (termNode.size() < p)
            termNode.resize(p);

        // Fuse patterns in groups of <= fusedGroupPatterns: each
        // group builds a trie over reversed patterns (children keyed
        // by character class; depth encodes the end offset), so
        // shared suffixes share one partial-AND node.
        for (std::size_t g0 = 0; g0 < p; g0 += fusedGroupPatterns) {
            const std::size_t g1 = std::min(p, g0 + fusedGroupPatterns);
            trie.clear();
            // children[v] lists (classId, node) edges of v; slot 0
            // stands for the virtual root.
            std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
                children(1);
            for (std::size_t pi = g0; pi < g1; ++pi) {
                const auto &member = dict[pi];
                const std::size_t k = member.size();
                if (k == 0 || k > n) {
                    termNode[pi] = noTerm;
                    continue;
                }
                std::uint32_t node = rootNode;
                for (std::size_t d = 0; d < k; ++d) {
                    const Symbol c = member[k - 1 - d];
                    const std::uint32_t cls =
                        c == wildcardSymbol ? wildClass : classOf(c);
                    auto &kids =
                        children[node == rootNode ? 0 : node + 1];
                    std::uint32_t next = rootNode;
                    for (const auto &edge : kids)
                        if (edge.first == cls) {
                            next = edge.second;
                            break;
                        }
                    if (next == rootNode) {
                        next = static_cast<std::uint32_t>(trie.size());
                        trie.push_back({node, cls,
                                        static_cast<std::uint32_t>(d)});
                        kids.emplace_back(cls, next);
                        children.emplace_back();
                    }
                    node = next;
                }
                termNode[pi] = node;
            }
            trieNodes += trie.size();
            if (trie.empty())
                continue;
            ++sweeps;

            // Topological walk per word: nodes were appended parent
            // first, so a single pass evaluates every partial AND.
            if (valArena.size() < trie.size())
                valArena.resize(trie.size());
            for (std::size_t w = 0; w < nw; ++w) {
                for (std::size_t v = 0; v < trie.size(); ++v) {
                    const TrieNode &node = trie[v];
                    const std::uint64_t up = node.parent == rootNode
                                                 ? ~std::uint64_t(0)
                                                 : valArena[node.parent];
                    valArena[v] =
                        node.classId == wildClass
                            ? up
                            : up & shiftedWord(eqArena.data() +
                                                   static_cast<std::size_t>(
                                                       node.classId) *
                                                       nw,
                                               node.offset, w);
                }
                for (std::size_t pi = g0; pi < g1; ++pi)
                    if (termNode[pi] != noTerm)
                        rowArena[pi * nw + w] = valArena[termNode[pi]];
            }
            wordOps += static_cast<std::uint64_t>(trie.size()) * nw;
        }

        for (std::size_t pi = 0; pi < p; ++pi)
            if (termNode[pi] != noTerm)
                maskRow(rowArena.data() + pi * nw, nw, dict[pi].size(), n);
    }

    for (std::size_t pi = 0; pi < p; ++pi) {
        const std::uint64_t *row = rowArena.data() + pi * nw;
        std::vector<std::uint64_t> packed(row, row + nw);
        hits.bits[pi] = core::unpackResultBits(packed, n);
    }
    return hits;
}

std::size_t
BitSlicedDictMatcher::arenaBytes() const
{
    return (planeArena.capacity() + eqArena.capacity() +
            rowArena.capacity() + valArena.capacity()) *
               sizeof(std::uint64_t) +
           eqIndex.capacity() * sizeof(eqIndex[0]) +
           trie.capacity() * sizeof(trie[0]) +
           termNode.capacity() * sizeof(termNode[0]) +
           classSyms.capacity() * sizeof(classSyms[0]);
}

} // namespace spm::multipattern
