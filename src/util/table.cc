#include "util/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace spm
{

Table::Table(std::string table_title) : title(std::move(table_title))
{
}

void
Table::setHeader(std::vector<std::string> cells)
{
    header = std::move(cells);
}

void
Table::addRow(std::vector<std::string> cells)
{
    rows.push_back(std::move(cells));
}

std::string
Table::fixed(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
Table::toString() const
{
    // Compute column widths across header and all rows.
    std::vector<std::size_t> widths;
    auto account = [&widths](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    account(header);
    for (const auto &r : rows)
        account(r);

    auto render_row = [&widths](std::ostringstream &os,
                                const std::vector<std::string> &cells) {
        os << "|";
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell = i < cells.size() ? cells[i] : "";
            os << " " << cell
               << std::string(widths[i] - cell.size(), ' ') << " |";
        }
        os << "\n";
    };

    std::ostringstream os;
    std::size_t line_width = 1;
    for (std::size_t w : widths)
        line_width += w + 3;
    const std::string rule(line_width, '-');

    if (!title.empty())
        os << title << "\n";
    os << rule << "\n";
    if (!header.empty()) {
        render_row(os, header);
        os << rule << "\n";
    }
    for (const auto &r : rows)
        render_row(os, r);
    os << rule << "\n";
    return os.str();
}

void
Table::print() const
{
    std::fputs(toString().c_str(), stdout);
    std::fflush(stdout);
}

} // namespace spm
