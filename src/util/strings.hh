/**
 * @file
 * Conversions between Symbol streams and printable text.
 *
 * The paper's examples use uppercase letters with 'X' as the wild card
 * (e.g., pattern AXC against text ABCABAACAC, Figure 3-1). These helpers
 * convert between that notation and Symbol vectors so tests and examples
 * can be written in the paper's own vocabulary.
 */

#ifndef SPM_UTIL_STRINGS_HH
#define SPM_UTIL_STRINGS_HH

#include <string>
#include <vector>

#include "util/types.hh"

namespace spm
{

/**
 * Parse a pattern or text written with letters 'A'.. and wild card 'x'
 * or 'X'. 'A' maps to symbol 0, 'B' to 1, and so on.
 */
std::vector<Symbol> parseSymbols(const std::string &text);

/**
 * Render a symbol vector using letters, with 'X' for the wild card.
 * Symbols beyond 'Z'-'A' are rendered as "<n>".
 */
std::string renderSymbols(const std::vector<Symbol> &syms);

/** Map arbitrary byte text into symbols 0..255 (8-bit alphabet). */
std::vector<Symbol> bytesToSymbols(const std::string &bytes);

/** Render match positions: indices i where result bit r_i is set. */
std::string renderMatchPositions(const std::vector<bool> &results);

/** Minimum bit width needed to encode every symbol in @p syms. */
BitWidth requiredBits(const std::vector<Symbol> &syms);

} // namespace spm

#endif // SPM_UTIL_STRINGS_HH
