#include "util/stats.hh"

#include <cmath>
#include <sstream>

#include "util/logging.hh"

namespace spm
{

void
RunningStat::sample(double v)
{
    if (n == 0) {
        lo = hi = v;
    } else {
        if (v < lo)
            lo = v;
        if (v > hi)
            hi = v;
    }
    ++n;
    total += v;
    const double delta = v - welfordMean;
    welfordMean += delta / static_cast<double>(n);
    welfordM2 += delta * (v - welfordMean);
}

double
RunningStat::variance() const
{
    return n ? welfordM2 / static_cast<double>(n) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : rangeLo(lo), rangeHi(hi), counts(buckets, 0)
{
    spm_assert(hi > lo && buckets > 0, "bad histogram parameters");
}

void
Histogram::sample(double v)
{
    ++total;
    if (v < rangeLo) {
        ++under;
        return;
    }
    if (v >= rangeHi) {
        ++over;
        return;
    }
    const double frac = (v - rangeLo) / (rangeHi - rangeLo);
    auto idx = static_cast<std::size_t>(
        frac * static_cast<double>(counts.size()));
    if (idx >= counts.size())
        idx = counts.size() - 1;
    ++counts[idx];
}

std::string
Histogram::toString() const
{
    std::ostringstream os;
    const double width =
        (rangeHi - rangeLo) / static_cast<double>(counts.size());
    for (std::size_t i = 0; i < counts.size(); ++i) {
        const double b_lo = rangeLo + width * static_cast<double>(i);
        os << "[" << b_lo << "," << b_lo + width << "): " << counts[i]
           << "\n";
    }
    if (under)
        os << "underflow: " << under << "\n";
    if (over)
        os << "overflow: " << over << "\n";
    return os.str();
}

Counter &
StatGroup::addCounter(const std::string &counter_name)
{
    auto [it, inserted] =
        counters.emplace(counter_name, Counter(counter_name));
    spm_assert(inserted, "duplicate counter '", counter_name, "' in group '",
               name, "'");
    return it->second;
}

const Counter &
StatGroup::counter(const std::string &counter_name) const
{
    auto it = counters.find(counter_name);
    spm_assert(it != counters.end(), "no counter '", counter_name,
               "' in group '", name, "'");
    return it->second;
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    for (const auto &[counter_name, c] : counters)
        os << name << "." << counter_name << " = " << c.value() << "\n";
    return os.str();
}

} // namespace spm
