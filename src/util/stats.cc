#include "util/stats.hh"

#include <cmath>

namespace spm
{

void
RunningStat::sample(double v)
{
    if (n == 0) {
        lo = hi = v;
    } else {
        if (v < lo)
            lo = v;
        if (v > hi)
            hi = v;
    }
    ++n;
    total += v;
    const double delta = v - welfordMean;
    welfordMean += delta / static_cast<double>(n);
    welfordM2 += delta * (v - welfordMean);
}

double
RunningStat::variance() const
{
    return n ? welfordM2 / static_cast<double>(n) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

} // namespace spm
