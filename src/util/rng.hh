/**
 * @file
 * Deterministic random number generation for workloads.
 *
 * All experiments in the reproduction are seeded so that tests and
 * benches are exactly repeatable. The generator is SplitMix64 followed
 * by xoshiro256**, both public-domain constructions, implemented here to
 * keep the repository dependency-free.
 */

#ifndef SPM_UTIL_RNG_HH
#define SPM_UTIL_RNG_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace spm
{

/**
 * A small, fast, deterministic PRNG (xoshiro256**).
 *
 * Not cryptographic; used only to generate synthetic text, patterns and
 * signals for tests and benchmarks.
 */
class Rng
{
  public:
    /** Seed the state via SplitMix64 expansion of @p seed. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform value in [0, bound); @p bound must be nonzero. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in the closed interval [lo, hi]. */
    std::int64_t nextInRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p of true. */
    bool nextBool(double p = 0.5);

  private:
    std::uint64_t state[4];
};

/**
 * Generators for the paper's workloads: text strings over an alphabet
 * Sigma and patterns over Sigma plus the wild card (Section 3.1).
 */
class WorkloadGen
{
  public:
    /**
     * @param seed deterministic seed
     * @param alphabet_bits bits per character; |Sigma| = 2^alphabet_bits
     *        (the fabricated prototype used 2-bit characters)
     */
    WorkloadGen(std::uint64_t seed, BitWidth alphabet_bits);

    /** Alphabet size. */
    Symbol alphabetSize() const { return sigma; }

    /** Bits per character. */
    BitWidth bits() const { return width; }

    /** A uniform random character from Sigma. */
    Symbol randomSymbol();

    /** A text string of @p n uniform characters. */
    std::vector<Symbol> randomText(std::size_t n);

    /**
     * A pattern of @p k characters where each position independently is
     * the wild card with probability @p wildcard_prob.
     */
    std::vector<Symbol> randomPattern(std::size_t k,
                                      double wildcard_prob = 0.0);

    /**
     * A text string of @p n characters salted with planted occurrences
     * of @p pattern so that matches are guaranteed to exist.
     * Wild card positions in the pattern are filled with random symbols.
     *
     * @param plant_every approximate distance between plants
     */
    std::vector<Symbol> textWithPlants(std::size_t n,
                                       const std::vector<Symbol> &pattern,
                                       std::size_t plant_every);

    /** Direct access to the underlying generator. */
    Rng &rng() { return gen; }

  private:
    Rng gen;
    BitWidth width;
    Symbol sigma;
};

} // namespace spm

#endif // SPM_UTIL_RNG_HH
