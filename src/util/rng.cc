#include "util/rng.hh"

#include "util/logging.hh"

namespace spm
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state)
        word = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
    const std::uint64_t t = state[1] << 17;
    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    spm_assert(bound != 0, "Rng::nextBelow: zero bound");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~std::uint64_t(0) - (~std::uint64_t(0) % bound);
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % bound;
}

std::int64_t
Rng::nextInRange(std::int64_t lo, std::int64_t hi)
{
    spm_assert(lo <= hi, "Rng::nextInRange: empty range");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(span == 0 ? next()
                                                    : nextBelow(span));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

WorkloadGen::WorkloadGen(std::uint64_t seed, BitWidth alphabet_bits)
    : gen(seed), width(alphabet_bits),
      sigma(static_cast<Symbol>(1u << alphabet_bits))
{
    spm_assert(alphabet_bits >= 1 && alphabet_bits <= 15,
               "alphabet bits must be in [1,15], got ", alphabet_bits);
}

Symbol
WorkloadGen::randomSymbol()
{
    return static_cast<Symbol>(gen.nextBelow(sigma));
}

std::vector<Symbol>
WorkloadGen::randomText(std::size_t n)
{
    std::vector<Symbol> text(n);
    for (auto &c : text)
        c = randomSymbol();
    return text;
}

std::vector<Symbol>
WorkloadGen::randomPattern(std::size_t k, double wildcard_prob)
{
    std::vector<Symbol> pat(k);
    for (auto &c : pat)
        c = gen.nextBool(wildcard_prob) ? wildcardSymbol : randomSymbol();
    return pat;
}

std::vector<Symbol>
WorkloadGen::textWithPlants(std::size_t n,
                            const std::vector<Symbol> &pattern,
                            std::size_t plant_every)
{
    spm_assert(plant_every >= pattern.size() && plant_every > 0,
               "plant interval shorter than pattern");
    std::vector<Symbol> text = randomText(n);
    for (std::size_t at = 0; at + pattern.size() <= n; at += plant_every) {
        for (std::size_t j = 0; j < pattern.size(); ++j) {
            text[at + j] = pattern[j] == wildcardSymbol ? randomSymbol()
                                                        : pattern[j];
        }
    }
    return text;
}

} // namespace spm
