/**
 * @file
 * Error and status reporting in the gem5 tradition.
 *
 * panic() is for internal invariant violations (simulator bugs); it
 * aborts. fatal() is for user errors (bad configuration, inconsistent
 * parameters); it exits with a nonzero status. warn()/inform() print
 * status without stopping the simulation.
 */

#ifndef SPM_UTIL_LOGGING_HH
#define SPM_UTIL_LOGGING_HH

#include <sstream>
#include <string>

namespace spm
{

/**
 * Severity of the non-terminating status messages. Long-running
 * campaigns (fault storms inject thousands of warnings on purpose)
 * raise the global minimum level so per-beat chatter does not drown
 * the report; panic/fatal are never filtered.
 */
enum class LogLevel : unsigned char
{
    Info,   ///< inform() and up
    Warn,   ///< warn() and up
    Silent, ///< neither inform() nor warn()
};

/** Set the global minimum level printed by warn()/inform(). */
void setLogMinLevel(LogLevel level);

/** The current global minimum level (default: Info). */
LogLevel logMinLevel();

/** Whether a message at @p level would currently be printed. */
bool logEnabled(LogLevel level);

/** Terminate with a message; used for internal invariant violations. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Terminate with a message; used for user-caused errors. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning to stderr without stopping. */
void warnImpl(const std::string &msg);

/** Print an informational message to stderr. */
void informImpl(const std::string &msg);

/** Build a message from stream-style arguments. */
template <typename... Args>
std::string
formatMsg(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace spm

#define spm_panic(...) \
    ::spm::panicImpl(__FILE__, __LINE__, ::spm::formatMsg(__VA_ARGS__))
#define spm_fatal(...) \
    ::spm::fatalImpl(__FILE__, __LINE__, ::spm::formatMsg(__VA_ARGS__))
/*
 * The level check is hoisted ahead of formatMsg so a filtered message
 * costs one atomic load, not the stream formatting of its arguments
 * -- fault storms emit thousands of these in inner loops.
 */
#define spm_warn(...)                                                 \
    do {                                                              \
        if (::spm::logEnabled(::spm::LogLevel::Warn))                 \
            ::spm::warnImpl(::spm::formatMsg(__VA_ARGS__));           \
    } while (0)
#define spm_inform(...)                                               \
    do {                                                              \
        if (::spm::logEnabled(::spm::LogLevel::Info))                 \
            ::spm::informImpl(::spm::formatMsg(__VA_ARGS__));         \
    } while (0)

/** Assert an internal invariant; active in all build types. */
#define spm_assert(cond, ...)                                         \
    do {                                                              \
        if (!(cond)) {                                                \
            ::spm::panicImpl(__FILE__, __LINE__,                      \
                ::spm::formatMsg("assertion '", #cond, "' failed: ",  \
                                 ##__VA_ARGS__));                     \
        }                                                             \
    } while (0)

#endif // SPM_UTIL_LOGGING_HH
