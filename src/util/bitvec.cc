#include "util/bitvec.hh"

#include <bit>

#include "util/logging.hh"

namespace spm
{

BitVec::BitVec(std::size_t n, bool value)
{
    resize(n, value);
}

BitVec
BitVec::fromString(const std::string &bits)
{
    BitVec v;
    for (char c : bits) {
        spm_assert(c == '0' || c == '1',
                   "BitVec::fromString: bad character '", c, "'");
        v.pushBack(c == '1');
    }
    return v;
}

bool
BitVec::get(std::size_t idx) const
{
    spm_assert(idx < numBits, "BitVec::get: index ", idx, " out of range ",
               numBits);
    return (words[wordIndex(idx)] & bitMask(idx)) != 0;
}

void
BitVec::set(std::size_t idx, bool value)
{
    spm_assert(idx < numBits, "BitVec::set: index ", idx, " out of range ",
               numBits);
    if (value)
        words[wordIndex(idx)] |= bitMask(idx);
    else
        words[wordIndex(idx)] &= ~bitMask(idx);
}

void
BitVec::pushBack(bool value)
{
    if (numBits % bitsPerWord == 0)
        words.push_back(0);
    ++numBits;
    set(numBits - 1, value);
}

void
BitVec::clear()
{
    words.clear();
    numBits = 0;
}

void
BitVec::resize(std::size_t n, bool value)
{
    std::size_t old_bits = numBits;
    std::size_t new_words = (n + bitsPerWord - 1) / bitsPerWord;
    words.resize(new_words, value ? ~std::uint64_t(0) : 0);
    numBits = n;
    if (value && n > old_bits) {
        // Bits in the partially used old tail word must be set by hand.
        for (std::size_t i = old_bits; i < n && i % bitsPerWord != 0; ++i)
            set(i, true);
    }
    trimTail();
}

std::size_t
BitVec::popcount() const
{
    std::size_t total = 0;
    for (std::uint64_t w : words)
        total += static_cast<std::size_t>(std::popcount(w));
    return total;
}

std::size_t
BitVec::findFirst() const
{
    for (std::size_t wi = 0; wi < words.size(); ++wi) {
        if (words[wi] != 0) {
            return wi * bitsPerWord +
                   static_cast<std::size_t>(std::countr_zero(words[wi]));
        }
    }
    return numBits;
}

BitVec &
BitVec::operator&=(const BitVec &other)
{
    spm_assert(numBits == other.numBits, "BitVec size mismatch");
    for (std::size_t i = 0; i < words.size(); ++i)
        words[i] &= other.words[i];
    return *this;
}

BitVec &
BitVec::operator|=(const BitVec &other)
{
    spm_assert(numBits == other.numBits, "BitVec size mismatch");
    for (std::size_t i = 0; i < words.size(); ++i)
        words[i] |= other.words[i];
    return *this;
}

BitVec &
BitVec::operator^=(const BitVec &other)
{
    spm_assert(numBits == other.numBits, "BitVec size mismatch");
    for (std::size_t i = 0; i < words.size(); ++i)
        words[i] ^= other.words[i];
    return *this;
}

void
BitVec::flip()
{
    for (auto &w : words)
        w = ~w;
    trimTail();
}

bool
BitVec::operator==(const BitVec &other) const
{
    return numBits == other.numBits && words == other.words;
}

std::string
BitVec::toString() const
{
    std::string s;
    s.reserve(numBits);
    for (std::size_t i = 0; i < numBits; ++i)
        s.push_back(get(i) ? '1' : '0');
    return s;
}

void
BitVec::trimTail()
{
    std::size_t used = numBits % bitsPerWord;
    if (used != 0 && !words.empty())
        words.back() &= (std::uint64_t(1) << used) - 1;
}

} // namespace spm
