/**
 * @file
 * Fundamental scalar types shared across the reproduction.
 *
 * The paper's machine moves one character per "beat" -- the interval in
 * which one character arrives from either input stream (Section 3.2.1).
 * All simulators in this repository count time in beats and derive wall
 * clock time from a configurable beat period.
 */

#ifndef SPM_UTIL_TYPES_HH
#define SPM_UTIL_TYPES_HH

#include <cstdint>

namespace spm
{

/** Beat counter. A beat is one character time (Section 3.2.1). */
using Beat = std::uint64_t;

/**
 * A character drawn from the alphabet Sigma, encoded as a small integer.
 * The prototype chip used 2-bit characters; we allow up to 16 bits.
 */
using Symbol = std::uint16_t;

/** Number of bits used to encode one Symbol. */
using BitWidth = unsigned;

/** Simulated time in picoseconds. */
using Picoseconds = std::uint64_t;

/** The beat period of the fabricated prototype: 250 ns per character. */
inline constexpr Picoseconds prototypeBeatPs = 250'000;

/**
 * Sentinel value used for the wild card character 'x' in pattern streams.
 * The wild card is not a member of Sigma; it is carried alongside the
 * pattern as the don't-care bit (Section 3.2.1), but at the API level it
 * is convenient to denote it with a reserved symbol value.
 */
inline constexpr Symbol wildcardSymbol = 0xFFFF;

} // namespace spm

#endif // SPM_UTIL_TYPES_HH
