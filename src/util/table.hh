/**
 * @file
 * ASCII table rendering for benchmark reports.
 *
 * Every experiment bench prints the rows the paper's claims map onto
 * (DESIGN.md, Section 5). Table produces aligned, bordered output so
 * those rows read like a published table.
 */

#ifndef SPM_UTIL_TABLE_HH
#define SPM_UTIL_TABLE_HH

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace spm
{

/** A simple column-aligned ASCII table. */
class Table
{
  public:
    /** @param table_title caption printed above the table. */
    explicit Table(std::string table_title = "");

    /** Set the header row. */
    void setHeader(std::vector<std::string> cells);

    /** Append a data row; cell count may differ from the header. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format arbitrary streamable values into a row. */
    template <typename... Args>
    void
    addRowOf(Args &&...args)
    {
        std::vector<std::string> cells;
        (cells.push_back(formatCell(std::forward<Args>(args))), ...);
        addRow(std::move(cells));
    }

    /** Render the full table. */
    std::string toString() const;

    /** Render and write to stdout. */
    void print() const;

    std::size_t rowCount() const { return rows.size(); }

    /** Format a double with @p digits significant decimals. */
    static std::string fixed(double v, int digits = 2);

  private:
    template <typename T>
    static std::string formatCell(T &&v);

    std::string title;
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

template <typename T>
std::string
Table::formatCell(T &&v)
{
    if constexpr (std::is_convertible_v<T, std::string>) {
        return std::string(std::forward<T>(v));
    } else if constexpr (std::is_floating_point_v<std::decay_t<T>>) {
        return fixed(static_cast<double>(v));
    } else {
        return std::to_string(v);
    }
}

} // namespace spm

#endif // SPM_UTIL_TABLE_HH
