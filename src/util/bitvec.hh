/**
 * @file
 * A compact dynamic bit vector.
 *
 * The pattern matcher's output is "a stream of bits, each of which
 * corresponds to one of the characters in the text string" (Section 3.1).
 * BitVec is the container used throughout the repository for result
 * streams, per-beat activity masks, and mask-layer bitmaps.
 */

#ifndef SPM_UTIL_BITVEC_HH
#define SPM_UTIL_BITVEC_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace spm
{

/**
 * Dynamically sized vector of bits with word-parallel bulk operations.
 *
 * Unlike std::vector<bool>, BitVec exposes population count, word-wise
 * logical operators, and a printable form, all of which the benches and
 * tests rely on.
 */
class BitVec
{
  public:
    BitVec() = default;

    /** Construct with @p n bits, all set to @p value. */
    explicit BitVec(std::size_t n, bool value = false);

    /** Construct from a string of '0'/'1' characters. */
    static BitVec fromString(const std::string &bits);

    /** Number of bits held. */
    std::size_t size() const { return numBits; }

    /** True when no bits are held. */
    bool empty() const { return numBits == 0; }

    /** Read the bit at @p idx. */
    bool get(std::size_t idx) const;

    /** Set the bit at @p idx to @p value. */
    void set(std::size_t idx, bool value);

    /** Append one bit. */
    void pushBack(bool value);

    /** Remove all bits. */
    void clear();

    /** Resize to @p n bits; new bits are @p value. */
    void resize(std::size_t n, bool value = false);

    /** Number of set bits. */
    std::size_t popcount() const;

    /** Index of the first set bit, or size() if none. */
    std::size_t findFirst() const;

    /** Bitwise AND with @p other; sizes must match. */
    BitVec &operator&=(const BitVec &other);

    /** Bitwise OR with @p other; sizes must match. */
    BitVec &operator|=(const BitVec &other);

    /** Bitwise XOR with @p other; sizes must match. */
    BitVec &operator^=(const BitVec &other);

    /** Invert every bit in place. */
    void flip();

    bool operator==(const BitVec &other) const;

    /** Render as a string of '0'/'1' characters, index 0 first. */
    std::string toString() const;

  private:
    static constexpr std::size_t bitsPerWord = 64;

    static std::size_t wordIndex(std::size_t idx)
    {
        return idx / bitsPerWord;
    }
    static std::uint64_t bitMask(std::size_t idx)
    {
        return std::uint64_t(1) << (idx % bitsPerWord);
    }

    /** Zero any bits beyond numBits in the last word. */
    void trimTail();

    std::vector<std::uint64_t> words;
    std::size_t numBits = 0;
};

inline BitVec
operator&(BitVec a, const BitVec &b)
{
    a &= b;
    return a;
}

inline BitVec
operator|(BitVec a, const BitVec &b)
{
    a |= b;
    return a;
}

inline BitVec
operator^(BitVec a, const BitVec &b)
{
    a ^= b;
    return a;
}

} // namespace spm

#endif // SPM_UTIL_BITVEC_HH
