/**
 * @file
 * Running-aggregate statistics.
 *
 * Counters, gauges and histograms live in the telemetry registry
 * (src/telemetry/metrics.hh); what remains here is the one aggregate
 * that is cheaper to carry inline than to bucket: a Welford running
 * mean/min/max/variance over a stream of samples, used for per-beat
 * utilization summaries and bench reporting.
 */

#ifndef SPM_UTIL_STATS_HH
#define SPM_UTIL_STATS_HH

#include <cstdint>

namespace spm
{

/** Running mean / min / max / variance over a stream of samples. */
class RunningStat
{
  public:
    void sample(double v);

    std::uint64_t count() const { return n; }
    double mean() const { return n ? total / static_cast<double>(n) : 0.0; }
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }

    /** Population variance via Welford's algorithm. */
    double variance() const;
    double stddev() const;

    void reset();

  private:
    std::uint64_t n = 0;
    double total = 0.0;
    double lo = 0.0;
    double hi = 0.0;
    double welfordMean = 0.0;
    double welfordM2 = 0.0;
};

} // namespace spm

#endif // SPM_UTIL_STATS_HH
