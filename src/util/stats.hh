/**
 * @file
 * Lightweight statistics collection.
 *
 * Every simulator in the reproduction exposes counters (beats simulated,
 * comparisons performed, cells active) and distributions (per-beat
 * utilization). This module provides the small set of statistic types
 * they use, in the spirit of gem5's stats package but self-contained.
 */

#ifndef SPM_UTIL_STATS_HH
#define SPM_UTIL_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace spm
{

/** A named monotonically increasing counter. */
class Counter
{
  public:
    explicit Counter(std::string stat_name = "")
        : name(std::move(stat_name)) {}

    void increment(std::uint64_t by = 1) { count += by; }
    std::uint64_t value() const { return count; }
    void reset() { count = 0; }
    const std::string &statName() const { return name; }

  private:
    std::string name;
    std::uint64_t count = 0;
};

/** Running mean / min / max / variance over a stream of samples. */
class RunningStat
{
  public:
    void sample(double v);

    std::uint64_t count() const { return n; }
    double mean() const { return n ? total / static_cast<double>(n) : 0.0; }
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }

    /** Population variance via Welford's algorithm. */
    double variance() const;
    double stddev() const;

    void reset();

  private:
    std::uint64_t n = 0;
    double total = 0.0;
    double lo = 0.0;
    double hi = 0.0;
    double welfordMean = 0.0;
    double welfordM2 = 0.0;
};

/** Fixed-bucket histogram over [lo, hi). */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    void sample(double v);

    std::size_t bucketCount() const { return counts.size(); }
    std::uint64_t bucketValue(std::size_t i) const { return counts[i]; }
    std::uint64_t underflows() const { return under; }
    std::uint64_t overflows() const { return over; }
    std::uint64_t samples() const { return total; }

    /** Render the histogram as rows of "[lo,hi): count". */
    std::string toString() const;

  private:
    double rangeLo;
    double rangeHi;
    std::vector<std::uint64_t> counts;
    std::uint64_t under = 0;
    std::uint64_t over = 0;
    std::uint64_t total = 0;
};

/**
 * A registry of named statistics belonging to one simulated component.
 * Components register counters at construction; dump() renders the
 * group for reports.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string group_name)
        : name(std::move(group_name)) {}

    /** Register and return a counter owned by this group. */
    Counter &addCounter(const std::string &counter_name);

    /** Look up a registered counter; panics if missing. */
    const Counter &counter(const std::string &counter_name) const;

    /** Render "group.counter = value" lines. */
    std::string dump() const;

    const std::string &groupName() const { return name; }

  private:
    std::string name;
    std::map<std::string, Counter> counters;
};

} // namespace spm

#endif // SPM_UTIL_STATS_HH
