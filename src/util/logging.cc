#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace spm
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    // Throwing instead of abort() keeps the failure testable; the
    // exception type documents that this is an internal error.
    throw std::logic_error("panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace spm
