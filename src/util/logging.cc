#include "util/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace spm
{

namespace
{

// Process-global; atomic because the sharded service's worker
// threads consult the level from their serving loops.
std::atomic<LogLevel> minLevel{LogLevel::Info};

} // namespace

void
setLogMinLevel(LogLevel level)
{
    minLevel.store(level, std::memory_order_relaxed);
}

LogLevel
logMinLevel()
{
    return minLevel.load(std::memory_order_relaxed);
}

bool
logEnabled(LogLevel level)
{
    return level != LogLevel::Silent &&
           static_cast<unsigned>(level) >=
               static_cast<unsigned>(logMinLevel());
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    // Throwing instead of abort() keeps the failure testable; the
    // exception type documents that this is an internal error.
    throw std::logic_error("panic: " + msg);
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    throw std::runtime_error("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    if (!logEnabled(LogLevel::Warn))
        return;
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (!logEnabled(LogLevel::Info))
        return;
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace spm
