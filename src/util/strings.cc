#include "util/strings.hh"

#include <sstream>

#include "util/logging.hh"

namespace spm
{

std::vector<Symbol>
parseSymbols(const std::string &text)
{
    std::vector<Symbol> syms;
    syms.reserve(text.size());
    for (char c : text) {
        if (c == 'x' || c == 'X') {
            syms.push_back(wildcardSymbol);
        } else if (c >= 'A' && c <= 'W') {
            syms.push_back(static_cast<Symbol>(c - 'A'));
        } else if (c >= 'a' && c <= 'w') {
            syms.push_back(static_cast<Symbol>(c - 'a'));
        } else if (c == ' ') {
            continue;
        } else {
            spm_fatal("parseSymbols: unsupported character '", c, "'");
        }
    }
    return syms;
}

std::string
renderSymbols(const std::vector<Symbol> &syms)
{
    std::ostringstream os;
    for (Symbol s : syms) {
        if (s == wildcardSymbol)
            os << 'X';
        else if (s < 23)
            os << static_cast<char>('A' + s);
        else
            os << '<' << s << '>';
    }
    return os.str();
}

std::vector<Symbol>
bytesToSymbols(const std::string &bytes)
{
    std::vector<Symbol> syms;
    syms.reserve(bytes.size());
    for (char c : bytes)
        syms.push_back(static_cast<Symbol>(static_cast<unsigned char>(c)));
    return syms;
}

std::string
renderMatchPositions(const std::vector<bool> &results)
{
    std::ostringstream os;
    bool first = true;
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i]) {
            if (!first)
                os << ", ";
            os << i;
            first = false;
        }
    }
    return os.str();
}

BitWidth
requiredBits(const std::vector<Symbol> &syms)
{
    Symbol max_sym = 0;
    for (Symbol s : syms) {
        if (s != wildcardSymbol && s > max_sym)
            max_sym = s;
    }
    BitWidth bits = 1;
    while ((Symbol(1) << bits) <= max_sym)
        ++bits;
    return bits;
}

} // namespace spm
