/**
 * @file
 * Automatic shrinking of failing conformance cases.
 *
 * A structured fuzzer finds its bugs on awkwardly sized cases; the
 * report should not make a human read a 190-character text. The
 * shrinker greedily minimizes a failing case under a caller-supplied
 * predicate ("this oracle still disagrees with the reference"),
 * delta-debugging style: remove text chunks from large to small,
 * shorten the pattern from both ends, then canonicalize surviving
 * symbols toward 0. Every candidate is re-checked through the real
 * differ, so the minimized case provably still fails, and its literal
 * case ID replays it from one string.
 */

#ifndef SPM_CONFORMANCE_SHRINK_HH
#define SPM_CONFORMANCE_SHRINK_HH

#include <cstddef>
#include <functional>

#include "conformance/case.hh"

namespace spm::conformance
{

/** The shrinking outcome. */
struct ShrinkResult
{
    Case minimized;
    /** Accepted shrink steps (how much smaller the case got). */
    std::size_t steps = 0;
    /** Predicate evaluations spent. */
    std::size_t evaluations = 0;
};

/**
 * Minimize @p failing while @p still_fails holds.
 *
 * @param failing a case for which still_fails(failing) is true
 * @param still_fails the failure predicate (must be deterministic)
 * @param max_evaluations evaluation budget; 0 means the default (800)
 */
ShrinkResult shrinkCase(const Case &failing,
                        const std::function<bool(const Case &)> &still_fails,
                        std::size_t max_evaluations = 0);

} // namespace spm::conformance

#endif // SPM_CONFORMANCE_SHRINK_HH
