#include "conformance/casegen.hh"

#include "util/rng.hh"

namespace spm::conformance
{

namespace
{

/**
 * Pattern lengths where length-boundary bugs live: the trivial cell
 * (1), the prototype's array (8), and each side of the 64-bit word
 * the packed kernel and the service's default pattern limit share.
 */
constexpr std::size_t hardLens[] = {1, 2, 3, 7, 8, 9,
                                    31, 32, 33, 63, 64, 65};

/** Wild-card densities in percent: none, sparse, heavy, all-wild. */
constexpr unsigned densities[] = {0, 10, 25, 60, 100};

} // namespace

CaseSpec
CaseGen::specAt(std::uint64_t index) const
{
    // One private stream per index: knob draws never bleed between
    // cases, so inserting a new knob keeps every other case stable.
    Rng rng(master ^ (0x9E3779B97F4A7C15ULL + index * 0xBF58476D1CE4E5B9ULL));

    CaseSpec spec;
    spec.seed = rng.next();

    // Alphabet: the fabricated prototype's 2-bit characters most of
    // the time, the degenerate 1-bit alphabet (maximal accidental
    // matches) and full bytes regularly, odd widths occasionally.
    switch (rng.nextBelow(8)) {
    case 0:
    case 1:
        spec.bits = 1;
        break;
    case 2:
        spec.bits = 8;
        break;
    case 3:
        spec.bits = static_cast<BitWidth>(3 + rng.nextBelow(3));
        break;
    default:
        spec.bits = 2;
        break;
    }

    // Pattern length: hard boundary lengths half the time.
    if (rng.nextBool(0.5)) {
        spec.patternLen =
            hardLens[rng.nextBelow(std::size(hardLens))];
    } else {
        spec.patternLen = 1 + rng.nextBelow(20);
    }

    spec.wildcardPct = densities[rng.nextBelow(std::size(densities))];
    if (spec.patternLen >= 63 && spec.wildcardPct == 100)
        spec.wildcardPct = 60; // keep at least one literal to anchor

    // Text length classes, in rough order: tight fits around the
    // pattern (including k > n), word-boundary straddlers, shard-scale
    // texts that split 2 and 4 ways, and free mid-size texts.
    const std::size_t k = spec.patternLen;
    switch (rng.nextBelow(8)) {
    case 0:
        // Tight: n in [k-2, k+2]; exercises the k > n degenerate.
        spec.textLen = (k > 2 ? k - 2 : 0) + rng.nextBelow(5);
        break;
    case 1:
    case 2: {
        // Straddle a packed-word boundary: n near 64 or 128.
        const std::size_t word = (1 + rng.nextBelow(2)) * 64;
        spec.textLen = word - 2 + rng.nextBelow(5);
        break;
    }
    case 3:
    case 4: {
        // Shard-scale: several times the sharded service's minimum
        // slice so serve() actually splits 2 or 4 ways.
        spec.textLen = 96 + rng.nextBelow(160);
        spec.flags |= FlagShardStraddle;
        break;
    }
    default:
        spec.textLen = k + rng.nextBelow(120);
        break;
    }

    if (rng.nextBool(0.3))
        spec.flags |= FlagSelfOverlap;
    if (rng.nextBool(0.35))
        spec.flags |= FlagLeadingMatch;
    if (rng.nextBool(0.35))
        spec.flags |= FlagTrailingMatch;
    // Appended after the original knobs so their draws -- and every
    // committed g1 case ID -- stay stable.
    if (rng.nextBool(0.3))
        spec.flags |= FlagDictOverlap;
    return spec;
}

} // namespace spm::conformance
