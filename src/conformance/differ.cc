#include "conformance/differ.hh"

#include <exception>

#include "util/logging.hh"

namespace spm::conformance
{

namespace
{

/** Diff one oracle's answer against the reference answer. */
std::optional<Disagreement>
diffAgainst(const std::vector<bool> &expect, const Oracle &oracle,
            const Case &c)
{
    std::vector<bool> got;
    try {
        got = oracle.matcher->match(c.text, c.pattern);
    } catch (const std::exception &e) {
        Disagreement d;
        d.oracle = oracle.name();
        d.kind = Disagreement::Kind::Error;
        d.detail = e.what();
        return d;
    }

    if (got == expect)
        return std::nullopt;

    Disagreement d;
    d.oracle = oracle.name();
    d.kind = Disagreement::Kind::Mismatch;
    if (got.size() != expect.size()) {
        d.detail = "result length " + std::to_string(got.size()) +
                   " != " + std::to_string(expect.size());
        d.mismatches = 1;
        return d;
    }
    bool first_seen = false;
    for (std::size_t i = 0; i < got.size(); ++i) {
        if (got[i] == expect[i])
            continue;
        if (!first_seen) {
            d.firstIndex = i;
            first_seen = true;
        }
        d.lastIndex = i;
        ++d.mismatches;
    }
    return d;
}

} // namespace

std::string
Disagreement::summary() const
{
    if (kind == Kind::Error)
        return oracle + ": error: " + detail;
    std::string s = oracle + ": " + std::to_string(mismatches) +
                    " mismatched bit(s)";
    if (!detail.empty())
        return s + " (" + detail + ")";
    s += " in [" + std::to_string(firstIndex) + ", " +
         std::to_string(lastIndex) + "]";
    return s;
}

CaseResult
runCase(const Case &c, std::vector<Oracle> &oracles, std::uint64_t index)
{
    spm_assert(!oracles.empty(), "no oracles registered");
    CaseResult result;
    const std::vector<bool> expect =
        oracles.front().matcher->match(c.text, c.pattern);
    result.oraclesRun = 1;
    for (std::size_t i = 1; i < oracles.size(); ++i) {
        if (!oracles[i].eligible(c, index)) {
            ++result.oraclesSkipped;
            continue;
        }
        ++result.oraclesRun;
        if (auto d = diffAgainst(expect, oracles[i], c))
            result.disagreements.push_back(std::move(*d));
    }
    return result;
}

bool
stillFails(const Case &c, std::vector<Oracle> &oracles,
           std::size_t oracle_pos)
{
    spm_assert(oracle_pos > 0 && oracle_pos < oracles.size(),
               "oracle position out of range");
    const std::vector<bool> expect =
        oracles.front().matcher->match(c.text, c.pattern);
    return diffAgainst(expect, oracles[oracle_pos], c).has_value();
}

} // namespace spm::conformance
