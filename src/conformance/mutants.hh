/**
 * @file
 * Seeded-bug matchers for the mutation self-check.
 *
 * A fuzzer that never fails is indistinguishable from a fuzzer that
 * cannot fail. Each mutant here re-introduces a realistic bug class
 * from this codebase's history -- overlap stitching off by one,
 * a dropped wildcard plane, a mis-phased control stream -- as a
 * Matcher. The self-check (harness.hh) runs the ordinary differential
 * loop with the mutant as the device under test and asserts that a
 * disagreement is found within a bounded number of generated cases.
 * A surviving mutant fails the build: it means the generator's bias
 * no longer reaches that bug class.
 */

#ifndef SPM_CONFORMANCE_MUTANTS_HH
#define SPM_CONFORMANCE_MUTANTS_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/matcher.hh"

namespace spm::conformance
{

/** One seeded bug: a factory for the buggy matcher plus provenance. */
struct Mutant
{
    std::string name;
    /** The bug seeded into this mutant, for reports. */
    std::string seededBug;
    /** The region of the generator expected to excite the bug. */
    std::string expectedTrigger;
    std::function<std::unique_ptr<core::Matcher>()> make;
};

/** The full mutant battery, stable order. */
const std::vector<Mutant> &allMutants();

} // namespace spm::conformance

#endif // SPM_CONFORMANCE_MUTANTS_HH
