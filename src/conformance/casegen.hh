/**
 * @file
 * Structured case generation for the conformance fuzzer.
 *
 * Uniform random cases almost never land on the shapes where
 * boundary-length bugs hide: pattern lengths straddling the 64-bit
 * word (63/64/65), single-character patterns, wild-card-dense
 * patterns, texts sized exactly to a word or shard boundary,
 * self-overlapping (periodic) patterns, and matches whose windows
 * straddle a shard cut. CaseGen therefore draws its knobs from
 * stratified hard regions rather than uniformly: index i maps
 * deterministically to a CaseSpec (and so, via the case ID, to one
 * replayable case).
 */

#ifndef SPM_CONFORMANCE_CASEGEN_HH
#define SPM_CONFORMANCE_CASEGEN_HH

#include <cstdint>

#include "conformance/case.hh"

namespace spm::conformance
{

/** Deterministic structured generator: master seed + index -> spec. */
class CaseGen
{
  public:
    explicit CaseGen(std::uint64_t master_seed) : master(master_seed) {}

    std::uint64_t masterSeed() const { return master; }

    /** The spec for sweep index @p index (pure function). */
    CaseSpec specAt(std::uint64_t index) const;

    /** materializeSpec(specAt(index)). */
    Case caseAt(std::uint64_t index) const
    {
        return materializeSpec(specAt(index));
    }

  private:
    std::uint64_t master;
};

} // namespace spm::conformance

#endif // SPM_CONFORMANCE_CASEGEN_HH
