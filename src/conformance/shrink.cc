#include "conformance/shrink.hh"

#include <algorithm>

#include "util/logging.hh"

namespace spm::conformance
{

namespace
{

class Shrinker
{
  public:
    Shrinker(Case start, std::function<bool(const Case &)> pred,
             std::size_t budget)
        : current(std::move(start)), stillFails(std::move(pred)),
          maxEvals(budget)
    {
    }

    ShrinkResult run()
    {
        // Outer fixpoint: every pass can unlock further passes (a
        // shorter text makes a shorter pattern reachable and vice
        // versa), so iterate until nothing improves.
        bool improved = true;
        while (improved && evals < maxEvals) {
            improved = false;
            improved |= shrinkTextChunks();
            improved |= shrinkPatternEnds();
            improved |= canonicalizeSymbols();
        }
        return ShrinkResult{current, steps, evals};
    }

  private:
    /** Try a candidate; adopt it when it still fails. */
    bool accept(const Case &candidate)
    {
        if (evals >= maxEvals)
            return false;
        ++evals;
        if (!stillFails(candidate))
            return false;
        current = candidate;
        ++steps;
        return true;
    }

    /** Remove text chunks, halving the chunk size down to 1. */
    bool shrinkTextChunks()
    {
        bool any = false;
        std::size_t chunk = std::max<std::size_t>(1, current.text.size() / 2);
        while (chunk >= 1 && evals < maxEvals) {
            bool removed = false;
            for (std::size_t at = 0; at < current.text.size();) {
                Case candidate = current;
                const std::size_t len =
                    std::min(chunk, candidate.text.size() - at);
                candidate.text.erase(
                    candidate.text.begin() + static_cast<std::ptrdiff_t>(at),
                    candidate.text.begin() +
                        static_cast<std::ptrdiff_t>(at + len));
                if (accept(candidate)) {
                    removed = any = true;
                    // Same offset now holds the next chunk.
                } else {
                    at += chunk;
                }
                if (evals >= maxEvals)
                    break;
            }
            if (!removed)
                chunk /= 2;
        }
        return any;
    }

    /** Drop pattern characters from the tail, then the head. */
    bool shrinkPatternEnds()
    {
        bool any = false;
        for (const bool from_tail : {true, false}) {
            while (!current.pattern.empty() && evals < maxEvals) {
                Case candidate = current;
                if (from_tail)
                    candidate.pattern.pop_back();
                else
                    candidate.pattern.erase(candidate.pattern.begin());
                if (!accept(candidate))
                    break;
                any = true;
            }
        }
        return any;
    }

    /** Rewrite surviving symbols toward 0 (and wild cards to 0). */
    bool canonicalizeSymbols()
    {
        bool any = false;
        for (const bool in_text : {true, false}) {
            std::vector<Symbol> &stream =
                in_text ? current.text : current.pattern;
            for (std::size_t i = 0; i < stream.size(); ++i) {
                if (stream[i] == 0 || evals >= maxEvals)
                    continue;
                Case candidate = current;
                (in_text ? candidate.text : candidate.pattern)[i] = 0;
                any |= accept(candidate);
            }
        }
        return any;
    }

    Case current;
    std::function<bool(const Case &)> stillFails;
    std::size_t maxEvals;
    std::size_t evals = 0;
    std::size_t steps = 0;
};

} // namespace

ShrinkResult
shrinkCase(const Case &failing,
           const std::function<bool(const Case &)> &still_fails,
           std::size_t max_evaluations)
{
    spm_assert(still_fails(failing),
               "shrinkCase needs a case that currently fails");
    const std::size_t budget =
        max_evaluations == 0 ? 800 : max_evaluations;
    Shrinker s(failing, still_fails, budget);
    return s.run();
}

} // namespace spm::conformance
