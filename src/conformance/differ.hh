/**
 * @file
 * Differential execution of one case across the oracle registry.
 *
 * Entry 0 of the registry (the reference definition) provides the
 * trusted answer; every other eligible oracle's result stream is
 * diffed bit for bit against it. A disagreement records the first and
 * last mismatching text positions -- the shrinker's starting point --
 * and an oracle that throws (a service-level failure) is reported as
 * a disagreement of kind Error rather than silently skipped.
 */

#ifndef SPM_CONFORMANCE_DIFFER_HH
#define SPM_CONFORMANCE_DIFFER_HH

#include <string>
#include <vector>

#include "conformance/case.hh"
#include "conformance/oracles.hh"

namespace spm::conformance
{

/** One oracle's verdict against the reference on one case. */
struct Disagreement
{
    enum class Kind
    {
        Mismatch, ///< result stream differs from the reference
        Error,    ///< the oracle threw instead of answering
    };

    std::string oracle;
    Kind kind = Kind::Mismatch;
    /** First and last differing text positions (Mismatch only). */
    std::size_t firstIndex = 0;
    std::size_t lastIndex = 0;
    /** Mismatching positions in total (Mismatch only). */
    std::size_t mismatches = 0;
    /** The thrown message (Error only). */
    std::string detail;

    std::string summary() const;
};

/** The outcome of one differential case run. */
struct CaseResult
{
    /** Oracles that ran (eligible at this index). */
    std::size_t oraclesRun = 0;
    /** Oracles skipped by eligibility limits or stride. */
    std::size_t oraclesSkipped = 0;
    std::vector<Disagreement> disagreements;

    bool agreed() const { return disagreements.empty(); }
};

/**
 * Run @p c across every oracle eligible at @p index and diff against
 * the reference (registry entry 0, which always runs).
 */
CaseResult runCase(const Case &c, std::vector<Oracle> &oracles,
                   std::uint64_t index = 0);

/**
 * Whether @p oracle (by registry position) still disagrees with the
 * reference on @p c -- the shrinker's predicate. Errors count as
 * disagreement.
 */
bool stillFails(const Case &c, std::vector<Oracle> &oracles,
                std::size_t oracle_pos);

} // namespace spm::conformance

#endif // SPM_CONFORMANCE_DIFFER_HH
