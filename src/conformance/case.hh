/**
 * @file
 * Conformance cases and their deterministic string encoding.
 *
 * A Case is one instance of the Section 3.1 problem (alphabet width,
 * pattern with wild cards, text). Every case the fuzzer ever runs is
 * replayable from a single printable case ID:
 *
 *   g1:<seed>:<bits>:<k>:<n>:<wc>:<flags>   a generated case: master
 *                                           seed plus the generator
 *                                           knobs; materializeSpec()
 *                                           rebuilds the exact streams
 *   l1:<bits>:<pattern>:<text>              a literal case: the
 *                                           streams themselves, hex
 *                                           symbols '.'-separated,
 *                                           '*' for the wild card
 *
 * Failure reports print the literal ID of the shrunk case, so one
 * string pasted into `conformance_fuzz --replay <id>` reproduces the
 * minimized disagreement with no other state.
 */

#ifndef SPM_CONFORMANCE_CASE_HH
#define SPM_CONFORMANCE_CASE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/types.hh"

namespace spm::conformance
{

/** One instance of the matching problem. */
struct Case
{
    BitWidth bits = 2; ///< alphabet width; symbols are < 2^bits
    std::vector<Symbol> pattern;
    std::vector<Symbol> text;

    bool operator==(const Case &) const = default;
};

/** Structured-generation knobs (the "flags" field of a g1 ID). */
enum CaseFlag : unsigned
{
    /** Pattern is periodic, so matches self-overlap. */
    FlagSelfOverlap = 1u << 0,
    /** Plant matches straddling the sharded service's boundaries. */
    FlagShardStraddle = 1u << 1,
    /** Plant one match at the earliest legal position (i = k-1). */
    FlagLeadingMatch = 1u << 2,
    /** Plant one match ending on the last text character. */
    FlagTrailingMatch = 1u << 3,
    /**
     * Plant prefix and suffix fragments of the pattern so the
     * dictionaries the multi-pattern oracles derive from the case
     * (members are pattern prefixes/suffixes and text substrings) get
     * overlapping hits where the full pattern misses.
     */
    FlagDictOverlap = 1u << 4,
};

/**
 * Seed + knobs for one generated case. The case content is a pure
 * function of this record (materializeSpec), so the g1 encoding of
 * the record is a replayable case ID.
 */
struct CaseSpec
{
    std::uint64_t seed = 0;
    BitWidth bits = 2;
    std::size_t patternLen = 3;
    std::size_t textLen = 40;
    /** Wild-card probability in percent (0..100). */
    unsigned wildcardPct = 0;
    unsigned flags = 0;

    bool operator==(const CaseSpec &) const = default;
};

/** Deterministically build the case a spec describes. */
Case materializeSpec(const CaseSpec &spec);

/** Encode a spec as a g1 case ID. */
std::string encodeSpec(const CaseSpec &spec);

/** Encode a case verbatim as an l1 case ID. */
std::string encodeLiteral(const Case &c);

/** Decode a g1 ID; nullopt when malformed or not a g1 ID. */
std::optional<CaseSpec> decodeSpec(const std::string &id);

/**
 * Decode any case ID (g1 or l1) into the case it replays; nullopt
 * when the string is not a well-formed case ID.
 */
std::optional<Case> decodeCase(const std::string &id);

/** Render a case for failure reports (lengths, streams, alphabet). */
std::string describeCase(const Case &c);

} // namespace spm::conformance

#endif // SPM_CONFORMANCE_CASE_HH
