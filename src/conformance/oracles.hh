/**
 * @file
 * The oracle registry: every Matcher-interface realization of the
 * Section 3.1 problem, wrapped with the eligibility limits the fuzzer
 * respects.
 *
 * The paper's central claim is that one algorithm is realized
 * identically at every design level; the registry is that claim made
 * executable. It holds the reference definition, the behavioral
 * array, the bit-serial pipeline, the multipass driver, the
 * word-parallel kernel, the SIMD kernel (best tier plus every
 * supported tier forced down), the batch layer (multi-wide packing
 * and the chunked carry path), the gate-level chip (event-driven and
 * levelized), the chip cascade, and the sharded service at 1, 2 and
 * 4 worker threads -- all oracles of each other.
 *
 * Eligibility limits keep the expensive fidelities (a gate-level chip
 * is ~10^4 device evaluations per beat) on cases small enough that a
 * 100k-case campaign stays tractable; `stride` additionally runs an
 * oracle on only every Nth eligible case, deterministically by index.
 */

#ifndef SPM_CONFORMANCE_ORACLES_HH
#define SPM_CONFORMANCE_ORACLES_HH

#include <memory>
#include <string>
#include <vector>

#include "conformance/case.hh"
#include "core/matcher.hh"

namespace spm::conformance
{

/** One matcher configuration participating in differential runs. */
struct Oracle
{
    std::unique_ptr<core::Matcher> matcher;
    /** Case limits; ineligible cases are skipped, not failed. */
    std::size_t maxText = 1 << 16;
    std::size_t maxPattern = 512;
    BitWidth maxBits = 16;
    /** Run on every Nth eligible case (1 = every case). */
    std::uint64_t stride = 1;

    std::string name() const { return matcher->name(); }

    /** Whether this oracle runs case @p c at sweep index @p index. */
    bool eligible(const Case &c, std::uint64_t index) const
    {
        return c.text.size() <= maxText &&
               c.pattern.size() <= maxPattern && c.bits <= maxBits &&
               index % stride == 0;
    }
};

/**
 * The full registry: every implementation, with the sharded service
 * at three thread counts, the SIMD kernel at every supported tier and
 * the batch layer at several pack shapes. Entry 0 is always the
 * reference matcher the differ trusts.
 */
std::vector<Oracle> makeAllOracles(bool with_gate = true);

/** Names of the configurations makeAllOracles() would return. */
std::vector<std::string> allOracleNames(bool with_gate = true);

/**
 * The sharded service behind the Matcher interface, pinned to the
 * word-parallel kernel per shard with a small minimum slice so even
 * modest texts split across all workers. Services are cached per
 * alphabet width (threads spin up once, not per case).
 */
std::unique_ptr<core::Matcher> makeShardedOracle(unsigned threads);

/**
 * A cascade sized per call: two chips splitting max(k, 2) cells, so
 * the pin-to-pin board wiring is exercised on every pattern shape.
 */
std::unique_ptr<core::Matcher> makeCascadeOracle();

} // namespace spm::conformance

#endif // SPM_CONFORMANCE_ORACLES_HH
