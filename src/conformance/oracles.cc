#include "conformance/oracles.hh"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/batch.hh"
#include "core/behavioral.hh"
#include "core/bitserial.hh"
#include "core/cascade.hh"
#include "core/gatechip.hh"
#include "core/multipass.hh"
#include "core/reference.hh"
#include "core/simdpar.hh"
#include "core/wordpar.hh"
#include "service/sharded.hh"
#include "util/strings.hh"

namespace spm::conformance
{

namespace
{

/**
 * The sharded service as a Matcher. One service per alphabet width is
 * built lazily and reused, so worker threads are spawned once per
 * width rather than once per case. Service-level failures (which the
 * Matcher interface cannot express) become exceptions the differ
 * reports as oracle errors.
 */
class ShardedOracleMatcher : public core::Matcher
{
  public:
    explicit ShardedOracleMatcher(unsigned thread_count)
        : threads(thread_count)
    {
    }

    std::vector<bool> match(const std::vector<Symbol> &text,
                            const std::vector<Symbol> &pattern) override
    {
        if (pattern.empty() || text.empty() ||
            pattern.size() > text.size())
            return std::vector<bool>(text.size(), false);

        BitWidth bits = std::max(requiredBits(text),
                                 requiredBits(pattern));
        bits = std::clamp<BitWidth>(bits, 1, 16);
        service::ShardedMatchService &svc = serviceFor(bits);
        service::MatchRequest req;
        req.text = text;
        req.pattern = pattern;
        const service::MatchResponse resp = svc.serve(req);
        if (!resp.ok())
            throw std::runtime_error(name() + ": " + resp.error.detail);
        return resp.result;
    }

    std::string name() const override
    {
        return "service-sharded-" + std::to_string(threads) + "t";
    }

  private:
    service::ShardedMatchService &serviceFor(BitWidth bits)
    {
        for (auto &entry : services)
            if (entry.first == bits)
                return *entry.second;
        service::ShardedConfig cfg;
        cfg.base.alphabetBits = bits;
        cfg.base.maxTextLen = 1 << 20;
        cfg.base.maxPatternLen = 512;
        cfg.base.chunkChars = 48;
        // The differ already reference-checks the stitched output;
        // skip the per-chunk cross-check and journal for speed.
        cfg.base.crossCheck = false;
        cfg.base.journalEnabled = false;
        cfg.threads = threads;
        cfg.minShardChars = 24; // modest texts still split all ways
        auto svc = std::make_unique<service::ShardedMatchService>(
            cfg, [](const service::ServiceConfig &) {
                std::vector<std::unique_ptr<service::ServiceBackend>>
                    ladder;
                ladder.push_back(
                    std::make_unique<service::MatcherBackend>(
                        std::make_unique<core::WordParallelMatcher>()));
                return ladder;
            });
        services.emplace_back(bits, std::move(svc));
        return *services.back().second;
    }

    unsigned threads;
    std::vector<std::pair<
        BitWidth, std::unique_ptr<service::ShardedMatchService>>>
        services;
};

/**
 * The batch matcher behind the Matcher interface. The case text rides
 * as lane 0 of a width-W pack whose other lanes are suffixes of the
 * same text, so every case exercises the packed-segment boundaries at
 * W different alignments. Lane 0 is what the differ checks against
 * the reference; the suffix lanes are verified here against a width-1
 * pass of the same kernel, so a cross-lane packing or extraction bug
 * fails the oracle even when lane 0 happens to agree. With
 * @p chunk > 0 every lane additionally goes through the carry path in
 * chunk-sized pieces, which must be bit-identical to one-shot
 * matching.
 */
class BatchOracleMatcher : public core::Matcher
{
  public:
    BatchOracleMatcher(std::size_t width, std::size_t chunk)
        : lanes(width), chunkChars(chunk)
    {
    }

    std::vector<bool> match(const std::vector<Symbol> &text,
                            const std::vector<Symbol> &pattern) override
    {
        std::vector<std::vector<Symbol>> streams(lanes);
        streams[0] = text;
        for (std::size_t i = 1; i < lanes; ++i) {
            const std::size_t start =
                text.empty() ? 0 : i * text.size() / lanes;
            streams[i].assign(
                text.begin() + static_cast<std::ptrdiff_t>(start),
                text.end());
        }

        std::vector<std::vector<bool>> got;
        if (chunkChars == 0) {
            got = engine.matchMany(streams, pattern);
        } else {
            std::vector<core::StreamCarry> carries(lanes);
            got.assign(lanes, {});
            bool more = true;
            for (std::size_t off = 0; more; off += chunkChars) {
                more = false;
                std::vector<std::vector<Symbol>> chunks(lanes);
                for (std::size_t i = 0; i < lanes; ++i) {
                    const std::size_t n = streams[i].size();
                    const std::size_t take =
                        off >= n ? 0 : std::min(chunkChars, n - off);
                    chunks[i].assign(
                        streams[i].begin() +
                            static_cast<std::ptrdiff_t>(off),
                        streams[i].begin() +
                            static_cast<std::ptrdiff_t>(off + take));
                    if (off + take < n)
                        more = true;
                }
                auto bits = engine.feedChunks(carries, chunks, pattern);
                for (std::size_t i = 0; i < lanes; ++i)
                    got[i].insert(got[i].end(), bits[i].begin(),
                                  bits[i].end());
            }
        }

        for (std::size_t i = 1; i < lanes; ++i) {
            const auto alone = engine.matchMany(
                std::vector<std::vector<Symbol>>{streams[i]}, pattern);
            if (got[i] != alone[0])
                throw std::runtime_error(
                    name() + ": lane " + std::to_string(i) +
                    " disagrees with its own unbatched answer");
        }
        return std::move(got[0]);
    }

    std::string name() const override
    {
        std::string s = "batch-w" + std::to_string(lanes);
        if (chunkChars > 0)
            s += "-chunk" + std::to_string(chunkChars);
        return s;
    }

  private:
    std::size_t lanes;
    std::size_t chunkChars;
    core::BatchMatcher engine;
};

/** A two-chip cascade resized to each case's pattern. */
class CascadeOracleMatcher : public core::Matcher
{
  public:
    std::vector<bool> match(const std::vector<Symbol> &text,
                            const std::vector<Symbol> &pattern) override
    {
        const std::size_t per_chip =
            std::max<std::size_t>(1, (pattern.size() + 1) / 2);
        core::CascadeMatcher cascade(2, per_chip);
        return cascade.match(text, pattern);
    }

    std::string name() const override { return "systolic-cascade-2chip"; }
};

/** The gate-level chip with the levelized fast path enabled. */
class LevelizedGateMatcher : public core::Matcher
{
  public:
    LevelizedGateMatcher() { impl.setUseLevelized(true); }

    std::vector<bool> match(const std::vector<Symbol> &text,
                            const std::vector<Symbol> &pattern) override
    {
        return impl.match(text, pattern);
    }

    std::string name() const override { return impl.name(); }

  private:
    core::GateLevelMatcher impl;
};

Oracle
entry(std::unique_ptr<core::Matcher> m, std::size_t max_text,
      std::size_t max_pattern, BitWidth max_bits, std::uint64_t stride)
{
    Oracle o;
    o.matcher = std::move(m);
    o.maxText = max_text;
    o.maxPattern = max_pattern;
    o.maxBits = max_bits;
    o.stride = stride;
    return o;
}

} // namespace

std::unique_ptr<core::Matcher>
makeShardedOracle(unsigned threads)
{
    return std::make_unique<ShardedOracleMatcher>(threads);
}

std::unique_ptr<core::Matcher>
makeCascadeOracle()
{
    return std::make_unique<CascadeOracleMatcher>();
}

std::vector<Oracle>
makeAllOracles(bool with_gate)
{
    std::vector<Oracle> oracles;
    // Entry 0: the executable specification everything is diffed
    // against. Unlimited; every case has a trusted answer.
    oracles.push_back(entry(std::make_unique<core::ReferenceMatcher>(),
                            1 << 20, 1 << 12, 16, 1));
    oracles.push_back(entry(std::make_unique<core::WordParallelMatcher>(),
                            1 << 20, 1 << 12, 16, 1));
    // The SIMD-widened kernel: the best tier at full limits, plus
    // every supported tier below it forced explicitly, so an AVX2 box
    // still diffs the SSE2 and scalar code paths on each sweep.
    oracles.push_back(entry(std::make_unique<core::SimdParallelMatcher>(),
                            1 << 20, 1 << 12, 16, 1));
    for (const core::SimdIsa isa :
         {core::SimdIsa::Scalar, core::SimdIsa::Sse2}) {
        if (core::simdIsaSupported(isa) && isa < core::bestSimdIsa())
            oracles.push_back(entry(
                std::make_unique<core::SimdParallelMatcher>(isa),
                1 << 18, 1 << 12, 16, 1));
    }
    // The batch layer over that kernel: two pack widths plus the
    // chunked carry path (suffix lanes verified inside the oracle).
    oracles.push_back(entry(std::make_unique<BatchOracleMatcher>(3, 0),
                            1 << 14, 256, 16, 1));
    oracles.push_back(entry(std::make_unique<BatchOracleMatcher>(64, 0),
                            1 << 12, 256, 16, 2));
    oracles.push_back(entry(std::make_unique<BatchOracleMatcher>(3, 7),
                            1 << 12, 256, 16, 2));
    // Engine-simulated fidelities: ~2n beats of cell evaluations per
    // case; cap the text so a 100k-case sweep stays minutes, not hours.
    oracles.push_back(entry(std::make_unique<core::BehavioralMatcher>(),
                            192, 64, 16, 1));
    oracles.push_back(entry(std::make_unique<core::BitSerialMatcher>(),
                            160, 48, 8, 1));
    oracles.push_back(entry(std::make_unique<core::MultipassMatcher>(4),
                            160, 96, 16, 2));
    oracles.push_back(entry(makeCascadeOracle(), 160, 64, 16, 2));
    // The gate-level chip runs thousands of device evaluations per
    // beat; small cases with a stride keep it present in every sweep
    // without dominating the budget.
    if (with_gate) {
        oracles.push_back(
            entry(std::make_unique<core::GateLevelMatcher>(), 48, 6, 3,
                  8));
        oracles.push_back(
            entry(std::make_unique<LevelizedGateMatcher>(), 48, 6, 3, 8));
    }
    for (const unsigned threads : {1u, 2u, 4u})
        oracles.push_back(
            entry(makeShardedOracle(threads), 1 << 16, 256, 16, 1));
    return oracles;
}

std::vector<std::string>
allOracleNames(bool with_gate)
{
    std::vector<std::string> names;
    for (const Oracle &o : makeAllOracles(with_gate))
        names.push_back(o.name());
    return names;
}

} // namespace spm::conformance
