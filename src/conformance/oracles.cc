#include "conformance/oracles.hh"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/batch.hh"
#include "core/behavioral.hh"
#include "core/bitserial.hh"
#include "core/cascade.hh"
#include "core/gatechip.hh"
#include "core/multipass.hh"
#include "core/reference.hh"
#include "core/simdpar.hh"
#include "core/wordpar.hh"
#include "multipattern/acmatch.hh"
#include "multipattern/dict.hh"
#include "multipattern/planes.hh"
#include "service/sharded.hh"
#include "util/rng.hh"
#include "util/strings.hh"

namespace spm::conformance
{

namespace
{

/**
 * The sharded service as a Matcher. One service per alphabet width is
 * built lazily and reused, so worker threads are spawned once per
 * width rather than once per case. Service-level failures (which the
 * Matcher interface cannot express) become exceptions the differ
 * reports as oracle errors.
 */
class ShardedOracleMatcher : public core::Matcher
{
  public:
    explicit ShardedOracleMatcher(unsigned thread_count)
        : threads(thread_count)
    {
    }

    std::vector<bool> match(const std::vector<Symbol> &text,
                            const std::vector<Symbol> &pattern) override
    {
        if (pattern.empty() || text.empty() ||
            pattern.size() > text.size())
            return std::vector<bool>(text.size(), false);

        BitWidth bits = std::max(requiredBits(text),
                                 requiredBits(pattern));
        bits = std::clamp<BitWidth>(bits, 1, 16);
        service::ShardedMatchService &svc = serviceFor(bits);
        service::MatchRequest req;
        req.text = text;
        req.pattern = pattern;
        const service::MatchResponse resp = svc.serve(req);
        if (!resp.ok())
            throw std::runtime_error(name() + ": " + resp.error.detail);
        return resp.result;
    }

    std::string name() const override
    {
        return "service-sharded-" + std::to_string(threads) + "t";
    }

  private:
    service::ShardedMatchService &serviceFor(BitWidth bits)
    {
        for (auto &entry : services)
            if (entry.first == bits)
                return *entry.second;
        service::ShardedConfig cfg;
        cfg.base.alphabetBits = bits;
        cfg.base.maxTextLen = 1 << 20;
        cfg.base.maxPatternLen = 512;
        cfg.base.chunkChars = 48;
        // The differ already reference-checks the stitched output;
        // skip the per-chunk cross-check and journal for speed.
        cfg.base.crossCheck = false;
        cfg.base.journalEnabled = false;
        cfg.threads = threads;
        cfg.minShardChars = 24; // modest texts still split all ways
        auto svc = std::make_unique<service::ShardedMatchService>(
            cfg, [](const service::ServiceConfig &) {
                std::vector<std::unique_ptr<service::ServiceBackend>>
                    ladder;
                ladder.push_back(
                    std::make_unique<service::MatcherBackend>(
                        std::make_unique<core::WordParallelMatcher>()));
                return ladder;
            });
        services.emplace_back(bits, std::move(svc));
        return *services.back().second;
    }

    unsigned threads;
    std::vector<std::pair<
        BitWidth, std::unique_ptr<service::ShardedMatchService>>>
        services;
};

/**
 * The batch matcher behind the Matcher interface. The case text rides
 * as lane 0 of a width-W pack whose other lanes are suffixes of the
 * same text, so every case exercises the packed-segment boundaries at
 * W different alignments. Lane 0 is what the differ checks against
 * the reference; the suffix lanes are verified here against a width-1
 * pass of the same kernel, so a cross-lane packing or extraction bug
 * fails the oracle even when lane 0 happens to agree. With
 * @p chunk > 0 every lane additionally goes through the carry path in
 * chunk-sized pieces, which must be bit-identical to one-shot
 * matching.
 */
class BatchOracleMatcher : public core::Matcher
{
  public:
    BatchOracleMatcher(std::size_t width, std::size_t chunk)
        : lanes(width), chunkChars(chunk)
    {
    }

    std::vector<bool> match(const std::vector<Symbol> &text,
                            const std::vector<Symbol> &pattern) override
    {
        std::vector<std::vector<Symbol>> streams(lanes);
        streams[0] = text;
        for (std::size_t i = 1; i < lanes; ++i) {
            const std::size_t start =
                text.empty() ? 0 : i * text.size() / lanes;
            streams[i].assign(
                text.begin() + static_cast<std::ptrdiff_t>(start),
                text.end());
        }

        std::vector<std::vector<bool>> got;
        if (chunkChars == 0) {
            got = engine.matchMany(streams, pattern);
        } else {
            std::vector<core::StreamCarry> carries(lanes);
            got.assign(lanes, {});
            bool more = true;
            for (std::size_t off = 0; more; off += chunkChars) {
                more = false;
                std::vector<std::vector<Symbol>> chunks(lanes);
                for (std::size_t i = 0; i < lanes; ++i) {
                    const std::size_t n = streams[i].size();
                    const std::size_t take =
                        off >= n ? 0 : std::min(chunkChars, n - off);
                    chunks[i].assign(
                        streams[i].begin() +
                            static_cast<std::ptrdiff_t>(off),
                        streams[i].begin() +
                            static_cast<std::ptrdiff_t>(off + take));
                    if (off + take < n)
                        more = true;
                }
                auto bits = engine.feedChunks(carries, chunks, pattern);
                for (std::size_t i = 0; i < lanes; ++i)
                    got[i].insert(got[i].end(), bits[i].begin(),
                                  bits[i].end());
            }
        }

        for (std::size_t i = 1; i < lanes; ++i) {
            const auto alone = engine.matchMany(
                std::vector<std::vector<Symbol>>{streams[i]}, pattern);
            if (got[i] != alone[0])
                throw std::runtime_error(
                    name() + ": lane " + std::to_string(i) +
                    " disagrees with its own unbatched answer");
        }
        return std::move(got[0]);
    }

    std::string name() const override
    {
        std::string s = "batch-w" + std::to_string(lanes);
        if (chunkChars > 0)
            s += "-chunk" + std::to_string(chunkChars);
        return s;
    }

  private:
    std::size_t lanes;
    std::size_t chunkChars;
    core::BatchMatcher engine;
};

/**
 * The multi-pattern tier behind the single-pattern Matcher interface.
 * A dictionary of @p dict_size members is derived deterministically
 * from the case -- member 0 is the case pattern verbatim (what the
 * differ checks against the reference); the rest are prefixes and
 * suffixes of the pattern (shared trie structure, overlapping hits
 * where the full pattern misses), substrings of the text (guaranteed
 * hits), and one-symbol mutations.  Internally the oracle runs the
 * whole dictionary through the bit-sliced fused sweep, its no-dedup
 * ablation, the Aho-Corasick automaton (literal members), and the
 * naive per-pattern reference, and throws on any internal
 * disagreement so the differ reports it against this oracle's name.
 * With @p chunk > 0 the bit-sliced and AC engines additionally stream
 * in chunk-sized pieces, which must be bit-identical to one-shot.
 */
class DictOracleMatcher : public core::Matcher
{
  public:
    DictOracleMatcher(std::size_t dict_size, std::size_t chunk)
        : members(dict_size), chunkChars(chunk)
    {
    }

    std::vector<bool> match(const std::vector<Symbol> &text,
                            const std::vector<Symbol> &pattern) override
    {
        const multipattern::DictPatterns dict = deriveDict(text, pattern);

        const multipattern::DictHits got = planes.matchAll(text, dict);

        // Plane dedup must change cost only, never hits.
        if (noDedup.matchAll(text, dict) != got)
            throw std::runtime_error(
                name() + ": dedup and no-dedup hit sets disagree");

        checkAhoCorasick(text, dict, got);

        // The trusted-but-slow leg; capped so big-text sweeps stay
        // tractable (the reference scan is O(p * n * k)).
        if (text.size() <= 1024 &&
            naive.matchAll(text, dict) != got)
            throw std::runtime_error(
                name() + ": bit-sliced planes disagree with the naive "
                         "per-pattern reference");

        if (chunkChars > 0)
            checkChunked(text, dict, got);

        return got.bits.empty() ? std::vector<bool>(text.size(), false)
                                : got.bits[0];
    }

    std::string name() const override
    {
        std::string s = "dict-p" + std::to_string(members);
        if (chunkChars > 0)
            s += "-chunk" + std::to_string(chunkChars);
        return s;
    }

  private:
    multipattern::DictPatterns
    deriveDict(const std::vector<Symbol> &text,
               const std::vector<Symbol> &pattern) const
    {
        // Deterministic per-case stream: fold both strings FNV-style
        // so the same case always derives the same dictionary.
        std::uint64_t h = 0xCBF29CE484222325ULL;
        for (Symbol c : pattern)
            h = (h ^ c) * 0x100000001B3ULL;
        h = (h ^ 0xD1C7) * 0x100000001B3ULL;
        for (Symbol c : text)
            h = (h ^ c) * 0x100000001B3ULL;
        Rng rng(h);

        BitWidth bits = std::max(requiredBits(text), requiredBits(pattern));
        bits = std::clamp<BitWidth>(bits, 1, 16);
        const std::uint64_t sigma = std::uint64_t(1) << bits;
        const auto literal = [&](Symbol c) {
            return c == wildcardSymbol
                       ? static_cast<Symbol>(rng.nextBelow(sigma))
                       : c;
        };

        multipattern::DictPatterns dict;
        dict.reserve(members);
        dict.push_back(pattern); // member 0: the case, verbatim
        const std::size_t k = pattern.size();
        while (dict.size() < members) {
            std::vector<Symbol> member;
            switch (rng.nextBelow(4)) {
            case 0: // prefix of the pattern: shared goto structure
                if (k >= 2) {
                    const std::size_t len = 1 + rng.nextBelow(k - 1);
                    member.assign(pattern.begin(),
                                  pattern.begin() +
                                      static_cast<std::ptrdiff_t>(len));
                }
                break;
            case 1: // suffix of the pattern: shared suffix-trie chain
                if (k >= 2) {
                    const std::size_t len = 1 + rng.nextBelow(k - 1);
                    member.assign(pattern.end() -
                                      static_cast<std::ptrdiff_t>(len),
                                  pattern.end());
                }
                break;
            case 2: // substring of the text: a guaranteed hit
                if (!text.empty()) {
                    const std::size_t len = 1 + rng.nextBelow(std::min<
                        std::size_t>(text.size(), std::max<std::size_t>(
                                                      k, 4)));
                    const std::size_t at =
                        rng.nextBelow(text.size() - len + 1);
                    member.assign(
                        text.begin() + static_cast<std::ptrdiff_t>(at),
                        text.begin() +
                            static_cast<std::ptrdiff_t>(at + len));
                }
                break;
            default: // one-symbol mutation of the pattern
                if (k > 0) {
                    member = pattern;
                    member[rng.nextBelow(k)] =
                        static_cast<Symbol>(rng.nextBelow(sigma));
                }
                break;
            }
            if (member.empty())
                member.push_back(static_cast<Symbol>(rng.nextBelow(sigma)));
            // Derived members are literal so the AC automaton can
            // cover all of them; only member 0 may carry wild cards.
            for (Symbol &c : member)
                c = literal(c);
            dict.push_back(std::move(member));
        }
        return dict;
    }

    void checkAhoCorasick(const std::vector<Symbol> &text,
                          const multipattern::DictPatterns &dict,
                          const multipattern::DictHits &got)
    {
        // AC is literal-only: cover every wild-card-free member (all
        // derived members; member 0 exactly when the case has no wild
        // cards).
        std::vector<std::size_t> literalIdx;
        multipattern::DictPatterns literalDict;
        for (std::size_t i = 0; i < dict.size(); ++i) {
            bool isLiteral = true;
            for (Symbol c : dict[i])
                if (c == wildcardSymbol) {
                    isLiteral = false;
                    break;
                }
            if (isLiteral) {
                literalIdx.push_back(i);
                literalDict.push_back(dict[i]);
            }
        }
        if (literalDict.empty())
            return;
        const multipattern::AhoCorasickAutomaton automaton(literalDict);
        const multipattern::DictHits acHits = automaton.matchAll(text);
        for (std::size_t j = 0; j < literalIdx.size(); ++j)
            if (acHits.bits[j] != got.bits[literalIdx[j]])
                throw std::runtime_error(
                    name() + ": Aho-Corasick disagrees with the "
                             "bit-sliced planes on member " +
                    std::to_string(literalIdx[j]));

        if (chunkChars > 0) {
            multipattern::AhoCorasickAutomaton::StreamState state;
            for (std::size_t off = 0; off < text.size();
                 off += chunkChars) {
                const std::size_t take =
                    std::min(chunkChars, text.size() - off);
                const std::vector<Symbol> chunk(
                    text.begin() + static_cast<std::ptrdiff_t>(off),
                    text.begin() +
                        static_cast<std::ptrdiff_t>(off + take));
                const multipattern::DictHits part =
                    automaton.feed(state, chunk);
                for (std::size_t j = 0; j < literalIdx.size(); ++j)
                    for (std::size_t c = 0; c < take; ++c)
                        if (part.bits[j][c] !=
                            got.bits[literalIdx[j]][off + c])
                            throw std::runtime_error(
                                name() +
                                ": streamed Aho-Corasick diverges "
                                "from one-shot at position " +
                                std::to_string(off + c));
            }
        }
    }

    void checkChunked(const std::vector<Symbol> &text,
                      const multipattern::DictPatterns &dict,
                      const multipattern::DictHits &got)
    {
        multipattern::DictStreamState state;
        std::size_t off = 0;
        while (off < text.size()) {
            const std::size_t take =
                std::min(chunkChars, text.size() - off);
            const std::vector<Symbol> chunk(
                text.begin() + static_cast<std::ptrdiff_t>(off),
                text.begin() + static_cast<std::ptrdiff_t>(off + take));
            const multipattern::DictHits part =
                multipattern::feedDictChunk(planes, state, chunk, dict);
            for (std::size_t p = 0; p < dict.size(); ++p)
                for (std::size_t c = 0; c < take; ++c)
                    if (part.bits[p][c] != got.bits[p][off + c])
                        throw std::runtime_error(
                            name() +
                            ": chunked feeding diverges from one-shot "
                            "at position " + std::to_string(off + c));
            off += take;
        }
    }

    std::size_t members;
    std::size_t chunkChars;
    multipattern::BitSlicedDictMatcher planes{true};
    multipattern::BitSlicedDictMatcher noDedup{false};
    multipattern::NaiveDictMatcher naive;
};

/** A two-chip cascade resized to each case's pattern. */
class CascadeOracleMatcher : public core::Matcher
{
  public:
    std::vector<bool> match(const std::vector<Symbol> &text,
                            const std::vector<Symbol> &pattern) override
    {
        const std::size_t per_chip =
            std::max<std::size_t>(1, (pattern.size() + 1) / 2);
        core::CascadeMatcher cascade(2, per_chip);
        return cascade.match(text, pattern);
    }

    std::string name() const override { return "systolic-cascade-2chip"; }
};

/** The gate-level chip with the levelized fast path enabled. */
class LevelizedGateMatcher : public core::Matcher
{
  public:
    LevelizedGateMatcher() { impl.setUseLevelized(true); }

    std::vector<bool> match(const std::vector<Symbol> &text,
                            const std::vector<Symbol> &pattern) override
    {
        return impl.match(text, pattern);
    }

    std::string name() const override { return impl.name(); }

  private:
    core::GateLevelMatcher impl;
};

Oracle
entry(std::unique_ptr<core::Matcher> m, std::size_t max_text,
      std::size_t max_pattern, BitWidth max_bits, std::uint64_t stride)
{
    Oracle o;
    o.matcher = std::move(m);
    o.maxText = max_text;
    o.maxPattern = max_pattern;
    o.maxBits = max_bits;
    o.stride = stride;
    return o;
}

} // namespace

std::unique_ptr<core::Matcher>
makeShardedOracle(unsigned threads)
{
    return std::make_unique<ShardedOracleMatcher>(threads);
}

std::unique_ptr<core::Matcher>
makeCascadeOracle()
{
    return std::make_unique<CascadeOracleMatcher>();
}

std::vector<Oracle>
makeAllOracles(bool with_gate)
{
    std::vector<Oracle> oracles;
    // Entry 0: the executable specification everything is diffed
    // against. Unlimited; every case has a trusted answer.
    oracles.push_back(entry(std::make_unique<core::ReferenceMatcher>(),
                            1 << 20, 1 << 12, 16, 1));
    oracles.push_back(entry(std::make_unique<core::WordParallelMatcher>(),
                            1 << 20, 1 << 12, 16, 1));
    // The SIMD-widened kernel: the best tier at full limits, plus
    // every supported tier below it forced explicitly, so an AVX2 box
    // still diffs the SSE2 and scalar code paths on each sweep.
    oracles.push_back(entry(std::make_unique<core::SimdParallelMatcher>(),
                            1 << 20, 1 << 12, 16, 1));
    for (const core::SimdIsa isa :
         {core::SimdIsa::Scalar, core::SimdIsa::Sse2}) {
        if (core::simdIsaSupported(isa) && isa < core::bestSimdIsa())
            oracles.push_back(entry(
                std::make_unique<core::SimdParallelMatcher>(isa),
                1 << 18, 1 << 12, 16, 1));
    }
    // The batch layer over that kernel: two pack widths plus the
    // chunked carry path (suffix lanes verified inside the oracle).
    oracles.push_back(entry(std::make_unique<BatchOracleMatcher>(3, 0),
                            1 << 14, 256, 16, 1));
    oracles.push_back(entry(std::make_unique<BatchOracleMatcher>(64, 0),
                            1 << 12, 256, 16, 2));
    oracles.push_back(entry(std::make_unique<BatchOracleMatcher>(3, 7),
                            1 << 12, 256, 16, 2));
    // The multi-pattern tier: dictionary sizes spanning one member,
    // the prototype's array width, and a full fused 64-pattern sweep,
    // plus a chunked-feeding variant (AC / naive legs verified inside
    // the oracle).
    oracles.push_back(entry(std::make_unique<DictOracleMatcher>(1, 0),
                            1 << 14, 128, 16, 1));
    oracles.push_back(entry(std::make_unique<DictOracleMatcher>(8, 0),
                            1 << 13, 128, 16, 1));
    oracles.push_back(entry(std::make_unique<DictOracleMatcher>(64, 0),
                            1 << 12, 128, 16, 2));
    oracles.push_back(entry(std::make_unique<DictOracleMatcher>(8, 9),
                            1 << 12, 128, 16, 2));
    // Engine-simulated fidelities: ~2n beats of cell evaluations per
    // case; cap the text so a 100k-case sweep stays minutes, not hours.
    oracles.push_back(entry(std::make_unique<core::BehavioralMatcher>(),
                            192, 64, 16, 1));
    oracles.push_back(entry(std::make_unique<core::BitSerialMatcher>(),
                            160, 48, 8, 1));
    oracles.push_back(entry(std::make_unique<core::MultipassMatcher>(4),
                            160, 96, 16, 2));
    oracles.push_back(entry(makeCascadeOracle(), 160, 64, 16, 2));
    // The gate-level chip runs thousands of device evaluations per
    // beat; small cases with a stride keep it present in every sweep
    // without dominating the budget.
    if (with_gate) {
        oracles.push_back(
            entry(std::make_unique<core::GateLevelMatcher>(), 48, 6, 3,
                  8));
        oracles.push_back(
            entry(std::make_unique<LevelizedGateMatcher>(), 48, 6, 3, 8));
    }
    for (const unsigned threads : {1u, 2u, 4u})
        oracles.push_back(
            entry(makeShardedOracle(threads), 1 << 16, 256, 16, 1));
    return oracles;
}

std::vector<std::string>
allOracleNames(bool with_gate)
{
    std::vector<std::string> names;
    for (const Oracle &o : makeAllOracles(with_gate))
        names.push_back(o.name());
    return names;
}

} // namespace spm::conformance
