#include "conformance/oracles.hh"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/behavioral.hh"
#include "core/bitserial.hh"
#include "core/cascade.hh"
#include "core/gatechip.hh"
#include "core/multipass.hh"
#include "core/reference.hh"
#include "core/wordpar.hh"
#include "service/sharded.hh"
#include "util/strings.hh"

namespace spm::conformance
{

namespace
{

/**
 * The sharded service as a Matcher. One service per alphabet width is
 * built lazily and reused, so worker threads are spawned once per
 * width rather than once per case. Service-level failures (which the
 * Matcher interface cannot express) become exceptions the differ
 * reports as oracle errors.
 */
class ShardedOracleMatcher : public core::Matcher
{
  public:
    explicit ShardedOracleMatcher(unsigned thread_count)
        : threads(thread_count)
    {
    }

    std::vector<bool> match(const std::vector<Symbol> &text,
                            const std::vector<Symbol> &pattern) override
    {
        if (pattern.empty() || text.empty() ||
            pattern.size() > text.size())
            return std::vector<bool>(text.size(), false);

        BitWidth bits = std::max(requiredBits(text),
                                 requiredBits(pattern));
        bits = std::clamp<BitWidth>(bits, 1, 16);
        service::ShardedMatchService &svc = serviceFor(bits);
        service::MatchRequest req;
        req.text = text;
        req.pattern = pattern;
        const service::MatchResponse resp = svc.serve(req);
        if (!resp.ok())
            throw std::runtime_error(name() + ": " + resp.error.detail);
        return resp.result;
    }

    std::string name() const override
    {
        return "service-sharded-" + std::to_string(threads) + "t";
    }

  private:
    service::ShardedMatchService &serviceFor(BitWidth bits)
    {
        for (auto &entry : services)
            if (entry.first == bits)
                return *entry.second;
        service::ShardedConfig cfg;
        cfg.base.alphabetBits = bits;
        cfg.base.maxTextLen = 1 << 20;
        cfg.base.maxPatternLen = 512;
        cfg.base.chunkChars = 48;
        // The differ already reference-checks the stitched output;
        // skip the per-chunk cross-check and journal for speed.
        cfg.base.crossCheck = false;
        cfg.base.journalEnabled = false;
        cfg.threads = threads;
        cfg.minShardChars = 24; // modest texts still split all ways
        auto svc = std::make_unique<service::ShardedMatchService>(
            cfg, [](const service::ServiceConfig &) {
                std::vector<std::unique_ptr<service::ServiceBackend>>
                    ladder;
                ladder.push_back(
                    std::make_unique<service::MatcherBackend>(
                        std::make_unique<core::WordParallelMatcher>()));
                return ladder;
            });
        services.emplace_back(bits, std::move(svc));
        return *services.back().second;
    }

    unsigned threads;
    std::vector<std::pair<
        BitWidth, std::unique_ptr<service::ShardedMatchService>>>
        services;
};

/** A two-chip cascade resized to each case's pattern. */
class CascadeOracleMatcher : public core::Matcher
{
  public:
    std::vector<bool> match(const std::vector<Symbol> &text,
                            const std::vector<Symbol> &pattern) override
    {
        const std::size_t per_chip =
            std::max<std::size_t>(1, (pattern.size() + 1) / 2);
        core::CascadeMatcher cascade(2, per_chip);
        return cascade.match(text, pattern);
    }

    std::string name() const override { return "systolic-cascade-2chip"; }
};

/** The gate-level chip with the levelized fast path enabled. */
class LevelizedGateMatcher : public core::Matcher
{
  public:
    LevelizedGateMatcher() { impl.setUseLevelized(true); }

    std::vector<bool> match(const std::vector<Symbol> &text,
                            const std::vector<Symbol> &pattern) override
    {
        return impl.match(text, pattern);
    }

    std::string name() const override { return impl.name(); }

  private:
    core::GateLevelMatcher impl;
};

Oracle
entry(std::unique_ptr<core::Matcher> m, std::size_t max_text,
      std::size_t max_pattern, BitWidth max_bits, std::uint64_t stride)
{
    Oracle o;
    o.matcher = std::move(m);
    o.maxText = max_text;
    o.maxPattern = max_pattern;
    o.maxBits = max_bits;
    o.stride = stride;
    return o;
}

} // namespace

std::unique_ptr<core::Matcher>
makeShardedOracle(unsigned threads)
{
    return std::make_unique<ShardedOracleMatcher>(threads);
}

std::unique_ptr<core::Matcher>
makeCascadeOracle()
{
    return std::make_unique<CascadeOracleMatcher>();
}

std::vector<Oracle>
makeAllOracles(bool with_gate)
{
    std::vector<Oracle> oracles;
    // Entry 0: the executable specification everything is diffed
    // against. Unlimited; every case has a trusted answer.
    oracles.push_back(entry(std::make_unique<core::ReferenceMatcher>(),
                            1 << 20, 1 << 12, 16, 1));
    oracles.push_back(entry(std::make_unique<core::WordParallelMatcher>(),
                            1 << 20, 1 << 12, 16, 1));
    // Engine-simulated fidelities: ~2n beats of cell evaluations per
    // case; cap the text so a 100k-case sweep stays minutes, not hours.
    oracles.push_back(entry(std::make_unique<core::BehavioralMatcher>(),
                            192, 64, 16, 1));
    oracles.push_back(entry(std::make_unique<core::BitSerialMatcher>(),
                            160, 48, 8, 1));
    oracles.push_back(entry(std::make_unique<core::MultipassMatcher>(4),
                            160, 96, 16, 2));
    oracles.push_back(entry(makeCascadeOracle(), 160, 64, 16, 2));
    // The gate-level chip runs thousands of device evaluations per
    // beat; small cases with a stride keep it present in every sweep
    // without dominating the budget.
    if (with_gate) {
        oracles.push_back(
            entry(std::make_unique<core::GateLevelMatcher>(), 48, 6, 3,
                  8));
        oracles.push_back(
            entry(std::make_unique<LevelizedGateMatcher>(), 48, 6, 3, 8));
    }
    for (const unsigned threads : {1u, 2u, 4u})
        oracles.push_back(
            entry(makeShardedOracle(threads), 1 << 16, 256, 16, 1));
    return oracles;
}

std::vector<std::string>
allOracleNames(bool with_gate)
{
    std::vector<std::string> names;
    for (const Oracle &o : makeAllOracles(with_gate))
        names.push_back(o.name());
    return names;
}

} // namespace spm::conformance
