/**
 * @file
 * Golden traces: per-beat port and cell-state capture across
 * fidelities.
 *
 * Final result bits can agree by accident -- two bugs cancelling, a
 * dead cell that a later cell happens to mask. The golden trace
 * diffs the machine *during* the computation: every beat of the
 * Figure 3-1 protocol, the four chip output ports (pattern, control,
 * string, result) and every cell's committed state are recorded, and
 * the streams are compared across fidelities:
 *
 *   behavioral vs cascade   exact, beat for beat, port for port and
 *                           cell for cell (the cascade's board wiring
 *                           must be transparent);
 *   behavioral vs bit-serial  the valid result samples must carry
 *                           identical values in order, offset by a
 *                           constant pipeline latency (bits-1 beats).
 */

#ifndef SPM_CONFORMANCE_GOLDENTRACE_HH
#define SPM_CONFORMANCE_GOLDENTRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "conformance/case.hh"
#include "systolic/trace.hh"

namespace spm::conformance
{

/** The four output-port values committed after one beat. */
struct PortSample
{
    Beat beat = 0;
    bool patValid = false;
    Symbol patSym = 0;
    bool ctlValid = false;
    bool lambda = false;
    bool x = false;
    bool strValid = false;
    Symbol strSym = 0;
    bool resValid = false;
    bool resValue = false;

    bool operator==(const PortSample &) const = default;
};

/** A full protocol run's port stream plus the cell-state trace. */
struct GoldenTrace
{
    std::string fidelity;
    std::vector<PortSample> ports;
    /** One row per beat, canonical column order (cmp0..N, acc0..N). */
    systolic::TraceRecorder states;
};

/** The behavioral chip run on @p c with @p cells total cells. */
GoldenTrace traceBehavioral(const Case &c, std::size_t cells);

/**
 * A cascade of @p chips x @p cells_per_chip run on @p c, with cell
 * states re-mapped into the single-chip column order so the recorder
 * diffs directly against traceBehavioral(c, chips * cells_per_chip).
 */
GoldenTrace traceCascade(const Case &c, std::size_t chips,
                         std::size_t cells_per_chip);

/** The bit-serial chip's result-port stream (states not mapped). */
GoldenTrace traceBitSerial(const Case &c);

/** A trace comparison verdict. */
struct TraceDiff
{
    bool identical = true;
    std::string detail; ///< first divergence, when not identical
};

/** Exact beat-for-beat comparison of ports and cell states. */
TraceDiff diffExact(const GoldenTrace &a, const GoldenTrace &b);

/**
 * Compare only the valid result-port samples of the two traces: the
 * value sequences must match and the beat offset between paired
 * samples must be one constant (the pipeline latency).
 */
TraceDiff diffResultStream(const GoldenTrace &a, const GoldenTrace &b);

} // namespace spm::conformance

#endif // SPM_CONFORMANCE_GOLDENTRACE_HH
