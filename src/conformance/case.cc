#include "conformance/case.hh"

#include <cstdio>
#include <cstdlib>

#include "util/rng.hh"
#include "util/strings.hh"

namespace spm::conformance
{

namespace
{

/** Overwrite text[at..at+k) with the pattern, filling wild cards. */
void
plantAt(std::vector<Symbol> &text, const std::vector<Symbol> &pattern,
        std::size_t at, WorkloadGen &gen)
{
    if (pattern.empty() || at + pattern.size() > text.size())
        return;
    for (std::size_t j = 0; j < pattern.size(); ++j) {
        text[at + j] = pattern[j] == wildcardSymbol ? gen.randomSymbol()
                                                    : pattern[j];
    }
}

std::string
hexU64(std::uint64_t v)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Encode a symbol stream: hex values '.'-joined, '*' wild, '-' empty. */
std::string
encodeStream(const std::vector<Symbol> &syms)
{
    if (syms.empty())
        return "-";
    std::string out;
    for (std::size_t i = 0; i < syms.size(); ++i) {
        if (i != 0)
            out += '.';
        if (syms[i] == wildcardSymbol)
            out += '*';
        else
            out += hexU64(syms[i]);
    }
    return out;
}

std::optional<std::vector<Symbol>>
decodeStream(const std::string &field)
{
    std::vector<Symbol> syms;
    if (field == "-")
        return syms;
    std::size_t pos = 0;
    while (pos <= field.size()) {
        const std::size_t dot = field.find('.', pos);
        const std::string tok =
            field.substr(pos, dot == std::string::npos ? dot : dot - pos);
        if (tok.empty())
            return std::nullopt;
        if (tok == "*") {
            syms.push_back(wildcardSymbol);
        } else {
            char *end = nullptr;
            const unsigned long v = std::strtoul(tok.c_str(), &end, 16);
            if (end == nullptr || *end != '\0' || v >= wildcardSymbol)
                return std::nullopt;
            syms.push_back(static_cast<Symbol>(v));
        }
        if (dot == std::string::npos)
            break;
        pos = dot + 1;
    }
    return syms;
}

/** Split on ':'; returns empty vector when any field is empty. */
std::vector<std::string>
splitFields(const std::string &id)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= id.size()) {
        const std::size_t colon = id.find(':', pos);
        const std::string f = id.substr(
            pos, colon == std::string::npos ? colon : colon - pos);
        if (f.empty())
            return {};
        out.push_back(f);
        if (colon == std::string::npos)
            break;
        pos = colon + 1;
    }
    return out;
}

std::optional<std::uint64_t>
parseHex(const std::string &s)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 16);
    if (end == nullptr || *end != '\0')
        return std::nullopt;
    return v;
}

std::optional<std::uint64_t>
parseDec(const std::string &s)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (end == nullptr || *end != '\0')
        return std::nullopt;
    return v;
}

} // namespace

Case
materializeSpec(const CaseSpec &spec)
{
    Case c;
    c.bits = spec.bits == 0 ? 1 : spec.bits;
    WorkloadGen gen(spec.seed, c.bits);

    // Pattern: periodic when self-overlap is requested, uniform
    // otherwise; wild cards sprinkled at the requested density.
    const std::size_t k = spec.patternLen;
    c.pattern.reserve(k);
    if ((spec.flags & FlagSelfOverlap) != 0 && k > 0) {
        const std::size_t period = 1 + gen.rng().nextBelow(3);
        std::vector<Symbol> unit(period);
        for (Symbol &s : unit)
            s = gen.randomSymbol();
        for (std::size_t j = 0; j < k; ++j)
            c.pattern.push_back(unit[j % period]);
    } else {
        for (std::size_t j = 0; j < k; ++j)
            c.pattern.push_back(gen.randomSymbol());
    }
    for (Symbol &s : c.pattern)
        if (gen.rng().nextBool(spec.wildcardPct / 100.0))
            s = wildcardSymbol;

    c.text = gen.randomText(spec.textLen);
    const std::size_t n = c.text.size();
    if (k > 0 && k <= n) {
        // Background plants so matches exist even in big texts.
        for (std::size_t at = gen.rng().nextBelow(k + 3); at + k <= n;
             at += k + 1 + gen.rng().nextBelow(2 * k + 5))
            plantAt(c.text, c.pattern, at, gen);
        if ((spec.flags & FlagShardStraddle) != 0) {
            // Plant matches whose windows straddle the cut points the
            // sharded service would use, with ends just before, on,
            // and just after each boundary -- including a match whose
            // last character is the final overlap character.
            for (const std::size_t nshards : {std::size_t(2),
                                              std::size_t(4)}) {
                for (std::size_t s = 1; s < nshards; ++s) {
                    const std::size_t boundary = n * s / nshards;
                    for (const std::size_t end :
                         {boundary > 0 ? boundary - 1 : 0, boundary,
                          boundary + k - 2, boundary + 1}) {
                        if (end + 1 >= k && end < n)
                            plantAt(c.text, c.pattern, end + 1 - k, gen);
                    }
                }
            }
        }
        if ((spec.flags & FlagLeadingMatch) != 0)
            plantAt(c.text, c.pattern, 0, gen);
        if ((spec.flags & FlagTrailingMatch) != 0)
            plantAt(c.text, c.pattern, n - k, gen);
        if ((spec.flags & FlagDictOverlap) != 0 && k >= 2) {
            // Fragments of the pattern, planted whole: a dictionary
            // member derived as a prefix or suffix of the pattern
            // hits here even though the full pattern does not, so
            // multi-pattern hit sets overlap instead of nesting.
            const std::size_t frag = 1 + gen.rng().nextBelow(k - 1);
            std::vector<Symbol> prefix(c.pattern.begin(),
                                       c.pattern.begin() +
                                           static_cast<std::ptrdiff_t>(frag));
            std::vector<Symbol> suffix(c.pattern.end() -
                                           static_cast<std::ptrdiff_t>(frag),
                                       c.pattern.end());
            plantAt(c.text, prefix, gen.rng().nextBelow(n - frag + 1), gen);
            plantAt(c.text, suffix, gen.rng().nextBelow(n - frag + 1), gen);
        }
    }
    return c;
}

std::string
encodeSpec(const CaseSpec &spec)
{
    return "g1:" + hexU64(spec.seed) + ":" + std::to_string(spec.bits) +
           ":" + std::to_string(spec.patternLen) + ":" +
           std::to_string(spec.textLen) + ":" +
           std::to_string(spec.wildcardPct) + ":" + hexU64(spec.flags);
}

std::string
encodeLiteral(const Case &c)
{
    return "l1:" + std::to_string(c.bits) + ":" +
           encodeStream(c.pattern) + ":" + encodeStream(c.text);
}

std::optional<CaseSpec>
decodeSpec(const std::string &id)
{
    const std::vector<std::string> f = splitFields(id);
    if (f.size() != 7 || f[0] != "g1")
        return std::nullopt;
    const auto seed = parseHex(f[1]);
    const auto bits = parseDec(f[2]);
    const auto k = parseDec(f[3]);
    const auto n = parseDec(f[4]);
    const auto wc = parseDec(f[5]);
    const auto flags = parseHex(f[6]);
    if (!seed || !bits || !k || !n || !wc || !flags || *bits < 1 ||
        *bits > 16 || *wc > 100)
        return std::nullopt;
    CaseSpec spec;
    spec.seed = *seed;
    spec.bits = static_cast<BitWidth>(*bits);
    spec.patternLen = static_cast<std::size_t>(*k);
    spec.textLen = static_cast<std::size_t>(*n);
    spec.wildcardPct = static_cast<unsigned>(*wc);
    spec.flags = static_cast<unsigned>(*flags);
    return spec;
}

std::optional<Case>
decodeCase(const std::string &id)
{
    if (const auto spec = decodeSpec(id))
        return materializeSpec(*spec);
    const std::vector<std::string> f = splitFields(id);
    if (f.size() != 4 || f[0] != "l1")
        return std::nullopt;
    const auto bits = parseDec(f[1]);
    if (!bits || *bits < 1 || *bits > 16)
        return std::nullopt;
    const auto pattern = decodeStream(f[2]);
    const auto text = decodeStream(f[3]);
    if (!pattern || !text)
        return std::nullopt;
    Case c;
    c.bits = static_cast<BitWidth>(*bits);
    c.pattern = *pattern;
    c.text = *text;
    return c;
}

std::string
describeCase(const Case &c)
{
    std::string s = "bits=" + std::to_string(c.bits) +
                    " k=" + std::to_string(c.pattern.size()) +
                    " n=" + std::to_string(c.text.size());
    if (c.pattern.size() <= 80)
        s += " pattern=" + renderSymbols(c.pattern);
    if (c.text.size() <= 120)
        s += " text=" + renderSymbols(c.text);
    return s;
}

} // namespace spm::conformance
