#include "conformance/goldentrace.hh"

#include <algorithm>

#include "core/behavioral.hh"
#include "core/bitserial.hh"
#include "core/cascade.hh"
#include "util/strings.hh"

namespace spm::conformance
{

namespace
{

PortSample
makeSample(Beat beat, const core::PatToken &p, const core::CtlToken &ctl,
           const core::StrToken &s, const core::ResToken &r)
{
    PortSample out;
    out.beat = beat;
    out.patValid = p.valid;
    out.patSym = p.sym;
    out.ctlValid = ctl.valid;
    out.lambda = ctl.lambda;
    out.x = ctl.x;
    out.strValid = s.valid;
    out.strSym = s.sym;
    out.resValid = r.valid;
    out.resValue = r.value;
    return out;
}

std::string
renderSample(const PortSample &s)
{
    auto field = [](bool valid, const std::string &v) {
        return valid ? v : std::string("-");
    };
    return "p=" + field(s.patValid, std::to_string(s.patSym)) +
           " ctl=" +
           field(s.ctlValid, std::string(s.lambda ? "L" : ".") +
                                 (s.x ? "x" : ".")) +
           " s=" + field(s.strValid, std::to_string(s.strSym)) +
           " r=" + field(s.resValid, s.resValue ? "1" : "0");
}

/** Number of valid result samples in a port stream. */
std::size_t
validResults(const std::vector<PortSample> &ports)
{
    std::size_t n = 0;
    for (const PortSample &s : ports)
        n += s.resValid ? 1 : 0;
    return n;
}

} // namespace

GoldenTrace
traceBehavioral(const Case &c, std::size_t cells)
{
    GoldenTrace t;
    t.fidelity = "behavioral";
    const std::size_t n = c.text.size();
    const std::size_t k = c.pattern.size();
    if (k == 0 || n == 0 || k > n || k > cells)
        return t;

    core::BehavioralChip chip(cells);
    const core::ChipFeedPlan plan(cells, c.pattern, n);
    for (Beat beat = 0;
         beat < plan.totalBeats() && validResults(t.ports) < n; ++beat) {
        chip.feedPattern(plan.patternAt(beat));
        chip.feedControl(plan.controlAt(beat));
        chip.feedString(plan.stringAt(beat, c.text));
        chip.feedResult(plan.resultAt(beat));
        chip.step();
        t.ports.push_back(makeSample(beat, chip.patternOut(),
                                     chip.controlOut(), chip.stringOut(),
                                     chip.resultOut()));
        std::vector<std::string> states;
        states.reserve(chip.engine().cellCount());
        for (std::size_t i = 0; i < chip.engine().cellCount(); ++i)
            states.push_back(chip.engine().cell(i).stateString());
        t.states.appendRow(beat, std::move(states));
    }
    return t;
}

GoldenTrace
traceCascade(const Case &c, std::size_t chips, std::size_t cells_per_chip)
{
    GoldenTrace t;
    t.fidelity = "cascade";
    const std::size_t n = c.text.size();
    const std::size_t k = c.pattern.size();
    const std::size_t total = chips * cells_per_chip;
    if (k == 0 || n == 0 || k > n || k > total)
        return t;

    core::ChipCascade cascade(chips, cells_per_chip);
    const core::ChipFeedPlan plan(total, c.pattern, n);
    const std::size_t m = cells_per_chip;
    for (Beat beat = 0;
         beat < plan.totalBeats() && validResults(t.ports) < n; ++beat) {
        cascade.feedPattern(plan.patternAt(beat));
        cascade.feedControl(plan.controlAt(beat));
        cascade.feedString(plan.stringAt(beat, c.text));
        cascade.feedResult(plan.resultAt(beat));
        cascade.step();
        t.ports.push_back(makeSample(
            beat, cascade.chip(chips - 1).patternOut(),
            cascade.chip(chips - 1).controlOut(),
            cascade.chip(0).stringOut(), cascade.resultOut()));
        // Re-map per-chip cells into the single-chip column order:
        // all comparators left to right, then all accumulators. Each
        // chip's engine holds its m comparators first, then its m
        // accumulators.
        std::vector<std::string> states;
        states.reserve(2 * total);
        for (std::size_t j = 0; j < total; ++j)
            states.push_back(
                cascade.chip(j / m).engine().cell(j % m).stateString());
        for (std::size_t j = 0; j < total; ++j)
            states.push_back(cascade.chip(j / m)
                                 .engine()
                                 .cell(m + j % m)
                                 .stateString());
        t.states.appendRow(beat, std::move(states));
    }
    return t;
}

GoldenTrace
traceBitSerial(const Case &c)
{
    GoldenTrace t;
    t.fidelity = "bit-serial";
    const std::size_t n = c.text.size();
    const std::size_t k = c.pattern.size();
    if (k == 0 || n == 0 || k > n)
        return t;

    const BitWidth bits = std::max(
        {c.bits, requiredBits(c.text), requiredBits(c.pattern)});
    core::BitSerialChip chip(k, bits);
    const core::ChipFeedPlan plan(k, c.pattern, n);
    const Beat total = plan.totalBeats() + bits + 2;
    const Beat shift = bits - 1;

    auto feed_bit = [&](Beat beat, unsigned row, bool pattern_side) {
        if (beat < row)
            return core::BitToken{};
        const unsigned bit_idx = bits - 1 - row;
        if (pattern_side) {
            const core::PatToken tok = plan.patternAt(beat - row);
            if (!tok.valid)
                return core::BitToken{};
            return core::BitToken{((tok.sym >> bit_idx) & 1) != 0, true};
        }
        const core::StrToken tok = plan.stringAt(beat - row, c.text);
        if (!tok.valid)
            return core::BitToken{};
        return core::BitToken{((tok.sym >> bit_idx) & 1) != 0, true};
    };

    for (Beat beat = 0; beat < total && validResults(t.ports) < n;
         ++beat) {
        for (unsigned row = 0; row < bits; ++row) {
            chip.feedPatternBit(row, feed_bit(beat, row, true));
            chip.feedStringBit(row, feed_bit(beat, row, false));
        }
        chip.feedControl(beat >= shift ? plan.controlAt(beat - shift)
                                       : core::CtlToken{});
        chip.feedResult(beat >= shift ? plan.resultAt(beat - shift)
                                      : core::ResToken{});
        chip.step();
        // Only the result port is meaningful across fidelities here;
        // the bit-level pattern/string pins have a different shape.
        t.ports.push_back(makeSample(beat, core::PatToken{},
                                     core::CtlToken{}, core::StrToken{},
                                     chip.resultOut()));
    }
    return t;
}

TraceDiff
diffExact(const GoldenTrace &a, const GoldenTrace &b)
{
    TraceDiff d;
    const std::size_t common = std::min(a.ports.size(), b.ports.size());
    for (std::size_t i = 0; i < common; ++i) {
        if (a.ports[i] == b.ports[i])
            continue;
        d.identical = false;
        d.detail = "ports diverge at beat " +
                   std::to_string(a.ports[i].beat) + ": " + a.fidelity +
                   " [" + renderSample(a.ports[i]) + "] vs " +
                   b.fidelity + " [" + renderSample(b.ports[i]) + "]";
        return d;
    }
    if (a.ports.size() != b.ports.size()) {
        d.identical = false;
        d.detail = "port stream lengths differ: " + a.fidelity + " " +
                   std::to_string(a.ports.size()) + " beats vs " +
                   b.fidelity + " " + std::to_string(b.ports.size());
        return d;
    }
    if (const auto diff = a.states.firstDifference(b.states)) {
        d.identical = false;
        d.detail = "cell states diverge at trace row " +
                   std::to_string(diff->first) + ", column " +
                   std::to_string(diff->second) + ": '" +
                   (diff->first < a.states.beatCount() &&
                            diff->second < a.states.cellCount()
                        ? a.states.at(diff->first, diff->second)
                        : std::string("<absent>")) +
                   "' vs '" +
                   (diff->first < b.states.beatCount() &&
                            diff->second < b.states.cellCount()
                        ? b.states.at(diff->first, diff->second)
                        : std::string("<absent>")) +
                   "'";
    }
    return d;
}

TraceDiff
diffResultStream(const GoldenTrace &a, const GoldenTrace &b)
{
    TraceDiff d;
    std::vector<std::pair<Beat, bool>> ra, rb;
    for (const PortSample &s : a.ports)
        if (s.resValid)
            ra.emplace_back(s.beat, s.resValue);
    for (const PortSample &s : b.ports)
        if (s.resValid)
            rb.emplace_back(s.beat, s.resValue);

    if (ra.size() != rb.size()) {
        d.identical = false;
        d.detail = "valid result counts differ: " + a.fidelity + " " +
                   std::to_string(ra.size()) + " vs " + b.fidelity +
                   " " + std::to_string(rb.size());
        return d;
    }
    if (ra.empty())
        return d;
    const std::int64_t offset = static_cast<std::int64_t>(rb[0].first) -
                                static_cast<std::int64_t>(ra[0].first);
    for (std::size_t i = 0; i < ra.size(); ++i) {
        const std::int64_t gap =
            static_cast<std::int64_t>(rb[i].first) -
            static_cast<std::int64_t>(ra[i].first);
        if (ra[i].second != rb[i].second) {
            d.identical = false;
            d.detail = "result sample " + std::to_string(i) +
                       " differs: " + a.fidelity + " beat " +
                       std::to_string(ra[i].first) + " = " +
                       (ra[i].second ? "1" : "0") + ", " + b.fidelity +
                       " beat " + std::to_string(rb[i].first) + " = " +
                       (rb[i].second ? "1" : "0");
            return d;
        }
        if (gap != offset) {
            d.identical = false;
            d.detail = "pipeline offset drifts at result sample " +
                       std::to_string(i) + ": expected constant " +
                       std::to_string(offset) + " beats, got " +
                       std::to_string(gap);
            return d;
        }
    }
    return d;
}

} // namespace spm::conformance
