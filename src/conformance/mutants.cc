#include "conformance/mutants.hh"

#include <algorithm>
#include <cstdint>

#include "core/behavioral.hh"
#include "core/reference.hh"
#include "core/wordpar.hh"

namespace spm::conformance
{

namespace
{

/**
 * Seeded bug: the sharded stitcher reserves an overlap of k-2 text
 * characters before each shard boundary instead of k-1, so a match
 * whose window begins exactly k-1 characters before a boundary -- one
 * that ends on the first character of the next shard -- is lost.
 */
class MutShardOverlap : public core::Matcher
{
  public:
    std::vector<bool> match(const std::vector<Symbol> &text,
                            const std::vector<Symbol> &pattern) override
    {
        const std::size_t n = text.size();
        const std::size_t k = pattern.size();
        std::vector<bool> result(n, false);
        if (k == 0 || n == 0 || k > n)
            return result;

        const std::size_t nshards = 2;
        const std::size_t overlap = k >= 2 ? k - 2 : 0; // BUG: k-1
        core::WordParallelMatcher inner;
        for (std::size_t s = 0; s < nshards; ++s) {
            const std::size_t start = n * s / nshards;
            const std::size_t end = n * (s + 1) / nshards;
            if (start >= end)
                continue;
            const std::size_t ws = std::min(start, overlap);
            const std::vector<Symbol> sub(
                text.begin() +
                    static_cast<std::ptrdiff_t>(start - ws),
                text.begin() + static_cast<std::ptrdiff_t>(end));
            if (sub.size() < k)
                continue;
            const std::vector<bool> bits = inner.match(sub, pattern);
            for (std::size_t i = ws; i < bits.size(); ++i)
                if (bits[i])
                    result[start - ws + i] = true;
        }
        return result;
    }

    std::string name() const override { return "mut-shard-overlap"; }
};

/**
 * Seeded bug: the word-parallel matcher's wildcard plane is dropped;
 * wildcardSymbol is compared like an ordinary stored character, so a
 * wildcard position never matches anything.
 */
class MutWordparWildPlane : public core::Matcher
{
  public:
    std::vector<bool> match(const std::vector<Symbol> &text,
                            const std::vector<Symbol> &pattern) override
    {
        const std::size_t n = text.size();
        const std::size_t k = pattern.size();
        std::vector<bool> result(n, false);
        if (k == 0 || n == 0 || k > n)
            return result;
        for (std::size_t i = k - 1; i < n; ++i) {
            bool all = true;
            for (std::size_t j = 0; j < k && all; ++j)
                all = text[i - k + 1 + j] == pattern[j]; // BUG: no
                                                         // wildcard test
            result[i] = all;
        }
        return result;
    }

    std::string name() const override { return "mut-wordpar-wildplane"; }
};

/**
 * Seeded bug: the lead mask that suppresses incomplete windows clears
 * positions i < k instead of i < k-1, killing the earliest legal
 * match (the one flush against the start of the text).
 */
class MutWordparLeadMask : public core::Matcher
{
  public:
    std::vector<bool> match(const std::vector<Symbol> &text,
                            const std::vector<Symbol> &pattern) override
    {
        core::WordParallelMatcher inner;
        std::vector<bool> result = inner.match(text, pattern);
        const std::size_t k = pattern.size();
        if (k >= 1 && k - 1 < result.size())
            result[k - 1] = false; // BUG: mask extends one position
                                   // too far
        return result;
    }

    std::string name() const override { return "mut-wordpar-leadmask"; }

    bool supportsWildcards() const override { return true; }
};

/**
 * Seeded bug: the host computes the control stream for the wrong
 * latch phase -- each lambda/x pair rides one pattern position ahead
 * of the comparator result it belongs to, so the end-of-pattern
 * marker (and any wildcard bit) latches against the neighboring
 * cell's comparison.
 */
class MutLatchPhase : public core::Matcher
{
  public:
    std::vector<bool> match(const std::vector<Symbol> &text,
                            const std::vector<Symbol> &pattern) override
    {
        const std::size_t n = text.size();
        const std::size_t k = pattern.size();
        std::vector<bool> result(n, false);
        if (k == 0 || n == 0 || k > n)
            return result;

        core::BehavioralChip chip(k);
        const core::ChipFeedPlan plan(k, pattern, n);
        std::size_t collected = 0;
        for (Beat beat = 0;
             beat < plan.totalBeats() && collected < n; ++beat) {
            chip.feedPattern(plan.patternAt(beat));
            chip.feedControl(plan.controlAt(beat + 2)); // BUG: control
                                                        // content one
                                                        // position ahead
            chip.feedString(plan.stringAt(beat, text));
            chip.feedResult(plan.resultAt(beat));
            chip.step();
            const core::ResToken out = chip.resultOut();
            if (out.valid) {
                result[collected] = collected >= k - 1 && out.value;
                ++collected;
            }
        }
        return result;
    }

    std::string name() const override { return "mut-latch-phase"; }

    bool supportsWildcards() const override { return true; }
};

/**
 * Seeded bug: the counting cell's integer slot saturates at 7 (a
 * 3-bit counter), so a full match of a pattern with k >= 8 reports
 * count 7 and the match bit derived from count == k goes false.
 */
class MutCountSaturate : public core::Matcher
{
  public:
    std::vector<bool> match(const std::vector<Symbol> &text,
                            const std::vector<Symbol> &pattern) override
    {
        const std::size_t n = text.size();
        const std::size_t k = pattern.size();
        std::vector<bool> result(n, false);
        if (k == 0 || n == 0 || k > n)
            return result;
        const std::vector<unsigned> counts =
            core::referenceMatchCounts(text, pattern);
        for (std::size_t i = 0; i < n; ++i) {
            const unsigned saturated =
                std::min(counts[i], 7u); // BUG: 3-bit counter
            result[i] = saturated == k;
        }
        return result;
    }

    std::string name() const override { return "mut-count-saturate"; }

    bool supportsWildcards() const override { return true; }
};

/**
 * Seeded bug: the multi-pattern plane walk's shifted-word helper
 * drops the inter-word carry -- the bits a shift by d must borrow
 * from the next-lower 64-bit word (`eq[w-ws-1] >> (64-bs)`) -- so a
 * match whose window straddles a word boundary loses the low-word
 * half of its evidence and goes false.
 */
class MutDictPlaneCarry : public core::Matcher
{
  public:
    std::vector<bool> match(const std::vector<Symbol> &text,
                            const std::vector<Symbol> &pattern) override
    {
        const std::size_t n = text.size();
        const std::size_t k = pattern.size();
        std::vector<bool> result(n, false);
        if (k == 0 || n == 0 || k > n)
            return result;

        const std::size_t nw = (n + 63) / 64;
        std::vector<std::uint64_t> row(nw, ~std::uint64_t{0});
        std::vector<std::uint64_t> eq(nw);
        for (std::size_t j = 0; j < k; ++j) {
            if (pattern[j] == wildcardSymbol)
                continue;
            std::fill(eq.begin(), eq.end(), 0);
            for (std::size_t i = 0; i < n; ++i)
                if (text[i] == pattern[j])
                    eq[i / 64] |= std::uint64_t{1} << (i % 64);
            const std::size_t d = k - 1 - j;
            const std::size_t ws = d / 64;
            const std::size_t bs = d % 64;
            for (std::size_t w = 0; w < nw; ++w) {
                std::uint64_t v = 0;
                if (w >= ws)
                    v = eq[w - ws] << bs; // BUG: the carry term
                                          // eq[w-ws-1] >> (64-bs) is
                                          // dropped
                row[w] &= v;
            }
        }
        for (std::size_t i = k - 1; i < n; ++i)
            result[i] = ((row[i / 64] >> (i % 64)) & 1) != 0;
        return result;
    }

    std::string name() const override { return "mut-dict-plane-carry"; }

    bool supportsWildcards() const override { return true; }
};

} // namespace

const std::vector<Mutant> &
allMutants()
{
    static const std::vector<Mutant> mutants = {
        {"mut-shard-overlap",
         "overlap stitching off by one: shards reserve k-2 overlap "
         "characters instead of k-1",
         "a match window straddling a shard boundary",
         [] { return std::make_unique<MutShardOverlap>(); }},
        {"mut-wordpar-wildplane",
         "dropped wildcard plane: wildcardSymbol compared as a "
         "literal character",
         "a wildcard position inside a matching window",
         [] { return std::make_unique<MutWordparWildPlane>(); }},
        {"mut-wordpar-leadmask",
         "lead mask off by one: positions i < k cleared instead of "
         "i < k-1",
         "a match flush against the start of the text",
         [] { return std::make_unique<MutWordparLeadMask>(); }},
        {"mut-latch-phase",
         "wrong comparator latch phase: control stream fed in phase "
         "with the pattern instead of trailing one beat",
         "any pattern with a wildcard or with k >= 2",
         [] { return std::make_unique<MutLatchPhase>(); }},
        {"mut-count-saturate",
         "counting cell saturates at 7, losing full-match counts for "
         "k >= 8",
         "a full match of a pattern with k >= 8",
         [] { return std::make_unique<MutCountSaturate>(); }},
        {"mut-dict-plane-carry",
         "dropped inter-word carry in the plane shift: bits borrowed "
         "across a 64-bit word boundary are lost",
         "a match window straddling a packed-word boundary",
         [] { return std::make_unique<MutDictPlaneCarry>(); }},
    };
    return mutants;
}

} // namespace spm::conformance
