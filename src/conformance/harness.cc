#include "conformance/harness.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>

#include "conformance/casegen.hh"
#include "conformance/goldentrace.hh"
#include "conformance/mutants.hh"
#include "conformance/oracles.hh"
#include "conformance/shrink.hh"
#include "core/reference.hh"
#include "extensions/counting.hh"
#include "extensions/numarray.hh"
#include "telemetry/flightrec.hh"
#include "telemetry/telem.hh"

namespace spm::conformance
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Shrink a disagreement and file the failure. */
void
fileFailure(RunReport &report, const Case &c, const std::string &found_id,
            const Disagreement &d, std::vector<Oracle> &oracles,
            std::size_t oracle_pos, std::size_t shrink_budget)
{
    Failure f;
    f.oracle = d.oracle;
    f.foundId = found_id;
    f.detail = d.summary();
    const ShrinkResult s = shrinkCase(
        c,
        [&](const Case &candidate) {
            return stillFails(candidate, oracles, oracle_pos);
        },
        shrink_budget);
    f.shrunkId = encodeLiteral(s.minimized);

    // Leave a breadcrumb in the global flight recorder: the dump
    // carries the replayable shrunk case ID next to whatever the
    // services were doing when the disagreement surfaced.
    telem::FlightEvent ev;
    ev.kind = telem::FlightKind::ConformanceFailure;
    ev.code = f.oracle;
    ev.caseId = f.shrunkId;
    ev.note = d.summary();
    telem::FlightRecorder::global().trip("conformance disagreement", ev);

    report.failures.push_back(std::move(f));
}

/** Position of the named oracle in the registry. */
std::size_t
oraclePos(const std::vector<Oracle> &oracles, const std::string &name)
{
    for (std::size_t i = 0; i < oracles.size(); ++i)
        if (oracles[i].name() == name)
            return i;
    return 0;
}

/** Extension eligibility: engine-simulated arrays, keep them small. */
bool
extensionEligible(const Case &c)
{
    return !c.pattern.empty() && !c.text.empty() &&
           c.pattern.size() <= c.text.size() &&
           c.text.size() <= 192 && c.pattern.size() <= 64;
}

/**
 * Cross-check the counting extension: the systolic totals must equal
 * the reference counts and a scalar recount, and for every complete
 * window count == k must coincide with the match bit.
 */
void
checkCounting(RunReport &report, const Case &c,
              const std::string &found_id)
{
    const std::size_t n = c.text.size();
    const std::size_t k = c.pattern.size();
    const std::vector<unsigned> sys =
        ext::SystolicMatchCounter().count(c.text, c.pattern);
    const std::vector<unsigned> ref =
        core::referenceMatchCounts(c.text, c.pattern);

    // Independent scalar recount, straight from the S3.4 definition.
    std::vector<unsigned> scalar(n, 0);
    for (std::size_t i = k - 1; i < n; ++i) {
        unsigned total = 0;
        for (std::size_t j = 0; j < k; ++j) {
            const Symbol p = c.pattern[j];
            total += (p == wildcardSymbol ||
                      p == c.text[i - (k - 1) + j])
                         ? 1u
                         : 0u;
        }
        scalar[i] = total;
    }

    core::ReferenceMatcher matcher;
    const std::vector<bool> bits = matcher.match(c.text, c.pattern);

    auto fail = [&](const std::string &detail) {
        Failure f;
        f.oracle = "ext-counting";
        f.foundId = found_id;
        f.shrunkId = encodeLiteral(c);
        f.detail = detail;
        report.failures.push_back(std::move(f));
    };

    for (std::size_t i = 0; i < n; ++i) {
        if (sys[i] != ref[i] || sys[i] != scalar[i]) {
            fail("count[" + std::to_string(i) + "] systolic " +
                 std::to_string(sys[i]) + ", reference " +
                 std::to_string(ref[i]) + ", scalar recount " +
                 std::to_string(scalar[i]));
            return;
        }
        const bool full = i >= k - 1 && sys[i] == k;
        if (full != bits[i]) {
            fail("count[" + std::to_string(i) + "] = " +
                 std::to_string(sys[i]) + " (k = " +
                 std::to_string(k) + ") inconsistent with match bit " +
                 (bits[i] ? "1" : "0"));
            return;
        }
    }
}

/**
 * Cross-check the numeric extension: the systolic convolution of the
 * case's streams (centered into signed values, wild cards as 0)
 * against a double-precision direct evaluation.
 */
void
checkConvolution(RunReport &report, const Case &c,
                 const std::string &found_id)
{
    const std::int64_t center = std::int64_t(1)
                                << (c.bits > 0 ? c.bits - 1 : 0);
    std::vector<std::int64_t> signal, weights;
    signal.reserve(c.text.size());
    weights.reserve(c.pattern.size());
    for (const Symbol s : c.text)
        signal.push_back(static_cast<std::int64_t>(s) - center);
    for (const Symbol p : c.pattern)
        weights.push_back(
            p == wildcardSymbol
                ? 0
                : static_cast<std::int64_t>(p) - center);

    const std::vector<std::int64_t> sys =
        ext::SystolicFir().convolve(signal, weights);

    const std::size_t out_len = signal.size() + weights.size() - 1;
    if (sys.size() != out_len) {
        Failure f;
        f.oracle = "ext-convolve";
        f.foundId = found_id;
        f.shrunkId = encodeLiteral(c);
        f.detail = "convolution length " + std::to_string(sys.size()) +
                   " != " + std::to_string(out_len);
        report.failures.push_back(std::move(f));
        return;
    }
    for (std::size_t i = 0; i < out_len; ++i) {
        double expect = 0.0;
        for (std::size_t j = 0; j < weights.size(); ++j) {
            if (i < j || i - j >= signal.size())
                continue;
            expect += static_cast<double>(weights[j]) *
                      static_cast<double>(signal[i - j]);
        }
        // The systolic array is exact in int64; the double reference
        // carries rounding once |expect| crosses 2^53, so compare
        // with a relative fixed-point tolerance.
        const double tol =
            std::max(0.5, std::fabs(expect) * 1e-12);
        if (std::fabs(static_cast<double>(sys[i]) - expect) > tol) {
            Failure f;
            f.oracle = "ext-convolve";
            f.foundId = found_id;
            f.shrunkId = encodeLiteral(c);
            f.detail = "convolution[" + std::to_string(i) +
                       "] systolic " + std::to_string(sys[i]) +
                       " vs double reference " + std::to_string(expect);
            report.failures.push_back(std::move(f));
            return;
        }
    }
}

/** Golden-trace eligibility: three engine runs per case, keep small. */
bool
goldenEligible(const Case &c)
{
    return !c.pattern.empty() && !c.text.empty() &&
           c.pattern.size() <= c.text.size() && c.text.size() <= 72 &&
           c.pattern.size() <= 10;
}

/** Blank the first k-1 valid result samples (incomplete windows). */
void
maskLeadingResults(GoldenTrace &t, std::size_t k)
{
    std::size_t seen = 0;
    for (PortSample &s : t.ports) {
        if (!s.resValid)
            continue;
        if (seen + 1 >= k)
            return;
        s.resValue = false;
        ++seen;
    }
}

/**
 * Diff the behavioral, cascade, and bit-serial fidelities beat by
 * beat on one case.
 */
void
checkGoldenTraces(RunReport &report, const Case &c,
                  const std::string &found_id)
{
    const std::size_t k = c.pattern.size();
    const std::size_t cells = k + (k % 2); // even, for a 2-chip split

    auto fail = [&](const std::string &leg, const std::string &detail) {
        Failure f;
        f.oracle = leg;
        f.foundId = found_id;
        f.shrunkId = encodeLiteral(c);
        f.detail = detail;
        report.failures.push_back(std::move(f));
    };

    const GoldenTrace behavioral = traceBehavioral(c, cells);
    const GoldenTrace cascade = traceCascade(c, 2, cells / 2);
    const TraceDiff exact = diffExact(behavioral, cascade);
    if (!exact.identical) {
        fail("golden-cascade", exact.detail);
        return;
    }

    GoldenTrace beh_k =
        cells == k ? behavioral : traceBehavioral(c, k);
    GoldenTrace bitserial = traceBitSerial(c);
    // Incomplete windows (i < k-1) carry unspecified raw values and
    // both matchers mask them; mask them here too before diffing.
    maskLeadingResults(beh_k, k);
    maskLeadingResults(bitserial, k);
    const TraceDiff serial = diffResultStream(beh_k, bitserial);
    if (!serial.identical)
        fail("golden-bitserial", serial.detail);
}

/** The per-case body shared by fuzz, replay, and corpus runs. */
void
runOneCase(RunReport &report, const Case &c, const std::string &found_id,
           std::uint64_t index, std::vector<Oracle> &oracles,
           const HarnessConfig &cfg, bool force_side_legs)
{
    SPM_TSPAN("conformance.case", telem::cat::conformance, 0, index);
    SPM_TCOUNT_GLOBAL("conformance.cases", 1);
    const CaseResult r = runCase(c, oracles, index);
    ++report.casesRun;
    report.comparisons += r.oraclesRun - 1;
    report.skipped += r.oraclesSkipped;
    for (const Disagreement &d : r.disagreements)
        fileFailure(report, c, found_id, d, oracles,
                    oraclePos(oracles, d.oracle), cfg.maxShrinkEvals);

    const bool ext_turn =
        force_side_legs || index % cfg.extensionStride == 0;
    if (cfg.withExtensions && ext_turn && extensionEligible(c)) {
        ++report.extensionChecks;
        checkCounting(report, c, found_id);
        checkConvolution(report, c, found_id);
    }

    const bool golden_turn =
        force_side_legs || index % cfg.goldenStride == 0;
    if (cfg.withGoldenTraces && golden_turn && goldenEligible(c)) {
        ++report.goldenTraceRuns;
        checkGoldenTraces(report, c, found_id);
    }
}

} // namespace

std::string
Failure::report() const
{
    std::string s = "FAIL [" + oracle + "]\n";
    s += "  found:  " + foundId + "\n";
    s += "  shrunk: " + shrunkId + "\n";
    s += "  " + detail + "\n";
    s += "  replay: conformance_fuzz --replay '" + shrunkId + "'";
    return s;
}

/**
 * The registry for one run: the full set, narrowed to the focus
 * substring when one is configured. The reference (entry 0) always
 * stays -- a focused run still needs the trusted answer.
 */
static std::vector<Oracle>
oraclesFor(const HarnessConfig &cfg)
{
    std::vector<Oracle> oracles = makeAllOracles(cfg.withGate);
    if (cfg.focus.empty())
        return oracles;
    std::vector<Oracle> kept;
    for (std::size_t i = 0; i < oracles.size(); ++i)
        if (i == 0 ||
            oracles[i].name().find(cfg.focus) != std::string::npos)
            kept.push_back(std::move(oracles[i]));
    return kept;
}

RunReport
runFuzz(const HarnessConfig &cfg)
{
    const auto start = Clock::now();
    RunReport report;
    std::vector<Oracle> oracles = oraclesFor(cfg);
    const CaseGen gen(cfg.seed);

    for (std::uint64_t i = 0; i < cfg.cases; ++i) {
        if (cfg.timeBudgetSec > 0 && (i & 63) == 0 &&
            secondsSince(start) > cfg.timeBudgetSec) {
            report.timedOut = true;
            break;
        }
        const CaseSpec spec = gen.specAt(i);
        runOneCase(report, materializeSpec(spec), encodeSpec(spec), i,
                   oracles, cfg, false);
    }
    report.seconds = secondsSince(start);
    return report;
}

RunReport
replayCase(const std::string &id, const HarnessConfig &cfg)
{
    const auto start = Clock::now();
    RunReport report;
    const std::optional<Case> c = decodeCase(id);
    if (!c) {
        Failure f;
        f.oracle = "replay";
        f.foundId = id;
        f.detail = "malformed case ID";
        report.failures.push_back(std::move(f));
        report.seconds = secondsSince(start);
        return report;
    }
    std::vector<Oracle> oracles = oraclesFor(cfg);
    runOneCase(report, *c, id, 0, oracles, cfg, true);
    report.seconds = secondsSince(start);
    return report;
}

RunReport
runCorpus(const std::string &path, const HarnessConfig &cfg)
{
    namespace fs = std::filesystem;
    const auto start = Clock::now();
    RunReport report;
    std::vector<Oracle> oracles = oraclesFor(cfg);

    std::vector<fs::path> files;
    if (fs::is_directory(path)) {
        for (const auto &entry : fs::directory_iterator(path))
            if (entry.is_regular_file())
                files.push_back(entry.path());
        std::sort(files.begin(), files.end());
    } else {
        files.emplace_back(path);
    }

    for (const fs::path &file : files) {
        std::ifstream in(file);
        if (!in) {
            Failure f;
            f.oracle = "corpus";
            f.foundId = file.string();
            f.detail = "unreadable corpus file";
            report.failures.push_back(std::move(f));
            continue;
        }
        std::string line;
        while (std::getline(in, line)) {
            const std::size_t begin =
                line.find_first_not_of(" \t\r");
            if (begin == std::string::npos || line[begin] == '#')
                continue;
            const std::size_t end = line.find_last_not_of(" \t\r");
            const std::string id =
                line.substr(begin, end - begin + 1);
            const std::optional<Case> c = decodeCase(id);
            if (!c) {
                Failure f;
                f.oracle = "corpus";
                f.foundId = file.filename().string() + ": " + id;
                f.detail = "malformed case ID";
                report.failures.push_back(std::move(f));
                continue;
            }
            runOneCase(report, *c, id, 0, oracles, cfg, true);
        }
    }
    report.seconds = secondsSince(start);
    return report;
}

bool
MutationReport::allCaught() const
{
    return survivors() == 0 && !outcomes.empty();
}

std::size_t
MutationReport::survivors() const
{
    std::size_t n = 0;
    for (const MutantOutcome &o : outcomes)
        n += o.caught ? 0 : 1;
    return n;
}

MutationReport
runMutationSelfCheck(std::uint64_t seed, std::uint64_t cases_per_mutant)
{
    const auto start = Clock::now();
    MutationReport report;

    for (const Mutant &m : allMutants()) {
        MutantOutcome outcome;
        outcome.name = m.name;
        outcome.seededBug = m.seededBug;

        // The mutant is the sole device under test: registry entry 0
        // stays the reference, entry 1 is the seeded bug.
        std::vector<Oracle> oracles;
        oracles.push_back(Oracle{
            std::make_unique<core::ReferenceMatcher>(), 1 << 20,
            1 << 12, 16, 1});
        oracles.push_back(Oracle{m.make(), 1 << 20, 1 << 12, 16, 1});

        const CaseGen gen(seed ^ 0xA5A5A5A5u);
        for (std::uint64_t i = 0; i < cases_per_mutant; ++i) {
            const CaseSpec spec = gen.specAt(i);
            const Case c = materializeSpec(spec);
            ++outcome.casesTried;
            if (!stillFails(c, oracles, 1))
                continue;
            outcome.caught = true;
            outcome.catchingId = encodeSpec(spec);
            const ShrinkResult s = shrinkCase(
                c,
                [&](const Case &candidate) {
                    return stillFails(candidate, oracles, 1);
                });
            outcome.shrunkId = encodeLiteral(s.minimized);
            break;
        }
        report.outcomes.push_back(std::move(outcome));
    }
    report.seconds = secondsSince(start);
    return report;
}

} // namespace spm::conformance
