/**
 * @file
 * The conformance harness: the fuzz loop and its reporting.
 *
 * One sweep index drives everything: the structured generator maps it
 * to a case, the differ runs the case across every eligible oracle,
 * and on disagreement the shrinker minimizes before anything is
 * reported -- so a failure always carries two IDs, the generated g1
 * ID that found it and the literal l1 ID of the minimized
 * reproduction. Side legs ride the same loop on deterministic
 * strides: the extension cross-checks (counting totals, numeric
 * convolution) and the golden-trace diffs (behavioral vs cascade vs
 * bit-serial, beat by beat).
 *
 * The mutation self-check turns the harness on itself: each seeded
 * bug from mutants.hh is run as the device under test, and the check
 * fails unless the generator+differ pipeline catches every one.
 */

#ifndef SPM_CONFORMANCE_HARNESS_HH
#define SPM_CONFORMANCE_HARNESS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "conformance/case.hh"
#include "conformance/differ.hh"

namespace spm::conformance
{

/** Fuzz-run knobs. */
struct HarnessConfig
{
    std::uint64_t seed = 0xC0FFEE;
    std::uint64_t cases = 1000;
    /** Wall-clock budget in seconds; 0 means no budget. */
    double timeBudgetSec = 0;
    /** Include the gate-level oracles (slow; strided anyway). */
    bool withGate = true;
    /**
     * When non-empty, only oracles whose name contains this substring
     * participate (the reference always stays as the trusted answer).
     * How a targeted leg fuzzes one new kernel hard without paying
     * for the whole registry -- e.g. focus "simd-parallel" or "batch".
     */
    std::string focus;
    /** Run the extension cross-checks on a stride of cases. */
    bool withExtensions = true;
    /** Run the golden-trace diffs on a stride of cases. */
    bool withGoldenTraces = true;
    /** Shrink budget per failure (predicate evaluations). */
    std::size_t maxShrinkEvals = 800;
    /** Run extension checks on every Nth case. */
    std::uint64_t extensionStride = 13;
    /** Run golden-trace diffs on every Nth case. */
    std::uint64_t goldenStride = 97;
};

/** One reported (already shrunk) failure. */
struct Failure
{
    /** Oracle or check leg that disagreed. */
    std::string oracle;
    /** ID of the case as found (g1 for generated, l1 for replayed). */
    std::string foundId;
    /** Literal ID of the shrunk reproduction. */
    std::string shrunkId;
    /** Disagreement summary at the found case. */
    std::string detail;

    std::string report() const;
};

/** The outcome of a fuzz, replay, or corpus run. */
struct RunReport
{
    std::uint64_t casesRun = 0;
    /** Oracle executions beyond the reference. */
    std::uint64_t comparisons = 0;
    /** Oracle executions skipped by eligibility or stride. */
    std::uint64_t skipped = 0;
    std::uint64_t extensionChecks = 0;
    std::uint64_t goldenTraceRuns = 0;
    std::vector<Failure> failures;
    double seconds = 0;
    /** True when the time budget ended the run early. */
    bool timedOut = false;

    bool ok() const { return failures.empty(); }
    double casesPerSec() const
    {
        return seconds > 0 ? static_cast<double>(casesRun) / seconds
                           : 0.0;
    }
};

/** Run the differential fuzz loop. */
RunReport runFuzz(const HarnessConfig &cfg);

/**
 * Replay one case ID across the full registry plus the extension and
 * golden-trace legs (strides ignored: everything eligible runs).
 */
RunReport replayCase(const std::string &id, const HarnessConfig &cfg);

/**
 * Replay every case ID in @p path: a corpus file (one ID per line,
 * '#' comments) or a directory of such files, recursed one level.
 */
RunReport runCorpus(const std::string &path, const HarnessConfig &cfg);

/** One mutant's fate under the self-check. */
struct MutantOutcome
{
    std::string name;
    std::string seededBug;
    bool caught = false;
    std::uint64_t casesTried = 0;
    /** ID of the first catching case (when caught). */
    std::string catchingId;
    /** Literal ID of the shrunk catching case (when caught). */
    std::string shrunkId;
};

/** The mutation self-check outcome. */
struct MutationReport
{
    std::vector<MutantOutcome> outcomes;
    double seconds = 0;

    bool allCaught() const;
    std::size_t survivors() const;
};

/**
 * Run every seeded-bug mutant as the device under test against the
 * reference, with the same generator the fuzz loop uses; a mutant
 * survives when no disagreement is found within @p cases_per_mutant
 * generated cases.
 */
MutationReport runMutationSelfCheck(std::uint64_t seed,
                                    std::uint64_t cases_per_mutant);

} // namespace spm::conformance

#endif // SPM_CONFORMANCE_HARNESS_HH
