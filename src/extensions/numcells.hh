/**
 * @file
 * Numeric systolic cells for the Section 3.4 extensions.
 *
 * "Many problems other than string matching can be solved by similar
 * algorithms." The paper derives three variants from the pattern
 * matcher by swapping cell programs while keeping the identical data
 * flow:
 *
 *  - counting cell: t <- t + 1 when the position matches;
 *  - difference cell + adder cell (correlation):
 *        d <- s - p;   t <- t + d^2
 *  - multiplier cell + adder cell (convolution / FIR):
 *        d <- s * p;   t <- t + d
 *
 * This file implements those cells over validity-tagged integer
 * tokens; numarray.hh assembles them into arrays.
 */

#ifndef SPM_EXT_NUMCELLS_HH
#define SPM_EXT_NUMCELLS_HH

#include <cstdint>
#include <string>

#include "core/cells.hh"
#include "systolic/cell.hh"
#include "systolic/latch.hh"

namespace spm::ext
{

/** A number moving through the array. */
struct NumToken
{
    std::int64_t value = 0;
    bool valid = false;

    bool operator==(const NumToken &) const = default;
};

/**
 * The arithmetic performed where the two streams meet. Section 3.4
 * notes that "all of the linear product problems discussed in
 * [Fischer and Paterson 74] are similar in form to string matching";
 * the meet/fold pair below is that generality: any (meet, fold)
 * semiring product over sliding windows runs on the same array.
 */
enum class MeetOp
{
    Subtract, ///< d <- s - p (correlation)
    Multiply, ///< d <- s * p (convolution, FIR)
    AbsDiff,  ///< d <- |s - p| (distance products)
};

/** How the adder cell folds d into its temporary result. */
enum class FoldOp
{
    Sum,          ///< t <- t + d
    SumOfSquares, ///< t <- t + d^2
    Min,          ///< t <- min(t, d): closest-position products
    Max,          ///< t <- max(t, d): Chebyshev window distance
};

/** The fold's identity element, which lambda resets t to. */
std::int64_t foldIdentity(FoldOp op);

/** Apply the fold. */
std::int64_t applyFold(FoldOp op, std::int64_t t, std::int64_t d);

/**
 * The numeric analog of the comparator: pattern numbers flow left to
 * right, signal numbers right to left, and the cell emits
 * op(s, p) downward. "This difference computation may be pipelined
 * bitwise in the same way as the character comparison" -- here it is
 * word-level, matching the character-level fidelity tier.
 */
class NumMeetCell : public systolic::CellBase
{
  public:
    NumMeetCell(std::string cell_name, unsigned parity, MeetOp op);

    void connect(const systolic::Latch<NumToken> *p_src,
                 const systolic::Latch<NumToken> *s_src);

    void evaluate(Beat beat) override;
    void commit() override;
    std::string stateString() const override;

    const systolic::Latch<NumToken> &pOut() const { return p; }
    const systolic::Latch<NumToken> &sOut() const { return s; }
    const systolic::Latch<NumToken> &dOut() const { return d; }

  private:
    MeetOp meetOp;
    const systolic::Latch<NumToken> *pSrc = nullptr;
    const systolic::Latch<NumToken> *sSrc = nullptr;
    systolic::Latch<NumToken> p;
    systolic::Latch<NumToken> s;
    systolic::Latch<NumToken> d;
};

/**
 * The adder cell of Section 3.4:
 *
 *     IF lambda_in THEN r_out <- t + f(d_in); t <- 0
 *     ELSE             r_out <- r_in;  t <- t + f(d_in)
 *
 * where f is d or d^2 per FoldOp. As with the matcher's accumulator,
 * the lambda-beat contribution is folded in before output so every
 * pattern position contributes exactly once per recirculation.
 */
class NumAdderCell : public systolic::CellBase
{
  public:
    NumAdderCell(std::string cell_name, unsigned parity, FoldOp op);

    void connect(const systolic::Latch<core::CtlToken> *ctl_src,
                 const systolic::Latch<NumToken> *r_src,
                 const systolic::Latch<NumToken> *d_src);

    void evaluate(Beat beat) override;
    void commit() override;
    std::string stateString() const override;

    const systolic::Latch<core::CtlToken> &ctlOut() const { return ctl; }
    const systolic::Latch<NumToken> &rOut() const { return r; }

  private:
    FoldOp foldOp;
    const systolic::Latch<core::CtlToken> *ctlSrc = nullptr;
    const systolic::Latch<NumToken> *rSrc = nullptr;
    const systolic::Latch<NumToken> *dSrc = nullptr;
    systolic::Latch<core::CtlToken> ctl;
    systolic::Latch<NumToken> r;
    systolic::Latch<std::int64_t> t;
};

/**
 * The counting cell of Section 3.4: the result stream carries
 * integers and the accumulator counts matching positions:
 *
 *     IF lambda_in THEN r_out <- t + m; t <- 0
 *     ELSE IF x_in OR d_in THEN t <- t + 1; r_out <- r_in
 *     ELSE r_out <- r_in
 *
 * where m is 1 when the lambda-beat position matches.
 */
class CountingCell : public systolic::CellBase
{
  public:
    CountingCell(std::string cell_name, unsigned parity);

    void connect(const systolic::Latch<core::CtlToken> *ctl_src,
                 const systolic::Latch<NumToken> *r_src,
                 const systolic::Latch<core::DToken> *d_src);

    void evaluate(Beat beat) override;
    void commit() override;
    std::string stateString() const override;

    const systolic::Latch<core::CtlToken> &ctlOut() const { return ctl; }
    const systolic::Latch<NumToken> &rOut() const { return r; }

  private:
    const systolic::Latch<core::CtlToken> *ctlSrc = nullptr;
    const systolic::Latch<NumToken> *rSrc = nullptr;
    const systolic::Latch<core::DToken> *dSrc = nullptr;
    systolic::Latch<core::CtlToken> ctl;
    systolic::Latch<NumToken> r;
    systolic::Latch<std::int64_t> t{0};
};

} // namespace spm::ext

#endif // SPM_EXT_NUMCELLS_HH
