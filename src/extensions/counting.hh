/**
 * @file
 * The match-counting array (Section 3.4).
 *
 * "We might wish to count how many characters in each substring match
 * the corresponding characters in the pattern. This problem can be
 * solved by replacing the result bit stream by a stream of integers,
 * and replacing the accumulator cell by a counting cell."
 */

#ifndef SPM_EXT_COUNTING_HH
#define SPM_EXT_COUNTING_HH

#include <vector>

#include "core/cells.hh"
#include "extensions/numcells.hh"
#include "systolic/engine.hh"

namespace spm::ext
{

/**
 * A comparator row over a counting row: identical structure to the
 * pattern matcher with integer result slots.
 */
class CountingArray
{
  public:
    explicit CountingArray(std::size_t num_cells,
                           Picoseconds beat_period_ps = prototypeBeatPs);

    std::size_t cellCount() const { return numCells; }

    void feedPattern(const core::PatToken &tok) { pIn.force(tok); }
    void feedControl(const core::CtlToken &tok) { ctlIn.force(tok); }
    void feedString(const core::StrToken &tok) { sIn.force(tok); }
    void feedResult(const NumToken &tok) { rIn.force(tok); }

    void step() { eng.step(); }

    NumToken resultOut() const;

    systolic::Engine &engine() { return eng; }

  private:
    std::size_t numCells;
    systolic::Engine eng;
    systolic::Latch<core::PatToken> pIn;
    systolic::Latch<core::CtlToken> ctlIn;
    systolic::Latch<core::StrToken> sIn;
    systolic::Latch<NumToken> rIn;
    std::vector<core::CharComparatorCell *> comparators;
    std::vector<CountingCell *> counters;
};

/**
 * Host-level driver: per text position i >= k, the number of
 * positions of the substring ending at i that match the pattern
 * (wild cards always match); 0 for i < k.
 */
class SystolicMatchCounter
{
  public:
    /** @param num_cells cells; 0 sizes the array to the pattern. */
    explicit SystolicMatchCounter(std::size_t num_cells = 0)
        : cells(num_cells)
    {
    }

    std::vector<unsigned> count(const std::vector<Symbol> &text,
                                const std::vector<Symbol> &pattern) const;

  private:
    std::size_t cells;
};

} // namespace spm::ext

#endif // SPM_EXT_COUNTING_HH
