#include "extensions/numarray.hh"

#include <algorithm>

#include "util/logging.hh"

namespace spm::ext
{

NumericArray::NumericArray(std::size_t num_cells, MeetOp meet, FoldOp fold,
                           Picoseconds beat_period_ps)
    : numCells(num_cells), eng(beat_period_ps)
{
    spm_assert(num_cells > 0, "array needs at least one cell");

    meets.reserve(numCells);
    adders.reserve(numCells);
    for (std::size_t c = 0; c < numCells; ++c) {
        meets.push_back(&eng.makeCell<NumMeetCell>(
            "meet" + std::to_string(c), static_cast<unsigned>(c % 2),
            meet));
    }
    for (std::size_t c = 0; c < numCells; ++c) {
        adders.push_back(&eng.makeCell<NumAdderCell>(
            "add" + std::to_string(c),
            static_cast<unsigned>((c + 1) % 2), fold));
    }
    for (std::size_t c = 0; c < numCells; ++c) {
        meets[c]->connect(c == 0 ? &pIn : &meets[c - 1]->pOut(),
                          c == numCells - 1 ? &sIn
                                            : &meets[c + 1]->sOut());
        adders[c]->connect(
            c == 0 ? &ctlIn : &adders[c - 1]->ctlOut(),
            c == numCells - 1 ? &rIn : &adders[c + 1]->rOut(),
            &meets[c]->dOut());
    }
}

NumToken
NumericArray::resultOut() const
{
    return adders.front()->rOut().read();
}

std::vector<std::int64_t>
runWindowProtocol(std::size_t num_cells, MeetOp meet, FoldOp fold,
                  const std::vector<std::int64_t> &signal,
                  const std::vector<std::int64_t> &weights)
{
    const std::size_t n = signal.size();
    const std::size_t len = weights.size();
    std::vector<std::int64_t> result(n, 0);
    if (len == 0 || n == 0 || len > n)
        return result;

    spm_assert(len <= num_cells, "weights exceed the array's ",
               num_cells, " cells");

    NumericArray array(num_cells, meet, fold);
    const unsigned phi = (num_cells - 1) % 2;
    const Beat total = 2 * static_cast<Beat>(n) + phi +
                       static_cast<Beat>(num_cells) + 4;

    std::size_t collected = 0;
    for (Beat u = 0; u < total && collected < n; ++u) {
        // Weights recirculate on even beats; lambda/x control bits
        // trail by one beat, exactly as in the matcher.
        NumToken w{};
        if (u % 2 == 0) {
            const std::size_t j =
                static_cast<std::size_t>(u / 2) % len;
            w = NumToken{weights[j], true};
        }
        core::CtlToken ctl{};
        if (u % 2 == 1) {
            const std::size_t j =
                static_cast<std::size_t>((u - 1) / 2) % len;
            ctl = core::CtlToken{j == len - 1, false, true};
        }
        NumToken x{};
        if (u % 2 == phi % 2) {
            const auto i = static_cast<std::size_t>((u - phi) / 2);
            if (u >= phi && i < n)
                x = NumToken{signal[i], true};
        }
        NumToken r{};
        if (u % 2 == (phi + 1) % 2 && u >= phi + 1) {
            const auto i = static_cast<std::size_t>((u - phi - 1) / 2);
            if (i < n)
                r = NumToken{0, true};
        }

        array.feedWeight(w);
        array.feedControl(ctl);
        array.feedSignal(x);
        array.feedResult(r);
        array.step();

        const NumToken out = array.resultOut();
        if (out.valid) {
            result[collected] =
                collected >= len - 1 ? out.value : 0;
            ++collected;
        }
    }
    spm_assert(collected == n, "collected ", collected, " of ", n,
               " window results");
    return result;
}

std::vector<std::int64_t>
SystolicCorrelator::correlate(const std::vector<std::int64_t> &signal,
                              const std::vector<std::int64_t> &weights)
    const
{
    const std::size_t m = cells == 0 ? weights.size() : cells;
    return runWindowProtocol(m, MeetOp::Subtract, FoldOp::SumOfSquares,
                             signal, weights);
}

std::vector<std::int64_t>
SystolicDistance::chebyshev(const std::vector<std::int64_t> &signal,
                            const std::vector<std::int64_t> &weights)
    const
{
    const std::size_t m = cells == 0 ? weights.size() : cells;
    return runWindowProtocol(m, MeetOp::AbsDiff, FoldOp::Max, signal,
                             weights);
}

std::vector<std::int64_t>
SystolicDistance::closestPosition(
    const std::vector<std::int64_t> &signal,
    const std::vector<std::int64_t> &weights) const
{
    const std::size_t m = cells == 0 ? weights.size() : cells;
    return runWindowProtocol(m, MeetOp::AbsDiff, FoldOp::Min, signal,
                             weights);
}

std::vector<std::int64_t>
SystolicFir::windowDot(const std::vector<std::int64_t> &signal,
                       const std::vector<std::int64_t> &weights) const
{
    const std::size_t m = cells == 0 ? weights.size() : cells;
    return runWindowProtocol(m, MeetOp::Multiply, FoldOp::Sum, signal,
                             weights);
}

std::vector<std::int64_t>
SystolicFir::fir(const std::vector<std::int64_t> &signal,
                 const std::vector<std::int64_t> &taps) const
{
    const std::size_t n = signal.size();
    const std::size_t k = taps.size();
    if (n == 0 || k == 0)
        return std::vector<std::int64_t>(n, 0);

    // y_i = sum_j taps_j x_{i-j} is the window dot product with the
    // taps reversed, over the signal padded with k-1 zeros of
    // history.
    std::vector<std::int64_t> padded(k - 1, 0);
    padded.insert(padded.end(), signal.begin(), signal.end());
    std::vector<std::int64_t> rev(taps.rbegin(), taps.rend());

    const auto windows = windowDot(padded, rev);
    // Window result at padded index (k-1)+i is y_i.
    std::vector<std::int64_t> y(n, 0);
    for (std::size_t i = 0; i < n; ++i)
        y[i] = windows[k - 1 + i];
    return y;
}

std::vector<std::int64_t>
SystolicFir::convolve(const std::vector<std::int64_t> &a,
                      const std::vector<std::int64_t> &b) const
{
    if (a.empty() || b.empty())
        return {};
    // Full convolution: filter a (padded with |b|-1 trailing zeros)
    // by taps b.
    std::vector<std::int64_t> padded(a);
    padded.insert(padded.end(), b.size() - 1, 0);
    const auto y = fir(padded, b);
    return y;
}

} // namespace spm::ext
