#include "extensions/numcells.hh"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "util/logging.hh"

namespace spm::ext
{

std::int64_t
foldIdentity(FoldOp op)
{
    switch (op) {
      case FoldOp::Sum:
      case FoldOp::SumOfSquares:
        return 0;
      case FoldOp::Min:
        return std::numeric_limits<std::int64_t>::max();
      case FoldOp::Max:
        return std::numeric_limits<std::int64_t>::min();
      default:
        spm_panic("unknown fold");
    }
}

std::int64_t
applyFold(FoldOp op, std::int64_t t, std::int64_t d)
{
    switch (op) {
      case FoldOp::Sum:
        return t + d;
      case FoldOp::SumOfSquares:
        return t + d * d;
      case FoldOp::Min:
        return std::min(t, d);
      case FoldOp::Max:
        return std::max(t, d);
      default:
        spm_panic("unknown fold");
    }
}

NumMeetCell::NumMeetCell(std::string cell_name, unsigned parity, MeetOp op)
    : CellBase(std::move(cell_name), parity), meetOp(op)
{
}

void
NumMeetCell::connect(const systolic::Latch<NumToken> *p_src,
                     const systolic::Latch<NumToken> *s_src)
{
    spm_assert(p_src && s_src, "meet cell connected to null sources");
    pSrc = p_src;
    sSrc = s_src;
}

void
NumMeetCell::evaluate(Beat)
{
    spm_assert(pSrc, "meet cell '", cellName(), "' not connected");
    const NumToken p_new = pSrc->read();
    const NumToken s_new = sSrc->read();

    NumToken d_new;
    d_new.valid = p_new.valid && s_new.valid;
    if (d_new.valid) {
        switch (meetOp) {
          case MeetOp::Subtract:
            d_new.value = s_new.value - p_new.value;
            break;
          case MeetOp::Multiply:
            d_new.value = s_new.value * p_new.value;
            break;
          case MeetOp::AbsDiff:
            d_new.value = std::abs(s_new.value - p_new.value);
            break;
        }
    }

    p.write(p_new);
    s.write(s_new);
    d.write(d_new);
}

void
NumMeetCell::commit()
{
    p.commit();
    s.commit();
    d.commit();
}

std::string
NumMeetCell::stateString() const
{
    std::ostringstream os;
    if (p.read().valid)
        os << p.read().value;
    else
        os << ".";
    os << "/";
    if (s.read().valid)
        os << s.read().value;
    else
        os << ".";
    return os.str();
}

NumAdderCell::NumAdderCell(std::string cell_name, unsigned parity,
                           FoldOp op)
    : CellBase(std::move(cell_name), parity), foldOp(op),
      t(foldIdentity(op))
{
}

void
NumAdderCell::connect(const systolic::Latch<core::CtlToken> *ctl_src,
                      const systolic::Latch<NumToken> *r_src,
                      const systolic::Latch<NumToken> *d_src)
{
    spm_assert(ctl_src && r_src && d_src,
               "adder cell connected to null sources");
    ctlSrc = ctl_src;
    rSrc = r_src;
    dSrc = d_src;
}

void
NumAdderCell::evaluate(Beat)
{
    spm_assert(ctlSrc, "adder cell '", cellName(), "' not connected");
    const core::CtlToken c_new = ctlSrc->read();
    const NumToken r_in = rSrc->read();
    const NumToken d_in = dSrc->read();
    const std::int64_t t_cur = t.read();

    spm_assert(!d_in.valid || c_new.valid,
               "adder cell '", cellName(), "': misaligned feed");

    NumToken r_new = r_in;
    std::int64_t t_new = t_cur;
    if (c_new.valid) {
        // An absent comparison folds the identity (contributes
        // nothing), mirroring the matcher's masked positions.
        const std::int64_t updated = d_in.valid
            ? applyFold(foldOp, t_cur, d_in.value)
            : t_cur;
        if (c_new.lambda) {
            r_new.value = updated;
            t_new = foldIdentity(foldOp);
        } else {
            t_new = updated;
        }
    }

    ctl.write(c_new);
    r.write(r_new);
    t.write(t_new);
}

void
NumAdderCell::commit()
{
    ctl.commit();
    r.commit();
    t.commit();
}

std::string
NumAdderCell::stateString() const
{
    std::ostringstream os;
    os << "t=" << t.read();
    return os.str();
}

CountingCell::CountingCell(std::string cell_name, unsigned parity)
    : CellBase(std::move(cell_name), parity)
{
}

void
CountingCell::connect(const systolic::Latch<core::CtlToken> *ctl_src,
                      const systolic::Latch<NumToken> *r_src,
                      const systolic::Latch<core::DToken> *d_src)
{
    spm_assert(ctl_src && r_src && d_src,
               "counting cell connected to null sources");
    ctlSrc = ctl_src;
    rSrc = r_src;
    dSrc = d_src;
}

void
CountingCell::evaluate(Beat)
{
    spm_assert(ctlSrc, "counting cell '", cellName(), "' not connected");
    const core::CtlToken c_new = ctlSrc->read();
    const NumToken r_in = rSrc->read();
    const core::DToken d_in = dSrc->read();
    const std::int64_t t_cur = t.read();

    spm_assert(!d_in.valid || c_new.valid,
               "counting cell '", cellName(), "': misaligned feed");

    NumToken r_new = r_in;
    std::int64_t t_new = t_cur;
    if (c_new.valid) {
        const std::int64_t here =
            (c_new.x || (d_in.valid && d_in.value)) ? 1 : 0;
        if (c_new.lambda) {
            r_new.value = t_cur + here;
            t_new = 0;
        } else {
            t_new = t_cur + here;
        }
    }

    ctl.write(c_new);
    r.write(r_new);
    t.write(t_new);
}

void
CountingCell::commit()
{
    ctl.commit();
    r.commit();
    t.commit();
}

std::string
CountingCell::stateString() const
{
    std::ostringstream os;
    os << "t=" << t.read();
    return os.str();
}

} // namespace spm::ext
