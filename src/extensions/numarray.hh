/**
 * @file
 * Numeric systolic arrays: correlation, FIR filtering, convolution.
 *
 * "A problem of more practical interest is the computation of
 * correlations... Correlations can be computed by a machine with
 * identical data flow to the string matching chip, except that all
 * streams contain numbers" (Section 3.4). The same array with a
 * multiplier meet cell and a plain-sum adder computes sliding dot
 * products, i.e. FIR filters and convolutions ("Many other problems,
 * such as convolutions and FIR filtering, have algorithms that use
 * the same data flow").
 */

#ifndef SPM_EXT_NUMARRAY_HH
#define SPM_EXT_NUMARRAY_HH

#include <cstdint>
#include <vector>

#include "extensions/numcells.hh"
#include "systolic/engine.hh"

namespace spm::ext
{

/**
 * A linear array of meet cells over adder cells with the pattern
 * matcher's exact data flow: weights recirculate left to right with
 * the lambda marker, the signal flows right to left, window results
 * ride out with the signal.
 */
class NumericArray
{
  public:
    NumericArray(std::size_t num_cells, MeetOp meet, FoldOp fold,
                 Picoseconds beat_period_ps = prototypeBeatPs);

    std::size_t cellCount() const { return numCells; }

    void feedWeight(const NumToken &tok) { pIn.force(tok); }
    void feedControl(const core::CtlToken &tok) { ctlIn.force(tok); }
    void feedSignal(const NumToken &tok) { sIn.force(tok); }
    void feedResult(const NumToken &tok) { rIn.force(tok); }

    void step() { eng.step(); }

    NumToken resultOut() const;

    systolic::Engine &engine() { return eng; }

  private:
    std::size_t numCells;
    systolic::Engine eng;
    systolic::Latch<NumToken> pIn;
    systolic::Latch<core::CtlToken> ctlIn;
    systolic::Latch<NumToken> sIn;
    systolic::Latch<NumToken> rIn;
    std::vector<NumMeetCell *> meets;
    std::vector<NumAdderCell *> adders;
};

/**
 * Run the numeric window protocol: for every signal position i >= k,
 * the value sum_j fold(meet(x_{i-k+j}, w_j)) emerges; positions
 * i < k yield 0. Shared by the correlator and the FIR wrappers.
 *
 * @param num_cells cells to instantiate (>= weights.size())
 */
std::vector<std::int64_t> runWindowProtocol(
    std::size_t num_cells, MeetOp meet, FoldOp fold,
    const std::vector<std::int64_t> &signal,
    const std::vector<std::int64_t> &weights);

/**
 * Correlation per Section 3.4:
 *     r_i = (x_{i-k} - w_0)^2 + ... + (x_i - w_k)^2
 * "A good match of substring to pattern results in a high
 * correlation" -- in this squared-difference form, a *low* value
 * marks a good match, zero an exact one.
 */
class SystolicCorrelator
{
  public:
    /** @param num_cells cells; 0 sizes the array to the weights. */
    explicit SystolicCorrelator(std::size_t num_cells = 0)
        : cells(num_cells)
    {
    }

    std::vector<std::int64_t> correlate(
        const std::vector<std::int64_t> &signal,
        const std::vector<std::int64_t> &weights) const;

  private:
    std::size_t cells;
};

/**
 * Sliding-window distance products -- the "linear product" family
 * Section 3.4 gestures at via [Fischer and Paterson 74]. Both run on
 * the unchanged data flow with a different (meet, fold) pair.
 */
class SystolicDistance
{
  public:
    explicit SystolicDistance(std::size_t num_cells = 0)
        : cells(num_cells)
    {
    }

    /**
     * Chebyshev (L-infinity) window distance:
     *     r_i = max_j |x_{i-k+j} - w_j|,  r_i = 0 for i < k.
     */
    std::vector<std::int64_t> chebyshev(
        const std::vector<std::int64_t> &signal,
        const std::vector<std::int64_t> &weights) const;

    /**
     * Closest-position agreement:
     *     r_i = min_j |x_{i-k+j} - w_j|,  r_i = 0 for i < k.
     */
    std::vector<std::int64_t> closestPosition(
        const std::vector<std::int64_t> &signal,
        const std::vector<std::int64_t> &weights) const;

  private:
    std::size_t cells;
};

/** FIR filtering and convolution on the same array. */
class SystolicFir
{
  public:
    explicit SystolicFir(std::size_t num_cells = 0) : cells(num_cells) {}

    /**
     * Sliding window dot product:
     *     y_i = sum_j w_j * x_{i-k+j},  y_i = 0 for i < k.
     */
    std::vector<std::int64_t> windowDot(
        const std::vector<std::int64_t> &signal,
        const std::vector<std::int64_t> &weights) const;

    /**
     * Causal FIR filter y_i = sum_j taps_j * x_{i-j} with zero
     * initial history; output has the signal's length.
     */
    std::vector<std::int64_t> fir(
        const std::vector<std::int64_t> &signal,
        const std::vector<std::int64_t> &taps) const;

    /**
     * Full linear convolution of the two sequences; output length is
     * |a| + |b| - 1.
     */
    std::vector<std::int64_t> convolve(
        const std::vector<std::int64_t> &a,
        const std::vector<std::int64_t> &b) const;

  private:
    std::size_t cells;
};

} // namespace spm::ext

#endif // SPM_EXT_NUMARRAY_HH
