#include "extensions/counting.hh"

#include "core/behavioral.hh"
#include "util/logging.hh"

namespace spm::ext
{

CountingArray::CountingArray(std::size_t num_cells,
                             Picoseconds beat_period_ps)
    : numCells(num_cells), eng(beat_period_ps)
{
    spm_assert(num_cells > 0, "array needs at least one cell");

    comparators.reserve(numCells);
    counters.reserve(numCells);
    for (std::size_t c = 0; c < numCells; ++c) {
        comparators.push_back(&eng.makeCell<core::CharComparatorCell>(
            "cmp" + std::to_string(c), static_cast<unsigned>(c % 2)));
    }
    for (std::size_t c = 0; c < numCells; ++c) {
        counters.push_back(&eng.makeCell<CountingCell>(
            "cnt" + std::to_string(c),
            static_cast<unsigned>((c + 1) % 2)));
    }
    for (std::size_t c = 0; c < numCells; ++c) {
        comparators[c]->connect(
            c == 0 ? &pIn : &comparators[c - 1]->pOut(),
            c == numCells - 1 ? &sIn : &comparators[c + 1]->sOut());
        counters[c]->connect(
            c == 0 ? &ctlIn : &counters[c - 1]->ctlOut(),
            c == numCells - 1 ? &rIn : &counters[c + 1]->rOut(),
            &comparators[c]->dOut());
    }
}

NumToken
CountingArray::resultOut() const
{
    return counters.front()->rOut().read();
}

std::vector<unsigned>
SystolicMatchCounter::count(const std::vector<Symbol> &text,
                            const std::vector<Symbol> &pattern) const
{
    const std::size_t n = text.size();
    const std::size_t len = pattern.size();
    std::vector<unsigned> result(n, 0);
    if (len == 0 || n == 0 || len > n)
        return result;

    const std::size_t m = cells == 0 ? len : cells;
    CountingArray array(m);
    const core::ChipFeedPlan plan(m, pattern, n);

    std::size_t collected = 0;
    for (Beat u = 0; u < plan.totalBeats() && collected < n; ++u) {
        array.feedPattern(plan.patternAt(u));
        array.feedControl(plan.controlAt(u));
        array.feedString(plan.stringAt(u, text));
        const core::ResToken r = plan.resultAt(u);
        array.feedResult(NumToken{0, r.valid});
        array.step();

        const NumToken out = array.resultOut();
        if (out.valid) {
            result[collected] = collected >= len - 1
                ? static_cast<unsigned>(out.value)
                : 0;
            ++collected;
        }
    }
    spm_assert(collected == n, "collected ", collected, " of ", n,
               " counts");
    return result;
}

} // namespace spm::ext
