#include "fault/grade.hh"

#include <algorithm>
#include <cstdio>

#include "core/gatechip.hh"
#include "telemetry/flightrec.hh"
#include "telemetry/metrics.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace spm::fault
{

using core::GateChip;
using core::GateLevelMatcher;

double
GradeReport::classCoverage() const
{
    return collapse.classCount == 0
        ? 100.0
        : 100.0 * static_cast<double>(detectedClasses) /
            static_cast<double>(collapse.classCount);
}

double
GradeReport::siteCoverage() const
{
    return collapse.totalSites == 0
        ? 100.0
        : 100.0 * static_cast<double>(detectedSites) /
            static_cast<double>(collapse.totalSites);
}

std::string
GradeReport::renderText(std::size_t top) const
{
    char line[256];
    std::string out;
    out += "fault grading report\n";
    std::snprintf(line, sizeof line,
                  "  chip: nodes=%zu devices=%zu transistors=%u\n",
                  nodes, devices, transistors);
    out += line;
    std::snprintf(line, sizeof line,
                  "  universe: %zu sites -> %zu classes (x%.2f) -> "
                  "%zu primes (x%.2f)\n",
                  collapse.totalSites, collapse.classCount,
                  collapse.simRatio(), collapse.primeCount,
                  collapse.primeRatio());
    out += line;
    std::snprintf(line, sizeof line,
                  "  scoap: difficulty mean=%.1f max=%u unreachable=%zu\n",
                  difficultyMean, difficultyMax, unreachableSites);
    out += line;
    std::snprintf(line, sizeof line,
                  "  workloads: %zu, observations=%zu\n", workloads,
                  totalObservations);
    out += line;
    for (std::size_t w = 0; w < workloadDetected.size(); ++w) {
        std::snprintf(line, sizeof line,
                      "    workload %zu: patternLen=%zu detected +%zu\n",
                      w, workloadPatternLen[w], workloadDetected[w]);
        out += line;
    }
    std::snprintf(line, sizeof line,
                  "  coverage: classes %.2f%% (%zu/%zu) sites %.2f%% "
                  "(%zu/%zu)\n",
                  classCoverage(), detectedClasses, collapse.classCount,
                  siteCoverage(), detectedSites, collapse.totalSites);
    out += line;
    std::snprintf(line, sizeof line,
                  "  effort: %llu word batches, %llu word evals\n",
                  static_cast<unsigned long long>(wordBatches),
                  static_cast<unsigned long long>(wordEvals));
    out += line;
    std::snprintf(line, sizeof line,
                  "  cross-check: %zu sampled, %zu mismatches\n",
                  crossChecked, crossCheckMismatches);
    out += line;
    const std::size_t shown = std::min(top, undetected.size());
    std::snprintf(line, sizeof line,
                  "  hardest undetected (%zu of %zu):\n", shown,
                  undetected.size());
    out += line;
    for (std::size_t i = 0; i < shown; ++i) {
        const UndetectedFault &u = undetected[i];
        std::snprintf(line, sizeof line,
                      "    %-24s difficulty=%u class=%u size=%zu\n",
                      u.name.c_str(), u.difficulty, u.classId,
                      u.classSize);
        out += line;
    }
    return out;
}

GradedWorkload
captureWorkload(const GradeConfig &cfg, std::vector<Symbol> pattern,
                std::vector<Symbol> text)
{
    GradedWorkload w;
    w.pattern = std::move(pattern);
    w.text = std::move(text);

    TraceRecorder rec(w.trace);
    GateLevelMatcher matcher(cfg.cells, cfg.alphabetBits);
    matcher.setUseLevelized(true);
    matcher.setChipPrep([&](GateChip &chip) {
        rec.begin(chip.netlist(), chip.resultNode(),
                  chip.resultInverted(), w.pattern.size());
        chip.netlist().setTap(&rec);
    });
    matcher.setResultObserver(
        [&](std::size_t index, const GateChip &) { rec.observe(index); });
    const std::vector<bool> result = matcher.match(w.text, w.pattern);
    w.golden.assign(result.begin(), result.end());

    spm_assert(!w.trace.sawDecay,
               "charge decay during workload capture");
    w.goldenPerOp.reserve(w.trace.observations);
    for (const TraceOp &op : w.trace.ops)
        if (op.kind == TraceOp::Kind::Observe)
            w.goldenPerOp.push_back(w.golden[op.index] ? 1 : 0);
    return w;
}

bool
serialDetect(const GradeConfig &cfg, const FaultSite &site,
             const GradedWorkload &workload)
{
    GateLevelMatcher matcher(cfg.cells, cfg.alphabetBits);
    matcher.setUseLevelized(true);
    matcher.setChipPrep([&](GateChip &chip) {
        chip.netlist().forceStuckAt(site.node, site.level(), 0);
    });
    const std::vector<bool> result =
        matcher.match(workload.text, workload.pattern);
    return result != workload.golden;
}

GradeReport
FaultGrader::run()
{
    spm_assert(cfg.patternLen >= 1 && cfg.patternLen <= cfg.textLen,
               "pattern must fit the text");
    telem::Registry &reg = telem::Registry::global();
    reg.counter("fault.grade.runs").add();

    GradeReport rep;

    // A probe chip supplies the netlist structure; every chip the
    // matcher builds for this configuration is constructed by the
    // same deterministic code, so node ids line up with the traces.
    GateChip probe(cfg.cells, cfg.alphabetBits);
    const gate::Netlist &net = probe.netlist();
    rep.nodes = net.nodeCount();
    rep.devices = net.deviceCount();
    rep.transistors = net.transistorCount();

    const std::vector<gate::NodeId> observed{probe.resultNode()};
    rep.collapse = collapseFaults(net, observed);
    const ScoapResult scoap = computeScoap(net, observed);

    // SCOAP summary over the whole universe.
    std::uint64_t finiteSum = 0;
    std::size_t finiteCount = 0;
    for (std::uint32_t s = 0; s < rep.collapse.totalSites; ++s) {
        const std::uint32_t d = scoap.difficulty(FaultSite::fromIndex(s));
        if (d >= scoapUnreachable) {
            ++rep.unreachableSites;
            continue;
        }
        finiteSum += d;
        ++finiteCount;
        rep.difficultyMax = std::max(rep.difficultyMax, d);
    }
    rep.difficultyMean = finiteCount == 0
        ? 0.0
        : static_cast<double>(finiteSum) /
            static_cast<double>(finiteCount);

    // Capture the workload pool fault-free.
    WorkloadGen gen(cfg.seed, cfg.alphabetBits);
    std::vector<GradedWorkload> pool;
    pool.reserve(cfg.workloads);
    for (std::size_t w = 0; w < cfg.workloads; ++w) {
        // Odd pool slots carry window-filling wildcard-free patterns
        // (when mixedLengths): they drive every column's compare
        // chain, which short patterns structurally cannot reach.
        const bool full = cfg.mixedLengths && w % 2 == 1;
        const std::size_t len = full
            ? std::min(cfg.cells, cfg.textLen)
            : cfg.patternLen;
        std::vector<Symbol> pattern =
            gen.randomPattern(len, full ? 0.0 : cfg.wildcardProb);
        std::vector<Symbol> text = gen.textWithPlants(
            cfg.textLen, pattern,
            std::max<std::size_t>(8, cfg.textLen / 3));
        pool.push_back(
            captureWorkload(cfg, std::move(pattern), std::move(text)));
        rep.totalObservations += pool.back().trace.observations;
        rep.workloadPatternLen.push_back(len);
    }
    rep.workloads = pool.size();

    // Simulate class representatives easiest-first: cheap-to-detect
    // classes drop out after the first workload and never cost
    // another lane (classic fault dropping, SCOAP-ordered).
    const std::vector<FaultSite> reps =
        rep.collapse.representativeSites();
    std::vector<std::uint32_t> order(reps.size());
    for (std::uint32_t c = 0; c < order.size(); ++c)
        order[c] = c;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                         return scoap.difficulty(reps[a]) <
                             scoap.difficulty(reps[b]);
                     });

    WordFaultSim sim(net);
    rep.classDetected.assign(reps.size(), 0);
    for (const GradedWorkload &w : pool) {
        const std::size_t before = rep.detectedClasses;
        std::vector<FaultSite> batch;
        std::vector<std::uint32_t> batchClasses;
        auto flush = [&]() {
            if (batch.empty())
                return;
            const WordFaultSim::BatchResult br =
                sim.run(w.trace, batch, w.goldenPerOp);
            for (std::size_t lane = 0; lane < batch.size(); ++lane) {
                if (!(br.detected & (1ULL << lane)))
                    continue;
                if (!rep.classDetected[batchClasses[lane]])
                    ++rep.detectedClasses;
                rep.classDetected[batchClasses[lane]] = 1;
            }
            ++rep.wordBatches;
            batch.clear();
            batchClasses.clear();
        };
        for (std::uint32_t cls : order) {
            if (rep.classDetected[cls])
                continue; // dropped
            batch.push_back(reps[cls]);
            batchClasses.push_back(cls);
            if (batch.size() == 64)
                flush();
        }
        flush();
        rep.workloadDetected.push_back(rep.detectedClasses - before);
    }
    rep.wordEvals = sim.wordEvals();

    for (std::uint32_t s = 0; s < rep.collapse.totalSites; ++s)
        rep.detectedSites +=
            rep.classDetected[rep.collapse.classOf[s]] ? 1 : 0;
    for (std::uint32_t cls = 0; cls < reps.size(); ++cls) {
        if (rep.classDetected[cls])
            continue;
        UndetectedFault u;
        u.site = reps[cls];
        u.name = u.site.describe(net);
        u.difficulty = scoap.difficulty(u.site);
        u.classId = cls;
        u.classSize = rep.collapse.classMembers(cls).size();
        rep.undetected.push_back(std::move(u));
    }
    std::stable_sort(rep.undetected.begin(), rep.undetected.end(),
                     [](const UndetectedFault &a,
                        const UndetectedFault &b) {
                         return a.difficulty > b.difficulty;
                     });

    // Randomized serial cross-check: the word-parallel verdict for a
    // sampled (class, workload) pair must equal the serial protocol
    // run's. Grading correctness rests on this agreement, so any
    // mismatch trips the flight recorder with the replayable case.
    if (cfg.crossCheckSamples > 0 && !reps.empty() && !pool.empty()) {
        Rng rng(cfg.crossCheckSeed);
        std::vector<std::vector<std::uint32_t>> byWorkload(pool.size());
        for (std::size_t k = 0; k < cfg.crossCheckSamples; ++k) {
            const auto cls = static_cast<std::uint32_t>(
                rng.nextBelow(reps.size()));
            const std::size_t w = rng.nextBelow(pool.size());
            byWorkload[w].push_back(cls);
        }
        for (std::size_t w = 0; w < pool.size(); ++w) {
            const std::vector<std::uint32_t> &classes = byWorkload[w];
            for (std::size_t at = 0; at < classes.size(); at += 64) {
                const std::size_t n =
                    std::min<std::size_t>(64, classes.size() - at);
                std::vector<FaultSite> batch;
                for (std::size_t i = 0; i < n; ++i)
                    batch.push_back(reps[classes[at + i]]);
                const WordFaultSim::BatchResult br = sim.run(
                    pool[w].trace, batch, pool[w].goldenPerOp);
                ++rep.wordBatches;
                for (std::size_t i = 0; i < n; ++i) {
                    const bool word =
                        (br.detected & (1ULL << i)) != 0;
                    const bool serial =
                        serialDetect(cfg, batch[i], pool[w]);
                    reg.counter("fault.grade.serial_checks").add();
                    ++rep.crossChecked;
                    if (word == serial)
                        continue;
                    ++rep.crossCheckMismatches;
                    telem::FlightEvent ev;
                    ev.kind = telem::FlightKind::CrossCheckMismatch;
                    ev.code = "fault.grade.crosscheck";
                    ev.caseId = telem::literalCaseId(
                        cfg.alphabetBits, pool[w].pattern,
                        pool[w].text);
                    ev.note = batch[i].describe(net) + " word=" +
                        (word ? "detected" : "undetected") +
                        " serial=" +
                        (serial ? "detected" : "undetected");
                    telem::FlightRecorder::global().trip(
                        "fault grading cross-check mismatch", ev);
                }
            }
        }
        rep.wordEvals = sim.wordEvals();
        reg.counter("fault.grade.crosscheck_mismatches")
            .add(rep.crossCheckMismatches);
    }

    // Telemetry rollup and the escape record: an undetected class is
    // a chip that could ship with that defect and still pass this
    // pattern pool, so the hardest escape is dumped replayably.
    reg.counter("fault.grade.sites").add(rep.collapse.totalSites);
    reg.counter("fault.grade.classes").add(rep.collapse.classCount);
    reg.counter("fault.grade.detected_classes").add(rep.detectedClasses);
    reg.counter("fault.grade.undetected_classes")
        .add(rep.undetected.size());
    reg.counter("fault.grade.word_batches").add(rep.wordBatches);
    reg.counter("fault.grade.word_evals").add(rep.wordEvals);
    if (!rep.undetected.empty() && !pool.empty()) {
        const UndetectedFault &hardest = rep.undetected.front();
        telem::FlightEvent ev;
        ev.kind = telem::FlightKind::Note;
        ev.code = "fault.grade.escape";
        ev.caseId = telem::literalCaseId(cfg.alphabetBits,
                                         pool.front().pattern,
                                         pool.front().text);
        char note[160];
        std::snprintf(note, sizeof note,
                      "%zu classes undetected; hardest %s "
                      "difficulty=%u",
                      rep.undetected.size(), hardest.name.c_str(),
                      hardest.difficulty);
        ev.note = note;
        telem::FlightRecorder::global().trip("fault grading escapes",
                                             ev);
    }

    return rep;
}

} // namespace spm::fault
