#include "fault/retry.hh"

#include <string>

namespace spm::fault
{

std::vector<bool>
HostRetryController::run(
    const std::function<std::vector<bool>()> &attempt,
    const std::function<bool(const std::vector<bool> &)> &verify)
{
    attempts = 0;
    backoffBeats = 0;
    for (unsigned a = 0; a <= policy.maxRetries; ++a) {
        if (a > 0)
            backoffBeats += policy.backoffBaseBeats << (a - 1);
        ++attempts;
        std::vector<bool> result = attempt();
        if (verify(result))
            return result;
    }
    throw RetryExhausted("match failed verification after " +
                         std::to_string(attempts) + " attempts (" +
                         std::to_string(backoffBeats) +
                         " backoff beats)");
}

} // namespace spm::fault
