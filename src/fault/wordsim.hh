/**
 * @file
 * Word-parallel (64-wide) stuck-at fault simulation.
 *
 * Serial fault grading re-runs the full match protocol once per
 * fault. This module instead runs 64 faulty chips at once: every
 * netlist node carries two 64-bit planes (bit k of `one` set when
 * lane k's node is H, bit k of `zero` when it is L, neither when X),
 * so one pass of bitwise gate evaluations advances 64 fault machines
 * together -- the classic parallel-pattern trick turned sideways into
 * parallel-fault form.
 *
 * Exactness is the whole point: the planes implement the same
 * three-valued algebra as gate/logic.hh, the settle loop mirrors
 * gate/levelized.cc (flat dirty-gated topological pass plus
 * event-driven relaxation of pass transistors and cyclic statics),
 * and the stimulus is not re-derived but *replayed* from an
 * InputTrace captured off a real fault-free protocol run via
 * gate::NetTap. Stuck-at faults become per-lane force masks applied
 * after every write to the faulty node, which is precisely
 * Netlist::forceStuckAt's ignore-all-writes contract. The fault
 * grader cross-checks lane verdicts against serial single-fault runs
 * and requires 100% agreement.
 */

#ifndef SPM_FAULT_WORDSIM_HH
#define SPM_FAULT_WORDSIM_HH

#include <cstdint>
#include <vector>

#include "fault/collapse.hh"
#include "gate/netlist.hh"

namespace spm::fault
{

/** One replayable stimulus event. */
struct TraceOp
{
    enum class Kind : std::uint8_t
    {
        SetInput, ///< external Netlist::setInput(node, v)
        Settle,   ///< a Netlist::settle() boundary
        Observe,  ///< protocol read of the result node (text position)
    };

    Kind kind = Kind::Settle;
    gate::NodeId node = gate::invalidNode; ///< SetInput only
    gate::LogicValue v = gate::LogicValue::X; ///< SetInput only
    std::uint32_t index = 0; ///< Observe only: text position
};

/**
 * An exact record of one protocol run against one chip: the settled
 * node values at capture start (right after construction, before any
 * fault is lowered) plus every stimulus event in order. Because the
 * feed schedule is data-independent, the fault-free trace is also
 * the stimulus every faulty twin of the chip receives.
 */
struct InputTrace
{
    std::vector<gate::LogicValue> initial; ///< per-node snapshot
    std::vector<TraceOp> ops;
    gate::NodeId resultNode = gate::invalidNode;
    bool resultInverted = false;
    std::size_t patternLen = 0; ///< for the i >= len-1 result masking
    std::size_t observations = 0;
    bool sawDecay = false; ///< retention failure during capture
};

/**
 * The gate::NetTap that fills an InputTrace. Install with
 * Netlist::setTap() right after snapshotting via begin(); Observe
 * events come from the protocol (GateLevelMatcher::setResultObserver)
 * through observe(), not through the netlist.
 */
class TraceRecorder : public gate::NetTap
{
  public:
    explicit TraceRecorder(InputTrace &trace) : tr(trace) {}

    /** Snapshot @p net's settled state and the observation contract. */
    void begin(const gate::Netlist &net, gate::NodeId result_node,
               bool result_inverted, std::size_t pattern_len);

    /** Record a protocol observation of the result node. */
    void observe(std::size_t index);

    void onSetInput(gate::NodeId node, gate::LogicValue v) override;
    void onSettle() override;
    void onDecay(gate::NodeId node) override;

  private:
    InputTrace &tr;
};

/**
 * The 64-wide simulator for one netlist structure. Construction
 * compiles the evaluation order (once per structure); run() replays a
 * trace with up to 64 faults forced, one per lane.
 */
class WordFaultSim
{
  public:
    explicit WordFaultSim(const gate::Netlist &net);

    struct BatchResult
    {
        /** Lane mask: lane k set when fault k was detected. */
        std::uint64_t detected = 0;
        /** Per lane, the first diverging observation index, or -1. */
        std::vector<std::int32_t> firstDiff;
    };

    /**
     * Replay @p trace with @p faults forced (lane k gets faults[k];
     * at most 64). @p golden_masked holds the fault-free masked
     * result bit per Observe op, in op order -- exactly the values
     * the protocol's match() returned. A lane is detected when any
     * of its masked observations differs from golden. An empty fault
     * list is the replay-fidelity probe: all 64 lanes run fault-free
     * and any detection is a simulator defect.
     */
    BatchResult run(const InputTrace &trace,
                    const std::vector<FaultSite> &faults,
                    const std::vector<std::uint8_t> &golden_masked);

    /** Word-wide device evaluations performed so far (effort). */
    std::uint64_t wordEvals() const { return evals; }

  private:
    bool writeNode(gate::NodeId node, std::uint64_t one,
                   std::uint64_t zero);
    bool evalOrdered(std::uint32_t dev_idx);
    bool evalFallback(std::uint32_t dev_idx);
    void settleWord();

    const gate::Netlist &net;
    std::size_t nodeCount;

    // Compiled structure (mirrors gate/levelized.cc).
    std::vector<std::uint32_t> topo;      ///< ordered static gates
    std::vector<std::uint8_t> isFallback; ///< pass gates, cyclic statics
    std::vector<std::vector<std::uint32_t>> fallbackFanout;

    // Per-run state.
    std::vector<std::uint64_t> one, zero;       ///< value planes
    std::vector<std::uint64_t> force1, force0;  ///< stuck lane masks
    std::vector<std::uint64_t> forceAny;        ///< force1 | force0
    std::vector<gate::NodeId> forcedNodes;
    std::vector<std::uint8_t> dirty; ///< per node
    std::vector<gate::NodeId> touched;
    std::vector<std::uint32_t> worklist; ///< fallback devices

    std::uint64_t evals = 0;
};

} // namespace spm::fault

#endif // SPM_FAULT_WORDSIM_HH
