#include "fault/bypass.hh"

#include <utility>

#include "util/logging.hh"

namespace spm::fault
{

BypassController::BypassController(flow::Wafer wafer_map)
    : map(std::move(wafer_map))
{
}

std::size_t
BypassController::availableCells() const
{
    return map.snakeHarvest().chainLength;
}

std::size_t
BypassController::retireCell(std::size_t cell)
{
    const auto sites = map.snakeSites();
    spm_assert(cell < sites.size(), "array cell ", cell,
               " beyond the harvested chain of ", sites.size());
    map.markBad(sites[cell].first, sites[cell].second);
    ++retired;
    return availableCells();
}

} // namespace spm::fault
