/**
 * @file
 * Host-side retry (recovery layer 2).
 *
 * The chip is a peripheral: the host still holds the text and the
 * pattern, so when a detection layer flags a run the cheapest remedy
 * is to run it again. Transient upsets do not recur, so one retry
 * usually clears them; a permanent fault keeps failing and the
 * bounded retry budget (with an exponential beat backoff modeling the
 * host's re-arbitration of the bus) ends in RetryExhausted, at which
 * point bypass reconfiguration (bypass.hh) is the remaining option.
 */

#ifndef SPM_FAULT_RETRY_HH
#define SPM_FAULT_RETRY_HH

#include <functional>
#include <stdexcept>
#include <vector>

#include "util/types.hh"

namespace spm::fault
{

/** Bounds on the host's retry loop. */
struct RetryPolicy
{
    /** Re-runs allowed after the initial failed attempt. */
    unsigned maxRetries = 3;
    /** Backoff before retry r is base << (r-1) beats. */
    Beat backoffBaseBeats = 16;
};

/** Raised when every allowed retry still failed verification. */
class RetryExhausted : public std::runtime_error
{
  public:
    explicit RetryExhausted(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {
    }
};

/**
 * Drives attempt/verify closures under a RetryPolicy. The controller
 * is protocol-agnostic: attempt() re-runs the match however the
 * caller likes (same array, spare array, degraded array) and
 * verify() applies whatever acceptance check the protection profile
 * affords (reference cross-check, or absence of detection signals).
 */
class HostRetryController
{
  public:
    explicit HostRetryController(RetryPolicy retry_policy = {})
        : policy(retry_policy)
    {
    }

    /**
     * Run attempt() until verify() accepts its result or the retry
     * budget is spent. The first attempt counts as attempt 1; only
     * subsequent ones are retries.
     *
     * @return the accepted result
     * @throws RetryExhausted when all attempts failed verification
     */
    std::vector<bool> run(
        const std::function<std::vector<bool>()> &attempt,
        const std::function<bool(const std::vector<bool> &)> &verify);

    /** Attempts made by the last run(), including the first. */
    unsigned lastAttempts() const { return attempts; }

    /** Total backoff beats the last run() spent waiting. */
    Beat lastBackoffBeats() const { return backoffBeats; }

  private:
    RetryPolicy policy;
    unsigned attempts = 0;
    Beat backoffBeats = 0;
};

} // namespace spm::fault

#endif // SPM_FAULT_RETRY_HH
