#include "fault/wordsim.hh"

#include "util/logging.hh"

namespace spm::fault
{

using gate::Device;
using gate::DeviceKind;
using gate::LogicValue;
using gate::NodeId;

void
TraceRecorder::begin(const gate::Netlist &net, NodeId result_node,
                     bool result_inverted, std::size_t pattern_len)
{
    tr.initial.clear();
    tr.initial.reserve(net.nodeCount());
    for (NodeId id = 0; id < net.nodeCount(); ++id)
        tr.initial.push_back(net.value(id));
    tr.ops.clear();
    tr.resultNode = result_node;
    tr.resultInverted = result_inverted;
    tr.patternLen = pattern_len;
    tr.observations = 0;
    tr.sawDecay = false;
}

void
TraceRecorder::observe(std::size_t index)
{
    TraceOp op;
    op.kind = TraceOp::Kind::Observe;
    op.index = static_cast<std::uint32_t>(index);
    tr.ops.push_back(op);
    ++tr.observations;
}

void
TraceRecorder::onSetInput(NodeId node, LogicValue v)
{
    TraceOp op;
    op.kind = TraceOp::Kind::SetInput;
    op.node = node;
    op.v = v;
    tr.ops.push_back(op);
}

void
TraceRecorder::onSettle()
{
    TraceOp op;
    op.kind = TraceOp::Kind::Settle;
    tr.ops.push_back(op);
}

void
TraceRecorder::onDecay(NodeId)
{
    // The match protocol never stalls the clock, so decay cannot fire
    // during capture; a trace that saw one is not replayable (the
    // word simulator has no decay model) and is refused by run().
    tr.sawDecay = true;
}

namespace
{

/** Broadcast a scalar logic value to the two planes of one lane set. */
void
broadcast(LogicValue v, std::uint64_t &one, std::uint64_t &zero)
{
    one = v == LogicValue::H ? ~0ULL : 0ULL;
    zero = v == LogicValue::L ? ~0ULL : 0ULL;
}

/**
 * Word-wide static gate evaluation on the two-plane encoding. Each
 * formula is the plane transcription of gate/logic.hh's three-valued
 * operator: a lane with neither plane bit set is X and stays X
 * exactly when the scalar algebra says so.
 */
void
evalStaticWord(DeviceKind kind, std::uint64_t a1, std::uint64_t a0,
               std::uint64_t b1, std::uint64_t b0, std::uint64_t &o1,
               std::uint64_t &o0)
{
    switch (kind) {
    case DeviceKind::Inverter:
        o1 = a0;
        o0 = a1;
        break;
    case DeviceKind::And2:
        o1 = a1 & b1;
        o0 = a0 | b0;
        break;
    case DeviceKind::Nand2:
        o1 = a0 | b0;
        o0 = a1 & b1;
        break;
    case DeviceKind::Or2:
        o1 = a1 | b1;
        o0 = a0 & b0;
        break;
    case DeviceKind::Nor2:
        o1 = a0 & b0;
        o0 = a1 | b1;
        break;
    case DeviceKind::Xor2:
        o1 = (a1 & b0) | (a0 & b1);
        o0 = (a1 & b1) | (a0 & b0);
        break;
    case DeviceKind::Xnor2:
        o1 = (a1 & b1) | (a0 & b0);
        o0 = (a1 & b0) | (a0 & b1);
        break;
    case DeviceKind::PassGate:
        spm_panic("evalStaticWord called on a pass transistor");
    }
}

} // namespace

WordFaultSim::WordFaultSim(const gate::Netlist &netlist)
    : net(netlist), nodeCount(netlist.nodeCount())
{
    const std::vector<Device> &devs = net.deviceList();
    const std::size_t nd = devs.size();

    // Reconstruct the per-node reader lists addNode/addGate built
    // (the netlist does not expose them; the construction rules are
    // part of its contract).
    std::vector<std::vector<std::uint32_t>> readers(nodeCount);
    for (std::uint32_t di = 0; di < nd; ++di) {
        const Device &d = devs[di];
        readers[d.inA].push_back(di);
        if (d.inB != gate::invalidNode && d.inB != d.inA)
            readers[d.inB].push_back(di);
        if (d.ctl != gate::invalidNode)
            readers[d.ctl].push_back(di);
    }

    // Kahn's algorithm over static-gate dependency edges, exactly as
    // gate/levelized.cc compiles them: a pass-transistor-driven or
    // primary input node is a boundary and contributes no edge.
    auto isStatic = [&](std::size_t d) {
        return devs[d].kind != DeviceKind::PassGate;
    };
    auto staticDriverOf = [&](NodeId node) -> std::int32_t {
        const std::int32_t drv = net.driverOf(node);
        if (drv >= 0 && isStatic(static_cast<std::size_t>(drv)))
            return drv;
        return -1;
    };
    std::vector<std::uint32_t> indegree(nd, 0);
    for (std::size_t d = 0; d < nd; ++d) {
        if (!isStatic(d))
            continue;
        if (staticDriverOf(devs[d].inA) >= 0)
            ++indegree[d];
        if (devs[d].inB != gate::invalidNode && devs[d].inB != devs[d].inA &&
            staticDriverOf(devs[d].inB) >= 0)
            ++indegree[d];
    }
    topo.reserve(nd);
    std::vector<std::uint32_t> ready;
    for (std::size_t d = 0; d < nd; ++d)
        if (isStatic(d) && indegree[d] == 0)
            ready.push_back(static_cast<std::uint32_t>(d));
    std::vector<std::uint8_t> ordered(nd, 0);
    while (!ready.empty()) {
        const std::uint32_t d = ready.back();
        ready.pop_back();
        topo.push_back(d);
        ordered[d] = 1;
        for (std::uint32_t consumer : readers[devs[d].out]) {
            if (!isStatic(consumer))
                continue;
            if (--indegree[consumer] == 0)
                ready.push_back(consumer);
        }
    }

    isFallback.assign(nd, 0);
    for (std::size_t d = 0; d < nd; ++d)
        if (!ordered[d])
            isFallback[d] = 1;

    fallbackFanout.resize(nodeCount);
    for (NodeId node = 0; node < nodeCount; ++node)
        for (std::uint32_t consumer : readers[node])
            if (isFallback[consumer])
                fallbackFanout[node].push_back(consumer);

    one.assign(nodeCount, 0);
    zero.assign(nodeCount, 0);
    force1.assign(nodeCount, 0);
    force0.assign(nodeCount, 0);
    forceAny.assign(nodeCount, 0);
    dirty.assign(nodeCount, 0);
}

bool
WordFaultSim::writeNode(NodeId node, std::uint64_t n1, std::uint64_t n0)
{
    // The force masks pin stuck lanes against every write -- the
    // word-parallel form of NodeState::stuck.
    const std::uint64_t any = forceAny[node];
    n1 = (n1 & ~any) | force1[node];
    n0 = (n0 & ~any) | force0[node];
    if (n1 == one[node] && n0 == zero[node])
        return false;
    one[node] = n1;
    zero[node] = n0;
    if (!dirty[node]) {
        dirty[node] = 1;
        touched.push_back(node);
    }
    for (std::uint32_t consumer : fallbackFanout[node])
        worklist.push_back(consumer);
    return true;
}

bool
WordFaultSim::evalOrdered(std::uint32_t dev_idx)
{
    ++evals;
    const Device &d = net.deviceList()[dev_idx];
    const NodeId nb = d.inB == gate::invalidNode ? d.inA : d.inB;
    std::uint64_t o1 = 0;
    std::uint64_t o0 = 0;
    // A one-input gate's unused plane pair mirrors the scalar path's
    // b = X (all-zero planes are harmless: the inverter ignores b).
    evalStaticWord(d.kind, one[d.inA], zero[d.inA],
                   d.inB == gate::invalidNode ? 0 : one[nb],
                   d.inB == gate::invalidNode ? 0 : zero[nb], o1, o0);
    return writeNode(d.out, o1, o0);
}

bool
WordFaultSim::evalFallback(std::uint32_t dev_idx)
{
    const Device &d = net.deviceList()[dev_idx];
    if (d.kind != DeviceKind::PassGate)
        return evalOrdered(dev_idx);
    ++evals;
    // Per lane: ctl high copies the source (refresh), ctl low holds
    // the stored planes, ctl X makes the stored value unknown --
    // bitwise-exactly Netlist::evaluateDevice's three arms.
    const std::uint64_t c1 = one[d.ctl];
    const std::uint64_t c0 = zero[d.ctl];
    const std::uint64_t o1 = (c1 & one[d.inA]) | (c0 & one[d.out]);
    const std::uint64_t o0 = (c1 & zero[d.inA]) | (c0 & zero[d.out]);
    return writeNode(d.out, o1, o0);
}

void
WordFaultSim::settleWord()
{
    const std::vector<Device> &devs = net.deviceList();
    const std::uint64_t round_limit = 64 + 4 * devs.size();
    const std::uint64_t eval_limit =
        64 + 16ULL * devs.size() * (devs.size() + 1);
    std::uint64_t rounds = 0;
    std::uint64_t fallback_steps = 0;
    for (;;) {
        bool changed = false;
        // Flat dirty-gated pass in producer-before-consumer order;
        // in-pass propagation reaches every ordered reader because
        // Kahn placed writers first.
        for (std::uint32_t d : topo) {
            const Device &dev = devs[d];
            if (!dirty[dev.inA] &&
                (dev.inB == gate::invalidNode || !dirty[dev.inB]))
                continue;
            changed |= evalOrdered(d);
        }
        for (NodeId node : touched)
            dirty[node] = 0;
        touched.clear();

        // Event-driven relaxation of pass transistors and cyclic
        // statics, same LIFO discipline as the scalar fallback.
        while (!worklist.empty()) {
            const std::uint32_t dev = worklist.back();
            worklist.pop_back();
            changed |= evalFallback(dev);
            spm_assert(++fallback_steps <= eval_limit,
                       "word netlist failed to settle (oscillating "
                       "feedback?)");
        }

        if (!changed)
            break;
        spm_assert(++rounds <= round_limit,
                   "word netlist failed to settle after ", rounds,
                   " rounds");
    }
    for (NodeId node : touched)
        dirty[node] = 0;
    touched.clear();
}

WordFaultSim::BatchResult
WordFaultSim::run(const InputTrace &trace,
                  const std::vector<FaultSite> &faults,
                  const std::vector<std::uint8_t> &golden_masked)
{
    spm_assert(faults.size() <= 64, "a batch holds at most 64 faults");
    spm_assert(trace.initial.size() == nodeCount,
               "trace captured from a different netlist structure");
    spm_assert(!trace.sawDecay,
               "trace saw charge decay; not replayable word-parallel");
    spm_assert(golden_masked.size() == trace.observations,
               "golden verdicts must match the trace's observations");

    // With no faults every lane is the fault-free chip, and checking
    // all 64 against golden turns the run into a pure replay-fidelity
    // probe: any detection is a simulator bug, not a fault.
    const std::uint64_t lanes = faults.empty() || faults.size() == 64
        ? ~0ULL
        : (1ULL << faults.size()) - 1;

    // Fresh per-run state: planes from the capture snapshot, no dirt.
    for (NodeId node = 0; node < nodeCount; ++node)
        broadcast(trace.initial[node], one[node], zero[node]);
    for (NodeId node : forcedNodes) {
        force1[node] = 0;
        force0[node] = 0;
        forceAny[node] = 0;
    }
    forcedNodes.clear();
    worklist.clear();
    for (NodeId node : touched)
        dirty[node] = 0;
    touched.clear();

    for (std::size_t lane = 0; lane < faults.size(); ++lane) {
        const FaultSite &f = faults[lane];
        spm_assert(f.node < nodeCount, "fault site out of range");
        const std::uint64_t bit = 1ULL << lane;
        if (forceAny[f.node] == 0)
            forcedNodes.push_back(f.node);
        (f.stuckAt1 ? force1 : force0)[f.node] |= bit;
        forceAny[f.node] |= bit;
    }
    // Lower the faults exactly as forceStuckAt does: pin the value
    // now, schedule the fanout, and let the protocol's next settle
    // propagate it (settling early here could sample a pass gate the
    // stimulus is about to close).
    for (NodeId node : forcedNodes)
        writeNode(node, one[node], zero[node]);

    BatchResult res;
    res.firstDiff.assign(faults.empty() ? 64 : faults.size(), -1);
    std::size_t obs = 0;
    for (const TraceOp &op : trace.ops) {
        switch (op.kind) {
        case TraceOp::Kind::SetInput: {
            std::uint64_t n1 = 0;
            std::uint64_t n0 = 0;
            broadcast(op.v, n1, n0);
            writeNode(op.node, n1, n0);
            break;
        }
        case TraceOp::Kind::Settle:
            settleWord();
            break;
        case TraceOp::Kind::Observe: {
            const NodeId rn = trace.resultNode;
            // Positive-logic result bit per lane: known && value,
            // which on planes is simply the plane matching the
            // polarity (a set plane bit implies known).
            const std::uint64_t val =
                trace.resultInverted ? zero[rn] : one[rn];
            const std::uint64_t masked =
                op.index + 1 >= trace.patternLen ? val : 0;
            const std::uint64_t gold =
                golden_masked[obs] ? ~0ULL : 0ULL;
            const std::uint64_t diff = (masked ^ gold) & lanes;
            if (diff) {
                std::uint64_t fresh = diff & ~res.detected;
                while (fresh) {
                    const int lane = __builtin_ctzll(fresh);
                    res.firstDiff[static_cast<std::size_t>(lane)] =
                        static_cast<std::int32_t>(op.index);
                    fresh &= fresh - 1;
                }
                res.detected |= diff;
            }
            ++obs;
            break;
        }
        }
    }
    spm_assert(obs == trace.observations, "trace replay desynchronized");
    return res;
}

} // namespace spm::fault
