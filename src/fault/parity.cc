#include "fault/parity.hh"

#include "core/hostbus.hh"
#include "util/logging.hh"

namespace spm::fault
{

StreamParityChecker::StreamParityChecker(BitWidth char_bits)
    : bits(char_bits)
{
    spm_assert(char_bits >= 1 && char_bits <= 16,
               "character width must be in [1,16]");
}

void
StreamParityChecker::onFeed(Symbol sym)
{
    inFlight.push_back(core::HostBusModel::parityBit(sym, bits));
}

void
StreamParityChecker::onExit(Symbol sym)
{
    spm_assert(!inFlight.empty(),
               "character left the array that was never fed");
    const bool expected = inFlight.front();
    inFlight.pop_front();
    ++nChecked;
    if (core::HostBusModel::parityBit(sym, bits) != expected)
        ++nErrors;
}

} // namespace spm::fault
