/**
 * @file
 * Lowering faults onto the simulators.
 *
 * A Fault names a character cell and a latch point; each simulator
 * fidelity has its own notion of where that latch physically lives.
 * FaultInjector carries the abstract fault list and, attached to a
 * systolic::Engine through a fidelity-specific CellResolver, corrupts
 * the addressed latches in the injection window between commit and
 * the next evaluate (Engine::onAfterCommit) -- exactly the visibility
 * a hardware upset of a committed latch would have.
 *
 * For the gate-level simulator there is no Engine; permanent faults
 * lower instead onto netlist nodes as classic stuck-at faults
 * (Netlist::forceStuckAt) via lowerStuckAtFaults().
 */

#ifndef SPM_FAULT_INJECTOR_HH
#define SPM_FAULT_INJECTOR_HH

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "fault/model.hh"
#include "systolic/engine.hh"
#include "util/types.hh"

namespace spm::core
{
class BehavioralChip;
class BitSerialChip;
class GateChip;
} // namespace spm::core

namespace spm::fault
{

/**
 * A fault list named a site the active chip does not have: a cell
 * beyond the array, a bit beyond the latch width, or (gate level) a
 * node name absent from the netlist. Injection used to clamp or skip
 * such sites silently, which grades a fault that was never actually
 * injected; now every lowering path validates first and throws.
 */
class InvalidFaultSite : public std::runtime_error
{
  public:
    explicit InvalidFaultSite(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {
    }
};

/**
 * Replays a fault list against a running engine. Permanent faults are
 * re-applied after every commit (a stuck wire corrupts every beat);
 * transients fire on their strike beat only; DeadCell expands to
 * Stuck0 on every latch point of its cell, every beat -- the cell's
 * compute logic is dead but its latches still clock, so the global
 * choreography (token validity) is undisturbed.
 *
 * The injector must outlive any engine stepping after attach().
 * Injection throws InvalidFaultSite (from the engine step that first
 * replays the list) when a fault addresses a bit outside the latch
 * width or the resolver maps it outside the engine.
 */
class FaultInjector
{
  public:
    /**
     * Maps a fault (character cell + latch point) to the engine cell
     * index holding that latch at this fidelity.
     */
    using CellResolver = std::function<std::size_t(const Fault &)>;

    /** @param sym_bits bits per symbol latch (DeadCell expansion). */
    explicit FaultInjector(BitWidth sym_bits) : symBits(sym_bits) {}

    void addFault(const Fault &f) { faults.push_back(f); }
    void clear() { faults.clear(); }
    const std::vector<Fault> &faultList() const { return faults; }

    /**
     * Register the injection hook on @p eng. May be called for
     * several engines (e.g. re-runs build fresh chips); each engine
     * sees the current fault list on every beat.
     */
    void attach(systolic::Engine &eng, CellResolver resolver);

    /** Latch corruptions actually landed so far. */
    std::uint64_t injections() const { return hits; }

  private:
    void injectOne(systolic::Engine &eng, const CellResolver &resolver,
                   const Fault &f, Beat beat);
    void applyAt(systolic::Engine &eng, const CellResolver &resolver,
                 const Fault &f, systolic::FaultOp op);

    BitWidth symBits;
    std::vector<Fault> faults;
    std::uint64_t hits = 0;
};

/**
 * Resolver for the character-level behavioral chip. Throws
 * InvalidFaultSite for a cell beyond the array.
 */
FaultInjector::CellResolver behavioralResolver(
    const core::BehavioralChip &chip);

/**
 * Resolver for the bit-serial grid: symbol-latch faults land on the
 * comparator row carrying the addressed bit (bit b lives in row
 * bits-1-b; the MSB enters row 0), compare-latch faults on the bottom
 * row whose d output feeds the accumulators. Throws InvalidFaultSite
 * for a cell beyond the array or a symbol bit beyond the grid's rows.
 */
FaultInjector::CellResolver bitSerialResolver(
    const core::BitSerialChip &chip);

/**
 * Lower the permanent faults of @p faults onto @p chip's netlist as
 * stuck-at nodes (transients are skipped: the gate simulator has no
 * per-beat injection hook). The stuck level is the physical node
 * level; with the checkerboard of polarity twins the logical polarity
 * alternates per cell, which leaves the fault a genuine stuck-at
 * either way. Returns the number of nodes forced.
 *
 * Throws InvalidFaultSite when a permanent fault addresses a cell or
 * bit the chip does not have, or when the derived wire name is absent
 * from the netlist -- a silently unforced node would grade as a fault
 * that was never injected.
 */
std::size_t lowerStuckAtFaults(core::GateChip &chip,
                               const std::vector<Fault> &faults);

} // namespace spm::fault

#endif // SPM_FAULT_INJECTOR_HH
