#include "fault/campaign.hh"

#include <algorithm>
#include <memory>

#include "core/behavioral.hh"
#include "core/bitserial.hh"
#include "core/gatechip.hh"
#include "core/multipass.hh"
#include "core/reference.hh"
#include "fault/bypass.hh"
#include "fault/injector.hh"
#include "fault/parity.hh"
#include "telemetry/metrics.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace spm::fault
{

const char *
outcomeName(Outcome outcome)
{
    switch (outcome) {
    case Outcome::Masked:
        return "masked";
    case Outcome::Detected:
        return "detected";
    case Outcome::Corrected:
        return "corrected";
    case Outcome::Silent:
        return "silent";
    }
    return "?";
}

std::string
TrialResult::detectors() const
{
    std::string s;
    auto add = [&s](const char *name) {
        if (!s.empty())
            s += "+";
        s += name;
    };
    if (parityFlag)
        add("parity");
    if (selfCheckFlag)
        add("selfcheck");
    if (tmrFlag)
        add("tmr");
    if (referenceFlag)
        add("reference");
    return s.empty() ? "-" : s;
}

FaultCampaign::FaultCampaign(CampaignConfig config) : cfg(config)
{
    spm_assert(cfg.cells > 0, "campaign needs at least one cell");
    spm_assert(cfg.patternLen >= 1 && cfg.patternLen <= cfg.cells,
               "campaign pattern must fit the array");
    spm_assert(cfg.patternLen <= cfg.textLen,
               "campaign pattern longer than the text");
    spm_assert(static_cast<std::size_t>(cfg.waferRows) * cfg.waferCols >=
                   cfg.cells,
               "wafer has fewer sites than the array has cells");

    WorkloadGen gen(cfg.seed, cfg.alphabetBits);
    pattern = gen.randomPattern(cfg.patternLen, cfg.wildcardProb);
    text = gen.textWithPlants(cfg.textLen, pattern,
                              std::max<std::size_t>(cfg.textLen / 4, 1));
    golden = core::ReferenceMatcher().match(text, pattern);
}

Beat
FaultCampaign::protocolBeats() const
{
    return core::ChipFeedPlan(cfg.cells, pattern, text.size())
        .totalBeats();
}

FaultCampaign::Observation
FaultCampaign::protectedRun(const Fault *f, const Protection &prot) const
{
    const std::size_t n = text.size();
    const std::size_t len = pattern.size();
    Observation obs;
    obs.result.assign(n, false);

    const std::size_t lanes = prot.tmr ? 3 : 1;
    const auto variant = prot.selfCheck
        ? core::BehavioralChip::CellVariant::SelfChecking
        : core::BehavioralChip::CellVariant::Plain;

    // Declared before the chips so the injection hooks its attach()
    // registers never outlive it.
    FaultInjector inj(cfg.alphabetBits);
    if (f)
        inj.addFault(*f);

    std::vector<std::unique_ptr<core::BehavioralChip>> chips;
    chips.reserve(lanes);
    for (std::size_t l = 0; l < lanes; ++l)
        chips.push_back(std::make_unique<core::BehavioralChip>(
            cfg.cells, prototypeBeatPs, variant));
    // Lane 0 is the faulty lane; TMR lanes 1 and 2 stay clean, so a
    // single faulty array is always outvoted.
    inj.attach(chips[0]->engine(), behavioralResolver(*chips[0]));

    StreamParityChecker patChk(cfg.alphabetBits);
    StreamParityChecker strChk(cfg.alphabetBits);

    const core::ChipFeedPlan plan(cfg.cells, pattern, n);
    std::size_t collected = 0;
    Beat beat = 0;
    for (; beat < plan.totalBeats() && collected < n; ++beat) {
        const core::PatToken p = plan.patternAt(beat);
        const core::CtlToken c = plan.controlAt(beat);
        const core::StrToken s = plan.stringAt(beat, text);
        const core::ResToken rslot = plan.resultAt(beat);
        for (auto &chip : chips) {
            chip->feedPattern(p);
            chip->feedControl(c);
            chip->feedString(s);
            chip->feedResult(rslot);
            chip->step();
        }

        if (prot.parity) {
            // The host computes parity at the near edge; the far edge
            // recomputes it when the character re-emerges.
            if (p.valid)
                patChk.onFeed(p.sym);
            if (s.valid)
                strChk.onFeed(s.sym);
            const core::PatToken po = chips[0]->patternOut();
            if (po.valid)
                patChk.onExit(po.sym);
            const core::StrToken so = chips[0]->stringOut();
            if (so.valid)
                strChk.onExit(so.sym);
        }

        core::ResToken out = chips[0]->resultOut();
        if (lanes == 3 && out.valid) {
            // Faults never touch validity (the clock choreography),
            // so the three lanes agree on when a result is present
            // and the vote is over the value bit alone.
            const bool v0 = out.value;
            const bool v1 = chips[1]->resultOut().value;
            const bool v2 = chips[2]->resultOut().value;
            const bool voted = int(v0) + int(v1) + int(v2) >= 2;
            if (v0 != voted || v1 != voted || v2 != voted)
                ++obs.tmrDisagreements;
            out.value = voted;
        }
        if (out.valid) {
            obs.result[collected] = collected >= len - 1 && out.value;
            ++collected;
        }
    }
    spm_assert(collected == n, "campaign collected ", collected, " of ",
               n, " results after ", beat, " beats");

    obs.parityErrors = patChk.errors() + strChk.errors();
    obs.selfCheckErrors = chips[0]->selfCheckMismatches();
    return obs;
}

TrialResult
FaultCampaign::runTrial(const Fault &f)
{
    const TrialResult tr = classifyTrial(f);

    // Campaign counters live on the shared telemetry registry (one
    // namespace with the engine, service and grading metrics) instead
    // of ad-hoc members, so a snapshot mid-campaign shows trial
    // progress and every recovery layer's activity.
    telem::Registry &reg = telem::Registry::global();
    reg.counter("fault.campaign.trials").add();
    reg.counter(std::string("fault.campaign.outcome.") +
                outcomeName(tr.outcome))
        .add();
    if (tr.parityFlag)
        reg.counter("fault.campaign.flag.parity").add();
    if (tr.selfCheckFlag)
        reg.counter("fault.campaign.flag.selfcheck").add();
    if (tr.tmrFlag)
        reg.counter("fault.campaign.flag.tmr").add();
    if (tr.referenceFlag)
        reg.counter("fault.campaign.flag.reference").add();
    if (tr.attempts > 1)
        reg.counter("fault.campaign.retry_attempts")
            .add(tr.attempts - 1);
    reg.counter("fault.campaign.backoff_beats").add(tr.backoffBeats);
    if (tr.degradedCells > 0)
        reg.counter("fault.campaign.bypass_runs").add();
    return tr;
}

TrialResult
FaultCampaign::classifyTrial(const Fault &f)
{
    TrialResult tr;
    tr.fault = f;

    Observation obs = protectedRun(&f, cfg.protection);
    tr.parityFlag = obs.parityErrors > 0;
    tr.selfCheckFlag = obs.selfCheckErrors > 0;
    tr.tmrFlag = obs.tmrDisagreements > 0;
    const bool correct = obs.result == golden;
    tr.referenceFlag = cfg.protection.referenceCheck && !correct;
    const bool signaled = tr.parityFlag || tr.selfCheckFlag ||
                          tr.tmrFlag || tr.referenceFlag;

    if (correct) {
        if (!signaled)
            tr.outcome = Outcome::Masked;
        else if (tr.tmrFlag)
            // The voter actively overrode the faulty lane.
            tr.outcome = Outcome::Corrected;
        else
            tr.outcome = Outcome::Detected;
        return tr;
    }

    if (!signaled) {
        tr.outcome = Outcome::Silent;
        return tr;
    }

    // Flagged and wrong: recovery layers, cheapest first.
    if (cfg.protection.retry) {
        HostRetryController retry(cfg.retryPolicy);
        Observation last;
        auto attempt = [&] {
            // A transient upset does not recur on the re-run; a
            // permanent fault does.
            last = protectedRun(f.isPermanent() ? &f : nullptr,
                                cfg.protection);
            return last.result;
        };
        auto verify = [&](const std::vector<bool> &r) {
            if (cfg.protection.referenceCheck)
                return r == golden;
            return last.parityErrors == 0 && last.selfCheckErrors == 0 &&
                   last.tmrDisagreements == 0;
        };
        try {
            retry.run(attempt, verify);
            tr.attempts += retry.lastAttempts();
            tr.backoffBeats = retry.lastBackoffBeats();
            tr.outcome = Outcome::Corrected;
            return tr;
        } catch (const RetryExhausted &) {
            tr.attempts += retry.lastAttempts();
            tr.backoffBeats = retry.lastBackoffBeats();
        }
    }

    if (cfg.protection.bypass && f.isPermanent()) {
        // Retire the faulty cell's wafer site and re-harvest: the
        // machine degrades to the surviving chain (or holds its size
        // when the wafer has spare sites) and the match is re-run on
        // the reconfigured array through the multipass driver.
        BypassController bp(
            flow::Wafer(cfg.waferRows, cfg.waferCols, 0.0, cfg.seed));
        const std::size_t chain = bp.retireCell(f.cell);
        const std::size_t degraded = std::min(cfg.cells, chain);
        if (degraded > 0) {
            core::MultipassMatcher degradedArray(degraded);
            const std::vector<bool> r =
                degradedArray.match(text, pattern);
            ++tr.attempts;
            tr.degradedCells = degraded;
            if (!cfg.protection.referenceCheck || r == golden) {
                tr.outcome = Outcome::Corrected;
                return tr;
            }
        }
    }

    if (cfg.strictRetry)
        throw RetryExhausted("fault not recovered: " + f.describe());
    // The answer is wrong but flagged -- the host knows not to trust
    // it, which is the contract Detected records.
    tr.outcome = Outcome::Detected;
    return tr;
}

std::vector<TrialResult>
FaultCampaign::run(const std::vector<Fault> &faults)
{
    std::vector<TrialResult> results;
    results.reserve(faults.size());
    for (const Fault &f : faults)
        results.push_back(runTrial(f));
    return results;
}

Outcome
FaultCampaign::runReferenceChecked(Fidelity fidelity, const Fault &f)
{
    FaultInjector inj(cfg.alphabetBits);
    inj.addFault(f);

    std::vector<bool> r;
    switch (fidelity) {
    case Fidelity::Behavioral: {
        Protection ref_only = Protection::none();
        ref_only.referenceCheck = true;
        r = protectedRun(&f, ref_only).result;
        break;
    }
    case Fidelity::BitSerial: {
        core::BitSerialMatcher matcher(cfg.cells, cfg.alphabetBits);
        matcher.setChipPrep([&inj](core::BitSerialChip &chip) {
            inj.attach(chip.engine(), bitSerialResolver(chip));
        });
        r = matcher.match(text, pattern);
        break;
    }
    case Fidelity::GateLevel: {
        core::GateLevelMatcher matcher(cfg.cells, cfg.alphabetBits);
        matcher.setChipPrep([&inj](core::GateChip &chip) {
            lowerStuckAtFaults(chip, inj.faultList());
        });
        r = matcher.match(text, pattern);
        break;
    }
    }
    return r == golden ? Outcome::Masked : Outcome::Detected;
}

double
FaultCampaign::Summary::detectedOrCorrectedPct() const
{
    const std::size_t eff = effective();
    if (eff == 0)
        return 100.0;
    return 100.0 * static_cast<double>(detected + corrected) /
           static_cast<double>(eff);
}

double
FaultCampaign::Summary::silentPct() const
{
    if (total == 0)
        return 0.0;
    return 100.0 * static_cast<double>(silent) /
           static_cast<double>(total);
}

FaultCampaign::Summary
FaultCampaign::summarize(const std::vector<TrialResult> &results)
{
    Summary s;
    s.total = results.size();
    for (const TrialResult &tr : results) {
        switch (tr.outcome) {
        case Outcome::Masked:
            ++s.masked;
            break;
        case Outcome::Detected:
            ++s.detected;
            break;
        case Outcome::Corrected:
            ++s.corrected;
            break;
        case Outcome::Silent:
            ++s.silent;
            break;
        }
    }
    return s;
}

Table
FaultCampaign::coverageTable(const std::vector<TrialResult> &results,
                             const std::string &title)
{
    Table t(title);
    t.setHeader({"fault kind", "injected", "masked", "detected",
                 "corrected", "silent", "det+corr % (effective)"});

    const FaultKind kinds[] = {
        FaultKind::StuckAt0,
        FaultKind::StuckAt1,
        FaultKind::DeadCell,
        FaultKind::TransientFlip,
    };
    Summary all;
    all.total = results.size();
    for (FaultKind k : kinds) {
        std::vector<TrialResult> of_kind;
        for (const TrialResult &tr : results)
            if (tr.fault.kind == k)
                of_kind.push_back(tr);
        if (of_kind.empty())
            continue;
        const Summary s = summarize(of_kind);
        all.masked += s.masked;
        all.detected += s.detected;
        all.corrected += s.corrected;
        all.silent += s.silent;
        t.addRowOf(faultKindName(k), s.total, s.masked, s.detected,
                   s.corrected, s.silent,
                   Table::fixed(s.detectedOrCorrectedPct(), 1));
    }
    t.addRowOf("all", all.total, all.masked, all.detected, all.corrected,
               all.silent, Table::fixed(all.detectedOrCorrectedPct(), 1));
    return t;
}

} // namespace spm::fault
