/**
 * @file
 * Chip-scale stuck-at fault grading.
 *
 * FaultGrader ties the pieces into the classic test-engineering
 * pipeline the fabricated prototype would have gone through:
 *
 *   1. structural collapsing (fault/collapse.hh) shrinks the 2-per-
 *      node stuck-at universe to equivalence-class representatives;
 *   2. SCOAP scoring (fault/scoap.hh) ranks every site by detection
 *      difficulty -- easy classes are simulated first so detected
 *      ones drop out of later workloads, and the surviving
 *      undetected list comes back hardest-first with its scores;
 *   3. a pool of seeded match workloads is captured once, fault-free,
 *      as replayable stimulus traces (fault/wordsim.hh);
 *   4. the word-parallel simulator grades 64 representatives per
 *      replay against each trace; a class is detected when any lane
 *      observation differs from the golden protocol output;
 *   5. a randomized sample of (class, workload) verdicts is
 *      cross-checked against serial single-fault protocol runs --
 *      the two paths must agree 100%.
 *
 * Undetected classes are the chip's test escapes: the grader trips
 * the flight recorder with a replayable case ID naming the hardest
 * one, and all counts land on the telemetry registry.
 */

#ifndef SPM_FAULT_GRADE_HH
#define SPM_FAULT_GRADE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fault/collapse.hh"
#include "fault/scoap.hh"
#include "fault/wordsim.hh"
#include "util/types.hh"

namespace spm::fault
{

/** Chip shape, workload pool and cross-check policy for one grading. */
struct GradeConfig
{
    std::size_t cells = 8;     ///< array size (the 1979 prototype)
    BitWidth alphabetBits = 2; ///< bits per character
    std::size_t patternLen = 4;
    std::size_t textLen = 48;
    std::size_t workloads = 4; ///< pattern/text pairs in the pool
    double wildcardProb = 0.25;
    /**
     * Alternate the pool between patternLen and full-array-length
     * patterns (without wildcards). Short wildcarded patterns leave
     * the right-hand columns' compare chains unexercised -- the
     * grading report surfaces exactly those nets as hard-to-test --
     * so a production pool mixes in window-filling patterns.
     */
    bool mixedLengths = true;
    std::uint64_t seed = 1979;
    /** (class, workload) verdict pairs re-run serially; 0 disables. */
    std::size_t crossCheckSamples = 64;
    std::uint64_t crossCheckSeed = 7;
};

/** One captured workload: stimulus trace plus golden verdicts. */
struct GradedWorkload
{
    std::vector<Symbol> pattern;
    std::vector<Symbol> text;
    std::vector<bool> golden; ///< fault-free protocol output
    InputTrace trace;
    /** golden[op.index] per Observe op, in trace op order. */
    std::vector<std::uint8_t> goldenPerOp;
};

/**
 * Run the fault-free match protocol for (@p pattern, @p text) on the
 * configured chip and capture it as a replayable workload.
 */
GradedWorkload captureWorkload(const GradeConfig &cfg,
                               std::vector<Symbol> pattern,
                               std::vector<Symbol> text);

/**
 * Serial single-fault reference: force @p site stuck, run the full
 * protocol, report whether the output differs from the workload's
 * golden result. This is the path the word simulator must agree with
 * (and the slow baseline bench_e16_faultgrade measures against).
 */
bool serialDetect(const GradeConfig &cfg, const FaultSite &site,
                  const GradedWorkload &workload);

/** One surviving (undetected) fault class, for the escape report. */
struct UndetectedFault
{
    FaultSite site;        ///< class representative
    std::string name;      ///< site.describe() at grade time
    std::uint32_t difficulty = 0; ///< SCOAP detection difficulty
    std::uint32_t classId = 0;
    std::size_t classSize = 0; ///< universe sites sharing the verdict
};

/** Everything one grading run learned. */
struct GradeReport
{
    // Chip structure.
    std::size_t nodes = 0;
    std::size_t devices = 0;
    unsigned transistors = 0;

    CollapseResult collapse;

    // SCOAP summary over the fault universe.
    std::uint32_t difficultyMax = 0; ///< over finite-difficulty sites
    double difficultyMean = 0.0;     ///< over finite-difficulty sites
    std::size_t unreachableSites = 0; ///< saturated difficulty

    // Workload pool.
    std::size_t workloads = 0;
    std::size_t totalObservations = 0;
    /**
     * Classes newly detected by each workload, in pool order -- the
     * pattern-ranking view: a workload detecting nothing new adds no
     * test value against this universe.
     */
    std::vector<std::size_t> workloadDetected;
    std::vector<std::size_t> workloadPatternLen;

    // Grading results (per equivalence class, class id order).
    std::vector<std::uint8_t> classDetected;
    std::size_t detectedClasses = 0;
    std::size_t detectedSites = 0; ///< expanded through the classes
    std::vector<UndetectedFault> undetected; ///< hardest first

    // Effort.
    std::uint64_t wordBatches = 0;
    std::uint64_t wordEvals = 0;

    // Cross-check.
    std::size_t crossChecked = 0;
    std::size_t crossCheckMismatches = 0;

    /** Detected share of equivalence classes, %. */
    double classCoverage() const;
    /** Detected share of the uncollapsed universe, %. */
    double siteCoverage() const;

    /**
     * The deterministic human-readable report (tools/fault_grade and
     * the committed golden); lists at most @p top undetected faults.
     */
    std::string renderText(std::size_t top = 10) const;
};

/** Runs the grading pipeline for one configuration. */
class FaultGrader
{
  public:
    explicit FaultGrader(GradeConfig config) : cfg(config) {}

    const GradeConfig &config() const { return cfg; }

    GradeReport run();

  private:
    GradeConfig cfg;
};

} // namespace spm::fault

#endif // SPM_FAULT_GRADE_HH
