/**
 * @file
 * Fault models and deterministic fault-list generators.
 *
 * Section 5 treats fabrication defects: cells that never worked and
 * are routed around at harvest time. A machine in service also
 * suffers *runtime* faults -- a latch whose output wire shorts to
 * power or ground (stuck-at), a comparator that dies outright (dead
 * cell), or a particle strike flipping one latched bit for one beat
 * (transient). Fault enumerates a single such injection; the sweep
 * generators build the exhaustive (or, for transients, seeded-random)
 * fault lists a campaign replays one at a time.
 *
 * A Fault addresses the *character cell* (array column), not an
 * engine cell index: the same fault list is lowered onto the
 * behavioral array, the bit-serial grid, or the gate-level netlist by
 * fidelity-specific resolvers (injector.hh).
 */

#ifndef SPM_FAULT_MODEL_HH
#define SPM_FAULT_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "systolic/fault.hh"
#include "util/types.hh"

namespace spm::fault
{

/** The runtime failure modes the campaign injects. */
enum class FaultKind : unsigned char
{
    StuckAt0,      ///< permanent: addressed latch bit reads 0
    StuckAt1,      ///< permanent: addressed latch bit reads 1
    TransientFlip, ///< one latched bit inverted on one beat
    DeadCell,      ///< permanent: every output of the cell stuck at 0
};

/** Printable name of a fault kind. */
const char *faultKindName(FaultKind kind);

/**
 * One fault to inject: what (kind), where (character cell, latch
 * point, bit within the latched value) and -- for transients -- when.
 */
struct Fault
{
    FaultKind kind = FaultKind::StuckAt0;
    systolic::FaultPoint point = systolic::FaultPoint::CompareLatch;
    /** Character cell (array column) the fault lives in. */
    std::size_t cell = 0;
    /** Bit within the latched value (symbol bit, or 0/1 = lambda/x). */
    unsigned bit = 0;
    /** Strike beat; meaningful for TransientFlip only. */
    Beat beat = 0;

    /** True for faults that persist for the whole run. */
    bool isPermanent() const { return kind != FaultKind::TransientFlip; }

    /**
     * The latch corruption this fault applies on a beat it is active
     * (DeadCell expands to Stuck0 on every point; see FaultInjector).
     */
    systolic::FaultOp op() const;

    /** Human-readable one-liner, e.g. "stuck-at-1 cmp3 pattern bit0". */
    std::string describe() const;
};

/**
 * Exhaustive single-stuck-at fault list over an array of @p cells
 * character cells with @p sym_bits bits per symbol latch: both stuck
 * polarities on every bit of the pattern and string latches, the
 * comparison latch, both control bits and the result latch of every
 * cell.
 */
std::vector<Fault> sweepStuckAtFaults(std::size_t cells,
                                      BitWidth sym_bits);

/** One DeadCell fault per character cell. */
std::vector<Fault> sweepDeadCellFaults(std::size_t cells);

/**
 * @p count seeded-random single-beat transient flips across cells,
 * latch points, bits and strike beats in [1, @p max_beat].
 */
std::vector<Fault> sweepTransientFaults(std::size_t cells,
                                        BitWidth sym_bits, Beat max_beat,
                                        std::size_t count,
                                        std::uint64_t seed);

} // namespace spm::fault

#endif // SPM_FAULT_MODEL_HH
