#include "fault/scoap.hh"

#include <algorithm>

#include "util/logging.hh"

namespace spm::fault
{

using gate::Device;
using gate::DeviceKind;
using gate::NodeId;

namespace
{

std::uint32_t
satAdd(std::uint32_t a, std::uint32_t b)
{
    const std::uint64_t s =
        static_cast<std::uint64_t>(a) + static_cast<std::uint64_t>(b);
    return s >= scoapUnreachable ? scoapUnreachable
                                 : static_cast<std::uint32_t>(s);
}

std::uint32_t
satAdd(std::uint32_t a, std::uint32_t b, std::uint32_t c)
{
    return satAdd(satAdd(a, b), c);
}

bool
lower(std::uint32_t &slot, std::uint32_t candidate)
{
    if (candidate >= slot)
        return false;
    slot = candidate;
    return true;
}

} // namespace

std::uint32_t
ScoapResult::difficulty(const FaultSite &site) const
{
    // Detect n stuck-at-v: force the opposite value, then observe.
    return satAdd(control(site.node, !site.stuckAt1), co[site.node]);
}

ScoapResult
computeScoap(const gate::Netlist &net,
             const std::vector<NodeId> &observed)
{
    const std::size_t nn = net.nodeCount();
    const std::vector<Device> &devs = net.deviceList();

    ScoapResult r;
    r.cc0.assign(nn, scoapUnreachable);
    r.cc1.assign(nn, scoapUnreachable);
    r.co.assign(nn, scoapUnreachable);

    // Primary inputs (and undriven nodes, which only a tester could
    // set) cost one assignment for either value.
    for (NodeId node = 0; node < nn; ++node) {
        if (net.isInputNode(node) || net.driverOf(node) < 0) {
            r.cc0[node] = 1;
            r.cc1[node] = 1;
        }
    }

    // Forward controllability relaxation. Values only decrease, so
    // the fixpoint exists and is reached in at most one round per
    // node on the longest cost-improving path; the bound below is a
    // safety net for the cyclic regions.
    const std::size_t round_limit = 16 + 2 * devs.size();
    bool changed = true;
    while (changed) {
        spm_assert(++r.controlRounds <= round_limit,
                   "SCOAP controllability failed to converge");
        changed = false;
        for (const Device &d : devs) {
            const std::uint32_t a0 = r.cc0[d.inA];
            const std::uint32_t a1 = r.cc1[d.inA];
            const NodeId nb = d.inB == gate::invalidNode ? d.inA : d.inB;
            const std::uint32_t b0 = r.cc0[nb];
            const std::uint32_t b1 = r.cc1[nb];
            std::uint32_t o0 = scoapUnreachable;
            std::uint32_t o1 = scoapUnreachable;
            switch (d.kind) {
            case DeviceKind::Inverter:
                o0 = satAdd(a1, 1);
                o1 = satAdd(a0, 1);
                break;
            case DeviceKind::Nand2:
                o0 = satAdd(a1, b1, 1);
                o1 = satAdd(std::min(a0, b0), 1);
                break;
            case DeviceKind::Nor2:
                o1 = satAdd(a0, b0, 1);
                o0 = satAdd(std::min(a1, b1), 1);
                break;
            case DeviceKind::And2:
                o1 = satAdd(a1, b1, 1);
                o0 = satAdd(std::min(a0, b0), 1);
                break;
            case DeviceKind::Or2:
                o0 = satAdd(a0, b0, 1);
                o1 = satAdd(std::min(a1, b1), 1);
                break;
            case DeviceKind::Xor2:
                o1 = satAdd(std::min(satAdd(a1, b0), satAdd(a0, b1)), 1);
                o0 = satAdd(std::min(satAdd(a0, b0), satAdd(a1, b1)), 1);
                break;
            case DeviceKind::Xnor2:
                o0 = satAdd(std::min(satAdd(a1, b0), satAdd(a0, b1)), 1);
                o1 = satAdd(std::min(satAdd(a0, b0), satAdd(a1, b1)), 1);
                break;
            case DeviceKind::PassGate:
                // Data passes only while the clock is high.
                o0 = satAdd(a0, r.cc1[d.ctl], 1);
                o1 = satAdd(a1, r.cc1[d.ctl], 1);
                break;
            }
            changed |= lower(r.cc0[d.out], o0);
            changed |= lower(r.cc1[d.out], o1);
        }
    }

    // Backward observability relaxation from the observed outputs.
    for (NodeId node : observed) {
        spm_assert(node < nn, "observed node out of range");
        r.co[node] = 0;
    }
    changed = true;
    while (changed) {
        spm_assert(++r.observeRounds <= round_limit,
                   "SCOAP observability failed to converge");
        changed = false;
        for (const Device &d : devs) {
            const std::uint32_t co_out = r.co[d.out];
            if (co_out >= scoapUnreachable)
                continue;
            switch (d.kind) {
            case DeviceKind::Inverter:
                changed |= lower(r.co[d.inA], satAdd(co_out, 1));
                break;
            case DeviceKind::Nand2:
            case DeviceKind::And2:
                // Propagating through requires the other input at its
                // non-controlling value 1.
                changed |= lower(r.co[d.inA],
                                 satAdd(co_out, r.cc1[d.inB], 1));
                changed |= lower(r.co[d.inB],
                                 satAdd(co_out, r.cc1[d.inA], 1));
                break;
            case DeviceKind::Nor2:
            case DeviceKind::Or2:
                changed |= lower(r.co[d.inA],
                                 satAdd(co_out, r.cc0[d.inB], 1));
                changed |= lower(r.co[d.inB],
                                 satAdd(co_out, r.cc0[d.inA], 1));
                break;
            case DeviceKind::Xor2:
            case DeviceKind::Xnor2:
                // Either value of the other input propagates.
                changed |= lower(
                    r.co[d.inA],
                    satAdd(co_out,
                           std::min(r.cc0[d.inB], r.cc1[d.inB]), 1));
                changed |= lower(
                    r.co[d.inB],
                    satAdd(co_out,
                           std::min(r.cc0[d.inA], r.cc1[d.inA]), 1));
                break;
            case DeviceKind::PassGate:
                // The source is visible while the clock is high; the
                // clock itself is visible when the stored and passed
                // values can be made to differ (approximated by the
                // cheaper source value).
                changed |= lower(r.co[d.inA],
                                 satAdd(co_out, r.cc1[d.ctl], 1));
                changed |= lower(
                    r.co[d.ctl],
                    satAdd(co_out,
                           std::min(r.cc0[d.inA], r.cc1[d.inA]), 1));
                break;
            }
        }
    }

    return r;
}

} // namespace spm::fault
