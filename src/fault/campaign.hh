/**
 * @file
 * The fault-injection campaign runner.
 *
 * One campaign fixes a seeded workload (text, pattern, golden result
 * from core/reference) and replays a fault list against it, one fault
 * per trial, under a configurable protection profile:
 *
 *   detection  - bus-character parity (parity.hh), duplicated
 *                comparators (SelfCheckingComparatorCell), TMR lane
 *                disagreement (tmr voting), and the host's software
 *                cross-check against the reference matcher;
 *   recovery   - TMR voting in place, bounded host retry with beat
 *                backoff (retry.hh), and spare-cell bypass through
 *                the wafer snake (bypass.hh).
 *
 * Every trial is classified:
 *
 *   Masked    - no detection signal and the result is correct: the
 *               fault had no observable effect (e.g. a latch bit
 *               stuck at the value it already carried);
 *   Detected  - a detection layer flagged the run; the final answer
 *               is correct without invoking recovery, or recovery was
 *               unavailable/exhausted and the wrong answer is at
 *               least flagged, never trusted;
 *   Corrected - a detection layer flagged the run and a recovery
 *               layer (vote, retry or bypass) produced the correct
 *               answer;
 *   Silent    - the worst case: wrong answer, no signal.
 *
 * Coverage is summarized over *effective* injections (total minus
 * masked), the standard denominator for fault-injection campaigns:
 * a masked fault is indistinguishable from no fault at all.
 */

#ifndef SPM_FAULT_CAMPAIGN_HH
#define SPM_FAULT_CAMPAIGN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fault/model.hh"
#include "fault/retry.hh"
#include "util/table.hh"
#include "util/types.hh"

namespace spm::fault
{

/** Classification of one fault-injection trial. */
enum class Outcome : unsigned char
{
    Masked,
    Detected,
    Corrected,
    Silent,
};

/** Printable name of an outcome. */
const char *outcomeName(Outcome outcome);

/** Simulator fidelity a campaign trial runs against. */
enum class Fidelity : unsigned char
{
    Behavioral,
    BitSerial,
    GateLevel,
};

/** Which detection and recovery layers are armed for a trial. */
struct Protection
{
    bool parity = true;         ///< bus-character parity check
    bool selfCheck = true;      ///< duplicated comparators
    bool tmr = true;            ///< three lanes, 2-of-3 vote
    bool referenceCheck = true; ///< host software cross-check
    bool retry = true;          ///< bounded host re-run
    bool bypass = true;         ///< wafer snake re-harvest

    /** Everything off: the unprotected baseline. */
    static Protection none()
    {
        return {false, false, false, false, false, false};
    }
};

/** Workload, protection profile and recovery limits of a campaign. */
struct CampaignConfig
{
    std::size_t cells = 8;       ///< array size (the 1979 prototype)
    BitWidth alphabetBits = 2;   ///< bits per character
    std::size_t textLen = 48;
    std::size_t patternLen = 4;
    double wildcardProb = 0.25;
    std::uint64_t seed = 1979;
    Protection protection;
    RetryPolicy retryPolicy;
    /** Throw RetryExhausted instead of classifying Detected. */
    bool strictRetry = false;
    /** Wafer backing the array; sites >= cells. Default: no spares. */
    unsigned waferRows = 2;
    unsigned waferCols = 4;
};

/** What happened on one injected fault. */
struct TrialResult
{
    Fault fault;
    Outcome outcome = Outcome::Masked;
    bool parityFlag = false;
    bool selfCheckFlag = false;
    bool tmrFlag = false;
    bool referenceFlag = false;
    /** Full protocol runs spent, including the first. */
    unsigned attempts = 1;
    /** Backoff beats the retry controller charged. */
    Beat backoffBeats = 0;
    /** Array size after bypass recovery; 0 when bypass never ran. */
    std::size_t degradedCells = 0;

    /** "parity+tmr" style list of the layers that flagged the run. */
    std::string detectors() const;
};

/** Replays fault lists against one seeded workload. */
class FaultCampaign
{
  public:
    explicit FaultCampaign(CampaignConfig config);

    const CampaignConfig &config() const { return cfg; }
    const std::vector<Symbol> &textData() const { return text; }
    const std::vector<Symbol> &patternData() const { return pattern; }
    const std::vector<bool> &goldenResult() const { return golden; }

    /** Beats one protocol run takes; the transient strike window. */
    Beat protocolBeats() const;

    /**
     * Inject @p f into a full protected run and classify it. Trial
     * activity also lands on the global telemetry registry as
     * fault.campaign.* counters (trials, per-outcome counts, detector
     * flags, retry attempts and backoff beats, bypass runs) -- the
     * campaign keeps no ad-hoc counter state of its own.
     */
    TrialResult runTrial(const Fault &f);

    /** runTrial over a whole list, in order. */
    std::vector<TrialResult> run(const std::vector<Fault> &faults);

    /**
     * Portability check: run @p f at any fidelity with every layer
     * off except the reference cross-check. Returns Masked when the
     * faulty run still matches the golden result, Detected otherwise.
     * Gate level covers permanent faults only (transients would need
     * a per-beat hook the netlist does not expose); a transient at
     * gate level therefore reports Masked.
     */
    Outcome runReferenceChecked(Fidelity fidelity, const Fault &f);

    /** Aggregate counts over a result list. */
    struct Summary
    {
        std::size_t total = 0;
        std::size_t masked = 0;
        std::size_t detected = 0;
        std::size_t corrected = 0;
        std::size_t silent = 0;

        /** Injections with an observable effect. */
        std::size_t effective() const { return total - masked; }

        /** Detected-or-corrected share of effective injections, %. */
        double detectedOrCorrectedPct() const;

        /** Silent-corruption share of all injections, %. */
        double silentPct() const;
    };

    static Summary summarize(const std::vector<TrialResult> &results);

    /**
     * Coverage table: one row per fault kind plus a total row, with
     * outcome counts and the detected-or-corrected percentage over
     * effective injections.
     */
    static Table coverageTable(const std::vector<TrialResult> &results,
                               const std::string &title);

  private:
    /** Signals observed on one full protocol run. */
    struct Observation
    {
        std::vector<bool> result;
        std::uint64_t parityErrors = 0;
        std::uint64_t selfCheckErrors = 0;
        std::uint64_t tmrDisagreements = 0;
    };

    Observation protectedRun(const Fault *f,
                             const Protection &prot) const;

    /** runTrial minus the telemetry rollup. */
    TrialResult classifyTrial(const Fault &f);

    CampaignConfig cfg;
    std::vector<Symbol> text;
    std::vector<Symbol> pattern;
    std::vector<bool> golden;
};

} // namespace spm::fault

#endif // SPM_FAULT_CAMPAIGN_HH
