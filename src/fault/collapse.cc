#include "fault/collapse.hh"

#include <algorithm>

#include "util/logging.hh"

namespace spm::fault
{

using gate::Device;
using gate::DeviceKind;
using gate::NodeId;

std::string
FaultSite::describe(const gate::Netlist &net) const
{
    return net.nodeName(node) + (stuckAt1 ? "/sa1" : "/sa0");
}

double
CollapseResult::simRatio() const
{
    return classCount == 0
        ? 1.0
        : static_cast<double>(totalSites) / static_cast<double>(classCount);
}

double
CollapseResult::primeRatio() const
{
    return primeCount == 0
        ? 1.0
        : static_cast<double>(totalSites) / static_cast<double>(primeCount);
}

std::vector<std::uint32_t>
CollapseResult::classMembers(std::uint32_t cls) const
{
    std::vector<std::uint32_t> members;
    for (std::uint32_t s = 0; s < classOf.size(); ++s)
        if (classOf[s] == cls)
            members.push_back(s);
    return members;
}

std::vector<FaultSite>
CollapseResult::representativeSites() const
{
    std::vector<FaultSite> sites;
    sites.reserve(representative.size());
    for (std::uint32_t rep : representative)
        sites.push_back(FaultSite::fromIndex(rep));
    return sites;
}

namespace
{

/** Union-find over site indices keeping the minimum index as root. */
class SiteUnion
{
  public:
    explicit SiteUnion(std::size_t n) : parent(n)
    {
        for (std::uint32_t i = 0; i < n; ++i)
            parent[i] = i;
    }

    std::uint32_t find(std::uint32_t s)
    {
        while (parent[s] != s) {
            parent[s] = parent[parent[s]]; // path halving
            s = parent[s];
        }
        return s;
    }

    void unite(std::uint32_t a, std::uint32_t b)
    {
        a = find(a);
        b = find(b);
        if (a == b)
            return;
        if (a > b)
            std::swap(a, b);
        parent[b] = a; // the smaller index stays canonical
    }

  private:
    std::vector<std::uint32_t> parent;
};

std::uint32_t
siteIndex(NodeId node, bool sa1)
{
    return FaultSite{node, sa1}.index();
}

} // namespace

CollapseResult
collapseFaults(const gate::Netlist &net,
               const std::vector<NodeId> &observed)
{
    const std::size_t nn = net.nodeCount();
    CollapseResult r;
    r.totalSites = 2 * nn;

    std::vector<std::uint8_t> isObserved(nn, 0);
    for (NodeId node : observed) {
        spm_assert(node < nn, "observed node out of range");
        isObserved[node] = 1;
    }

    // An input net is fanout-free for its gate when that gate is the
    // only reader and the tester cannot see the net directly. Faults
    // on such a net act only through the gate, which is what makes
    // the input/output merges below indistinguishable.
    auto fanoutFree = [&](NodeId in) {
        return net.readerCount(in) == 1 && !isObserved[in];
    };

    SiteUnion uf(r.totalSites);
    r.dominated.assign(r.totalSites, 0);

    for (const Device &d : net.deviceList()) {
        switch (d.kind) {
        case DeviceKind::Inverter:
            if (fanoutFree(d.inA)) {
                uf.unite(siteIndex(d.inA, false), siteIndex(d.out, true));
                uf.unite(siteIndex(d.inA, true), siteIndex(d.out, false));
            }
            break;
        case DeviceKind::Nand2:
        case DeviceKind::Nor2:
        case DeviceKind::And2:
        case DeviceKind::Or2: {
            // Controlling input value c and the output value it forces.
            const bool c =
                d.kind == DeviceKind::Nor2 || d.kind == DeviceKind::Or2;
            const bool forced =
                d.kind == DeviceKind::Nand2 || d.kind == DeviceKind::Or2;
            bool any_free = false;
            for (NodeId in : {d.inA, d.inB}) {
                if (!fanoutFree(in))
                    continue;
                any_free = true;
                uf.unite(siteIndex(in, c), siteIndex(d.out, forced));
                if (d.inB == d.inA)
                    break;
            }
            // Output stuck at the forced value merged above; output
            // stuck at the opposite value is dominated by any input
            // stuck at the non-controlling value (every test for the
            // input fault drives the output to the forced value and
            // observes it). Only a test-generation drop: the fault
            // stays simulated.
            if (any_free)
                r.dominated[siteIndex(d.out, !forced)] = 1;
            break;
        }
        case DeviceKind::Xor2:
        case DeviceKind::Xnor2:
            // No controlling value: every single stuck input is
            // distinguishable from every stuck output. Nothing
            // collapses (pinned down by the property tests).
            break;
        case DeviceKind::PassGate:
            // A dynamic sampling element, not a Boolean gate: a stuck
            // source differs from a stuck storage node whenever the
            // clock is low, and a stuck clock is its own fault class.
            break;
        }
    }

    // Compact the union-find roots into dense class ids, ordered by
    // canonical (minimum) site index so the numbering is stable.
    r.classOf.assign(r.totalSites, 0);
    std::vector<std::int32_t> classIdOfRoot(r.totalSites, -1);
    for (std::uint32_t s = 0; s < r.totalSites; ++s) {
        const std::uint32_t root = uf.find(s);
        if (classIdOfRoot[root] < 0) {
            classIdOfRoot[root] =
                static_cast<std::int32_t>(r.representative.size());
            r.representative.push_back(root);
        }
        r.classOf[s] = static_cast<std::uint32_t>(classIdOfRoot[root]);
    }
    r.classCount = r.representative.size();

    // A class leaves the prime (test-generation) set only when every
    // member is dominance-dropped.
    std::vector<std::uint8_t> classAllDominated(r.classCount, 1);
    for (std::uint32_t s = 0; s < r.totalSites; ++s)
        if (!r.dominated[s])
            classAllDominated[r.classOf[s]] = 0;
    r.primeCount = 0;
    for (std::uint8_t all_dom : classAllDominated)
        r.primeCount += all_dom ? 0 : 1;

    return r;
}

} // namespace spm::fault
