#include "fault/model.hh"

#include "util/logging.hh"
#include "util/rng.hh"

namespace spm::fault
{

using systolic::FaultOp;
using systolic::FaultPoint;

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::StuckAt0:
        return "stuck-at-0";
    case FaultKind::StuckAt1:
        return "stuck-at-1";
    case FaultKind::TransientFlip:
        return "transient";
    case FaultKind::DeadCell:
        return "dead-cell";
    }
    return "?";
}

namespace
{

const char *
pointName(FaultPoint point)
{
    switch (point) {
    case FaultPoint::PatternLatch:
        return "pattern";
    case FaultPoint::StringLatch:
        return "string";
    case FaultPoint::CompareLatch:
        return "compare";
    case FaultPoint::ControlLatch:
        return "control";
    case FaultPoint::ResultLatch:
        return "result";
    }
    return "?";
}

} // namespace

FaultOp
Fault::op() const
{
    switch (kind) {
    case FaultKind::StuckAt1:
        return FaultOp::Stuck1;
    case FaultKind::TransientFlip:
        return FaultOp::Flip;
    case FaultKind::StuckAt0:
    case FaultKind::DeadCell:
        break;
    }
    return FaultOp::Stuck0;
}

std::string
Fault::describe() const
{
    std::string s = faultKindName(kind);
    s += " cell" + std::to_string(cell);
    if (kind == FaultKind::DeadCell)
        return s;
    s += " ";
    s += pointName(point);
    s += " bit" + std::to_string(bit);
    if (kind == FaultKind::TransientFlip)
        s += " @beat" + std::to_string(beat);
    return s;
}

std::vector<Fault>
sweepStuckAtFaults(std::size_t cells, BitWidth sym_bits)
{
    spm_assert(cells > 0, "fault sweep over an empty array");
    spm_assert(sym_bits >= 1 && sym_bits <= 16,
               "symbol width must be in [1,16]");
    std::vector<Fault> list;
    const FaultKind kinds[] = {FaultKind::StuckAt0, FaultKind::StuckAt1};
    for (std::size_t c = 0; c < cells; ++c) {
        for (FaultKind k : kinds) {
            for (unsigned b = 0; b < sym_bits; ++b) {
                list.push_back({k, FaultPoint::PatternLatch, c, b, 0});
                list.push_back({k, FaultPoint::StringLatch, c, b, 0});
            }
            list.push_back({k, FaultPoint::CompareLatch, c, 0, 0});
            // Control bit 0 is lambda, bit 1 the wild-card bit x.
            list.push_back({k, FaultPoint::ControlLatch, c, 0, 0});
            list.push_back({k, FaultPoint::ControlLatch, c, 1, 0});
            list.push_back({k, FaultPoint::ResultLatch, c, 0, 0});
        }
    }
    return list;
}

std::vector<Fault>
sweepDeadCellFaults(std::size_t cells)
{
    spm_assert(cells > 0, "fault sweep over an empty array");
    std::vector<Fault> list;
    for (std::size_t c = 0; c < cells; ++c)
        list.push_back({FaultKind::DeadCell, FaultPoint::CompareLatch, c,
                        0, 0});
    return list;
}

std::vector<Fault>
sweepTransientFaults(std::size_t cells, BitWidth sym_bits, Beat max_beat,
                     std::size_t count, std::uint64_t seed)
{
    spm_assert(cells > 0, "fault sweep over an empty array");
    spm_assert(max_beat > 0, "transient sweep needs a beat range");
    Rng rng(seed);
    const FaultPoint points[] = {
        FaultPoint::PatternLatch, FaultPoint::StringLatch,
        FaultPoint::CompareLatch, FaultPoint::ControlLatch,
        FaultPoint::ResultLatch,
    };
    std::vector<Fault> list;
    list.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        Fault f;
        f.kind = FaultKind::TransientFlip;
        f.point = points[rng.nextBelow(std::size(points))];
        f.cell = rng.nextBelow(cells);
        switch (f.point) {
        case FaultPoint::PatternLatch:
        case FaultPoint::StringLatch:
            f.bit = static_cast<unsigned>(rng.nextBelow(sym_bits));
            break;
        case FaultPoint::ControlLatch:
            f.bit = static_cast<unsigned>(rng.nextBelow(2));
            break;
        default:
            f.bit = 0;
            break;
        }
        f.beat = 1 + rng.nextBelow(max_beat);
        list.push_back(f);
    }
    return list;
}

} // namespace spm::fault
