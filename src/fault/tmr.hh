/**
 * @file
 * Triple modular redundancy over whole arrays (recovery layer 1).
 *
 * The linear array is cheap enough per cell ("a simple, regular
 * design with few types of cells") that the classic von Neumann
 * remedy applies at the system level: run three arrays on the same
 * streams and let the host vote 2-of-3 on each result bit. A single
 * faulty array is outvoted in place -- the match completes with no
 * retry -- and any disagreement doubles as a detection signal
 * localizing the faulty lane.
 */

#ifndef SPM_FAULT_TMR_HH
#define SPM_FAULT_TMR_HH

#include <cstdint>
#include <memory>

#include "core/matcher.hh"

namespace spm::fault
{

/**
 * Matcher-level TMR: runs three matchers on every match() call and
 * returns the bitwise majority. Matchers may be of different
 * fidelities (e.g. two behavioral lanes voting against a gate-level
 * one); a disagreement count per lane is kept for diagnosis.
 */
class TmrMatcher : public core::Matcher
{
  public:
    TmrMatcher(std::unique_ptr<core::Matcher> lane0,
               std::unique_ptr<core::Matcher> lane1,
               std::unique_ptr<core::Matcher> lane2);

    std::vector<bool> match(const std::vector<Symbol> &text,
                            const std::vector<Symbol> &pattern) override;

    std::string name() const override;

    /** Positions where any lane was outvoted on the last match(). */
    std::uint64_t lastDisagreements() const { return disagreements; }

    /** Positions where lane @p i was outvoted on the last match(). */
    std::uint64_t lastLaneErrors(std::size_t i) const;

  private:
    std::unique_ptr<core::Matcher> lanes[3];
    std::uint64_t laneErrors[3] = {0, 0, 0};
    std::uint64_t disagreements = 0;
};

} // namespace spm::fault

#endif // SPM_FAULT_TMR_HH
