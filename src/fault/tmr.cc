#include "fault/tmr.hh"

#include "util/logging.hh"

namespace spm::fault
{

TmrMatcher::TmrMatcher(std::unique_ptr<core::Matcher> lane0,
                       std::unique_ptr<core::Matcher> lane1,
                       std::unique_ptr<core::Matcher> lane2)
    : lanes{std::move(lane0), std::move(lane1), std::move(lane2)}
{
    for (const auto &lane : lanes)
        spm_assert(lane != nullptr, "TMR needs three lanes");
}

std::vector<bool>
TmrMatcher::match(const std::vector<Symbol> &text,
                  const std::vector<Symbol> &pattern)
{
    std::vector<bool> r[3];
    for (std::size_t i = 0; i < 3; ++i) {
        r[i] = lanes[i]->match(text, pattern);
        laneErrors[i] = 0;
    }
    disagreements = 0;
    spm_assert(r[0].size() == r[1].size() && r[1].size() == r[2].size(),
               "TMR lanes returned different result lengths");

    std::vector<bool> voted(r[0].size());
    for (std::size_t i = 0; i < voted.size(); ++i) {
        const int ones = int(r[0][i]) + int(r[1][i]) + int(r[2][i]);
        const bool v = ones >= 2;
        voted[i] = v;
        bool any = false;
        for (std::size_t lane = 0; lane < 3; ++lane) {
            if (r[lane][i] != v) {
                ++laneErrors[lane];
                any = true;
            }
        }
        disagreements += any;
    }
    return voted;
}

std::string
TmrMatcher::name() const
{
    return "tmr(" + lanes[0]->name() + "," + lanes[1]->name() + "," +
           lanes[2]->name() + ")";
}

std::uint64_t
TmrMatcher::lastLaneErrors(std::size_t i) const
{
    spm_assert(i < 3, "lane index out of range");
    return laneErrors[i];
}

} // namespace spm::fault
