/**
 * @file
 * Bus-character parity checking (detection layer 1).
 *
 * With HostBusModel parity enabled, the host appends an even-parity
 * bit to every character it feeds; the character streams are pure
 * shift registers, so each character re-emerges at the far edge of
 * the array in feed order, parity bit riding along. The checker
 * recomputes parity there: any odd number of corrupted payload bits
 * picked up in transit -- a stuck or flipped symbol-latch bit --
 * raises a parity error. The parity bit is priced into the bus demand
 * by HostBusModel::busBitsPerChar().
 */

#ifndef SPM_FAULT_PARITY_HH
#define SPM_FAULT_PARITY_HH

#include <cstdint>
#include <deque>

#include "util/types.hh"

namespace spm::fault
{

/**
 * End-to-end parity check over one character stream. onFeed() records
 * the parity bit the host computed at the near edge; onExit() pops it
 * when the character reappears at the far edge and compares against
 * the parity of what actually arrived.
 */
class StreamParityChecker
{
  public:
    /** @param char_bits payload bits per character, in [1, 16]. */
    explicit StreamParityChecker(BitWidth char_bits);

    /** A valid character entered the stream. */
    void onFeed(Symbol sym);

    /** A valid character left the stream at the far edge. */
    void onExit(Symbol sym);

    /** Characters checked at the far edge so far. */
    std::uint64_t checked() const { return nChecked; }

    /** Parity mismatches seen so far. */
    std::uint64_t errors() const { return nErrors; }

  private:
    BitWidth bits;
    /** Parity bits of characters still inside the array, feed order. */
    std::deque<bool> inFlight;
    std::uint64_t nChecked = 0;
    std::uint64_t nErrors = 0;
};

} // namespace spm::fault

#endif // SPM_FAULT_PARITY_HH
