/**
 * @file
 * Structural stuck-at fault collapsing over the gate-level netlist.
 *
 * The single-stuck-at universe of a netlist is two faults per node
 * (stuck-at-0, stuck-at-1). Before any simulation the universe is
 * shrunk structurally, the classic ATPG preprocessing step:
 *
 *   equivalence  two faults no test can distinguish collapse into one
 *                class and only a representative is simulated. For a
 *                gate whose input net is fanout-free (read by that
 *                gate alone and not directly observed), a controlling
 *                stuck value on the input is indistinguishable from
 *                the corresponding stuck output: NAND input s-a-0 ==
 *                output s-a-1, NOR input s-a-1 == output s-a-0, AND
 *                input s-a-0 == output s-a-0, OR input s-a-1 ==
 *                output s-a-1, and an inverter merges both polarities
 *                of its fanout-free input with its output. XOR/XNOR
 *                have no controlling value and collapse nothing --
 *                the property tests pin that down. Classes are closed
 *                transitively (union-find), so an inverter chain
 *                collapses end to end.
 *
 *   dominance    fault f dominates g when every test detecting g also
 *                detects f; f can then be dropped from a *test
 *                generation* target list (covering g covers f). With
 *                a fanout-free input present, a NAND output s-a-0 is
 *                dominated away by the input s-a-1 faults, and dually
 *                for NOR/AND/OR. Unlike equivalence this does not
 *                preserve per-fault verdicts, so dominance-dropped
 *                faults stay in the simulated universe and are only
 *                excluded from the prime (test-generation) count.
 *
 * Pass transistors are dynamic sampling elements, not Boolean gates;
 * no rule fires across them and their storage nodes keep both faults.
 */

#ifndef SPM_FAULT_COLLAPSE_HH
#define SPM_FAULT_COLLAPSE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "gate/netlist.hh"

namespace spm::fault
{

/** One structural stuck-at fault site: a netlist node and a level. */
struct FaultSite
{
    gate::NodeId node = gate::invalidNode;
    bool stuckAt1 = false;

    /** The forced logic level. */
    gate::LogicValue level() const
    {
        return stuckAt1 ? gate::LogicValue::H : gate::LogicValue::L;
    }

    /** Index within the 2-per-node universe. */
    std::uint32_t index() const { return node * 2 + (stuckAt1 ? 1 : 0); }

    /** Inverse of index(). */
    static FaultSite fromIndex(std::uint32_t idx)
    {
        return {idx / 2, (idx & 1) != 0};
    }

    bool operator==(const FaultSite &o) const
    {
        return node == o.node && stuckAt1 == o.stuckAt1;
    }

    /** "s_o1_3/sa0" style one-liner (needs the owning netlist). */
    std::string describe(const gate::Netlist &net) const;
};

/** The collapsed view of a netlist's stuck-at universe. */
struct CollapseResult
{
    /** Site index -> equivalence class id (dense, 0-based). */
    std::vector<std::uint32_t> classOf;
    /** Class id -> representative site index. */
    std::vector<std::uint32_t> representative;
    /** Site index -> true when dominance drops it from the prime set. */
    std::vector<std::uint8_t> dominated;

    std::size_t totalSites = 0;
    std::size_t classCount = 0;
    /** Representatives that survive dominance dropping. */
    std::size_t primeCount = 0;

    /** Universe-to-simulated shrink factor (total / classes). */
    double simRatio() const;
    /** Universe-to-test-target shrink factor (total / primes). */
    double primeRatio() const;

    /** All members of class @p cls, as site indices. */
    std::vector<std::uint32_t> classMembers(std::uint32_t cls) const;

    /** Representative sites, one per class, in class order. */
    std::vector<FaultSite> representativeSites() const;
};

/**
 * Collapse the stuck-at universe of @p net. Nodes in @p observed are
 * directly visible to the tester and never merge with their driver's
 * or reader's faults.
 */
CollapseResult collapseFaults(const gate::Netlist &net,
                              const std::vector<gate::NodeId> &observed);

} // namespace spm::fault

#endif // SPM_FAULT_COLLAPSE_HH
