/**
 * @file
 * SCOAP testability analysis (Goldstein's controllability /
 * observability measures) over the gate-level netlist.
 *
 * For every node three scores are computed:
 *
 *   CC0 / CC1  combinational 0- / 1-controllability: the least number
 *              of node assignments needed to force the node to 0 / 1
 *              from the primary inputs (inputs cost 1);
 *   CO         combinational observability: the least number of node
 *              assignments needed to propagate the node's value to an
 *              observed output (observed outputs cost 0).
 *
 * The scores are relaxed to a fixpoint (minimum over all computation
 * paths) rather than evaluated in one topological sweep, because the
 * chip's recirculating shift registers close cycles through pass
 * transistors. Pass transistors contribute their clock's
 * 1-controllability on both the controllability and observability
 * paths: data only moves while the clock is high.
 *
 * A stuck-at fault's detection difficulty is the classic sum
 *   difficulty(n stuck-at-v) = CC(!v at n) + CO(n)
 * (force the opposite value, then observe it), saturating at
 * scoapUnreachable when either term is unreachable. The fault grader
 * ranks undetected faults by this score and orders its pattern pool
 * evaluation with it.
 */

#ifndef SPM_FAULT_SCOAP_HH
#define SPM_FAULT_SCOAP_HH

#include <cstdint>
#include <vector>

#include "fault/collapse.hh"
#include "gate/netlist.hh"

namespace spm::fault
{

/** Score meaning "no computed way to control / observe the node". */
inline constexpr std::uint32_t scoapUnreachable = 0x3FFFFFFF;

/** SCOAP scores for every node of one netlist. */
struct ScoapResult
{
    std::vector<std::uint32_t> cc0; ///< 0-controllability per node
    std::vector<std::uint32_t> cc1; ///< 1-controllability per node
    std::vector<std::uint32_t> co;  ///< observability per node

    /** Relaxation rounds each fixpoint took (diagnostics). */
    std::size_t controlRounds = 0;
    std::size_t observeRounds = 0;

    /** CC of value @p v at @p node. */
    std::uint32_t control(gate::NodeId node, bool v) const
    {
        return v ? cc1[node] : cc0[node];
    }

    /** Detection difficulty of @p site (saturating). */
    std::uint32_t difficulty(const FaultSite &site) const;
};

/**
 * Compute SCOAP scores for @p net with @p observed as the zero-cost
 * observation points.
 */
ScoapResult computeScoap(const gate::Netlist &net,
                         const std::vector<gate::NodeId> &observed);

} // namespace spm::fault

#endif // SPM_FAULT_SCOAP_HH
