/**
 * @file
 * Spare-cell bypass (recovery layer 3).
 *
 * Section 5's wafer-scale argument -- a defective cell is "replaced
 * by a functioning one on the same wafer" by rewiring the snake --
 * applies unchanged at runtime: a cell that dies in service is
 * indistinguishable from a fabrication defect to the routing. The
 * BypassController keeps the wafer's defect map, translates a dead
 * array position back to its wafer site through Wafer::snakeSites(),
 * retires the site, and re-harvests: the machine degrades from N to
 * N-k cells and keeps matching (the multipass driver absorbs any
 * pattern that no longer fits).
 */

#ifndef SPM_FAULT_BYPASS_HH
#define SPM_FAULT_BYPASS_HH

#include <cstddef>

#include "flow/wafer.hh"

namespace spm::fault
{

/** Degrades a snake-harvested array around cells that die in service. */
class BypassController
{
  public:
    /** @param wafer_map the machine's wafer; copied and then owned. */
    explicit BypassController(flow::Wafer wafer_map);

    /** Cells the current harvest chains together. */
    std::size_t availableCells() const;

    /**
     * Retire the array cell at chain position @p cell: mark its wafer
     * site bad and re-harvest around it. Returns the degraded chain
     * length.
     */
    std::size_t retireCell(std::size_t cell);

    /** Cells retired at runtime so far. */
    std::size_t retiredCount() const { return retired; }

    const flow::Wafer &wafer() const { return map; }

  private:
    flow::Wafer map;
    std::size_t retired = 0;
};

} // namespace spm::fault

#endif // SPM_FAULT_BYPASS_HH
