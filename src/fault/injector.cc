#include "fault/injector.hh"

#include <string>

#include "core/behavioral.hh"
#include "core/bitserial.hh"
#include "core/gatechip.hh"
#include "telemetry/metrics.hh"
#include "util/logging.hh"

namespace spm::fault
{

using systolic::FaultOp;
using systolic::FaultPoint;

namespace
{

[[noreturn]] void
badSite(const Fault &f, const std::string &why)
{
    throw InvalidFaultSite("invalid fault site (" + f.describe() +
                           "): " + why);
}

/** Bit-range check against the latch the fault addresses. */
void
validateBit(const Fault &f, unsigned sym_bits)
{
    switch (f.point) {
    case FaultPoint::PatternLatch:
    case FaultPoint::StringLatch:
        if (f.bit >= sym_bits)
            badSite(f, "symbol latch has " + std::to_string(sym_bits) +
                           " bits");
        break;
    case FaultPoint::ControlLatch:
        if (f.bit >= 2)
            badSite(f, "control latch has 2 bits (lambda, x)");
        break;
    case FaultPoint::CompareLatch:
    case FaultPoint::ResultLatch:
        if (f.bit != 0)
            badSite(f, "single-bit latch");
        break;
    }
}

void
validateCell(const Fault &f, std::size_t cells)
{
    if (f.cell >= cells)
        badSite(f, "array has " + std::to_string(cells) + " cells");
}

} // namespace

void
FaultInjector::attach(systolic::Engine &eng, CellResolver resolver)
{
    eng.onAfterCommit(
        [this, &eng, resolver = std::move(resolver)](Beat beat) {
            for (const Fault &f : faults)
                injectOne(eng, resolver, f, beat);
        });
}

void
FaultInjector::applyAt(systolic::Engine &eng, const CellResolver &resolver,
                       const Fault &f, FaultOp op)
{
    validateBit(f, symBits);
    const std::size_t idx = resolver(f);
    if (idx >= eng.cellCount())
        badSite(f, "resolved to engine cell " + std::to_string(idx) +
                       " of " + std::to_string(eng.cellCount()));
    if (eng.cell(idx).applyFault(f.point, op, f.bit)) {
        ++hits;
        // Cached: this runs once per fault per beat.
        static telem::Counter &ctr =
            telem::Registry::global().counter("fault.injections");
        ctr.add();
    }
}

void
FaultInjector::injectOne(systolic::Engine &eng,
                         const CellResolver &resolver, const Fault &f,
                         Beat beat)
{
    switch (f.kind) {
    case FaultKind::StuckAt0:
    case FaultKind::StuckAt1:
        applyAt(eng, resolver, f, f.op());
        break;
    case FaultKind::TransientFlip:
        if (beat == f.beat)
            applyAt(eng, resolver, f, FaultOp::Flip);
        break;
    case FaultKind::DeadCell: {
        // Every output of the cell reads 0 every beat: both symbol
        // latches bit by bit, the comparison, and the accumulator's
        // control pair and result slot.
        Fault sub = f;
        for (FaultPoint point :
             {FaultPoint::PatternLatch, FaultPoint::StringLatch}) {
            sub.point = point;
            for (unsigned b = 0; b < symBits; ++b) {
                sub.bit = b;
                applyAt(eng, resolver, sub, FaultOp::Stuck0);
            }
        }
        sub.point = FaultPoint::CompareLatch;
        sub.bit = 0;
        applyAt(eng, resolver, sub, FaultOp::Stuck0);
        sub.point = FaultPoint::ControlLatch;
        for (unsigned b = 0; b < 2; ++b) {
            sub.bit = b;
            applyAt(eng, resolver, sub, FaultOp::Stuck0);
        }
        sub.point = FaultPoint::ResultLatch;
        sub.bit = 0;
        applyAt(eng, resolver, sub, FaultOp::Stuck0);
        break;
    }
    }
}

FaultInjector::CellResolver
behavioralResolver(const core::BehavioralChip &chip)
{
    return [&chip](const Fault &f) {
        validateCell(f, chip.cellCount());
        const bool comparator = f.point == FaultPoint::PatternLatch ||
                                f.point == FaultPoint::StringLatch ||
                                f.point == FaultPoint::CompareLatch;
        return chip.cellIndex(f.cell, comparator);
    };
}

FaultInjector::CellResolver
bitSerialResolver(const core::BitSerialChip &chip)
{
    return [&chip](const Fault &f) {
        validateCell(f, chip.cellCount());
        const unsigned rows = chip.bits();
        switch (f.point) {
        case FaultPoint::PatternLatch:
        case FaultPoint::StringLatch:
            // A symbol bit beyond the grid would alias into a
            // neighboring column's row if clamped -- reject it.
            if (f.bit >= rows)
                badSite(f, "grid has " + std::to_string(rows) +
                               " comparator rows");
            return chip.comparatorIndex(rows - 1 - f.bit, f.cell);
        case FaultPoint::CompareLatch:
            return chip.comparatorIndex(rows - 1, f.cell);
        case FaultPoint::ControlLatch:
        case FaultPoint::ResultLatch:
            break;
        }
        return chip.accumulatorIndex(f.cell);
    };
}

namespace
{

/** Force one named node; throws InvalidFaultSite when absent. */
void
forceNode(core::GateChip &chip, const std::string &name,
          gate::LogicValue v, std::size_t &forced)
{
    const gate::NodeId id = chip.netlist().findNode(name);
    if (id == gate::invalidNode)
        throw InvalidFaultSite("invalid fault site: netlist has no "
                               "node named " +
                               name);
    chip.netlist().forceStuckAt(id, v, chip.clock().now());
    ++forced;
}

std::string
wireName(const char *base, unsigned row, std::size_t col)
{
    return std::string(base) + std::to_string(row) + "_" +
           std::to_string(col);
}

} // namespace

std::size_t
lowerStuckAtFaults(core::GateChip &chip, const std::vector<Fault> &faults)
{
    const unsigned rows = chip.bits();
    std::size_t forced = 0;
    for (const Fault &f : faults) {
        if (!f.isPermanent())
            continue;
        validateCell(f, chip.cellCount());
        if (f.kind != FaultKind::DeadCell)
            validateBit(f, rows);
        const gate::LogicValue v = f.kind == FaultKind::StuckAt1
            ? gate::LogicValue::H
            : gate::LogicValue::L;
        const std::string c = std::to_string(f.cell);
        if (f.kind == FaultKind::DeadCell) {
            for (unsigned row = 0; row < rows; ++row) {
                forceNode(chip, wireName("p_o", row, f.cell), v, forced);
                forceNode(chip, wireName("s_o", row, f.cell), v, forced);
                forceNode(chip, wireName("d_o", row, f.cell), v, forced);
            }
            forceNode(chip, "l_o_" + c, v, forced);
            forceNode(chip, "x_o_" + c, v, forced);
            forceNode(chip, "r_o_" + c, v, forced);
            continue;
        }
        switch (f.point) {
        case FaultPoint::PatternLatch:
            forceNode(chip, wireName("p_o", rows - 1 - f.bit, f.cell),
                      v, forced);
            break;
        case FaultPoint::StringLatch:
            forceNode(chip, wireName("s_o", rows - 1 - f.bit, f.cell),
                      v, forced);
            break;
        case FaultPoint::CompareLatch:
            forceNode(chip, wireName("d_o", rows - 1, f.cell), v, forced);
            break;
        case FaultPoint::ControlLatch:
            forceNode(chip, (f.bit % 2 == 0 ? "l_o_" : "x_o_") + c, v,
                      forced);
            break;
        case FaultPoint::ResultLatch:
            forceNode(chip, "r_o_" + c, v, forced);
            break;
        }
    }
    chip.netlist().settle(chip.clock().now());
    return forced;
}

} // namespace spm::fault
