#include "fault/injector.hh"

#include <string>

#include "core/behavioral.hh"
#include "core/bitserial.hh"
#include "core/gatechip.hh"
#include "util/logging.hh"

namespace spm::fault
{

using systolic::FaultOp;
using systolic::FaultPoint;

void
FaultInjector::attach(systolic::Engine &eng, CellResolver resolver)
{
    eng.onAfterCommit(
        [this, &eng, resolver = std::move(resolver)](Beat beat) {
            for (const Fault &f : faults)
                injectOne(eng, resolver, f, beat);
        });
}

void
FaultInjector::applyAt(systolic::Engine &eng, const CellResolver &resolver,
                       const Fault &f, FaultOp op)
{
    const std::size_t idx = resolver(f);
    spm_assert(idx < eng.cellCount(), "fault resolver returned cell ",
               idx, " of ", eng.cellCount());
    if (eng.cell(idx).applyFault(f.point, op, f.bit))
        ++hits;
}

void
FaultInjector::injectOne(systolic::Engine &eng,
                         const CellResolver &resolver, const Fault &f,
                         Beat beat)
{
    switch (f.kind) {
    case FaultKind::StuckAt0:
    case FaultKind::StuckAt1:
        applyAt(eng, resolver, f, f.op());
        break;
    case FaultKind::TransientFlip:
        if (beat == f.beat)
            applyAt(eng, resolver, f, FaultOp::Flip);
        break;
    case FaultKind::DeadCell: {
        // Every output of the cell reads 0 every beat: both symbol
        // latches bit by bit, the comparison, and the accumulator's
        // control pair and result slot.
        Fault sub = f;
        for (FaultPoint point :
             {FaultPoint::PatternLatch, FaultPoint::StringLatch}) {
            sub.point = point;
            for (unsigned b = 0; b < symBits; ++b) {
                sub.bit = b;
                applyAt(eng, resolver, sub, FaultOp::Stuck0);
            }
        }
        sub.point = FaultPoint::CompareLatch;
        sub.bit = 0;
        applyAt(eng, resolver, sub, FaultOp::Stuck0);
        sub.point = FaultPoint::ControlLatch;
        for (unsigned b = 0; b < 2; ++b) {
            sub.bit = b;
            applyAt(eng, resolver, sub, FaultOp::Stuck0);
        }
        sub.point = FaultPoint::ResultLatch;
        sub.bit = 0;
        applyAt(eng, resolver, sub, FaultOp::Stuck0);
        break;
    }
    }
}

FaultInjector::CellResolver
behavioralResolver(const core::BehavioralChip &chip)
{
    return [&chip](const Fault &f) {
        const bool comparator = f.point == FaultPoint::PatternLatch ||
                                f.point == FaultPoint::StringLatch ||
                                f.point == FaultPoint::CompareLatch;
        return chip.cellIndex(f.cell, comparator);
    };
}

FaultInjector::CellResolver
bitSerialResolver(const core::BitSerialChip &chip)
{
    return [&chip](const Fault &f) {
        const unsigned rows = chip.bits();
        switch (f.point) {
        case FaultPoint::PatternLatch:
        case FaultPoint::StringLatch:
            return chip.comparatorIndex(rows - 1 - (f.bit % rows),
                                        f.cell);
        case FaultPoint::CompareLatch:
            return chip.comparatorIndex(rows - 1, f.cell);
        case FaultPoint::ControlLatch:
        case FaultPoint::ResultLatch:
            break;
        }
        return chip.accumulatorIndex(f.cell);
    };
}

namespace
{

/** Force one named node if present; counts successful forces. */
void
forceNode(core::GateChip &chip, const std::string &name,
          gate::LogicValue v, std::size_t &forced)
{
    const gate::NodeId id = chip.netlist().findNode(name);
    if (id == gate::invalidNode)
        return;
    chip.netlist().forceStuckAt(id, v, chip.clock().now());
    ++forced;
}

std::string
wireName(const char *base, unsigned row, std::size_t col)
{
    return std::string(base) + std::to_string(row) + "_" +
           std::to_string(col);
}

} // namespace

std::size_t
lowerStuckAtFaults(core::GateChip &chip, const std::vector<Fault> &faults)
{
    const unsigned rows = chip.bits();
    std::size_t forced = 0;
    for (const Fault &f : faults) {
        if (!f.isPermanent())
            continue;
        const gate::LogicValue v = f.kind == FaultKind::StuckAt1
            ? gate::LogicValue::H
            : gate::LogicValue::L;
        const std::string c = std::to_string(f.cell);
        if (f.kind == FaultKind::DeadCell) {
            for (unsigned row = 0; row < rows; ++row) {
                forceNode(chip, wireName("p_o", row, f.cell), v, forced);
                forceNode(chip, wireName("s_o", row, f.cell), v, forced);
                forceNode(chip, wireName("d_o", row, f.cell), v, forced);
            }
            forceNode(chip, "l_o_" + c, v, forced);
            forceNode(chip, "x_o_" + c, v, forced);
            forceNode(chip, "r_o_" + c, v, forced);
            continue;
        }
        switch (f.point) {
        case FaultPoint::PatternLatch:
            forceNode(chip,
                      wireName("p_o", rows - 1 - (f.bit % rows), f.cell),
                      v, forced);
            break;
        case FaultPoint::StringLatch:
            forceNode(chip,
                      wireName("s_o", rows - 1 - (f.bit % rows), f.cell),
                      v, forced);
            break;
        case FaultPoint::CompareLatch:
            forceNode(chip, wireName("d_o", rows - 1, f.cell), v, forced);
            break;
        case FaultPoint::ControlLatch:
            forceNode(chip, (f.bit % 2 == 0 ? "l_o_" : "x_o_") + c, v,
                      forced);
            break;
        case FaultPoint::ResultLatch:
            forceNode(chip, "r_o_" + c, v, forced);
            break;
        }
    }
    chip.netlist().settle(chip.clock().now());
    return forced;
}

} // namespace spm::fault
