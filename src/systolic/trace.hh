/**
 * @file
 * Beat-by-beat trace recording.
 *
 * Figure 3-2 of the paper traces "the flow of characters" through the
 * cell array for several beats. TraceRecorder reproduces exactly that
 * artifact: after each beat it snapshots every cell's stateString() and
 * can render the collected history as a table with one row per beat and
 * one column per cell.
 */

#ifndef SPM_SYSTOLIC_TRACE_HH
#define SPM_SYSTOLIC_TRACE_HH

#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/types.hh"

namespace spm::systolic
{

class Engine;

/** Records cell states after each beat for later rendering. */
class TraceRecorder
{
  public:
    /**
     * @param max_beats stop recording after this many beats to bound
     *        memory; 0 means unlimited.
     */
    explicit TraceRecorder(std::size_t max_beats = 0)
        : beatLimit(max_beats)
    {
    }

    /** Capture the post-commit state of every cell; called by Engine. */
    void snapshot(const Engine &engine, Beat beat);

    /**
     * Append a row of states directly -- how the conformance golden
     * traces build a canonical trace from cells that live in several
     * engines (e.g., the chips of a cascade re-mapped to the column
     * order of the equivalent single chip).
     */
    void appendRow(Beat beat, std::vector<std::string> states);

    /** Number of state columns in recorded rows (0 when empty). */
    std::size_t cellCount() const
    {
        return rows.empty() ? 0 : rows.front().states.size();
    }

    /**
     * First (row, column) where two recorded traces diverge. A length
     * or shape difference reports the first row index past the
     * shorter trace with column 0. nullopt when identical.
     */
    std::optional<std::pair<std::size_t, std::size_t>> firstDifference(
        const TraceRecorder &other) const;

    /** Number of recorded beats. */
    std::size_t beatCount() const { return rows.size(); }

    /** Recorded state of cell @p cell_idx at recorded beat @p row. */
    const std::string &at(std::size_t row, std::size_t cell_idx) const;

    /** Beat index of recorded row @p row. */
    Beat beatOf(std::size_t row) const;

    /**
     * Render the trace in the style of Figure 3-2: one row per beat,
     * one column per cell, active cells marked with '*'.
     */
    std::string render(const Engine &engine) const;

    void clear();

  private:
    struct Row
    {
        Beat beat;
        std::vector<std::string> states;
    };

    std::size_t beatLimit;
    std::vector<Row> rows;
};

} // namespace spm::systolic

#endif // SPM_SYSTOLIC_TRACE_HH
