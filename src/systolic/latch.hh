/**
 * @file
 * Latched values and tokens for systolic data flow.
 *
 * A systolic array advances all data simultaneously on each beat. To
 * simulate that without ordering artifacts, every storage element is a
 * two-sided latch: cells read the "current" side, write the "next"
 * side, and the engine commits all latches at once at the end of the
 * beat. This mirrors the two-phase NMOS discipline where pass
 * transistors isolate each stage's input while its output drives the
 * neighbor (Section 3.2.2).
 */

#ifndef SPM_SYSTOLIC_LATCH_HH
#define SPM_SYSTOLIC_LATCH_HH

#include <cstddef>
#include <vector>

#include "util/logging.hh"

namespace spm::systolic
{

/**
 * A value moving through the array together with a validity flag.
 *
 * "To make each pair of characters meet, rather than just pass, we must
 * separate them by one cell so that alternate cells are idle"
 * (Section 3.2.1). The idle positions carry tokens with valid == false.
 */
template <typename T>
struct Token
{
    T value{};
    bool valid = false;

    Token() = default;
    Token(T v, bool is_valid = true) : value(v), valid(is_valid) {}

    bool operator==(const Token &) const = default;
};

/**
 * A double-sided storage element committed once per beat.
 *
 * Reads always observe the value latched at the previous commit, so
 * evaluation order within a beat cannot matter.
 */
template <typename T>
class Latch
{
  public:
    Latch() = default;
    explicit Latch(const T &initial) : cur(initial), nxt(initial) {}

    /** The value latched at the last commit. */
    const T &read() const { return cur; }

    /** Stage a value for the next commit. */
    void write(const T &v) { nxt = v; }

    /** Make the staged value visible; called once per beat. */
    void commit() { cur = nxt; }

    /** Set both sides at once (initialization only). */
    void force(const T &v) { cur = nxt = v; }

  private:
    T cur{};
    T nxt{};
};

/**
 * A fixed-length chain of latches: data written this beat emerges
 * length() beats later. Used for staggering bit streams in the
 * bit-serial comparator pipeline (Section 3.2.1, Figure 3-4).
 */
template <typename T>
class DelayLine
{
  public:
    explicit DelayLine(std::size_t length) : stages(length)
    {
        spm_assert(length > 0, "DelayLine needs at least one stage");
    }

    std::size_t length() const { return stages.size(); }

    /** Value emerging from the line this beat. */
    const T &
    read() const
    {
        return stages.back().read();
    }

    /** Insert a value into the head of the line. */
    void
    write(const T &v)
    {
        stages.front().write(v);
    }

    /** Shift the whole line by one beat. */
    void
    commit()
    {
        // Propagate from the tail backward so each stage picks up its
        // predecessor's pre-commit value.
        for (std::size_t i = stages.size(); i-- > 1;)
            stages[i].write(stages[i - 1].read());
        for (auto &s : stages)
            s.commit();
    }

    /** Reset every stage to a default-constructed value. */
    void
    flush()
    {
        for (auto &s : stages)
            s.force(T{});
    }

  private:
    std::vector<Latch<T>> stages;
};

} // namespace spm::systolic

#endif // SPM_SYSTOLIC_LATCH_HH
