#include "systolic/selftimed.hh"

#include <algorithm>

#include "util/logging.hh"

namespace spm::systolic
{

SelfTimedModel::SelfTimedModel(const Config &config)
    : cfg(config), rng(config.seed)
{
    spm_assert(cfg.cells > 0, "array needs at least one cell");
    spm_assert(cfg.meanDelayNs > 0 && cfg.jitterNs >= 0 &&
                   cfg.handshakeNs >= 0 && cfg.skewPerCellNs >= 0,
               "bad timing parameters");
    spm_assert(cfg.jitterNs < cfg.meanDelayNs,
               "jitter exceeding the mean is unphysical");
}

double
SelfTimedModel::sampleDelay()
{
    const double u = rng.nextDouble() * 2.0 - 1.0;
    return cfg.meanDelayNs + u * cfg.jitterNs;
}

double
SelfTimedModel::selfTimedCompletionNs(Beat beats)
{
    // T[i] holds the completion time of cell i's previous firing.
    std::vector<double> prev(cfg.cells, 0.0);
    std::vector<double> cur(cfg.cells, 0.0);
    for (Beat k = 0; k < beats; ++k) {
        for (std::size_t i = 0; i < cfg.cells; ++i) {
            double ready = prev[i];
            if (i > 0)
                ready = std::max(ready, prev[i - 1]);
            if (i + 1 < cfg.cells)
                ready = std::max(ready, prev[i + 1]);
            cur[i] = ready + sampleDelay() + cfg.handshakeNs;
        }
        std::swap(prev, cur);
    }
    const double total =
        *std::max_element(prev.begin(), prev.end());
    lastBeatNs = beats == 0 ? 0.0 : total / static_cast<double>(beats);
    return total;
}

double
SelfTimedModel::clockPeriodNs() const
{
    // The common clock must cover the worst-case delay anywhere on
    // the chip plus distribution skew that grows with array length.
    return cfg.meanDelayNs + cfg.jitterNs +
           cfg.skewPerCellNs * static_cast<double>(cfg.cells);
}

double
SelfTimedModel::clockedCompletionNs(Beat beats) const
{
    return clockPeriodNs() * static_cast<double>(beats);
}

} // namespace spm::systolic
