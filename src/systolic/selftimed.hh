/**
 * @file
 * Self-timed vs clocked data flow (Section 3.3.2).
 *
 * "In a self-timed implementation, data flow control is distributed
 * among the cells ... Each of the cells may run at its own pace,
 * synchronizing with its neighbors only when communication is
 * needed. The disadvantage is the extra circuitry needed to
 * implement the signalling conventions. For systems that are small
 * enough to use a common clock, like the pattern matching chip, the
 * clocked data flow implementation should be chosen."
 *
 * This model quantifies that judgment: cells have per-firing delays
 * with process variation. A clocked array runs at the worst-case
 * delay of the slowest cell (plus clock margin); a self-timed array
 * fires each cell as soon as its neighbors' previous values are
 * available, paying a handshake overhead per transfer. Completion
 * times come from the exact event recurrence, not from averages.
 */

#ifndef SPM_SYSTOLIC_SELFTIMED_HH
#define SPM_SYSTOLIC_SELFTIMED_HH

#include <cstdint>
#include <vector>

#include "util/rng.hh"
#include "util/types.hh"

namespace spm::systolic
{

/** Timing model of one linear array under both disciplines. */
class SelfTimedModel
{
  public:
    struct Config
    {
        std::size_t cells = 8;
        /** Nominal cell evaluation delay. */
        double meanDelayNs = 100.0;
        /**
         * Half-width of the per-cell, per-firing uniform delay
         * variation (process + data dependence).
         */
        double jitterNs = 25.0;
        /** Request/acknowledge circuitry cost per self-timed firing. */
        double handshakeNs = 15.0;
        /**
         * Clock distribution margin per cell of array length -- the
         * skew that grows with chip size and eventually forces the
         * self-timed choice (Section 3.3.2 / [Seitz 79]).
         */
        double skewPerCellNs = 0.5;
        std::uint64_t seed = 1;
    };

    explicit SelfTimedModel(const Config &config);

    /**
     * Completion time of @p beats systolic beats under self-timed
     * handshaking: cell i's k-th firing starts when its own and both
     * neighbors' (k-1)-th firings are done, and takes its sampled
     * delay plus the handshake overhead.
     */
    double selfTimedCompletionNs(Beat beats);

    /**
     * Completion time under a global clock: the period must cover
     * the worst-case cell delay plus skew proportional to the array
     * length.
     */
    double clockedCompletionNs(Beat beats) const;

    /** The clocked period implied by the configuration. */
    double clockPeriodNs() const;

    /** Mean observed per-beat advance of the self-timed run. */
    double lastSelfTimedBeatNs() const { return lastBeatNs; }

    const Config &config() const { return cfg; }

  private:
    double sampleDelay();

    Config cfg;
    Rng rng;
    double lastBeatNs = 0.0;
};

} // namespace spm::systolic

#endif // SPM_SYSTOLIC_SELFTIMED_HH
