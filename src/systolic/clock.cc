#include "systolic/clock.hh"

#include "util/logging.hh"

namespace spm::systolic
{

Clock::Clock(Picoseconds beat_period_ps) : periodPs(beat_period_ps)
{
    spm_assert(beat_period_ps > 0, "beat period must be positive");
}

void
Clock::advancePhase()
{
    if (currentPhase == Phase::Phi1) {
        currentPhase = Phase::Phi2;
    } else {
        currentPhase = Phase::Phi1;
        ++beatCount;
        stallPs = 0;
    }
}

void
Clock::advanceBeat()
{
    // Finish the current beat: advance until the next beat begins.
    const Beat target = beatCount + 1;
    while (beatCount < target || currentPhase != Phase::Phi1)
        advancePhase();
}

Picoseconds
Clock::timeNow() const
{
    Picoseconds t = beatCount * periodPs + stallPs;
    if (currentPhase == Phase::Phi2)
        t += periodPs / 2;
    return t;
}

void
Clock::stall(Picoseconds duration_ps)
{
    stallPs += duration_ps;
}

void
Clock::reset()
{
    beatCount = 0;
    currentPhase = Phase::Phi1;
    stallPs = 0;
}

} // namespace spm::systolic
