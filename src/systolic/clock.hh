/**
 * @file
 * The beat clock.
 *
 * "The data streams move at a steady rate between the host computer and
 * the pattern matcher, with a constant time between data items"
 * (Section 3.1). Clock models that steady rate: it counts beats, derives
 * simulated time from a configurable beat period (250 ns on the 1979
 * prototype), and exposes the two non-overlapping phases that the NMOS
 * implementation uses within each beat (Section 3.2.2, Figure 3-5).
 */

#ifndef SPM_SYSTOLIC_CLOCK_HH
#define SPM_SYSTOLIC_CLOCK_HH

#include "util/types.hh"

namespace spm::systolic
{

/** The two non-overlapping clock phases within one beat. */
enum class Phase { Phi1, Phi2 };

/**
 * A two-phase beat clock.
 *
 * One beat is the interval during which one character arrives from
 * either input stream. Within a beat, phase Phi1 admits new data into
 * cells (pass transistors on) and Phi2 propagates outputs to neighbors.
 */
class Clock
{
  public:
    /** @param beat_period_ps simulated duration of one beat. */
    explicit Clock(Picoseconds beat_period_ps = prototypeBeatPs);

    /** Current beat index, starting at zero. */
    Beat beat() const { return beatCount; }

    /** Current phase within the beat. */
    Phase phase() const { return currentPhase; }

    /** Advance half a beat (one phase). */
    void advancePhase();

    /** Advance one whole beat (both phases). */
    void advanceBeat();

    /** Simulated time at the start of the current phase. */
    Picoseconds timeNow() const;

    /** Beat period in picoseconds. */
    Picoseconds beatPeriod() const { return periodPs; }

    /**
     * Model a clock stall: time passes without beats advancing.
     * Dynamic storage nodes decay during stalls (Section 3.3.3); the
     * gate substrate uses stalledTime() to decide when stored charge
     * has leaked away.
     */
    void stall(Picoseconds duration_ps);

    /** Accumulated stall time since the last beat advanced. */
    Picoseconds stalledTime() const { return stallPs; }

    /** Reset to beat zero. */
    void reset();

  private:
    Picoseconds periodPs;
    Beat beatCount = 0;
    Phase currentPhase = Phase::Phi1;
    Picoseconds stallPs = 0;
};

} // namespace spm::systolic

#endif // SPM_SYSTOLIC_CLOCK_HH
