/**
 * @file
 * The systolic simulation engine.
 *
 * The engine owns a set of cells, advances the beat clock, and enforces
 * the evaluate-then-commit discipline that makes all data appear to move
 * simultaneously (Section 3.2.1: "All characters on the chip move during
 * each beat"). It also collects the per-beat activity statistics that
 * experiment E3 uses to demonstrate the 50% checkerboard duty cycle.
 */

#ifndef SPM_SYSTOLIC_ENGINE_HH
#define SPM_SYSTOLIC_ENGINE_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "systolic/cell.hh"
#include "systolic/clock.hh"
#include "telemetry/metrics.hh"
#include "util/stats.hh"

namespace spm::systolic
{

class TraceRecorder;

/**
 * Drives a collection of cells beat by beat.
 *
 * Cells are owned by the engine. Hooks may be attached to run before
 * evaluation (e.g., to feed input streams) and after commit (e.g., to
 * sample output streams); hooks see a consistent, fully latched state.
 */
class Engine
{
  public:
    /** Hook invoked once per beat. */
    using BeatHook = std::function<void(Beat)>;

    explicit Engine(Picoseconds beat_period_ps = prototypeBeatPs);
    ~Engine();

    /** Add a cell; returns a reference with engine-lifetime validity. */
    template <typename CellT, typename... Args>
    CellT &
    makeCell(Args &&...args)
    {
        auto cell = std::make_unique<CellT>(std::forward<Args>(args)...);
        CellT &ref = *cell;
        cells.push_back(std::move(cell));
        return ref;
    }

    /** Register a hook run at the start of each beat, before evaluate. */
    void onBeatStart(BeatHook hook);

    /** Register a hook run at the end of each beat, after commit. */
    void onBeatEnd(BeatHook hook);

    /**
     * Register a hook run immediately after commit, before the
     * end-of-beat hooks and before statistics sample the beat. This
     * is the fault-injection point: latch state mutated here (via
     * CellBase::applyFault) is exactly what neighboring cells read on
     * the next beat, the same visibility a hardware upset would have.
     */
    void onAfterCommit(BeatHook hook);

    /** Advance one beat: hooks, evaluate all, commit all, hooks. */
    void step();

    /** Advance @p n beats. */
    void run(Beat n);

    /** The beat clock. */
    const Clock &clock() const { return beatClock; }
    Clock &clock() { return beatClock; }

    /** Number of cells owned. */
    std::size_t cellCount() const { return cells.size(); }

    /** Access cell @p idx in insertion order. */
    CellBase &cell(std::size_t idx);
    const CellBase &cell(std::size_t idx) const;

    /** Attach a trace recorder that snapshots cells after each beat. */
    void attachTrace(TraceRecorder *recorder) { trace = recorder; }

    /** Fraction of cells active (valid meeting) on the last beat. */
    double lastUtilization() const { return lastUtil; }

    /** Utilization sampled across all beats so far. */
    const RunningStat &utilization() const { return utilStat; }

    /**
     * Simulation statistics: beats, evaluations, active_cell_beats
     * (cells with a valid meeting), idle_cell_beats (activations the
     * checkerboard gated away), plus an active_frac histogram of the
     * per-beat utilization. E3 reads its duty cycle from these
     * counters rather than inferring it from the schedule. Counter
     * names are bare ("beats"); statsDump() prefixes "engine.".
     */
    const telem::Registry &stats() const { return registry; }

    /** The counters as "engine.x = n" lines. */
    std::string statsDump() const
    {
        return registry.snapshot().renderText("engine.");
    }

  private:
    Clock beatClock;
    std::vector<std::unique_ptr<CellBase>> cells;
    std::vector<BeatHook> startHooks;
    std::vector<BeatHook> commitHooks;
    std::vector<BeatHook> endHooks;
    TraceRecorder *trace = nullptr;

    // Engines are created per match window on hot service paths, so
    // each keeps a private single-stripe registry (one engine, one
    // stepping thread); the destructor folds lifetime totals into
    // Registry::global() under the engine.* names.
    telem::Registry registry{1};
    telem::Counter &beatsCtr;
    telem::Counter &evalsCtr;
    telem::Counter &activeCtr;
    telem::Counter &idleCtr;
    telem::Histogram &activeFracHist;
    RunningStat utilStat;
    double lastUtil = 0.0;
};

} // namespace spm::systolic

#endif // SPM_SYSTOLIC_ENGINE_HH
