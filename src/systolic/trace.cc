#include "systolic/trace.hh"

#include <algorithm>
#include <sstream>

#include "systolic/engine.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace spm::systolic
{

void
TraceRecorder::snapshot(const Engine &engine, Beat beat)
{
    if (beatLimit != 0 && rows.size() >= beatLimit)
        return;
    Row row;
    row.beat = beat;
    row.states.reserve(engine.cellCount());
    for (std::size_t i = 0; i < engine.cellCount(); ++i) {
        const CellBase &c = engine.cell(i);
        std::string s = c.stateString();
        if (c.activeOn(beat))
            s += "*";
        row.states.push_back(std::move(s));
    }
    rows.push_back(std::move(row));
}

void
TraceRecorder::appendRow(Beat beat, std::vector<std::string> states)
{
    if (beatLimit != 0 && rows.size() >= beatLimit)
        return;
    rows.push_back(Row{beat, std::move(states)});
}

std::optional<std::pair<std::size_t, std::size_t>>
TraceRecorder::firstDifference(const TraceRecorder &other) const
{
    const std::size_t common = std::min(rows.size(), other.rows.size());
    for (std::size_t r = 0; r < common; ++r) {
        const auto &a = rows[r].states;
        const auto &b = other.rows[r].states;
        const std::size_t cols = std::min(a.size(), b.size());
        for (std::size_t c = 0; c < cols; ++c)
            if (a[c] != b[c])
                return std::make_pair(r, c);
        if (a.size() != b.size())
            return std::make_pair(r, cols);
    }
    if (rows.size() != other.rows.size())
        return std::make_pair(common, std::size_t(0));
    return std::nullopt;
}

const std::string &
TraceRecorder::at(std::size_t row, std::size_t cell_idx) const
{
    spm_assert(row < rows.size(), "trace row out of range");
    spm_assert(cell_idx < rows[row].states.size(),
               "trace cell index out of range");
    return rows[row].states[cell_idx];
}

Beat
TraceRecorder::beatOf(std::size_t row) const
{
    spm_assert(row < rows.size(), "trace row out of range");
    return rows[row].beat;
}

std::string
TraceRecorder::render(const Engine &engine) const
{
    Table table("Beat-by-beat cell trace (Figure 3-2 style; '*' marks "
                "active cells)");
    std::vector<std::string> header;
    header.push_back("beat");
    for (std::size_t i = 0; i < engine.cellCount(); ++i)
        header.push_back(engine.cell(i).cellName());
    table.setHeader(std::move(header));

    for (const auto &row : rows) {
        std::vector<std::string> cells;
        cells.push_back(std::to_string(row.beat));
        for (const auto &s : row.states)
            cells.push_back(s);
        table.addRow(std::move(cells));
    }
    return table.toString();
}

void
TraceRecorder::clear()
{
    rows.clear();
}

} // namespace spm::systolic
