/**
 * @file
 * The abstract systolic cell.
 *
 * "The chip is divided into character cells, each of which can compare
 * two characters and accumulate a temporary result" (Section 3.2.1).
 * CellBase is the simulation-side abstraction: a named unit that, on
 * every beat, computes staged outputs from latched inputs (evaluate)
 * and then latches them (commit). Concrete cells -- comparators,
 * accumulators, counting cells, difference cells, adder cells -- live
 * in src/core and src/extensions.
 */

#ifndef SPM_SYSTOLIC_CELL_HH
#define SPM_SYSTOLIC_CELL_HH

#include <string>

#include "systolic/fault.hh"
#include "util/types.hh"

namespace spm::systolic
{

/**
 * Base class for all simulated systolic cells.
 *
 * The engine drives each cell through a strict two-step protocol per
 * beat: evaluate() reads only values latched on previous beats and
 * stages new outputs; commit() publishes the staged outputs. Because
 * no cell observes another cell's same-beat writes, the simultaneous
 * data movement of the hardware is reproduced exactly regardless of
 * the order in which the engine visits cells.
 */
class CellBase
{
  public:
    /**
     * @param cell_name name used in traces and stats
     * @param cell_parity beat parity (0 or 1) on which this cell holds
     *        a valid meeting of data streams; purely observational --
     *        data moves on every beat either way (Section 3.2.1)
     */
    CellBase(std::string cell_name, unsigned cell_parity)
        : name(std::move(cell_name)), parity(cell_parity % 2)
    {
    }

    virtual ~CellBase() = default;

    CellBase(const CellBase &) = delete;
    CellBase &operator=(const CellBase &) = delete;

    /** Stage next-beat outputs from current inputs. */
    virtual void evaluate(Beat beat) = 0;

    /** Publish staged outputs. */
    virtual void commit() = 0;

    /**
     * Whether this cell holds a valid data meeting on @p beat.
     * Active and idle cells alternate in space and time, forming the
     * checkerboard of Figure 3-4.
     */
    bool activeOn(Beat beat) const { return beat % 2 == parity; }

    /** Parity on which this cell is active. */
    unsigned activeParity() const { return parity; }

    /**
     * Corrupt a committed output latch of this cell: apply @p op to
     * bit @p bit of the value stored at @p point. Called between
     * commit and the next evaluate (see Engine::onAfterCommit), so
     * neighbors read the corrupted value on the following beat.
     *
     * @return true when the cell has the addressed point (the fault
     *         landed), false when the point does not exist here.
     */
    virtual bool
    applyFault(FaultPoint point, FaultOp op, unsigned bit)
    {
        (void)point;
        (void)op;
        (void)bit;
        return false;
    }

    /** One-line description of cell contents for trace rendering. */
    virtual std::string stateString() const { return ""; }

    const std::string &cellName() const { return name; }

  private:
    std::string name;
    unsigned parity;
};

} // namespace spm::systolic

#endif // SPM_SYSTOLIC_CELL_HH
