#include "systolic/engine.hh"

#include "systolic/trace.hh"
#include "telemetry/telem.hh"
#include "util/logging.hh"

namespace spm::systolic
{

Engine::Engine(Picoseconds beat_period_ps)
    : beatClock(beat_period_ps),
      beatsCtr(registry.counter("beats")),
      evalsCtr(registry.counter("evaluations")),
      activeCtr(registry.counter("active_cell_beats")),
      idleCtr(registry.counter("idle_cell_beats")),
      activeFracHist(registry.histogram("active_frac", 0.0, 1.001, 16))
{
}

Engine::~Engine()
{
    // Fold this engine's lifetime totals into the process registry;
    // engines are neither copyable nor movable, so the totals are
    // final here. Compiled out under SPM_TELEM_OFF.
    SPM_TCOUNT_GLOBAL("engine.beats", beatsCtr.value());
    SPM_TCOUNT_GLOBAL("engine.evaluations", evalsCtr.value());
    SPM_TCOUNT_GLOBAL("engine.active_cell_beats", activeCtr.value());
    SPM_TCOUNT_GLOBAL("engine.idle_cell_beats", idleCtr.value());
}

void
Engine::onBeatStart(BeatHook hook)
{
    startHooks.push_back(std::move(hook));
}

void
Engine::onBeatEnd(BeatHook hook)
{
    endHooks.push_back(std::move(hook));
}

void
Engine::onAfterCommit(BeatHook hook)
{
    commitHooks.push_back(std::move(hook));
}

void
Engine::step()
{
    const Beat beat = beatClock.beat();

    for (auto &hook : startHooks)
        hook(beat);

    // Phase Phi1: every cell computes its staged outputs from latched
    // inputs. No cell can see another's same-beat writes.
    std::uint64_t active = 0;
    for (auto &c : cells) {
        c->evaluate(beat);
        if (c->activeOn(beat))
            ++active;
    }
    evalsCtr.increment(cells.size());
    activeCtr.increment(active);
    idleCtr.increment(cells.size() - active);
    beatClock.advancePhase();

    // Phase Phi2: all staged outputs become visible simultaneously.
    for (auto &c : cells)
        c->commit();

    // Fault models corrupt freshly committed latches here, so the
    // upset is visible to neighbors on the next beat exactly as a
    // hardware glitch between clock edges would be.
    for (auto &hook : commitHooks)
        hook(beat);

    lastUtil = cells.empty()
        ? 0.0
        : static_cast<double>(active) / static_cast<double>(cells.size());
    utilStat.sample(lastUtil);
    // Stride-sampled: one histogram update per 16 beats keeps the
    // per-beat telemetry cost to a branch without losing the shape.
    if ((beat & 15) == 0)
        SPM_THIST(activeFracHist, lastUtil);

    for (auto &hook : endHooks)
        hook(beat);

    if (trace)
        trace->snapshot(*this, beat);

    beatClock.advancePhase();
    beatsCtr.increment();
}

void
Engine::run(Beat n)
{
    for (Beat i = 0; i < n; ++i)
        step();
}

CellBase &
Engine::cell(std::size_t idx)
{
    spm_assert(idx < cells.size(), "cell index ", idx, " out of range ",
               cells.size());
    return *cells[idx];
}

const CellBase &
Engine::cell(std::size_t idx) const
{
    spm_assert(idx < cells.size(), "cell index ", idx, " out of range ",
               cells.size());
    return *cells[idx];
}

} // namespace spm::systolic
