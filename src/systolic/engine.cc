#include "systolic/engine.hh"

#include "systolic/trace.hh"
#include "util/logging.hh"

namespace spm::systolic
{

Engine::Engine(Picoseconds beat_period_ps)
    : beatClock(beat_period_ps),
      statGroup("engine"),
      beatsCtr(statGroup.addCounter("beats")),
      evalsCtr(statGroup.addCounter("evaluations")),
      activeCtr(statGroup.addCounter("active_cell_beats")),
      idleCtr(statGroup.addCounter("idle_cell_beats"))
{
}

Engine::~Engine() = default;

void
Engine::onBeatStart(BeatHook hook)
{
    startHooks.push_back(std::move(hook));
}

void
Engine::onBeatEnd(BeatHook hook)
{
    endHooks.push_back(std::move(hook));
}

void
Engine::onAfterCommit(BeatHook hook)
{
    commitHooks.push_back(std::move(hook));
}

void
Engine::step()
{
    const Beat beat = beatClock.beat();

    for (auto &hook : startHooks)
        hook(beat);

    // Phase Phi1: every cell computes its staged outputs from latched
    // inputs. No cell can see another's same-beat writes.
    std::uint64_t active = 0;
    for (auto &c : cells) {
        c->evaluate(beat);
        if (c->activeOn(beat))
            ++active;
    }
    evalsCtr.increment(cells.size());
    activeCtr.increment(active);
    idleCtr.increment(cells.size() - active);
    beatClock.advancePhase();

    // Phase Phi2: all staged outputs become visible simultaneously.
    for (auto &c : cells)
        c->commit();

    // Fault models corrupt freshly committed latches here, so the
    // upset is visible to neighbors on the next beat exactly as a
    // hardware glitch between clock edges would be.
    for (auto &hook : commitHooks)
        hook(beat);

    lastUtil = cells.empty()
        ? 0.0
        : static_cast<double>(active) / static_cast<double>(cells.size());
    utilStat.sample(lastUtil);

    for (auto &hook : endHooks)
        hook(beat);

    if (trace)
        trace->snapshot(*this, beat);

    beatClock.advancePhase();
    beatsCtr.increment();
}

void
Engine::run(Beat n)
{
    for (Beat i = 0; i < n; ++i)
        step();
}

CellBase &
Engine::cell(std::size_t idx)
{
    spm_assert(idx < cells.size(), "cell index ", idx, " out of range ",
               cells.size());
    return *cells[idx];
}

const CellBase &
Engine::cell(std::size_t idx) const
{
    spm_assert(idx < cells.size(), "cell index ", idx, " out of range ",
               cells.size());
    return *cells[idx];
}

} // namespace spm::systolic
