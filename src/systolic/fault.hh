/**
 * @file
 * Runtime fault primitives for systolic cells.
 *
 * Section 5 argues the linear array survives *fabrication* defects by
 * rewiring around bad cells; this header supplies the vocabulary for
 * *runtime* faults -- a stuck latch, a flaky comparator, a transient
 * bit flip -- so the same campaign can be replayed against every
 * simulator fidelity. The enums live at the systolic layer because
 * CellBase itself exposes the injection surface: each concrete cell
 * knows its own output latches and how to corrupt them.
 */

#ifndef SPM_SYSTOLIC_FAULT_HH
#define SPM_SYSTOLIC_FAULT_HH

namespace spm::systolic
{

/**
 * Which output latch of a cell a fault attacks. Not every cell has
 * every point; CellBase::applyFault() returns false for points the
 * cell does not implement.
 */
enum class FaultPoint : unsigned char
{
    PatternLatch, ///< pattern stream output (symbol or bit)
    StringLatch,  ///< string stream output (symbol or bit)
    CompareLatch, ///< comparator result d flowing down
    ControlLatch, ///< lambda/x control pair (accumulators)
    ResultLatch,  ///< result stream output (accumulators)
};

/**
 * The primitive corruption applied to a latched value. Stuck-at ops
 * force the addressed bit every beat; Flip inverts it once. Only the
 * *value* fields of a token are attackable: validity flags encode the
 * global beat choreography (clocking), not per-cell logic, and a cell
 * whose logic dies still latches on the common clock.
 */
enum class FaultOp : unsigned char
{
    Stuck0, ///< force the addressed bit to 0
    Stuck1, ///< force the addressed bit to 1
    Flip,   ///< invert the addressed bit (transient)
};

} // namespace spm::systolic

#endif // SPM_SYSTOLIC_FAULT_HH
