/**
 * @file
 * Geometry primitives in lambda units.
 *
 * Layouts follow the Mead-Conway scalable design rules: all dimensions
 * are integer multiples of the process parameter lambda, so a design
 * can be fabricated at any feature size by scaling (Section 3.2.2,
 * [Mead and Conway 80]).
 */

#ifndef SPM_LAYOUT_GEOMETRY_HH
#define SPM_LAYOUT_GEOMETRY_HH

#include <cstdint>
#include <string>

namespace spm::layout
{

/** Coordinate in lambda units. */
using Lambda = std::int32_t;

/** A point on the mask plane. */
struct Point
{
    Lambda x = 0;
    Lambda y = 0;

    bool operator==(const Point &) const = default;
};

/** An axis-aligned rectangle; lo is inclusive, hi exclusive. */
struct Rect
{
    Lambda x0 = 0;
    Lambda y0 = 0;
    Lambda x1 = 0;
    Lambda y1 = 0;

    Rect() = default;
    Rect(Lambda ax0, Lambda ay0, Lambda ax1, Lambda ay1);

    Lambda width() const { return x1 - x0; }
    Lambda height() const { return y1 - y0; }
    std::int64_t area() const
    {
        return static_cast<std::int64_t>(width()) * height();
    }

    bool empty() const { return x1 <= x0 || y1 <= y0; }

    /** True when the two rectangles share interior area. */
    bool overlaps(const Rect &other) const;

    /** True when @p other lies entirely within this rectangle. */
    bool contains(const Rect &other) const;

    /** Smallest rectangle covering both. */
    Rect unionWith(const Rect &other) const;

    /** Shared area rectangle (empty() if none). */
    Rect intersect(const Rect &other) const;

    /** Rectangle grown by @p d on every side. */
    Rect inflated(Lambda d) const;

    /** Rectangle translated by (dx, dy). */
    Rect translated(Lambda dx, Lambda dy) const;

    /**
     * Edge-to-edge separation from @p other along axes; zero when
     * overlapping or abutting. Diagonal separation uses the larger of
     * the axis gaps (the Mead-Conway rules measure Manhattan gaps).
     */
    Lambda separation(const Rect &other) const;

    std::string toString() const;

    bool operator==(const Rect &) const = default;
};

} // namespace spm::layout

#endif // SPM_LAYOUT_GEOMETRY_HH
