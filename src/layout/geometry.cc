#include "layout/geometry.hh"

#include <algorithm>
#include <sstream>

#include "util/logging.hh"

namespace spm::layout
{

Rect::Rect(Lambda ax0, Lambda ay0, Lambda ax1, Lambda ay1)
    : x0(ax0), y0(ay0), x1(ax1), y1(ay1)
{
    spm_assert(ax1 >= ax0 && ay1 >= ay0, "inverted rectangle");
}

bool
Rect::overlaps(const Rect &other) const
{
    return x0 < other.x1 && other.x0 < x1 && y0 < other.y1 &&
           other.y0 < y1;
}

bool
Rect::contains(const Rect &other) const
{
    return other.x0 >= x0 && other.x1 <= x1 && other.y0 >= y0 &&
           other.y1 <= y1;
}

Rect
Rect::unionWith(const Rect &other) const
{
    if (empty())
        return other;
    if (other.empty())
        return *this;
    Rect r;
    r.x0 = std::min(x0, other.x0);
    r.y0 = std::min(y0, other.y0);
    r.x1 = std::max(x1, other.x1);
    r.y1 = std::max(y1, other.y1);
    return r;
}

Rect
Rect::intersect(const Rect &other) const
{
    Rect r;
    r.x0 = std::max(x0, other.x0);
    r.y0 = std::max(y0, other.y0);
    r.x1 = std::min(x1, other.x1);
    r.y1 = std::min(y1, other.y1);
    if (r.x1 < r.x0)
        r.x1 = r.x0;
    if (r.y1 < r.y0)
        r.y1 = r.y0;
    return r;
}

Rect
Rect::inflated(Lambda d) const
{
    Rect r = *this;
    r.x0 -= d;
    r.y0 -= d;
    r.x1 += d;
    r.y1 += d;
    return r;
}

Rect
Rect::translated(Lambda dx, Lambda dy) const
{
    Rect r = *this;
    r.x0 += dx;
    r.x1 += dx;
    r.y0 += dy;
    r.y1 += dy;
    return r;
}

Lambda
Rect::separation(const Rect &other) const
{
    const Lambda dx =
        std::max({Lambda(0), other.x0 - x1, x0 - other.x1});
    const Lambda dy =
        std::max({Lambda(0), other.y0 - y1, y0 - other.y1});
    return std::max(dx, dy);
}

std::string
Rect::toString() const
{
    std::ostringstream os;
    os << "[" << x0 << "," << y0 << " " << x1 << "," << y1 << "]";
    return os.str();
}

} // namespace spm::layout
