/**
 * @file
 * Mask-level layout containers.
 *
 * A MaskLayout is a named collection of rectangles on NMOS mask layers
 * together with labeled ports. Cell layouts are generated from circuit
 * netlists (cellgen.hh), tiled into arrays, surrounded by a pad ring,
 * checked by the DRC, and written out as CIF -- the full back end of
 * the paper's design methodology (Section 4).
 */

#ifndef SPM_LAYOUT_MASKLAYOUT_HH
#define SPM_LAYOUT_MASKLAYOUT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "layout/geometry.hh"
#include "layout/rules.hh"

namespace spm::layout
{

/** One rectangle on one mask layer. */
struct Shape
{
    Layer layer;
    Rect rect;

    bool operator==(const Shape &) const = default;
};

/** A labeled connection point on a layout. */
struct Port
{
    std::string name;
    Layer layer;
    Point at;
};

/** A named rectangle collection representing a cell or chip layout. */
class MaskLayout
{
  public:
    explicit MaskLayout(std::string layout_name = "cell");

    const std::string &name() const { return layoutName; }

    /** Add a rectangle; panics on degenerate geometry. */
    void addRect(Layer layer, const Rect &r);

    /** Add a labeled port at @p at. */
    void addPort(const std::string &port_name, Layer layer, Point at);

    /** All shapes in insertion order. */
    const std::vector<Shape> &shapes() const { return shapeList; }

    /** All ports. */
    const std::vector<Port> &ports() const { return portList; }

    /** Find a port by name; panics if absent. */
    const Port &port(const std::string &port_name) const;

    /** Bounding box over all shapes. */
    Rect boundingBox() const;

    /** Sum of rectangle areas on @p layer (overlaps counted twice). */
    std::int64_t areaOn(Layer layer) const;

    /** Bounding box area in lambda^2. */
    std::int64_t cellArea() const { return boundingBox().area(); }

    std::size_t shapeCount() const { return shapeList.size(); }

    /**
     * Merge another layout translated by (dx, dy); ports are copied
     * with @p port_prefix prepended.
     */
    void merge(const MaskLayout &other, Lambda dx, Lambda dy,
               const std::string &port_prefix = "");

    /** Render a coarse ASCII picture of the layout (tests, examples). */
    std::string renderAscii(Lambda scale = 2) const;

  private:
    std::string layoutName;
    std::vector<Shape> shapeList;
    std::vector<Port> portList;
};

} // namespace spm::layout

#endif // SPM_LAYOUT_MASKLAYOUT_HH
