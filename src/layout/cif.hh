/**
 * @file
 * Caltech Intermediate Form (CIF) output and a reader subset.
 *
 * "Layouts are described using a graphics language (such as Caltech
 * Intermediate Form ...) that can be interpreted to make the masks"
 * (Section 3.2.2). The writer emits the CIF 2.0 subset sufficient for
 * NMOS mask making (layer selection and boxes); the reader parses the
 * same subset back so tests can verify the round trip.
 */

#ifndef SPM_LAYOUT_CIF_HH
#define SPM_LAYOUT_CIF_HH

#include <string>

#include "layout/masklayout.hh"

namespace spm::layout
{

/**
 * Render a layout as a CIF definition. Coordinates are emitted in
 * centimicrons assuming @p lambda_um microns per lambda, as CIF
 * requires physical units.
 *
 * @param symbol_number CIF symbol number for the DS statement
 */
std::string writeCif(const MaskLayout &layout, double lambda_um = 2.5,
                     int symbol_number = 1);

/**
 * Parse the writer's CIF subset (DS/9/L/B/DF/C/E commands) back into
 * a MaskLayout. Coordinates are converted back to lambda with
 * @p lambda_um. Unknown commands cause a fatal error.
 */
MaskLayout readCif(const std::string &cif_text, double lambda_um = 2.5);

} // namespace spm::layout

#endif // SPM_LAYOUT_CIF_HH
