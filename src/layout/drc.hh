/**
 * @file
 * Design rule checker.
 *
 * "Designing a layout involves choosing electrical parameters for all
 * transistors, as well as following minimum spacing rules for the
 * intended fabrication process" (Section 3.2.2). The DRC verifies the
 * generated mask geometry against the lambda rules: minimum feature
 * width per layer and minimum spacing between disjoint features.
 */

#ifndef SPM_LAYOUT_DRC_HH
#define SPM_LAYOUT_DRC_HH

#include <string>
#include <vector>

#include "layout/masklayout.hh"
#include "layout/rules.hh"

namespace spm::layout
{

/** One design rule violation. */
struct DrcViolation
{
    enum class Kind { Width, Spacing };

    Kind kind;
    Layer layer;
    Rect a;
    Rect b; ///< second rect for spacing violations; empty for width

    std::string toString() const;
};

/**
 * Check @p layout against @p rules.
 *
 * Width: every rectangle must be at least minWidth in its narrow
 * dimension. Spacing: two rectangles on the same conducting layer
 * must either touch (same electrical net, by construction of our
 * generators) or be at least minSpacing apart.
 */
std::vector<DrcViolation> checkLayout(const MaskLayout &layout,
                                      const DesignRules &rules =
                                          defaultRules());

/** Convenience: true when checkLayout returns no violations. */
bool isClean(const MaskLayout &layout,
             const DesignRules &rules = defaultRules());

} // namespace spm::layout

#endif // SPM_LAYOUT_DRC_HH
