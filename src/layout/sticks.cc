#include "layout/sticks.hh"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/logging.hh"

namespace spm::layout
{

StickDiagram::StickDiagram(std::string diagram_name)
    : diagramName(std::move(diagram_name))
{
}

void
StickDiagram::addSegment(Layer layer, Point from, Point to,
                         const std::string &net)
{
    spm_assert(from.x == to.x || from.y == to.y,
               "stick segments must be orthogonal");
    segs.push_back(StickSegment{layer, from, to, net});
}

void
StickDiagram::addMarker(StickComponent kind, Point at,
                        const std::string &label)
{
    marks.push_back(StickMarker{kind, at, label});
}

Rect
StickDiagram::boundingBox() const
{
    if (segs.empty() && marks.empty())
        return Rect{};
    Lambda x0 = 1 << 30, y0 = 1 << 30;
    Lambda x1 = -(1 << 30), y1 = -(1 << 30);
    auto expand = [&](Point p) {
        x0 = std::min(x0, p.x);
        y0 = std::min(y0, p.y);
        x1 = std::max(x1, p.x);
        y1 = std::max(y1, p.y);
    };
    for (const auto &s : segs) {
        expand(s.from);
        expand(s.to);
    }
    for (const auto &m : marks)
        expand(m.at);
    return Rect{x0, y0, x1, y1};
}

std::size_t
StickDiagram::transistorCount() const
{
    std::size_t n = 0;
    for (const auto &m : marks) {
        if (m.kind == StickComponent::EnhancementFet ||
            m.kind == StickComponent::DepletionFet) {
            ++n;
        }
    }
    return n;
}

std::int64_t
StickDiagram::wireLength(Layer layer) const
{
    std::int64_t total = 0;
    for (const auto &s : segs) {
        if (s.layer == layer) {
            total += std::abs(static_cast<long>(s.to.x - s.from.x)) +
                     std::abs(static_cast<long>(s.to.y - s.from.y));
        }
    }
    return total;
}

std::vector<std::string>
StickDiagram::nets() const
{
    std::set<std::string> uniq;
    for (const auto &s : segs)
        uniq.insert(s.net);
    return {uniq.begin(), uniq.end()};
}

std::string
StickDiagram::renderAscii() const
{
    const Rect box = boundingBox();
    const auto cols = static_cast<std::size_t>(box.width() + 1);
    const auto lines = static_cast<std::size_t>(box.height() + 1);
    if (cols > 200 || lines > 200)
        return "(stick diagram too large to render)\n";

    // Glyph per layer: d(iffusion)/p(oly)/M(etal)/i(mplant).
    auto glyph = [](Layer layer) {
        switch (layer) {
          case Layer::Diffusion:
            return 'd';
          case Layer::Poly:
            return 'p';
          case Layer::Metal:
            return 'M';
          case Layer::Implant:
            return 'i';
          default:
            return '?';
        }
    };

    std::vector<std::string> grid(lines, std::string(cols, ' '));
    auto plot = [&](Point p, char c) {
        const auto gx = static_cast<std::size_t>(p.x - box.x0);
        const auto gy = static_cast<std::size_t>(p.y - box.y0);
        grid[lines - 1 - gy][gx] = c;
    };

    for (const auto &s : segs) {
        const char c = glyph(s.layer);
        Point p = s.from;
        const Lambda dx = s.to.x > s.from.x ? 1 : (s.to.x < s.from.x ? -1 : 0);
        const Lambda dy = s.to.y > s.from.y ? 1 : (s.to.y < s.from.y ? -1 : 0);
        while (true) {
            plot(p, c);
            if (p.x == s.to.x && p.y == s.to.y)
                break;
            p.x += dx;
            p.y += dy;
        }
    }
    for (const auto &m : marks) {
        char c = '?';
        switch (m.kind) {
          case StickComponent::EnhancementFet:
            c = 'T';
            break;
          case StickComponent::DepletionFet:
            c = 'D';
            break;
          case StickComponent::ContactCut:
            c = '*';
            break;
        }
        plot(m.at, c);
    }

    std::ostringstream os;
    os << "stick diagram: " << diagramName << " ("
       << transistorCount() << " transistors)\n";
    for (const auto &line : grid)
        os << line << "\n";
    return os.str();
}

} // namespace spm::layout
