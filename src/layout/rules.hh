/**
 * @file
 * Mask layers and the Mead-Conway lambda design rules.
 *
 * "Silicon-gate NMOS technology uses three conduction layers ... blue
 * lines represent metal conduction paths, red lines represent
 * polycrystalline silicon and green lines represent diffusion into
 * the substrate. The three layers are insulated from each other except
 * at contact cuts ... The yellow squares are areas of ion
 * implantation" (Section 3.2.2).
 */

#ifndef SPM_LAYOUT_RULES_HH
#define SPM_LAYOUT_RULES_HH

#include <string>

#include "layout/geometry.hh"

namespace spm::layout
{

/** NMOS mask layers, with the paper's stick diagram colors. */
enum class Layer : unsigned char
{
    Diffusion, ///< green: diffused paths and transistor channels
    Poly,      ///< red: polysilicon paths and transistor gates
    Metal,     ///< blue: metal power and signal paths
    Implant,   ///< yellow: depletion implant for pullup loads
    Contact,   ///< black dot: contact cut between layers
    Glass,     ///< overglass opening for bonding pads
};

inline constexpr unsigned numLayers = 6;

/** Layer name as used in reports. */
const char *layerName(Layer layer);

/** Stick diagram color per the Mead-Conway convention. */
const char *layerColor(Layer layer);

/** CIF layer name for the NMOS process (ND, NP, NM, NI, NC, NG). */
const char *cifLayerName(Layer layer);

/**
 * The lambda design rules used by the DRC and cell generators.
 * Values follow Mead & Conway chapter 2.
 */
struct DesignRules
{
    /** Minimum path width per layer, in lambda. */
    Lambda minWidth(Layer layer) const;

    /** Minimum separation between disjoint paths on a layer. */
    Lambda minSpacing(Layer layer) const;

    /** Poly must extend past diffusion by this much at a transistor. */
    Lambda gateOverhang = 2;

    /** Diffusion must extend past poly (source/drain) by this much. */
    Lambda sourceDrainExtension = 2;

    /** Contact cut size (square). */
    Lambda contactSize = 2;

    /** Surround of a contact cut by the connecting layers. */
    Lambda contactSurround = 1;

    /** Bonding pad size, per [Hon and Sequin 79] style guides. */
    Lambda padSize = 100;

    /** Minimum pad-to-pad spacing. */
    Lambda padSpacing = 50;
};

/** Rules singleton used throughout the repository. */
const DesignRules &defaultRules();

} // namespace spm::layout

#endif // SPM_LAYOUT_RULES_HH
