#include "layout/drc.hh"

#include <algorithm>
#include <sstream>

namespace spm::layout
{

std::string
DrcViolation::toString() const
{
    std::ostringstream os;
    if (kind == Kind::Width) {
        os << "width violation on " << layerName(layer) << " at "
           << a.toString();
    } else {
        os << "spacing violation on " << layerName(layer) << " between "
           << a.toString() << " and " << b.toString();
    }
    return os.str();
}

std::vector<DrcViolation>
checkLayout(const MaskLayout &layout, const DesignRules &rules)
{
    std::vector<DrcViolation> violations;

    // Group shapes per layer, sorted by x for a sweep-style spacing
    // check that avoids the full quadratic pass on big chips.
    std::vector<Rect> byLayer[numLayers];
    for (const Shape &s : layout.shapes())
        byLayer[static_cast<unsigned>(s.layer)].push_back(s.rect);

    for (unsigned li = 0; li < numLayers; ++li) {
        const auto layer = static_cast<Layer>(li);
        auto &rects = byLayer[li];
        const Lambda min_w = rules.minWidth(layer);
        const Lambda min_s = rules.minSpacing(layer);

        for (const Rect &r : rects) {
            if (std::min(r.width(), r.height()) < min_w)
                violations.push_back(
                    DrcViolation{DrcViolation::Kind::Width, layer, r, {}});
        }

        // Contacts and glass openings have no same-layer spacing rule
        // against touching shapes in our simplified rule set; all
        // conducting layers do.
        std::sort(rects.begin(), rects.end(),
                  [](const Rect &a, const Rect &b) { return a.x0 < b.x0; });
        for (std::size_t i = 0; i < rects.size(); ++i) {
            for (std::size_t j = i + 1; j < rects.size(); ++j) {
                // Past this x, nothing can violate spacing against i.
                if (rects[j].x0 >= rects[i].x1 + min_s)
                    break;
                const Lambda sep = rects[i].separation(rects[j]);
                // sep == 0 means touching or overlapping: same net.
                if (sep > 0 && sep < min_s) {
                    violations.push_back(
                        DrcViolation{DrcViolation::Kind::Spacing, layer,
                                     rects[i], rects[j]});
                }
            }
        }
    }
    return violations;
}

bool
isClean(const MaskLayout &layout, const DesignRules &rules)
{
    return checkLayout(layout, rules).empty();
}

} // namespace spm::layout
