/**
 * @file
 * Layout generation: circuits to sticks to masks.
 *
 * This module mechanizes the lower half of the paper's task dependency
 * graph (Figure 4-1): given a cell circuit (a gate::Netlist), it
 * produces the cell's stick diagram ("cell sticks"), its mask layout
 * ("cell layouts"), and assembles cell layouts into whole-chip
 * geometry with a pad ring ("cell boundary layouts"). The paper
 * predicts this stage "can be designed mechanically from the circuit
 * and stick diagrams" -- this module is that mechanism.
 *
 * The generated geometry is a standard-cell-row abstraction: device
 * tiles in a row between power rails, with a poly-riser/metal-track
 * routing channel above. It is not the hand-packed layout of Plate 1,
 * but it obeys the same lambda rules and gives faithful relative area
 * numbers.
 */

#ifndef SPM_LAYOUT_CELLGEN_HH
#define SPM_LAYOUT_CELLGEN_HH

#include <string>

#include "gate/netlist.hh"
#include "layout/masklayout.hh"
#include "layout/sticks.hh"

namespace spm::layout
{

/** Fixed height of a device tile row, in lambda. */
inline constexpr Lambda tileHeight = 24;

/** Lambda width of the tile generated for a device kind. */
Lambda tileWidth(gate::DeviceKind kind);

/**
 * Generate the mask layout of a single primitive device: diffusion
 * strip, poly gate fingers, depletion implant for static gates, and
 * power rail stubs. The tile is DRC-clean in isolation and when
 * placed at the standard pitch.
 */
MaskLayout deviceTile(gate::DeviceKind kind, const std::string &name);

/**
 * Generate the stick diagram of a cell circuit: one column per
 * device, one horizontal net line per circuit node, contact markers
 * where device pins meet nets.
 */
StickDiagram generateCellSticks(const gate::Netlist &net,
                                const std::string &name);

/**
 * Generate a full cell layout from a circuit: a row of device tiles
 * between continuous Vdd/GND rails with a routed channel above.
 * The result passes checkLayout().
 */
MaskLayout generateCellLayout(const gate::Netlist &net,
                              const std::string &name);

/**
 * Tile a rows-by-cols array of cells, alternating the two twin
 * layouts along each row as the dynamic discipline requires
 * (Section 3.2.2: "two versions of each cell").
 */
MaskLayout tileCellArray(const MaskLayout &even_cell,
                         const MaskLayout &odd_cell, unsigned rows,
                         unsigned cols, const std::string &name);

/**
 * Surround a core layout with a bonding pad ring; @p num_pads pads
 * are distributed around the perimeter.
 */
MaskLayout addPadRing(const MaskLayout &core, unsigned num_pads,
                      const std::string &name);

/** Summary numbers for a generated chip. */
struct AreaReport
{
    std::int64_t coreArea = 0;      ///< lambda^2 before pads
    std::int64_t dieArea = 0;       ///< lambda^2 including pad ring
    std::size_t rectCount = 0;
    unsigned transistors = 0;
    unsigned padCount = 0;

    /**
     * Die area in square millimeters for a given lambda, e.g.
     * lambda = 2.5 um for the 5-micron processes of 1979.
     */
    double dieAreaMm2(double lambda_um) const;

    std::string toString(double lambda_um = 2.5) const;
};

/** Compute the report for a chip layout and its source netlist. */
AreaReport analyzeChip(const MaskLayout &die, const gate::Netlist &net,
                       unsigned pad_count);

} // namespace spm::layout

#endif // SPM_LAYOUT_CELLGEN_HH
