#include "layout/masklayout.hh"

#include <algorithm>
#include <sstream>

#include "util/logging.hh"

namespace spm::layout
{

MaskLayout::MaskLayout(std::string layout_name)
    : layoutName(std::move(layout_name))
{
}

void
MaskLayout::addRect(Layer layer, const Rect &r)
{
    spm_assert(!r.empty(), "degenerate rect ", r.toString(), " in layout '",
               layoutName, "'");
    shapeList.push_back(Shape{layer, r});
}

void
MaskLayout::addPort(const std::string &port_name, Layer layer, Point at)
{
    portList.push_back(Port{port_name, layer, at});
}

const Port &
MaskLayout::port(const std::string &port_name) const
{
    for (const Port &p : portList) {
        if (p.name == port_name)
            return p;
    }
    spm_panic("no port '", port_name, "' in layout '", layoutName, "'");
}

Rect
MaskLayout::boundingBox() const
{
    Rect box;
    bool first = true;
    for (const Shape &s : shapeList) {
        if (first) {
            box = s.rect;
            first = false;
        } else {
            box = box.unionWith(s.rect);
        }
    }
    return box;
}

std::int64_t
MaskLayout::areaOn(Layer layer) const
{
    std::int64_t total = 0;
    for (const Shape &s : shapeList) {
        if (s.layer == layer)
            total += s.rect.area();
    }
    return total;
}

void
MaskLayout::merge(const MaskLayout &other, Lambda dx, Lambda dy,
                  const std::string &port_prefix)
{
    for (const Shape &s : other.shapeList)
        shapeList.push_back(Shape{s.layer, s.rect.translated(dx, dy)});
    for (const Port &p : other.portList) {
        portList.push_back(Port{port_prefix + p.name, p.layer,
                                Point{p.at.x + dx, p.at.y + dy}});
    }
}

std::string
MaskLayout::renderAscii(Lambda scale) const
{
    spm_assert(scale > 0, "scale must be positive");
    const Rect box = boundingBox();
    if (box.empty())
        return "(empty layout)\n";

    const auto cols =
        static_cast<std::size_t>((box.width() + scale - 1) / scale);
    const auto lines =
        static_cast<std::size_t>((box.height() + scale - 1) / scale);
    // Cap the picture size so huge chips stay printable.
    if (cols > 400 || lines > 400)
        return "(layout too large to render: " + box.toString() + ")\n";

    // Later layers overwrite earlier ones, matching mask stacking.
    const char glyph[numLayers] = {'d', 'p', 'M', 'i', '#', 'g'};
    std::vector<std::string> grid(lines, std::string(cols, '.'));
    for (const Shape &s : shapeList) {
        const Rect r = s.rect;
        for (Lambda y = r.y0; y < r.y1; y += scale) {
            for (Lambda x = r.x0; x < r.x1; x += scale) {
                const auto gx =
                    static_cast<std::size_t>((x - box.x0) / scale);
                const auto gy =
                    static_cast<std::size_t>((y - box.y0) / scale);
                if (gx < cols && gy < lines)
                    grid[lines - 1 - gy][gx] =
                        glyph[static_cast<unsigned>(s.layer)];
            }
        }
    }

    std::ostringstream os;
    os << layoutName << " " << box.toString() << " (" << cellArea()
       << " lambda^2)\n";
    for (const auto &line : grid)
        os << line << "\n";
    return os.str();
}

} // namespace spm::layout
