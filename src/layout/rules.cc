#include "layout/rules.hh"

#include "util/logging.hh"

namespace spm::layout
{

const char *
layerName(Layer layer)
{
    switch (layer) {
      case Layer::Diffusion:
        return "diffusion";
      case Layer::Poly:
        return "poly";
      case Layer::Metal:
        return "metal";
      case Layer::Implant:
        return "implant";
      case Layer::Contact:
        return "contact";
      case Layer::Glass:
        return "glass";
      default:
        return "?";
    }
}

const char *
layerColor(Layer layer)
{
    switch (layer) {
      case Layer::Diffusion:
        return "green";
      case Layer::Poly:
        return "red";
      case Layer::Metal:
        return "blue";
      case Layer::Implant:
        return "yellow";
      case Layer::Contact:
        return "black";
      case Layer::Glass:
        return "gray";
      default:
        return "?";
    }
}

const char *
cifLayerName(Layer layer)
{
    switch (layer) {
      case Layer::Diffusion:
        return "ND";
      case Layer::Poly:
        return "NP";
      case Layer::Metal:
        return "NM";
      case Layer::Implant:
        return "NI";
      case Layer::Contact:
        return "NC";
      case Layer::Glass:
        return "NG";
      default:
        spm_panic("unknown layer");
    }
}

Lambda
DesignRules::minWidth(Layer layer) const
{
    switch (layer) {
      case Layer::Diffusion:
        return 2;
      case Layer::Poly:
        return 2;
      case Layer::Metal:
        return 3;
      case Layer::Implant:
        return 2;
      case Layer::Contact:
        return 2;
      case Layer::Glass:
        return 10;
      default:
        spm_panic("unknown layer");
    }
}

Lambda
DesignRules::minSpacing(Layer layer) const
{
    switch (layer) {
      case Layer::Diffusion:
        return 3;
      case Layer::Poly:
        return 2;
      case Layer::Metal:
        return 3;
      case Layer::Implant:
        return 2;
      case Layer::Contact:
        return 2;
      case Layer::Glass:
        return 10;
      default:
        spm_panic("unknown layer");
    }
}

const DesignRules &
defaultRules()
{
    static const DesignRules rules;
    return rules;
}

} // namespace spm::layout
