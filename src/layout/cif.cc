#include "layout/cif.hh"

#include <cmath>
#include <sstream>

#include "util/logging.hh"

namespace spm::layout
{

namespace
{

/** Centimicrons per lambda for a given lambda in microns. */
long
centimicrons(double lambda_um, Lambda v)
{
    return std::lround(static_cast<double>(v) * lambda_um * 100.0);
}

Layer
layerFromCifName(const std::string &name)
{
    for (unsigned li = 0; li < numLayers; ++li) {
        const auto layer = static_cast<Layer>(li);
        if (name == cifLayerName(layer))
            return layer;
    }
    spm_fatal("readCif: unknown CIF layer '", name, "'");
}

} // namespace

std::string
writeCif(const MaskLayout &layout, double lambda_um, int symbol_number)
{
    std::ostringstream os;
    os << "(CIF written by systolic-pm; lambda = " << lambda_um
       << " um);\n";
    os << "DS " << symbol_number << " 1 1;\n";
    os << "9 " << layout.name() << ";\n";

    // Group boxes by layer to minimize L commands, preserving the
    // layer order of the enum.
    for (unsigned li = 0; li < numLayers; ++li) {
        const auto layer = static_cast<Layer>(li);
        bool have_layer = false;
        for (const Shape &s : layout.shapes()) {
            if (s.layer != layer)
                continue;
            if (!have_layer) {
                os << "L " << cifLayerName(layer) << ";\n";
                have_layer = true;
            }
            // CIF boxes are length (x), width (y), center x, center y,
            // all in centimicrons. Centers are doubled lambda so odd
            // lambda dimensions stay integral in centimicrons.
            const long length = centimicrons(lambda_um, s.rect.width());
            const long width = centimicrons(lambda_um, s.rect.height());
            const long cx =
                centimicrons(lambda_um, s.rect.x0 + s.rect.x1) / 2;
            const long cy =
                centimicrons(lambda_um, s.rect.y0 + s.rect.y1) / 2;
            os << "B " << length << " " << width << " " << cx << " " << cy
               << ";\n";
        }
    }
    os << "DF;\n";
    os << "C " << symbol_number << ";\n";
    os << "E\n";
    return os.str();
}

MaskLayout
readCif(const std::string &cif_text, double lambda_um)
{
    MaskLayout layout("cif");
    std::istringstream in(cif_text);
    std::string line;
    Layer current = Layer::Diffusion;
    bool have_layer = false;

    const double cu_per_lambda = lambda_um * 100.0;
    auto to_lambda = [cu_per_lambda](long cu) {
        const double v = static_cast<double>(cu) / cu_per_lambda;
        const auto r = static_cast<Lambda>(std::lround(v));
        spm_assert(std::abs(v - std::lround(v)) < 1e-6,
                   "readCif: non-integral lambda coordinate");
        return r;
    };

    while (std::getline(in, line)) {
        // Strip the trailing semicolon and comments.
        if (line.empty() || line[0] == '(')
            continue;
        if (const auto semi = line.find(';'); semi != std::string::npos)
            line = line.substr(0, semi);
        std::istringstream ls(line);
        std::string cmd;
        if (!(ls >> cmd))
            continue;

        if (cmd == "DS" || cmd == "DF" || cmd == "C" || cmd == "E") {
            continue;
        } else if (cmd == "9") {
            std::string cell_name;
            ls >> cell_name;
            layout = MaskLayout(cell_name);
            have_layer = false;
        } else if (cmd == "L") {
            std::string layer_name;
            ls >> layer_name;
            current = layerFromCifName(layer_name);
            have_layer = true;
        } else if (cmd == "B") {
            spm_assert(have_layer, "readCif: box before any L command");
            long length = 0, width = 0, cx = 0, cy = 0;
            ls >> length >> width >> cx >> cy;
            const Lambda w = to_lambda(length);
            const Lambda h = to_lambda(width);
            // Centers may land on half-lambda for odd sizes; recover
            // corners in centimicrons first.
            const Lambda x0 = to_lambda(cx - length / 2);
            const Lambda y0 = to_lambda(cy - width / 2);
            layout.addRect(current, Rect{x0, y0, x0 + w, y0 + h});
        } else {
            spm_fatal("readCif: unsupported CIF command '", cmd, "'");
        }
    }
    return layout;
}

} // namespace spm::layout
