/**
 * @file
 * Stick diagrams: the topological layout stage.
 *
 * "The stick diagram shows the relative positions of all signal paths,
 * power connections, and components, but hides their absolute sizes
 * and positions" (Section 3.2.2, Plate 1). A StickDiagram is a grid of
 * colored segments and component markers; it is the intermediate
 * artifact between a cell circuit and its mask layout in the design
 * flow of Figure 4-1.
 */

#ifndef SPM_LAYOUT_STICKS_HH
#define SPM_LAYOUT_STICKS_HH

#include <string>
#include <vector>

#include "layout/geometry.hh"
#include "layout/rules.hh"

namespace spm::layout
{

/** Components that may sit on a stick diagram. */
enum class StickComponent : unsigned char
{
    EnhancementFet, ///< poly crossing diffusion: a transistor
    DepletionFet,   ///< implanted transistor used as a pullup
    ContactCut,     ///< connection between two layers
};

/** A horizontal or vertical colored line between two grid points. */
struct StickSegment
{
    Layer layer;
    Point from;
    Point to;
    std::string net; ///< net label for connectivity checks
};

/** A component marker at a grid point. */
struct StickMarker
{
    StickComponent kind;
    Point at;
    std::string label;
};

/**
 * A topological (relative-position) cell plan.
 *
 * Coordinates are grid indices, not lambda; the layout generator
 * assigns real dimensions later, which is exactly the paper's
 * separation between "cell sticks" and "cell layouts" (Section 4).
 */
class StickDiagram
{
  public:
    explicit StickDiagram(std::string diagram_name);

    const std::string &name() const { return diagramName; }

    /** Add an orthogonal segment; panics on diagonal geometry. */
    void addSegment(Layer layer, Point from, Point to,
                    const std::string &net);

    /** Add a component marker. */
    void addMarker(StickComponent kind, Point at,
                   const std::string &label);

    const std::vector<StickSegment> &segments() const { return segs; }
    const std::vector<StickMarker> &markers() const { return marks; }

    /** Grid bounding box. */
    Rect boundingBox() const;

    /** Count of transistors (enhancement plus depletion markers). */
    std::size_t transistorCount() const;

    /**
     * Wire length per layer in grid units -- the communication cost
     * the design philosophy says dominates VLSI performance
     * (Section 2).
     */
    std::int64_t wireLength(Layer layer) const;

    /** Distinct net labels used. */
    std::vector<std::string> nets() const;

    /** Render the diagram as ASCII art with layer glyphs. */
    std::string renderAscii() const;

  private:
    std::string diagramName;
    std::vector<StickSegment> segs;
    std::vector<StickMarker> marks;
};

} // namespace spm::layout

#endif // SPM_LAYOUT_STICKS_HH
