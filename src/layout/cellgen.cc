#include "layout/cellgen.hh"

#include <algorithm>
#include <sstream>

#include "util/logging.hh"

namespace spm::layout
{

using gate::Device;
using gate::DeviceKind;

namespace
{

/** Horizontal gap between adjacent device tiles. */
constexpr Lambda tileGap = 4;

/** Routing channel geometry above the tile row. */
constexpr Lambda channelBase = tileHeight + 4;
constexpr Lambda trackPitch = 6;
constexpr Lambda trackWidth = 3;

/** Number of poly gate fingers a device tile carries. */
unsigned
fingerCount(DeviceKind kind)
{
    switch (kind) {
      case DeviceKind::Inverter:
      case DeviceKind::PassGate:
        return 1;
      case DeviceKind::Nand2:
      case DeviceKind::Nor2:
      case DeviceKind::And2:
      case DeviceKind::Or2:
        return 2;
      case DeviceKind::Xor2:
      case DeviceKind::Xnor2:
        return 2; // two fingers on each of two diffusion strips
      default:
        spm_panic("unknown device kind");
    }
}

bool
hasPullup(DeviceKind kind)
{
    return kind != DeviceKind::PassGate;
}

bool
isDoubleStrip(DeviceKind kind)
{
    return kind == DeviceKind::Xor2 || kind == DeviceKind::Xnor2;
}

} // namespace

Lambda
tileWidth(DeviceKind kind)
{
    switch (kind) {
      case DeviceKind::Inverter:
      case DeviceKind::PassGate:
        return 14;
      case DeviceKind::Nand2:
      case DeviceKind::Nor2:
      case DeviceKind::And2:
      case DeviceKind::Or2:
        return 16;
      case DeviceKind::Xor2:
      case DeviceKind::Xnor2:
        return 22;
      default:
        spm_panic("unknown device kind");
    }
}

MaskLayout
deviceTile(DeviceKind kind, const std::string &name)
{
    MaskLayout tile(name);
    const Lambda w = tileWidth(kind);

    // Power rail stubs; the row generator overlays continuous rails.
    tile.addRect(Layer::Metal, Rect{0, 0, w, 3});
    tile.addRect(Layer::Metal, Rect{0, tileHeight - 3, w, tileHeight});

    // Vertical diffusion strip(s) carrying the pulldown chain.
    tile.addRect(Layer::Diffusion, Rect{4, 3, 6, tileHeight - 3});
    if (isDoubleStrip(kind))
        tile.addRect(Layer::Diffusion, Rect{10, 3, 12, tileHeight - 3});

    // Contacts tying the strip ends to the rails.
    tile.addRect(Layer::Contact, Rect{4, 1, 6, 3});
    tile.addRect(Layer::Contact, Rect{4, tileHeight - 3, 6,
                                      tileHeight - 1});

    // Poly gate fingers crossing the diffusion: the transistors.
    const unsigned fingers = fingerCount(kind);
    const Lambda finger_x1 = isDoubleStrip(kind) ? w - 8 : w - 6;
    for (unsigned f = 0; f < fingers; ++f) {
        const Lambda y = 6 + static_cast<Lambda>(4 * f);
        tile.addRect(Layer::Poly, Rect{2, y, finger_x1, y + 2});
    }

    // Depletion implant over the pullup transistor near the Vdd rail.
    if (hasPullup(kind)) {
        tile.addRect(Layer::Implant,
                     Rect{3, tileHeight - 9, 7, tileHeight - 5});
        tile.addRect(Layer::Poly,
                     Rect{2, tileHeight - 8, 8, tileHeight - 6});
    }

    // Ports on the top edge: inputs and output pick-up points for the
    // routing channel risers (in lambda-grid positions with >= 2
    // lambda of riser-to-riser clearance at standard pitch).
    tile.addPort("a", Layer::Poly, Point{2, tileHeight});
    if (fingers > 1 || isDoubleStrip(kind))
        tile.addPort("b", Layer::Poly, Point{6, tileHeight});
    if (kind == DeviceKind::PassGate)
        tile.addPort("ctl", Layer::Poly, Point{6, tileHeight});
    tile.addPort("out", Layer::Poly, Point{10, tileHeight});
    return tile;
}

StickDiagram
generateCellSticks(const gate::Netlist &net, const std::string &name)
{
    StickDiagram sticks(name);
    const auto &devices = net.deviceList();

    // One column per device (pitch 4 grid units), one horizontal net
    // row per circuit node that is actually used.
    std::vector<int> net_row(net.nodeCount(), -1);
    int next_row = 0;
    auto row_of = [&](gate::NodeId node) {
        if (net_row[node] < 0)
            net_row[node] = next_row++;
        return net_row[node];
    };

    const Lambda dev_y = 0;
    for (std::size_t i = 0; i < devices.size(); ++i) {
        const Device &d = devices[i];
        const auto x = static_cast<Lambda>(4 * i);

        // The device itself: transistor markers on a short diffusion
        // stick, a depletion pullup for static gates.
        sticks.addSegment(Layer::Diffusion, Point{x, dev_y},
                          Point{x, dev_y + 2}, "dev" + std::to_string(i));
        sticks.addMarker(StickComponent::EnhancementFet,
                         Point{x, dev_y + 1}, Device::kindName(d.kind));
        if (d.kind != DeviceKind::PassGate) {
            sticks.addMarker(StickComponent::DepletionFet,
                             Point{x, dev_y + 2}, "pullup");
        }

        // Connections rise in poly from the device to each net row,
        // then run horizontally along the row.
        auto connect = [&](gate::NodeId node, Lambda dx) {
            if (node == gate::invalidNode)
                return;
            const int row = row_of(node);
            const auto y = static_cast<Lambda>(4 + row);
            sticks.addSegment(Layer::Poly, Point{x + dx, dev_y + 2},
                              Point{x + dx, y}, net.nodeName(node));
            sticks.addMarker(StickComponent::ContactCut, Point{x + dx, y},
                             net.nodeName(node));
        };
        connect(d.inA, 0);
        connect(d.inB, 1);
        connect(d.ctl, 1);
        connect(d.out, 2);
    }

    // Horizontal metal net lines across the used columns.
    const auto max_x = static_cast<Lambda>(
        devices.empty() ? 0 : 4 * (devices.size() - 1) + 2);
    for (gate::NodeId node = 0; node < net.nodeCount(); ++node) {
        if (net_row[node] >= 0) {
            const auto y = static_cast<Lambda>(4 + net_row[node]);
            sticks.addSegment(Layer::Metal, Point{0, y}, Point{max_x, y},
                              net.nodeName(node));
        }
    }
    return sticks;
}

MaskLayout
generateCellLayout(const gate::Netlist &net, const std::string &name)
{
    MaskLayout cell(name);
    const auto &devices = net.deviceList();
    spm_assert(!devices.empty(), "cannot lay out an empty netlist");

    // Assign each used node a routing track in the channel.
    std::vector<int> track_of(net.nodeCount(), -1);
    int next_track = 0;
    auto track = [&](gate::NodeId node) {
        if (track_of[node] < 0)
            track_of[node] = next_track++;
        return track_of[node];
    };

    // Place device tiles left to right.
    Lambda x = 0;
    struct Placed
    {
        std::size_t dev;
        Lambda at;
    };
    std::vector<Placed> placed;
    for (std::size_t i = 0; i < devices.size(); ++i) {
        MaskLayout tile =
            deviceTile(devices[i].kind, Device::kindName(devices[i].kind));
        cell.merge(tile, x, 0, "d" + std::to_string(i) + ".");
        placed.push_back(Placed{i, x});
        x += tileWidth(devices[i].kind) + tileGap;
    }
    const Lambda row_width = x - tileGap;

    // Continuous power rails across the row.
    cell.addRect(Layer::Metal, Rect{0, 0, row_width, 3});
    cell.addRect(Layer::Metal,
                 Rect{0, tileHeight - 3, row_width, tileHeight});
    cell.addPort("vdd", Layer::Metal, Point{0, tileHeight - 2});
    cell.addPort("gnd", Layer::Metal, Point{0, 1});

    // Channel routing: poly risers from tile ports up to the net's
    // horizontal metal track, with a contact at the junction.
    Lambda max_track_y = channelBase;
    auto rise = [&](Lambda px, gate::NodeId node) {
        if (node == gate::invalidNode)
            return;
        const auto t = static_cast<Lambda>(track(node));
        const Lambda ty = channelBase + t * trackPitch;
        max_track_y = std::max(max_track_y, ty + trackWidth);
        cell.addRect(Layer::Poly, Rect{px, tileHeight, px + 2, ty + 2});
        cell.addRect(Layer::Contact, Rect{px, ty, px + 2, ty + 2});
    };
    for (const Placed &p : placed) {
        const Device &d = devices[p.dev];
        rise(p.at + 2, d.inA);
        rise(p.at + 6, d.inB != gate::invalidNode ? d.inB : d.ctl);
        rise(p.at + 10, d.out);
    }

    // The horizontal metal tracks themselves.
    for (gate::NodeId node = 0; node < net.nodeCount(); ++node) {
        if (track_of[node] < 0)
            continue;
        const Lambda ty =
            channelBase + static_cast<Lambda>(track_of[node]) * trackPitch;
        cell.addRect(Layer::Metal,
                     Rect{0, ty, row_width, ty + trackWidth});
        // Edge ports so arrays can abut cells horizontally.
        cell.addPort(net.nodeName(node) + ".w", Layer::Metal,
                     Point{0, ty + 1});
        cell.addPort(net.nodeName(node) + ".e", Layer::Metal,
                     Point{row_width, ty + 1});
    }
    return cell;
}

MaskLayout
tileCellArray(const MaskLayout &even_cell, const MaskLayout &odd_cell,
              unsigned rows, unsigned cols, const std::string &name)
{
    spm_assert(rows > 0 && cols > 0, "empty array");
    MaskLayout array(name);
    const Rect ebox = even_cell.boundingBox();
    const Rect obox = odd_cell.boundingBox();
    const Lambda pitch_x =
        std::max(ebox.width(), obox.width()) + tileGap;
    const Lambda pitch_y =
        std::max(ebox.height(), obox.height()) + tileGap;

    for (unsigned r = 0; r < rows; ++r) {
        for (unsigned c = 0; c < cols; ++c) {
            const MaskLayout &cell =
                (r + c) % 2 == 0 ? even_cell : odd_cell;
            std::ostringstream prefix;
            prefix << "r" << r << "c" << c << ".";
            array.merge(cell, static_cast<Lambda>(c) * pitch_x,
                        static_cast<Lambda>(r) * pitch_y, prefix.str());
        }
    }
    return array;
}

MaskLayout
addPadRing(const MaskLayout &core, unsigned num_pads,
           const std::string &name)
{
    const DesignRules &rules = defaultRules();
    MaskLayout die(name);
    const Rect cbox = core.boundingBox();

    // Ring clearance: one pad depth plus spacing on every side. A
    // small core is padded out until its perimeter can seat all the
    // pads -- pad-limited dies were a fact of life then as now.
    const Lambda margin = rules.padSize + rules.padSpacing;
    const Lambda step = rules.padSize + rules.padSpacing;
    const Lambda inset = rules.padSize + rules.padSpacing;
    const auto per_side = static_cast<Lambda>((num_pads + 3) / 4);
    const Lambda needed = 2 * inset + per_side * step + rules.padSize;

    const Lambda die_w =
        std::max(cbox.width() + 2 * margin, needed);
    const Lambda die_h =
        std::max(cbox.height() + 2 * margin, needed);
    // Center the core in the (possibly enlarged) die.
    die.merge(core, (die_w - cbox.width()) / 2 - cbox.x0,
              (die_h - cbox.height()) / 2 - cbox.y0, "core.");

    // Distribute pads around the perimeter, clockwise from the lower
    // left. Each pad is a metal square with an overglass opening.
    // Side runs start one pad depth past each corner so pads on
    // adjacent sides never violate spacing diagonally.
    auto place_pad = [&](Lambda px, Lambda py, unsigned idx) {
        const Rect pad{px, py, px + rules.padSize, py + rules.padSize};
        die.addRect(Layer::Metal, pad);
        die.addRect(Layer::Glass, pad.inflated(-5));
        die.addPort("pad" + std::to_string(idx), Layer::Metal,
                    Point{px + rules.padSize / 2,
                          py + rules.padSize / 2});
    };
    const Lambda start = inset;
    unsigned idx = 0;
    for (unsigned side = 0; side < 4 && idx < num_pads; ++side) {
        const Lambda side_len = side % 2 == 0 ? die_w : die_h;
        for (Lambda along = start;
             along + rules.padSize + start <= side_len &&
             idx < num_pads;
             along += step) {
            switch (side) {
              case 0: // bottom
                place_pad(along, 0, idx);
                break;
              case 1: // right
                place_pad(die_w - rules.padSize, along, idx);
                break;
              case 2: // top
                place_pad(die_w - rules.padSize - along,
                          die_h - rules.padSize, idx);
                break;
              default: // left
                place_pad(0, die_h - rules.padSize - along, idx);
                break;
            }
            ++idx;
        }
    }
    spm_assert(idx == num_pads, "pad ring holds only ", idx, " of ",
               num_pads, " pads; core too small for the package");
    return die;
}

double
AreaReport::dieAreaMm2(double lambda_um) const
{
    const double um2 = static_cast<double>(dieArea) * lambda_um * lambda_um;
    return um2 / 1e6;
}

std::string
AreaReport::toString(double lambda_um) const
{
    std::ostringstream os;
    os << "core area:   " << coreArea << " lambda^2\n"
       << "die area:    " << dieArea << " lambda^2 = "
       << dieAreaMm2(lambda_um) << " mm^2 at lambda = " << lambda_um
       << " um\n"
       << "rectangles:  " << rectCount << "\n"
       << "transistors: " << transistors << "\n"
       << "pads:        " << padCount << "\n";
    return os.str();
}

AreaReport
analyzeChip(const MaskLayout &die, const gate::Netlist &net,
            unsigned pad_count)
{
    AreaReport report;
    report.dieArea = die.cellArea();
    const Lambda margin =
        defaultRules().padSize + defaultRules().padSpacing;
    const Rect box = die.boundingBox();
    const Rect core{box.x0 + margin, box.y0 + margin, box.x1 - margin,
                    box.y1 - margin};
    report.coreArea = core.empty() ? 0 : core.area();
    report.rectCount = die.shapeCount();
    report.transistors = net.transistorCount();
    report.padCount = pad_count;
    return report;
}

} // namespace spm::layout
