#include "service/backend.hh"

#include <algorithm>
#include <exception>

#include "util/logging.hh"

namespace spm::service
{

namespace
{

/** All-false result for a window shorter than the pattern. */
WindowResult
trivialWindow(std::size_t window_len)
{
    WindowResult wr;
    wr.bits.assign(window_len, false);
    wr.completed = true;
    return wr;
}

bool
hasWildcard(const std::vector<Symbol> &pattern)
{
    return std::find(pattern.begin(), pattern.end(), wildcardSymbol) !=
           pattern.end();
}

} // namespace

BehavioralBackend::BehavioralBackend(std::size_t num_cells)
    : cells(num_cells)
{
    spm_assert(cells > 0, "behavioral backend needs at least one cell");
}

WindowResult
BehavioralBackend::matchWindow(const std::vector<Symbol> &window,
                               const std::vector<Symbol> &pattern,
                               BeatWatchdog &dog)
{
    const std::size_t n = window.size();
    const std::size_t len = pattern.size();
    if (n == 0 || len > n)
        return trivialWindow(n);

    core::BehavioralChip chip(cells);
    if (chipPrep)
        chipPrep(chip);

    WindowResult wr;
    wr.bits.assign(n, false);

    // The feed-plan loop of runMatchProtocol, with two differences:
    // every beat is charged to the watchdog (a wedged chip is
    // cancelled mid-protocol, not discovered after an assert), and a
    // starved run returns a failed window instead of panicking --
    // from the service's seat, a chip that eats its inputs and emits
    // nothing is an operational fault, not a simulator bug.
    const core::ChipFeedPlan plan(cells, pattern, n);
    std::size_t collected = 0;
    for (Beat beat = 0; beat < plan.totalBeats() && collected < n;
         ++beat) {
        if (!dog.tick(1)) {
            wr.beats = dog.used();
            wr.note = "watchdog tripped at beat " +
                      std::to_string(dog.used()) + "/" +
                      std::to_string(dog.budget());
            return wr;
        }
        chip.feedPattern(plan.patternAt(beat));
        chip.feedControl(plan.controlAt(beat));
        chip.feedString(plan.stringAt(beat, window));
        chip.feedResult(plan.resultAt(beat));
        chip.step();
        ++wr.beats;

        const core::ResToken out = chip.resultOut();
        if (out.valid && collected < n) {
            wr.bits[collected] = collected >= len - 1 && out.value;
            ++collected;
        }
    }

    if (collected < n) {
        wr.note = "starved: " + std::to_string(collected) + "/" +
                  std::to_string(n) + " results emerged";
        return wr;
    }
    wr.completed = true;
    return wr;
}

MatcherBackend::MatcherBackend(std::unique_ptr<core::Matcher> matcher_impl,
                               std::size_t max_pattern,
                               std::function<Beat()> last_beats)
    : impl(std::move(matcher_impl)), maxPattern(max_pattern),
      lastBeats(std::move(last_beats))
{
    spm_assert(impl != nullptr, "matcher backend needs a matcher");
}

WindowResult
MatcherBackend::matchWindow(const std::vector<Symbol> &window,
                            const std::vector<Symbol> &pattern,
                            BeatWatchdog &dog)
{
    const std::size_t n = window.size();
    if (n == 0 || pattern.size() > n)
        return trivialWindow(n);

    WindowResult wr;
    try {
        wr.bits = impl->match(window, pattern);
    } catch (const std::exception &e) {
        wr.note = std::string("backend threw: ") + e.what();
        return wr;
    }
    if (wr.bits.size() != n) {
        wr.note = "backend returned " + std::to_string(wr.bits.size()) +
                  " bits for " + std::to_string(n) + " characters";
        wr.bits.clear();
        return wr;
    }

    // A blocking matcher cannot be stopped mid-run; charge its real
    // beat count afterwards and cancel post hoc if it blew the
    // budget -- the result is discarded, exactly as if the plug had
    // been pulled.
    wr.beats = lastBeats
        ? lastBeats()
        : static_cast<Beat>(2 * n + pattern.size() + 4);
    if (!dog.tick(wr.beats)) {
        wr.note = "watchdog tripped: " + std::to_string(wr.beats) +
                  " beats against budget " + std::to_string(dog.budget());
        wr.bits.clear();
        return wr;
    }
    wr.completed = true;
    return wr;
}

WindowResult
SoftwareBackend::matchWindow(const std::vector<Symbol> &window,
                             const std::vector<Symbol> &pattern,
                             BeatWatchdog &dog)
{
    const std::size_t n = window.size();
    if (n == 0 || pattern.size() > n)
        return trivialWindow(n);

    WindowResult wr;
    core::Matcher &m = hasWildcard(pattern)
        ? static_cast<core::Matcher &>(reference)
        : static_cast<core::Matcher &>(kmp);
    wr.bits = m.match(window, pattern);
    wr.beats = static_cast<Beat>(n);
    if (!dog.tick(wr.beats)) {
        wr.note = "watchdog tripped on software floor";
        wr.bits.clear();
        return wr;
    }
    wr.completed = true;
    return wr;
}

} // namespace spm::service
