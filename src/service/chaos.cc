#include "service/chaos.hh"

#include <chrono>
#include <cstdio>
#include <random>
#include <stdexcept>
#include <thread>

#include "core/gatechip.hh"
#include "core/reference.hh"
#include "fault/grade.hh"
#include "util/logging.hh"

namespace spm::service
{

namespace
{

/** splitmix64: the decision hash (seed, slot, window) -> u64. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t
decisionHash(std::uint64_t seed, std::uint32_t slot, std::uint64_t window,
             std::uint64_t salt)
{
    return mix64(seed ^ mix64(slot * 0x0123456789abcdefULL ^ salt) ^
                 mix64(window));
}

/** Hash to a uniform double in [0, 1). */
double
unitDouble(std::uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

} // namespace

const char *
chaosKindName(ChaosKind kind)
{
    switch (kind) {
    case ChaosKind::None:
        return "none";
    case ChaosKind::Stall:
        return "stall";
    case ChaosKind::Hang:
        return "hang";
    case ChaosKind::Throw:
        return "throw";
    case ChaosKind::Corrupt:
        return "corrupt";
    }
    return "?";
}

ChaosPlan::ChaosPlan(ChaosConfig config) : cfg(std::move(config)) {}

bool
ChaosPlan::targets(std::uint32_t slot) const
{
    if (cfg.targetSlots.empty())
        return true;
    for (std::uint32_t t : cfg.targetSlots)
        if (t == slot)
            return true;
    return false;
}

ChaosKind
ChaosPlan::rawDecision(std::uint32_t slot, std::uint64_t window) const
{
    const double u = unitDouble(decisionHash(cfg.seed, slot, window, 0));
    double edge = cfg.stallProb;
    if (u < edge)
        return ChaosKind::Stall;
    edge += cfg.hangProb;
    if (u < edge)
        return ChaosKind::Hang;
    edge += cfg.throwProb;
    if (u < edge)
        return ChaosKind::Throw;
    edge += cfg.corruptProb;
    if (u < edge)
        return ChaosKind::Corrupt;
    return ChaosKind::None;
}

ChaosKind
ChaosPlan::decide(std::uint32_t slot, std::uint64_t window) const
{
    if (!targets(slot))
        return ChaosKind::None;
    const ChaosKind kind = rawDecision(slot, window);
    if (kind == ChaosKind::None)
        return kind;
    if (cfg.maxInjectionsPerSlot > 0) {
        // Replay the slot's decision prefix so the cap is a pure
        // function of (seed, slot, window) -- no shared mutable
        // counter whose value would depend on thread interleaving.
        unsigned before = 0;
        for (std::uint64_t w = 0; w < window; ++w)
            if (rawDecision(slot, w) != ChaosKind::None)
                ++before;
        if (before >= cfg.maxInjectionsPerSlot)
            return ChaosKind::None;
    }
    return kind;
}

std::size_t
ChaosPlan::corruptIndex(std::uint32_t slot, std::uint64_t window,
                        std::size_t window_len) const
{
    spm_assert(window_len > 0, "cannot corrupt an empty window");
    if (cfg.corruptAt >= 0)
        return std::min<std::size_t>(
            static_cast<std::size_t>(cfg.corruptAt), window_len - 1);
    return decisionHash(cfg.seed, slot, window, 0xc0ffee) % window_len;
}

ChaosBackend::ChaosBackend(std::unique_ptr<ServiceBackend> wrapped,
                           std::shared_ptr<const ChaosPlan> chaos_plan,
                           std::uint32_t slot_id)
    : inner(std::move(wrapped)), plan(std::move(chaos_plan)), slot(slot_id)
{
    spm_assert(inner != nullptr, "chaos backend needs a wrapped rung");
    spm_assert(plan != nullptr, "chaos backend needs a plan");
}

WindowResult
ChaosBackend::matchWindow(const std::vector<Symbol> &window,
                          const std::vector<Symbol> &pattern,
                          BeatWatchdog &dog)
{
    const std::uint64_t w =
        windowCounter.fetch_add(1, std::memory_order_relaxed);
    switch (plan->decide(slot, w)) {
    case ChaosKind::None:
        break;
    case ChaosKind::Stall: {
        plan->noteInjection();
        // One charge past the armed budget: the wedged-array shape a
        // corrupted validity choreography produces.
        const Beat charge = dog.budget() + 1;
        dog.tick(charge);
        WindowResult r;
        r.beats = charge;
        r.completed = false;
        r.note = "chaos: stall injected";
        return r;
    }
    case ChaosKind::Hang:
        plan->noteInjection();
        // The worker thread, not the chip, is gone: sleep past the
        // batch deadline, then answer honestly. The supervisor must
        // have moved on and must discard this late result.
        std::this_thread::sleep_for(
            std::chrono::milliseconds(plan->config().hangMs));
        break;
    case ChaosKind::Throw:
        plan->noteInjection();
        throw std::runtime_error(
            "chaos: injected exception (slot " + std::to_string(slot) +
            ", window " + std::to_string(w) + ")");
    case ChaosKind::Corrupt: {
        plan->noteInjection();
        WindowResult r = inner->matchWindow(window, pattern, dog);
        if (r.completed && !r.bits.empty()) {
            const std::size_t i = plan->corruptIndex(slot, w, r.bits.size());
            r.bits[i] = !r.bits[i];
        }
        return r;
    }
    }
    return inner->matchWindow(window, pattern, dog);
}

std::vector<fault::FaultSite>
hardestUndetectedSites(std::size_t cells, BitWidth alphabet_bits,
                       std::size_t count, std::uint64_t seed)
{
    fault::GradeConfig g;
    g.cells = cells;
    g.alphabetBits = alphabet_bits;
    g.patternLen = std::min<std::size_t>(4, cells);
    g.textLen = 32;
    g.workloads = 2;
    g.seed = seed;
    g.crossCheckSamples = 0; // the corpus needs sites, not verdicts
    fault::GradeReport report = fault::FaultGrader(g).run();
    std::vector<fault::FaultSite> sites;
    sites.reserve(std::min(count, report.undetected.size()));
    for (const fault::UndetectedFault &u : report.undetected) {
        if (sites.size() >= count)
            break;
        sites.push_back(u.site);
    }
    return sites;
}

std::unique_ptr<ServiceBackend>
makePoisonedGateBackend(const ServiceConfig &config,
                        std::vector<fault::FaultSite> sites)
{
    auto gate = std::make_unique<core::GateLevelMatcher>(
        config.cells, config.alphabetBits);
    gate->setUseLevelized(true);
    gate->setChipPrep(
        [sites = std::move(sites)](core::GateChip &chip) {
            for (const fault::FaultSite &site : sites)
                chip.netlist().forceStuckAt(site.node, site.level(), 0);
        });
    core::GateLevelMatcher *gate_raw = gate.get();
    return std::make_unique<MatcherBackend>(
        std::move(gate), config.cells,
        [gate_raw] { return gate_raw->lastBeats(); });
}

ShardedMatchService::LadderFactory
makeChaosLadderFactory(std::shared_ptr<const ChaosPlan> plan,
                       ShardedMatchService::LadderFactory inner,
                       std::vector<fault::FaultSite> poison_sites)
{
    spm_assert(plan != nullptr, "chaos ladder factory needs a plan");
    if (!inner)
        inner = [](const ServiceConfig &c) { return makeDefaultLadder(c); };
    return [plan, inner, poison_sites](const ServiceConfig &c)
               -> std::vector<std::unique_ptr<ServiceBackend>> {
        std::vector<std::unique_ptr<ServiceBackend>> rungs = inner(c);
        if (!plan->targets(c.shardId))
            return rungs;
        std::vector<std::unique_ptr<ServiceBackend>> wrapped;
        wrapped.reserve(rungs.size() + 1);
        if (!poison_sites.empty())
            wrapped.push_back(std::make_unique<ChaosBackend>(
                makePoisonedGateBackend(c, poison_sites), plan, c.shardId));
        for (auto &rung : rungs)
            wrapped.push_back(std::make_unique<ChaosBackend>(
                std::move(rung), plan, c.shardId));
        return wrapped;
    };
}

std::string
ChaosCampaignReport::renderText() const
{
    char buf[64];
    std::string s;
    const auto line = [&s](const char *key, std::uint64_t v) {
        s += "chaos.";
        s += key;
        s += " = " + std::to_string(v) + "\n";
    };
    line("requests", requests);
    line("ok", okRequests);
    line("exact", exactRequests);
    line("typed_failures", typedFailures);
    line("silent_corruptions", silentCorruptions);
    line("recovered", recoveredRequests);
    line("faults_injected", faultsInjected);
    line("shard_failures", shardFailures);
    line("shard_timeouts", shardTimeouts);
    line("shard_exceptions", shardExceptions);
    line("shard_retries", shardRetries);
    line("spare_serves", spareServes);
    line("quarantines", quarantines);
    line("probes", probes);
    line("overlap_checks", overlapChecks);
    line("overlap_mismatches", overlapMismatches);
    std::snprintf(buf, sizeof(buf), "%.1f", availabilityPct);
    s += "chaos.availability_pct = " + std::string(buf) + "\n";
    std::snprintf(buf, sizeof(buf), "%.3f", meanServeMs);
    s += "chaos.mean_serve_ms = " + std::string(buf) + "\n";
    std::snprintf(buf, sizeof(buf), "%.3f", maxServeMs);
    s += "chaos.max_serve_ms = " + std::string(buf) + "\n";
    return s;
}

ChaosCampaignReport
runChaosCampaign(const ChaosCampaignConfig &config)
{
    auto plan = std::make_shared<const ChaosPlan>(config.chaos);
    ShardedMatchService sharded(
        config.sharded,
        makeChaosLadderFactory(plan, config.innerFactory,
                               config.poisonSites));

    core::ReferenceMatcher reference;
    std::mt19937_64 rng(config.seed);
    const Symbol top = static_cast<Symbol>(
        (1u << config.sharded.base.alphabetBits) - 1);
    std::uniform_int_distribution<unsigned> sym(0, top);
    std::bernoulli_distribution wild(config.wildcardProb);

    ChaosCampaignReport rep;
    rep.requests = config.requests;
    double total_ms = 0.0;
    for (std::size_t i = 0; i < config.requests; ++i) {
        MatchRequest req;
        req.id = i + 1;
        req.text.reserve(config.textLen);
        for (std::size_t j = 0; j < config.textLen; ++j)
            req.text.push_back(static_cast<Symbol>(sym(rng)));
        req.pattern.reserve(config.patternLen);
        for (std::size_t j = 0; j < config.patternLen; ++j)
            req.pattern.push_back(wild(rng) ? wildcardSymbol
                                            : static_cast<Symbol>(sym(rng)));
        const std::vector<bool> expected =
            reference.match(req.text, req.pattern);

        const auto t0 = std::chrono::steady_clock::now();
        const MatchResponse resp = sharded.serve(req);
        const auto t1 = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        total_ms += ms;
        rep.maxServeMs = std::max(rep.maxServeMs, ms);

        if (resp.ok()) {
            ++rep.okRequests;
            if (resp.result == expected)
                ++rep.exactRequests;
            else
                ++rep.silentCorruptions;
            if (!sharded.lastShardErrors().empty())
                ++rep.recoveredRequests;
        } else {
            ++rep.typedFailures;
        }
        if (config.progress)
            config.progress(i + 1, sharded);
    }
    rep.faultsInjected = plan->injections();
    const telem::Snapshot snap = sharded.metricsSnapshot();
    rep.shardFailures = snap.counterValue("sharded.shard_failures");
    rep.shardTimeouts = snap.counterValue("sharded.shard_timeouts");
    rep.shardExceptions = snap.counterValue("sharded.shard_exceptions");
    rep.shardRetries = snap.counterValue("sharded.shard_retries");
    rep.spareServes = snap.counterValue("sharded.spare_serves");
    rep.quarantines = snap.counterValue("sharded.quarantines");
    rep.probes = snap.counterValue("sharded.probes");
    rep.overlapChecks = snap.counterValue("sharded.overlap_checks");
    rep.overlapMismatches = snap.counterValue("sharded.overlap_mismatches");
    rep.availabilityPct =
        rep.requests == 0
            ? 100.0
            : 100.0 * static_cast<double>(rep.okRequests) /
                  static_cast<double>(rep.requests);
    rep.meanServeMs = rep.requests == 0
                          ? 0.0
                          : total_ms / static_cast<double>(rep.requests);
    return rep;
}

} // namespace spm::service
