/**
 * @file
 * Bounded admission with explicit backpressure.
 *
 * The chip consumes one character per beat no matter what; when
 * requests arrive faster than the array can drain them the service
 * must choose, visibly, what gives. The admission queue makes the
 * choice a configuration: Reject new work at the door, Shed the
 * oldest queued request to make room, or report that the producer
 * must Block (drain a request first) -- the three classic
 * backpressure policies. Every displaced request surfaces with a
 * typed ServiceError; nothing is dropped silently.
 */

#ifndef SPM_SERVICE_QUEUE_HH
#define SPM_SERVICE_QUEUE_HH

#include <cstdint>
#include <deque>
#include <optional>

#include "service/request.hh"

namespace spm::service
{

/** What the queue does when it is full and a request arrives. */
enum class BackpressurePolicy : unsigned char
{
    Reject,    ///< refuse the new request (QueueOverflow)
    ShedOldest,///< evict the oldest queued request (it is Shed)
    Block,     ///< make the producer wait: drain one, then admit
};

/** Printable policy name. */
const char *policyName(BackpressurePolicy policy);

/** Outcome of offering a request to the queue. */
struct Admission
{
    /** True when the offered request is now queued. */
    bool admitted = false;
    /**
     * Under Block, true when the offer must wait for a drain; the
     * caller processes one queued request and offers again.
     */
    bool mustDrain = false;
    /** Under ShedOldest, the request evicted to make room. */
    std::optional<MatchRequest> shed;
    /** The offered request handed back when not admitted. */
    std::optional<MatchRequest> bounced;
    /** The typed error for a refused offer (Reject at capacity). */
    ServiceError error;
};

/** A bounded FIFO of pending requests with a backpressure policy. */
class AdmissionQueue
{
  public:
    AdmissionQueue(std::size_t queue_capacity, BackpressurePolicy policy);

    /** Offer a request; see Admission for the possible outcomes. */
    Admission offer(MatchRequest req);

    /** Pop the oldest pending request, if any. */
    std::optional<MatchRequest> pop();

    std::size_t size() const { return pending.size(); }
    bool empty() const { return pending.empty(); }
    std::size_t capacity() const { return cap; }
    BackpressurePolicy backpressure() const { return pol; }

    /** @{ Lifetime counters for the serving report. */
    std::uint64_t offered() const { return nOffered; }
    std::uint64_t admitted() const { return nAdmitted; }
    std::uint64_t rejected() const { return nRejected; }
    std::uint64_t shedCount() const { return nShed; }
    std::uint64_t blockedOffers() const { return nBlocked; }
    /** @} */

  private:
    std::size_t cap;
    BackpressurePolicy pol;
    std::deque<MatchRequest> pending;
    std::uint64_t nOffered = 0;
    std::uint64_t nAdmitted = 0;
    std::uint64_t nRejected = 0;
    std::uint64_t nShed = 0;
    std::uint64_t nBlocked = 0;
};

} // namespace spm::service

#endif // SPM_SERVICE_QUEUE_HH
