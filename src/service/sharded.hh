/**
 * @file
 * The sharded multi-threaded front end of the match service.
 *
 * One MatchService streams a request through one chip; when the host
 * has several chips (or several simulator cores) the text can be cut
 * into shards and matched concurrently, because r_i depends only on
 * the k-1 characters before position i. ShardedMatchService owns a
 * fixed pool of worker threads and one complete MatchService per
 * shard slot -- each with its own degradation ladder, watchdog,
 * checkpoints and replay journal, so the resilience semantics of the
 * single-stream service hold per shard with nothing shared between
 * workers. serve() splits the text into at most threadCount() slices,
 * gives each shard a window that overlaps its left neighbor by k-1
 * characters, drops the overlap bits when stitching, and returns a
 * response bit-identical to the unsharded service.
 *
 * Time is reported both ways: beats is the critical path (the slowest
 * shard, what a host with one chip per shard would wait), and
 * lastTotalBeats() the summed effort across shards.
 */

#ifndef SPM_SERVICE_SHARDED_HH
#define SPM_SERVICE_SHARDED_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/backend.hh"
#include "service/service.hh"

namespace spm::service
{

/** Configuration of the sharded front end. */
struct ShardedConfig
{
    /** Per-shard serving configuration (ladder, limits, watchdog). */
    ServiceConfig base;
    /** Worker threads; also the maximum shard count. */
    unsigned threads = 4;
    /**
     * Smallest text slice worth a shard of its own: requests shorter
     * than 2 * minShardChars stay on one shard, and the shard count
     * never exceeds text/minShardChars. Keeps the k-1 overlap recompute
     * and per-shard chip warm-up amortized.
     */
    std::size_t minShardChars = 256;
};

/**
 * Data-parallel match service: a thread pool over per-shard
 * MatchService instances with overlap stitching.
 */
class ShardedMatchService
{
  public:
    /** Factory producing a fresh degradation ladder for one shard. */
    using LadderFactory =
        std::function<std::vector<std::unique_ptr<ServiceBackend>>(
            const ServiceConfig &)>;

    /** Build with the default ladder in every shard slot. */
    explicit ShardedMatchService(ShardedConfig config);

    /**
     * Build with @p factory making each shard's ladder (called once
     * per shard slot at construction) -- how the benches pin a shard
     * to one particular engine.
     */
    ShardedMatchService(ShardedConfig config, const LadderFactory &factory);

    ~ShardedMatchService();

    ShardedMatchService(const ShardedMatchService &) = delete;
    ShardedMatchService &operator=(const ShardedMatchService &) = delete;

    const ShardedConfig &config() const { return cfg; }
    unsigned threadCount() const { return static_cast<unsigned>(workers.size()); }

    /** Shards serve() would use for a request of this shape. */
    std::size_t shardCountFor(std::size_t text_len,
                              std::size_t pattern_len) const;

    /** Typed validation, identical to the unsharded service. */
    std::optional<ServiceError> validate(const MatchRequest &req) const;

    /**
     * Serve one request across the shards. The result bits, and every
     * per-shard journal, are deterministic for a given request and
     * shard count; only wall-clock interleaving varies between runs.
     */
    MatchResponse serve(const MatchRequest &req);

    /** @{ Breakdown of the last serve() call. */
    std::size_t lastShards() const { return nLastShards; }
    /** Slowest shard's beats: the parallel makespan. */
    Beat lastCriticalBeats() const { return lastCritical; }
    /** Summed beats across shards: the total effort. */
    Beat lastTotalBeats() const { return lastTotal; }
    /** @} */

    /** The per-shard service in slot @p i (journals, stats). */
    const MatchService &shard(std::size_t i) const { return *shards.at(i); }

    /**
     * Serving metrics summed across every shard (counters and
     * histogram cells add; queue_depth gauges sum), plus the
     * sharded-layer gauges threads and last_shards.
     */
    telem::Snapshot metricsSnapshot() const;

    /** "sharded.x = n" lines plus every shard's statsDump(). */
    std::string statsDump() const;

  private:
    void startWorkers();
    void workerLoop();
    /** Run all tasks on the pool and block until every one finished. */
    void runAll(std::vector<std::function<void()>> &tasks);

    ShardedConfig cfg;
    std::vector<std::unique_ptr<MatchService>> shards;

    std::vector<std::thread> workers;
    std::mutex mu;
    std::condition_variable taskReady;
    std::condition_variable batchDone;
    std::deque<std::function<void()>> taskQueue;
    std::size_t inFlight = 0;
    bool stopping = false;

    std::size_t nLastShards = 0;
    Beat lastCritical = 0;
    Beat lastTotal = 0;
};

} // namespace spm::service

#endif // SPM_SERVICE_SHARDED_HH
