/**
 * @file
 * The sharded multi-threaded front end of the match service, with
 * shard-level fault tolerance.
 *
 * One MatchService streams a request through one chip; when the host
 * has several chips (or several simulator cores) the text can be cut
 * into shards and matched concurrently, because r_i depends only on
 * the k-1 characters before position i. ShardedMatchService owns a
 * fixed pool of worker threads and one complete MatchService per
 * shard slot -- each with its own degradation ladder, watchdog,
 * checkpoints and replay journal, so the resilience semantics of the
 * single-stream service hold per shard with nothing shared between
 * workers. serve() splits the text into at most threadCount() slices.
 * Each shard's window overlaps its left neighbor by k-1 characters of
 * warm-up (dropped at stitching: those bits are computed with
 * truncated history) and, when the overlap cross-check is on, also
 * extends k-1 characters past its own end -- so the first k-1 *kept*
 * positions of every interior slice are computed twice with full
 * history, once by each neighbor. The stitched response is
 * bit-identical to the unsharded service.
 *
 * The fault-tolerance story mirrors Section 5's wafer-harvest model
 * one level up: the paper buys yield from defective cells with spare
 * cells and reconfiguration; the serving layer buys availability from
 * defective *shards* with spare shard slots and re-routing:
 *
 *   bounded waits  serve() never blocks past batchDeadlineMs on a
 *                  wedged worker -- unfinished slices are abandoned
 *                  (their late results discarded by attempt epoch)
 *                  and retried elsewhere;
 *   task isolation an exception escaping a shard task is caught at
 *                  the task boundary and surfaced as a typed
 *                  ShardError, never process death;
 *   spare slots    a failed or timed-out slice is re-executed on a
 *                  spare MatchService slot (the harvest analogy made
 *                  explicit), up to maxSliceRetries attempts;
 *   quarantine     a slot that fails repeatedly trips a circuit
 *                  breaker: it stops receiving primary slices until a
 *                  half-open probe (every probeAfterBatches batches)
 *                  succeeds;
 *   overlap check  each slice's right extension recomputes the k-1
 *                  bits its right neighbor will keep -- before
 *                  stitching, the two full-history copies are compared
 *                  as an end-to-end integrity check; a mismatch
 *                  re-executes both suspect slices on spares and dumps
 *                  a replayable conformance case ID via the flight
 *                  recorder.
 *
 * Time is reported both ways: beats is the critical path (the slowest
 * shard, what a host with one chip per shard would wait), and
 * lastTotalBeats() the summed effort across shards (including retried
 * attempts).
 */

#ifndef SPM_SERVICE_SHARDED_HH
#define SPM_SERVICE_SHARDED_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/backend.hh"
#include "service/service.hh"
#include "telemetry/flightrec.hh"

namespace spm::service
{

/** Configuration of the sharded front end. */
struct ShardedConfig
{
    /** Per-shard serving configuration (ladder, limits, watchdog). */
    ServiceConfig base;
    /** Worker threads; also the maximum shard count. */
    unsigned threads = 4;
    /**
     * Smallest text slice worth a shard of its own: requests shorter
     * than 2 * minShardChars stay on one shard, and the shard count
     * never exceeds text/minShardChars. Keeps the k-1 overlap recompute
     * and per-shard chip warm-up amortized.
     */
    std::size_t minShardChars = 256;
    /**
     * Spare shard slots (each a full MatchService) kept out of primary
     * slice assignment and used to re-execute failed, timed-out or
     * overlap-suspect slices -- the Section 5 spare-cell idea applied
     * to the serving layer. 0 disables failover (a failed slice fails
     * the request).
     */
    unsigned spareShards = 1;
    /**
     * Re-execution attempts per slice beyond the primary one. Retries
     * run inline on the calling thread against spare slots, so a pool
     * whose workers are all wedged still makes progress.
     */
    unsigned maxSliceRetries = 2;
    /**
     * Bounded wait for the primary slice wave, in wall-clock
     * milliseconds; a slice not resolved by then is abandoned (its
     * worker may still be running; the late result is discarded) and
     * retried on a spare. 0 waits forever -- only for tests that want
     * the pre-deadline behavior.
     */
    std::uint32_t batchDeadlineMs = 2000;
    /**
     * Consecutive slice failures that quarantine a shard slot behind
     * its circuit breaker. 0 disables quarantine.
     */
    unsigned quarantineAfter = 3;
    /**
     * Batches after which a quarantined slot is probed half-open with
     * one primary slice; success closes the breaker, failure reopens
     * it for another round.
     */
    unsigned probeAfterBatches = 8;
    /**
     * Extend every slice k-1 characters past its end so neighbor
     * shards compute the boundary bits twice with full history, and
     * compare the copies before stitching; a mismatch re-executes
     * both suspects on spares. Off = minimal windows, no redundancy.
     */
    bool overlapCheck = true;
    /**
     * Pin worker i to core i mod hardware_concurrency() (Linux
     * affinity; elsewhere a no-op). Off by default: pinning helps a
     * dedicated benchmark host and hurts a shared one, so the benches
     * opt in explicitly.
     */
    bool pinThreads = false;
};

/** Circuit-breaker state of one shard slot. */
enum class BreakerState : unsigned char
{
    Closed,   ///< healthy, receives primary slices
    Open,     ///< quarantined, skipped at assignment
    HalfOpen, ///< probe in flight; next verdict decides
};

/** Printable name of a breaker state ("closed", "open", "half-open"). */
const char *breakerStateName(BreakerState state);

/** How one slice attempt failed (for lastShardErrors()). */
enum class ShardFaultKind : unsigned char
{
    Exception,       ///< the shard task threw; caught at the boundary
    Timeout,         ///< not resolved within batchDeadlineMs
    ServeError,      ///< the shard's serve() returned a typed error
    OverlapMismatch, ///< neighbor overlap bits disagreed
};

/** Printable name of a shard fault kind ("exception", ...). */
const char *shardFaultKindName(ShardFaultKind kind);

/**
 * One shard-level fault observed while serving a request: which slice
 * on which slot, what went wrong, and which attempt it was. The
 * sharded service keeps the list for the last serve() call so hosts
 * and tests can audit recoveries (a recovered request is still ok()).
 */
struct ShardError
{
    std::size_t slice = 0;   ///< slice index within the request
    std::uint32_t slot = 0;  ///< shard slot that failed
    ShardFaultKind kind = ShardFaultKind::ServeError;
    unsigned attempt = 0;    ///< 0 = primary, 1+ = retries
    std::string detail;

    /** "slice 2 slot 1 attempt 0 timeout: ..." one-liner. */
    std::string toString() const;
};

/**
 * Data-parallel match service: a thread pool over per-shard
 * MatchService instances with overlap stitching, spare-slot failover
 * and per-slot circuit breakers.
 */
class ShardedMatchService
{
  public:
    /** Factory producing a fresh degradation ladder for one shard. */
    using LadderFactory =
        std::function<std::vector<std::unique_ptr<ServiceBackend>>(
            const ServiceConfig &)>;

    /** Build with the default ladder in every shard slot. */
    explicit ShardedMatchService(ShardedConfig config);

    /**
     * Build with @p factory making each shard's ladder (called once
     * per slot at construction, primaries first, then spares; the
     * ServiceConfig argument carries the slot's shardId) -- how the
     * benches pin a shard to one particular engine and the chaos
     * harness wraps rungs per slot.
     */
    ShardedMatchService(ShardedConfig config, const LadderFactory &factory);

    ~ShardedMatchService();

    ShardedMatchService(const ShardedMatchService &) = delete;
    ShardedMatchService &operator=(const ShardedMatchService &) = delete;

    const ShardedConfig &config() const { return cfg; }
    unsigned threadCount() const { return static_cast<unsigned>(workers.size()); }
    unsigned spareCount() const { return cfg.spareShards; }

    /** Shards serve() would use for a request of this shape. */
    std::size_t shardCountFor(std::size_t text_len,
                              std::size_t pattern_len) const;

    /** Typed validation, identical to the unsharded service. */
    std::optional<ServiceError> validate(const MatchRequest &req) const;

    /**
     * Serve one request across the shards. The result bits, and every
     * per-shard journal, are deterministic for a given request and
     * shard count; only wall-clock interleaving varies between runs.
     * Never blocks past the batch deadline plus the (bounded, inline)
     * retry work; a slice that cannot be recovered yields a typed
     * ShardFailed error, never a hang and never silent corruption.
     */
    MatchResponse serve(const MatchRequest &req);

    /** @{ Breakdown of the last serve() call. */
    std::size_t lastShards() const { return nLastShards; }
    /** Slowest shard's beats: the parallel makespan. */
    Beat lastCriticalBeats() const { return lastCritical; }
    /** Summed beats across shards (including retries). */
    Beat lastTotalBeats() const { return lastTotal; }
    /** Shard faults observed (and possibly recovered) last serve(). */
    const std::vector<ShardError> &lastShardErrors() const
    {
        return lastErrors;
    }
    /** @} */

    /**
     * The per-shard service in slot @p i (journals, stats). Primary
     * slots are [0, threadCount()); spares follow.
     */
    const MatchService &shard(std::size_t i) const { return *shards.at(i); }

    /** Breaker state of primary slot @p i. */
    BreakerState breakerState(std::size_t i) const;

    /**
     * Serving metrics summed across every shard slot (counters and
     * histogram cells add; queue_depth gauges sum), plus the
     * sharded-layer gauges (threads, spares, last_shards,
     * quarantined_now) and supervision counters (shard_failures,
     * shard_timeouts, shard_exceptions, shard_retries, spare_serves,
     * quarantines, probes, overlap_checks, overlap_mismatches) and
     * the queue_wait_beats histogram (enqueue-to-dequeue handoff
     * latency per slice task, in beats).
     */
    telem::Snapshot metricsSnapshot() const;

    /** "sharded.x = n" lines plus every shard's statsDump(). */
    std::string statsDump() const;

    /**
     * The sharded layer's own flight recorder: failover, quarantine
     * and overlap-mismatch events, each carrying a replayable
     * conformance case ID for the suspect slice. Overlap mismatches
     * trip a dump automatically (see telem::FlightRecorder).
     */
    const telem::FlightRecorder &flightRecorder() const { return flight; }
    telem::FlightRecorder &flightRecorder() { return flight; }

    /**
     * Request-level exemplar traces at the sharded boundary: slowest
     * requests, a uniform sample, and every overlap-mismatch /
     * shard-fault / watchdog-trip request force-retained.
     */
    const telem::ExemplarReservoir &exemplars() const
    {
        return exemplarStore;
    }
    telem::ExemplarReservoir &exemplars() { return exemplarStore; }

  private:
    struct Batch;
    struct SliceState;

    void startWorkers();
    void workerLoop(unsigned worker_index);
    /**
     * Queue @p tasks on the pool (does not wait). Each task's
     * enqueue-to-dequeue wait lands in queue_wait_beats.
     */
    void enqueue(std::vector<std::function<void()>> &tasks);
    /**
     * Wait until every slice of @p batch resolved, or @p deadline_ms
     * elapsed (0 = no deadline). Returns true when all resolved --
     * the bounded replacement for the old unbounded runAll() join.
     */
    bool awaitBatch(Batch &batch, std::uint32_t deadline_ms);

    /** Serve @p piece on slot @p slot, exceptions -> typed outcome. */
    MatchResponse serveSliceOn(std::size_t slot, const MatchRequest &piece,
                               std::string *exception_text);

    /** Record a slice verdict on @p slot's breaker. */
    void noteSlotOutcome(std::uint32_t slot, bool ok);

    /** Primary slots currently assignable (breaker closed or probing). */
    std::vector<std::uint32_t> assignableSlots();

    ShardedConfig cfg;
    std::vector<std::unique_ptr<MatchService>> shards;

    std::vector<std::thread> workers;
    std::mutex mu;
    std::condition_variable taskReady;
    std::deque<std::function<void()>> taskQueue;
    bool stopping = false;

    /** Guards slot health, busy leases and the batch counter. */
    mutable std::mutex healthMu;
    struct SlotHealth
    {
        BreakerState state = BreakerState::Closed;
        unsigned consecutiveFailures = 0;
        std::uint64_t openedAtBatch = 0;
        bool busy = false; ///< leased to a (possibly abandoned) task
    };
    std::vector<SlotHealth> slotHealth; ///< primaries only
    std::uint64_t batchCounter = 0;
    std::uint32_t spareRotor = 0;

    std::size_t nLastShards = 0;
    Beat lastCritical = 0;
    Beat lastTotal = 0;
    std::vector<ShardError> lastErrors;

    // Supervision metrics (striped: workers bump them concurrently).
    telem::Registry supMetrics{4};
    telem::Counter &shardFailuresCtr;
    telem::Counter &shardTimeoutsCtr;
    telem::Counter &shardExceptionsCtr;
    telem::Counter &shardRetriesCtr;
    telem::Counter &spareServesCtr;
    telem::Counter &quarantinesCtr;
    telem::Counter &probesCtr;
    telem::Counter &overlapChecksCtr;
    telem::Counter &overlapMismatchesCtr;
    telem::Histogram &queueWaitHist;
    telem::FlightRecorder flight;
    telem::ExemplarReservoir exemplarStore;
    /**
     * Request-level observer on the supervision registry, so its
     * metrics render with the "sharded." prefix the snapshot applies
     * ("sharded.req.latency_ns", ...); the per-shard services keep
     * their own slice-level observers under bare "req.*" names.
     */
    telem::RequestObserver reqObs;
};

} // namespace spm::service

#endif // SPM_SERVICE_SHARDED_HH
