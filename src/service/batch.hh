/**
 * @file
 * The batched request path.
 *
 * The streaming service (service.hh) optimizes one stream's latency
 * and resilience; this front end optimizes fleet throughput -- the
 * north-star serving shape where millions of short independent
 * streams arrive together and the kernel's plane words are kept full
 * by batch width, not by any single stream's length. Requests that
 * share a pattern ride one core::BatchMatcher pass; requests with
 * distinct patterns still share the call but cost one pass each.
 *
 * The front end keeps the serving-layer contract of its streaming
 * sibling: every request is validated against the typed error
 * taxonomy before it touches the kernel, the bus model charges every
 * admitted character (batched, not per character), a sampled
 * cross-check replays whole passes against the reference matcher, and
 * batch width lands in a telemetry histogram so capacity planning can
 * see the real distribution, not an average.
 */

#ifndef SPM_SERVICE_BATCH_HH
#define SPM_SERVICE_BATCH_HH

#include <cstdint>
#include <vector>

#include "core/batch.hh"
#include "service/service.hh"

namespace spm::service
{

/** Configuration of the batched request path. */
struct BatchServiceConfig
{
    /** Bounds, alphabet and bus shared with the streaming service. */
    ServiceConfig base;
    /** Most streams admitted into one serveBatch/feedGroup call. */
    std::size_t maxBatchStreams = 4096;
    /**
     * Replay every Nth kernel pass through the reference matcher and
     * compare bit for bit (0 disables). Sampling, not per-chunk: the
     * batched path trades the streaming service's every-chunk audit
     * for throughput and leans on the conformance harness instead.
     */
    unsigned crossCheckEvery = 0;
};

/**
 * A set of streams fed chunk-group by chunk-group, all sharing one
 * pattern. Host-side handle: the service holds no per-stream state,
 * so groups scale to whatever the host can index.
 */
class BatchStreamGroup
{
  public:
    std::size_t width() const { return carries.size(); }
    const std::vector<Symbol> &groupPattern() const { return pattern; }

  private:
    friend class BatchMatchService;
    std::vector<Symbol> pattern;
    std::vector<core::StreamCarry> carries;
};

/** The batched match service. */
class BatchMatchService
{
  public:
    explicit BatchMatchService(BatchServiceConfig config);

    /** Force the kernel tier (A/B runs and conformance oracles). */
    BatchMatchService(BatchServiceConfig config, core::SimdIsa isa);

    const BatchServiceConfig &config() const { return cfg; }

    /**
     * Serve many one-shot requests in as few kernel passes as their
     * patterns allow. Responses are positionally parallel to
     * @p batch; each is independently validated, so one malformed
     * request rejects alone instead of failing the batch.
     */
    std::vector<MatchResponse> serveBatch(
        const std::vector<MatchRequest> &batch);

    /**
     * Open a group of @p width streams matching @p pattern. The
     * pattern is validated here, once, against the base config.
     *
     * @param err receives the typed validation error, Ok when valid
     */
    BatchStreamGroup openGroup(std::vector<Symbol> pattern,
                               std::size_t width, ServiceError &err);

    /** Result of one feedGroup() call. */
    struct GroupFeedResult
    {
        /** Typed error; bits are valid only when code is Ok. */
        ServiceError error;
        /** Match bits for exactly the new chunk positions, per stream. */
        std::vector<std::vector<bool>> bits;

        bool ok() const { return error.code == ErrorCode::Ok; }
    };

    /**
     * Feed chunks[i] to group stream i (empty chunks fine; widths
     * must agree). One kernel pass for the whole group; results have
     * whole-stream semantics, bit-identical to matching each stream
     * unchunked.
     */
    GroupFeedResult feedGroup(BatchStreamGroup &group,
                              const std::vector<std::vector<Symbol>> &chunks);

    /** The wrapped batch matcher (kernel tier, last widths). */
    const core::BatchMatcher &matcher() const { return engine; }

    /**
     * Lifetime metrics: counters batches, streams, streamChars,
     * kernelPasses, rejected, crossChecks, crossCheckFailures;
     * histogram batch_width (streams per kernel pass).
     */
    const telem::Registry &stats() const { return metrics; }

    /** The counters and histogram as one snapshot (bare names). */
    telem::Snapshot metricsSnapshot() const;

    /** "batch.x = n" stat lines plus the bus transfer counters. */
    std::string statsDump() const;

    /**
     * Tail-sampled exemplar traces: the slowest passes, a uniform
     * sample, and every pass whose sampled cross-check mismatched,
     * each with its stage split and a replayable case ID for the
     * pass's lead stream.
     */
    const telem::ExemplarReservoir &exemplars() const
    {
        return exemplarStore;
    }
    telem::ExemplarReservoir &exemplars() { return exemplarStore; }

  private:
    /** One kernel pass + charging + sampled cross-check. */
    std::vector<std::vector<bool>> runPass(
        std::vector<core::StreamCarry> &carries,
        const std::vector<const std::vector<Symbol> *> &chunks,
        const std::vector<Symbol> &pattern, bool &checked,
        std::uint64_t &mismatches, telem::StageClock &clock);

    BatchServiceConfig cfg;
    core::BatchMatcher engine;

    telem::Registry metrics{1};
    telem::Counter &batchesCtr;
    telem::Counter &streamsCtr;
    telem::Counter &streamCharsCtr;
    telem::Counter &kernelPassesCtr;
    telem::Counter &rejectedCtr;
    telem::Counter &crossChecksCtr;
    telem::Counter &crossCheckFailuresCtr;
    telem::Histogram &batchWidthHist;
    telem::ExemplarReservoir exemplarStore;
    telem::RequestObserver reqObs;
};

} // namespace spm::service

#endif // SPM_SERVICE_BATCH_HH
