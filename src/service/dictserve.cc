#include "service/dictserve.hh"

#include <algorithm>
#include <utility>

#include "telemetry/flightrec.hh"
#include "telemetry/telem.hh"
#include "util/logging.hh"

namespace spm::service
{

std::string
DictError::toString() const
{
    if (patternIndex == noPattern)
        return error.toString();
    return "dict[" + std::to_string(patternIndex) +
           "]: " + error.toString();
}

DictMatchService::DictMatchService(DictServiceConfig config)
    : cfg(std::move(config)),
      dictionariesCtr(metrics.counter("dictionaries")),
      chunksCtr(metrics.counter("chunks")),
      chunkCharsCtr(metrics.counter("chunkChars")),
      hitsCtr(metrics.counter("hits")),
      rejectedCtr(metrics.counter("rejected")),
      crossChecksCtr(metrics.counter("crossChecks")),
      crossCheckFailuresCtr(metrics.counter("crossCheckFailures")),
      dictSizeHist(metrics.histogram(
          "dict_size", 0.0,
          static_cast<double>(std::max<std::size_t>(cfg.maxDictPatterns, 1)),
          16)),
      hitsPerChunkHist(metrics.histogram("hits_per_chunk", 0.0, 256.0, 16)),
      planesPerSweepHist(metrics.histogram("planes_per_sweep", 0.0, 17.0, 17)),
      reqObs(metrics, "dict", &exemplarStore)
{
    spm_assert(cfg.maxDictPatterns > 0,
               "dictionary service needs room for at least one member");
    spm_assert(cfg.base.alphabetBits >= 1 && cfg.base.alphabetBits <= 16,
               "alphabet width must be in [1, 16] bits");
}

DictError
DictMatchService::validateDict(const multipattern::DictPatterns &dict) const
{
    if (dict.empty())
        return DictError::make(ServiceError::make(
            ErrorCode::InvalidDictionary, "empty dictionary"));
    if (dict.size() > cfg.maxDictPatterns)
        return DictError::make(ServiceError::make(
            ErrorCode::InvalidDictionary,
            "dictionary of " + std::to_string(dict.size()) +
                " members exceeds limit " +
                std::to_string(cfg.maxDictPatterns)));
    // Every member obeys the shared single-pattern admission rules
    // (service.hh): non-empty, within maxPatternLen, alphabet-clean.
    for (std::size_t i = 0; i < dict.size(); ++i)
        if (auto err = validatePattern(cfg.base, dict[i],
                                       "dict[" + std::to_string(i) + "]"))
            return DictError::make(*err, i);
    return DictError::okValue();
}

DictSession
DictMatchService::openSession(multipattern::DictPatterns dict,
                              DictError &err)
{
    DictSession session;
    err = validateDict(dict);
    if (!err.ok()) {
        rejectedCtr.add();
        return session;
    }
    session.dict = std::move(dict);
    dictionariesCtr.add();
    SPM_THIST(dictSizeHist, static_cast<double>(session.dict.size()));
    return session;
}

DictMatchService::ChunkResult
DictMatchService::feedChunk(DictSession &session,
                            const std::vector<Symbol> &chunk,
                            std::uint64_t enqueued_ns)
{
    ChunkResult res;
    if (!session.open()) {
        res.error = DictError::make(ServiceError::make(
            ErrorCode::InvalidDictionary, "session was never opened"));
        return res;
    }

    telem::StageClock clock;
    clock.start();
    if (clock.running() && enqueued_ns != 0)
        clock.note(telem::Stage::QueueWait, telem::nowNs() - enqueued_ns);

    if (auto verr =
            validateText(cfg.base, chunk, session.stream.seen, "chunk")) {
        rejectedCtr.add();
        res.error = DictError::make(*verr);
        return res;
    }

    // Charge every admitted character through the host bus model
    // before the kernel sees it, like the sibling front ends.
    cfg.base.bus.transferChunk(chunk.data(), chunk.data(), chunk.size());

    const bool audit = cfg.crossCheckEvery != 0 &&
                       session.chunksFed % cfg.crossCheckEvery == 0;
    std::vector<Symbol> beforeTail;
    if (audit)
        beforeTail = session.stream.tail;
    clock.mark(telem::Stage::Admit);

    res.hits = multipattern::feedDictChunk(engine, session.stream, chunk,
                                           session.dict);
    ++session.chunksFed;
    chunksCtr.add();
    chunkCharsCtr.add(chunk.size());
    const std::uint64_t chunkHits = res.hits.totalHits();
    hitsCtr.add(chunkHits);
    SPM_THIST(hitsPerChunkHist, static_cast<double>(chunkHits));
    SPM_THIST(planesPerSweepHist,
              static_cast<double>(engine.lastPlanes()));
    clock.mark(telem::Stage::Kernel);

    if (audit) {
        crossChecksCtr.add();
        multipattern::NaiveDictMatcher naive;
        std::vector<Symbol> window = std::move(beforeTail);
        window.insert(window.end(), chunk.begin(), chunk.end());
        const multipattern::DictHits expect =
            naive.matchAll(window, session.dict);
        const std::size_t skip = window.size() - chunk.size();
        bool bad = false;
        for (std::size_t p = 0; p < session.dict.size() && !bad; ++p)
            for (std::size_t c = 0; c < chunk.size(); ++c)
                if (res.hits.bits[p][c] != expect.bits[p][skip + c]) {
                    bad = true;
                    break;
                }
        if (bad) {
            crossCheckFailuresCtr.add();
            res.error = DictError::make(ServiceError::make(
                ErrorCode::BackendFailed,
                "cross-check caught a dictionary-kernel mismatch in "
                "this chunk"));
        }
        clock.mark(telem::Stage::CrossCheck);
    }
    clock.mark(telem::Stage::Commit);
    // The steady-rate contract: one text character per beat.
    clock.addBeats(static_cast<Beat>(chunk.size()));
    reqObs.observe(clock, session.chunksFed, !res.ok(),
                   "cross-check mismatch", [&] {
                       return telem::literalCaseId(cfg.base.alphabetBits,
                                                   session.dict[0], chunk);
                   });
    return res;
}

DictMatchService::DictMatchResult
DictMatchService::matchDict(const std::vector<Symbol> &text,
                            const multipattern::DictPatterns &dict)
{
    DictMatchResult res;
    DictError err;
    DictSession session = openSession(dict, err);
    if (!err.ok()) {
        res.error = err;
        return res;
    }
    ChunkResult chunk = feedChunk(session, text);
    res.error = chunk.error;
    res.hits = std::move(chunk.hits);
    res.totalHits = res.hits.totalHits();
    return res;
}

telem::Snapshot
DictMatchService::metricsSnapshot() const
{
    return metrics.snapshot();
}

std::string
DictMatchService::statsDump() const
{
    return metricsSnapshot().renderText("dict.") + cfg.base.bus.statsDump();
}

} // namespace spm::service
