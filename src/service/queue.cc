#include "service/queue.hh"

#include "util/logging.hh"

namespace spm::service
{

const char *
policyName(BackpressurePolicy policy)
{
    switch (policy) {
    case BackpressurePolicy::Reject:
        return "reject";
    case BackpressurePolicy::ShedOldest:
        return "shed-oldest";
    case BackpressurePolicy::Block:
        return "block";
    }
    return "?";
}

AdmissionQueue::AdmissionQueue(std::size_t queue_capacity,
                               BackpressurePolicy policy)
    : cap(queue_capacity), pol(policy)
{
    spm_assert(cap > 0, "admission queue needs capacity >= 1");
}

Admission
AdmissionQueue::offer(MatchRequest req)
{
    ++nOffered;
    Admission adm;
    if (pending.size() < cap) {
        pending.push_back(std::move(req));
        ++nAdmitted;
        adm.admitted = true;
        return adm;
    }

    switch (pol) {
    case BackpressurePolicy::Reject:
        ++nRejected;
        adm.error = ServiceError::make(
            ErrorCode::QueueOverflow,
            "queue at capacity " + std::to_string(cap));
        adm.bounced = std::move(req);
        return adm;
    case BackpressurePolicy::ShedOldest:
        adm.shed = std::move(pending.front());
        pending.pop_front();
        ++nShed;
        pending.push_back(std::move(req));
        ++nAdmitted;
        adm.admitted = true;
        return adm;
    case BackpressurePolicy::Block:
        // The queue cannot make room itself; the producer must drain
        // one request and offer again. Counted so overload reports
        // show how often producers stalled.
        ++nBlocked;
        adm.mustDrain = true;
        adm.bounced = std::move(req);
        return adm;
    }
    return adm;
}

std::optional<MatchRequest>
AdmissionQueue::pop()
{
    if (pending.empty())
        return std::nullopt;
    MatchRequest req = std::move(pending.front());
    pending.pop_front();
    return req;
}

} // namespace spm::service
