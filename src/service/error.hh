/**
 * @file
 * The service error taxonomy.
 *
 * The serving layer never reports failure as a bare boolean or a
 * stringly-typed message: every rejected, shed, cancelled or failed
 * request carries a ServiceError whose code names the exact contract
 * that was violated. Hosts route on the code (retry later on
 * QueueOverflow, fix the request on InvalidPattern, distrust the
 * backend on BackendFailed) and log the detail.
 */

#ifndef SPM_SERVICE_ERROR_HH
#define SPM_SERVICE_ERROR_HH

#include <string>

namespace spm::service
{

/** Why the service could not (fully) serve a request. */
enum class ErrorCode : unsigned char
{
    Ok,               ///< no error; the response result is valid
    InvalidPattern,   ///< empty pattern, or pattern malformed
    AlphabetOverflow, ///< a symbol outside the configured alphabet
    OversizedRequest, ///< text or pattern beyond the configured bounds
    QueueOverflow,    ///< admission queue full under the Reject policy
    Shed,             ///< evicted from the queue by a newer request
    DeadlineExceeded, ///< watchdog or request deadline cancelled it
    BackendFailed,    ///< every ladder rung failed or was exhausted
    Cancelled,        ///< the caller abandoned the streaming session
    InvalidCheckpoint,///< resume token inconsistent with the request
    ShardFailed,      ///< a shard slice died/stalled beyond recovery
    BatchMismatch,    ///< chunk group shape inconsistent with the group
    InvalidDictionary,///< dictionary empty or beyond the member limit
};

/** Stable printable name of an error code, e.g. "deadline_exceeded". */
const char *errorCodeName(ErrorCode code);

/** A typed error: the code routes, the detail explains. */
struct ServiceError
{
    ErrorCode code = ErrorCode::Ok;
    std::string detail;

    /** True when this actually carries an error. */
    explicit operator bool() const { return code != ErrorCode::Ok; }

    /** "<code_name>: <detail>" (or just the name with no detail). */
    std::string toString() const;

    static ServiceError ok() { return {}; }
    static ServiceError make(ErrorCode code, std::string detail)
    {
        return {code, std::move(detail)};
    }
};

} // namespace spm::service

#endif // SPM_SERVICE_ERROR_HH
