#include "service/error.hh"

namespace spm::service
{

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
    case ErrorCode::Ok:
        return "ok";
    case ErrorCode::InvalidPattern:
        return "invalid_pattern";
    case ErrorCode::AlphabetOverflow:
        return "alphabet_overflow";
    case ErrorCode::OversizedRequest:
        return "oversized_request";
    case ErrorCode::QueueOverflow:
        return "queue_overflow";
    case ErrorCode::Shed:
        return "shed";
    case ErrorCode::DeadlineExceeded:
        return "deadline_exceeded";
    case ErrorCode::BackendFailed:
        return "backend_failed";
    case ErrorCode::Cancelled:
        return "cancelled";
    case ErrorCode::InvalidCheckpoint:
        return "invalid_checkpoint";
    case ErrorCode::ShardFailed:
        return "shard_failed";
    case ErrorCode::BatchMismatch:
        return "batch_mismatch";
    case ErrorCode::InvalidDictionary:
        return "invalid_dictionary";
    }
    return "?";
}

std::string
ServiceError::toString() const
{
    std::string s = errorCodeName(code);
    if (!detail.empty()) {
        s += ": ";
        s += detail;
    }
    return s;
}

} // namespace spm::service
