#include "service/sharded.hh"

#include <algorithm>

#include "telemetry/telem.hh"
#include "util/logging.hh"

namespace spm::service
{

ShardedMatchService::ShardedMatchService(ShardedConfig config)
    : ShardedMatchService(std::move(config), [](const ServiceConfig &c) {
          return makeDefaultLadder(c);
      })
{
}

ShardedMatchService::ShardedMatchService(ShardedConfig config,
                                         const LadderFactory &factory)
    : cfg(std::move(config))
{
    spm_assert(cfg.threads > 0, "sharded service needs at least one thread");
    spm_assert(cfg.minShardChars > 0, "minShardChars must be positive");
    shards.reserve(cfg.threads);
    for (unsigned i = 0; i < cfg.threads; ++i) {
        ServiceConfig shard_cfg = cfg.base;
        shard_cfg.shardId = i;
        shards.push_back(std::make_unique<MatchService>(
            std::move(shard_cfg), factory(cfg.base)));
    }
    startWorkers();
}

ShardedMatchService::~ShardedMatchService()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    taskReady.notify_all();
    for (std::thread &w : workers)
        w.join();
}

void
ShardedMatchService::startWorkers()
{
    workers.reserve(cfg.threads);
    for (unsigned i = 0; i < cfg.threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

void
ShardedMatchService::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu);
            taskReady.wait(lock,
                           [this] { return stopping || !taskQueue.empty(); });
            if (taskQueue.empty())
                return; // stopping and drained
            task = std::move(taskQueue.front());
            taskQueue.pop_front();
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mu);
            --inFlight;
        }
        batchDone.notify_all();
    }
}

void
ShardedMatchService::runAll(std::vector<std::function<void()>> &tasks)
{
    {
        std::lock_guard<std::mutex> lock(mu);
        inFlight += tasks.size();
        for (std::function<void()> &t : tasks)
            taskQueue.push_back(std::move(t));
    }
    taskReady.notify_all();
    std::unique_lock<std::mutex> lock(mu);
    batchDone.wait(lock, [this] { return inFlight == 0; });
}

std::size_t
ShardedMatchService::shardCountFor(std::size_t text_len,
                                   std::size_t pattern_len) const
{
    const std::size_t floor_chars =
        std::max(cfg.minShardChars, std::max<std::size_t>(pattern_len, 1));
    const std::size_t by_size = text_len / floor_chars;
    return std::clamp<std::size_t>(by_size, 1, cfg.threads);
}

std::optional<ServiceError>
ShardedMatchService::validate(const MatchRequest &req) const
{
    return shards.front()->validate(req);
}

MatchResponse
ShardedMatchService::serve(const MatchRequest &req)
{
    const std::size_t n = req.text.size();
    const std::size_t k = req.pattern.size();
    const std::size_t nshards = shardCountFor(n, k);
    nLastShards = nshards;

    if (nshards <= 1) {
        MatchResponse r = shards.front()->serve(req);
        lastCritical = r.beats;
        lastTotal = r.beats;
        return r;
    }

    // Shard s answers result positions [starts[s], starts[s+1]); its
    // window reaches k-1 characters left of that so boundary matches
    // see their full history.
    std::vector<std::size_t> starts(nshards + 1);
    for (std::size_t s = 0; s <= nshards; ++s)
        starts[s] = n * s / nshards;

    std::vector<MatchResponse> sub(nshards);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(nshards);
    for (std::size_t s = 0; s < nshards; ++s) {
        tasks.push_back([this, &req, &starts, &sub, s, k] {
            SPM_TSPAN("sharded.shard", telem::cat::sharded, 0,
                      static_cast<std::uint64_t>(s));
            const std::size_t start = starts[s];
            const std::size_t ws = start >= k - 1 ? start - (k - 1) : 0;
            MatchRequest piece;
            piece.id = req.id;
            piece.pattern = req.pattern;
            piece.deadlineBeats = req.deadlineBeats;
            piece.text.assign(req.text.begin() + ws,
                              req.text.begin() + starts[s + 1]);
            sub[s] = shards[s]->serve(piece);
            if (sub[s].ok()) {
                // Drop the overlap: those bits belong to shard s-1.
                sub[s].result.erase(sub[s].result.begin(),
                                    sub[s].result.begin() + (start - ws));
            }
        });
    }
    SPM_TSPAN_NAMED(batch_span, "sharded.serve", telem::cat::sharded, 0,
                    req.id);
    runAll(tasks);

    MatchResponse out;
    out.id = req.id;
    out.backend = sub[0].backend;
    lastCritical = 0;
    lastTotal = 0;
    for (std::size_t s = 0; s < nshards; ++s) {
        const MatchResponse &r = sub[s];
        if (!r.ok() && out.ok()) {
            out.error = r.error;
            out.error.detail =
                "shard " + std::to_string(s) + ": " + r.error.detail;
        }
        if (r.backend != out.backend)
            out.backend += "+" + r.backend;
        out.degradations += r.degradations;
        out.chunks += r.chunks;
        out.checkpoints += r.checkpoints;
        out.watchdogTrips += r.watchdogTrips;
        out.crossCheckFailures += r.crossCheckFailures;
        lastTotal += r.beats;
        lastCritical = std::max(lastCritical, r.beats);
        out.busSeconds = std::max(out.busSeconds, r.busSeconds);
        if (out.ok())
            out.result.insert(out.result.end(), r.result.begin(),
                              r.result.end());
    }
    // The host waits for the slowest shard, not the sum.
    out.beats = lastCritical;
    batch_span.setBeat(lastCritical);
    if (!out.ok())
        out.result.clear();
    return out;
}

telem::Snapshot
ShardedMatchService::metricsSnapshot() const
{
    telem::Snapshot snap;
    for (const auto &shard : shards)
        snap.merge(shard->metricsSnapshot());
    snap.setGauge("threads", static_cast<double>(threadCount()));
    snap.setGauge("last_shards", static_cast<double>(nLastShards));
    return snap;
}

std::string
ShardedMatchService::statsDump() const
{
    std::string s;
    s += "sharded.threads = " + std::to_string(threadCount()) + "\n";
    s += "sharded.last_shards = " + std::to_string(nLastShards) + "\n";
    s += "sharded.last_critical_beats = " + std::to_string(lastCritical) +
         "\n";
    s += "sharded.last_total_beats = " + std::to_string(lastTotal) + "\n";
    for (std::size_t i = 0; i < shards.size(); ++i) {
        s += "sharded.shard" + std::to_string(i) + ".served = " +
             std::to_string(
                 shards[i]->stats().counter("served").value()) +
             "\n";
    }
    return s;
}

} // namespace spm::service
