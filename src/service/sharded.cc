#include "service/sharded.hh"

#include <algorithm>
#include <chrono>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "telemetry/telem.hh"
#include "util/logging.hh"

namespace spm::service
{

namespace
{

/**
 * Pin the calling thread to one core (round-robin over the cores the
 * machine has). Linux-only; a best-effort no-op elsewhere or when the
 * scheduler refuses. Pinning removes the migration jitter that shows
 * up as long-tail queue_wait_beats on a loaded host.
 */
void
pinToCore(unsigned worker_index)
{
#if defined(__linux__)
    const unsigned cores =
        std::max(1u, std::thread::hardware_concurrency());
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(worker_index % cores, &set);
    if (pthread_setaffinity_np(pthread_self(), sizeof(set), &set) != 0)
        spm_warn("sharded: could not pin worker ", worker_index,
                 " to a core; continuing unpinned");
#else
    (void)worker_index;
#endif
}

/**
 * Slice failures that are the request's fault, not the shard's: a
 * retry on a spare would fail identically, so they propagate as-is
 * and charge nothing against the slot's circuit breaker.
 */
bool
isRequestFault(ErrorCode code)
{
    switch (code) {
    case ErrorCode::InvalidPattern:
    case ErrorCode::AlphabetOverflow:
    case ErrorCode::OversizedRequest:
    case ErrorCode::QueueOverflow:
    case ErrorCode::Shed:
    case ErrorCode::InvalidCheckpoint:
        return true;
    default:
        return false;
    }
}

} // namespace

const char *
breakerStateName(BreakerState state)
{
    switch (state) {
    case BreakerState::Closed:
        return "closed";
    case BreakerState::Open:
        return "open";
    case BreakerState::HalfOpen:
        return "half-open";
    }
    return "?";
}

const char *
shardFaultKindName(ShardFaultKind kind)
{
    switch (kind) {
    case ShardFaultKind::Exception:
        return "exception";
    case ShardFaultKind::Timeout:
        return "timeout";
    case ShardFaultKind::ServeError:
        return "serve_error";
    case ShardFaultKind::OverlapMismatch:
        return "overlap_mismatch";
    }
    return "?";
}

std::string
ShardError::toString() const
{
    return "slice " + std::to_string(slice) + " slot " +
           std::to_string(slot) + " attempt " + std::to_string(attempt) +
           " " + shardFaultKindName(kind) +
           (detail.empty() ? "" : ": " + detail);
}

/**
 * One slice of a sharded request: the piece (window including the k-1
 * overlap), where the current attempt runs, and how it resolved.
 * Written by the owning task under the batch mutex; a task whose
 * epoch was bumped (abandoned on timeout) discards its late result.
 */
struct ShardedMatchService::SliceState
{
    MatchRequest piece;
    std::size_t overlapLen = 0; ///< warm-up chars left of the slice start
    std::size_t keepLen = 0;    ///< result bits this slice contributes
    std::size_t rightExt = 0;   ///< extra chars past the slice end
    std::uint32_t slot = 0;     ///< slot of the latest attempt
    bool abandoned = false;     ///< timed out; straggler owns the lease
    unsigned epoch = 0;
    bool resolved = false;
    bool threw = false;
    std::string exceptionText;
    MatchResponse resp;
    Beat attemptBeats = 0; ///< beats summed across every attempt
};

/** Shared state of one serve() slice wave; tasks hold it by shared_ptr. */
struct ShardedMatchService::Batch
{
    std::mutex bmu;
    std::condition_variable resolvedCv;
    std::vector<SliceState> slices;
    std::size_t unresolved = 0;
};

ShardedMatchService::ShardedMatchService(ShardedConfig config)
    : ShardedMatchService(std::move(config), [](const ServiceConfig &c) {
          return makeDefaultLadder(c);
      })
{
}

ShardedMatchService::ShardedMatchService(ShardedConfig config,
                                         const LadderFactory &factory)
    : cfg(std::move(config)),
      shardFailuresCtr(supMetrics.counter("shard_failures")),
      shardTimeoutsCtr(supMetrics.counter("shard_timeouts")),
      shardExceptionsCtr(supMetrics.counter("shard_exceptions")),
      shardRetriesCtr(supMetrics.counter("shard_retries")),
      spareServesCtr(supMetrics.counter("spare_serves")),
      quarantinesCtr(supMetrics.counter("quarantines")),
      probesCtr(supMetrics.counter("probes")),
      overlapChecksCtr(supMetrics.counter("overlap_checks")),
      overlapMismatchesCtr(supMetrics.counter("overlap_mismatches")),
      queueWaitHist(
          supMetrics.histogram("queue_wait_beats", 0.0, 65536.0, 16)),
      flight(cfg.base.flightCapacity),
      reqObs(supMetrics, "sharded", &exemplarStore)
{
    spm_assert(cfg.threads > 0, "sharded service needs at least one thread");
    spm_assert(cfg.minShardChars > 0, "minShardChars must be positive");
    const unsigned slots = cfg.threads + cfg.spareShards;
    shards.reserve(slots);
    for (unsigned i = 0; i < slots; ++i) {
        ServiceConfig shard_cfg = cfg.base;
        shard_cfg.shardId = i;
        auto ladder = factory(shard_cfg);
        shards.push_back(std::make_unique<MatchService>(
            std::move(shard_cfg), std::move(ladder)));
    }
    slotHealth.resize(cfg.threads);
    startWorkers();
}

ShardedMatchService::~ShardedMatchService()
{
    {
        std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    taskReady.notify_all();
    for (std::thread &w : workers)
        w.join();
}

void
ShardedMatchService::startWorkers()
{
    workers.reserve(cfg.threads);
    for (unsigned i = 0; i < cfg.threads; ++i)
        workers.emplace_back([this, i] { workerLoop(i); });
}

void
ShardedMatchService::workerLoop(unsigned worker_index)
{
    if (cfg.pinThreads)
        pinToCore(worker_index);
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu);
            taskReady.wait(lock,
                           [this] { return stopping || !taskQueue.empty(); });
            if (taskQueue.empty())
                return; // stopping and drained
            task = std::move(taskQueue.front());
            taskQueue.pop_front();
        }
        // Task boundary: nothing a task throws may unwind into the
        // pool thread and terminate the process. Slice tasks convert
        // their own exceptions to typed outcomes before this; the
        // catch here is the independent last line of defense.
        try {
            task();
        } catch (const std::exception &e) {
            spm_warn("sharded worker task threw past its boundary: ",
                     e.what());
        } catch (...) {
            spm_warn("sharded worker task threw a non-standard exception");
        }
    }
}

void
ShardedMatchService::enqueue(std::vector<std::function<void()>> &tasks)
{
    // One lock acquisition and one wakeup for the whole wave (the
    // batched handoff), with each task wrapped so its handoff latency
    // -- enqueue to the moment a worker starts it -- lands in
    // queue_wait_beats, converted from wall nanoseconds at the
    // prototype beat period.
    const auto enqueued_at = std::chrono::steady_clock::now();
    {
        std::lock_guard<std::mutex> lock(mu);
        for (std::function<void()> &t : tasks)
            taskQueue.push_back(
                [this, enqueued_at, task = std::move(t)] {
                    [[maybe_unused]] const double wait_ns =
                        std::chrono::duration<double, std::nano>(
                            std::chrono::steady_clock::now() -
                            enqueued_at)
                            .count();
                    SPM_THIST(queueWaitHist,
                              wait_ns * 1000.0 /
                                  static_cast<double>(prototypeBeatPs));
                    task();
                });
    }
    taskReady.notify_all();
}

bool
ShardedMatchService::awaitBatch(Batch &batch, std::uint32_t deadline_ms)
{
    std::unique_lock<std::mutex> lock(batch.bmu);
    const auto all_resolved = [&batch] { return batch.unresolved == 0; };
    if (deadline_ms == 0) {
        batch.resolvedCv.wait(lock, all_resolved);
        return true;
    }
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(deadline_ms);
    return batch.resolvedCv.wait_until(lock, deadline, all_resolved);
}

MatchResponse
ShardedMatchService::serveSliceOn(std::size_t slot,
                                  const MatchRequest &piece,
                                  std::string *exception_text)
{
    SPM_TSPAN("sharded.shard", telem::cat::sharded, 0,
              static_cast<std::uint64_t>(slot));
    try {
        return shards[slot]->serve(piece);
    } catch (const std::exception &e) {
        *exception_text = e.what();
    } catch (...) {
        *exception_text = "non-standard exception";
    }
    MatchResponse r;
    r.id = piece.id;
    r.error = ServiceError::make(ErrorCode::ShardFailed,
                                 "shard task threw: " + *exception_text);
    return r;
}

void
ShardedMatchService::noteSlotOutcome(std::uint32_t slot, bool ok)
{
    if (slot >= slotHealth.size())
        return; // spares carry no breaker
    bool quarantined = false;
    {
        std::lock_guard<std::mutex> lock(healthMu);
        SlotHealth &h = slotHealth[slot];
        if (ok) {
            h.consecutiveFailures = 0;
            h.state = BreakerState::Closed;
        } else {
            ++h.consecutiveFailures;
            if (h.state == BreakerState::HalfOpen) {
                // Failed probe: straight back to quarantine.
                h.state = BreakerState::Open;
                h.openedAtBatch = batchCounter;
                quarantined = true;
            } else if (cfg.quarantineAfter > 0 &&
                       h.state == BreakerState::Closed &&
                       h.consecutiveFailures >= cfg.quarantineAfter) {
                h.state = BreakerState::Open;
                h.openedAtBatch = batchCounter;
                quarantined = true;
            }
        }
    }
    if (quarantined) {
        quarantinesCtr.add();
        telem::FlightEvent ev;
        ev.kind = telem::FlightKind::Quarantine;
        ev.shard = slot;
        ev.note = "breaker opened on consecutive failures";
        flight.record(std::move(ev));
        spm_warn("sharded: slot ", slot, " quarantined");
    }
}

std::vector<std::uint32_t>
ShardedMatchService::assignableSlots()
{
    std::vector<std::uint32_t> out;
    std::uint64_t probes = 0;
    {
        std::lock_guard<std::mutex> lock(healthMu);
        ++batchCounter;
        for (std::uint32_t s = 0; s < slotHealth.size(); ++s) {
            SlotHealth &h = slotHealth[s];
            if (h.busy)
                continue; // leased to a (possibly abandoned) task
            if (h.state == BreakerState::Open) {
                if (cfg.probeAfterBatches > 0 &&
                    batchCounter - h.openedAtBatch >= cfg.probeAfterBatches) {
                    h.state = BreakerState::HalfOpen;
                    ++probes;
                } else {
                    continue;
                }
            }
            out.push_back(s);
        }
    }
    if (probes > 0)
        probesCtr.add(probes);
    return out;
}

BreakerState
ShardedMatchService::breakerState(std::size_t i) const
{
    std::lock_guard<std::mutex> lock(healthMu);
    return slotHealth.at(i).state;
}

std::size_t
ShardedMatchService::shardCountFor(std::size_t text_len,
                                   std::size_t pattern_len) const
{
    const std::size_t floor_chars =
        std::max(cfg.minShardChars, std::max<std::size_t>(pattern_len, 1));
    const std::size_t by_size = text_len / floor_chars;
    return std::clamp<std::size_t>(by_size, 1, cfg.threads);
}

std::optional<ServiceError>
ShardedMatchService::validate(const MatchRequest &req) const
{
    return shards.front()->validate(req);
}

MatchResponse
ShardedMatchService::serve(const MatchRequest &req)
{
    const std::size_t n = req.text.size();
    const std::size_t k = req.pattern.size();
    const std::size_t overlap = k > 0 ? k - 1 : 0;
    lastErrors.clear();

    telem::StageClock clock;
    clock.start();
    if (clock.running() && req.enqueuedNs != 0)
        clock.note(telem::Stage::QueueWait,
                   telem::nowNs() - req.enqueuedNs);

    SPM_TSPAN_NAMED(batch_span, "sharded.serve", telem::cat::sharded, 0,
                    req.id);

    // Route around quarantined and leased slots: the wafer-harvest
    // move one level up. With every primary slot unavailable the
    // request still gets served -- on a spare, or (spare-less)
    // forced through slot 0 as an implicit probe.
    std::vector<std::uint32_t> assignable = assignableSlots();
    bool forced_spare = false;
    if (assignable.empty()) {
        if (cfg.spareShards > 0) {
            assignable.push_back(cfg.threads +
                                 (spareRotor++ % cfg.spareShards));
            forced_spare = true;
        } else {
            assignable.push_back(0);
        }
    }
    const std::size_t nshards =
        std::min(shardCountFor(n, k), assignable.size());
    nLastShards = nshards;

    // Shard s answers result positions [starts[s], starts[s+1]); its
    // window reaches k-1 characters left of that so boundary matches
    // see their full history, and k-1 characters right of it so the
    // first k-1 positions of the next slice are computed twice with
    // full history -- the genuinely redundant region the overlap
    // cross-check compares. (The left extension alone would not do:
    // a slice's own first k-1 bits are warm-up, computed with
    // truncated history, and are dropped, not cross-checked.)
    std::vector<std::size_t> starts(nshards + 1);
    for (std::size_t s = 0; s <= nshards; ++s)
        starts[s] = n * s / nshards;

    auto batch = std::make_shared<Batch>();
    batch->slices.resize(nshards);
    batch->unresolved = nshards;
    for (std::size_t s = 0; s < nshards; ++s) {
        SliceState &st = batch->slices[s];
        const std::size_t start = starts[s];
        const std::size_t ws = start >= overlap ? start - overlap : 0;
        const std::size_t ext =
            cfg.overlapCheck && nshards > 1
                ? std::min(overlap, n - starts[s + 1])
                : 0;
        st.piece.id = req.id;
        st.piece.pattern = req.pattern;
        st.piece.deadlineBeats = req.deadlineBeats;
        st.piece.text.assign(req.text.begin() + ws,
                             req.text.begin() + starts[s + 1] + ext);
        st.overlapLen = start - ws;
        st.keepLen = starts[s + 1] - start;
        st.rightExt = ext;
        st.slot = assignable[s];
        // Slices inherit a fresh enqueue stamp so each shard's own
        // stage clock credits the pool handoff as queue wait.
        if (clock.running())
            st.piece.enqueuedNs = telem::nowNs();
    }
    clock.mark(telem::Stage::Admit);

    if (nshards == 1) {
        // One slice: serve inline on the calling thread (no handoff
        // latency; the cooperative watchdog already bounds the work).
        SliceState &st = batch->slices[0];
        {
            std::lock_guard<std::mutex> lock(healthMu);
            if (st.slot < slotHealth.size())
                slotHealth[st.slot].busy = true;
        }
        st.resp = serveSliceOn(st.slot, st.piece, &st.exceptionText);
        st.threw = !st.exceptionText.empty();
        st.resolved = true;
        st.attemptBeats = st.resp.beats;
        batch->unresolved = 0;
        {
            std::lock_guard<std::mutex> lock(healthMu);
            if (st.slot < slotHealth.size())
                slotHealth[st.slot].busy = false;
        }
        if (forced_spare)
            spareServesCtr.add();
    } else {
        std::vector<std::function<void()>> tasks;
        tasks.reserve(nshards);
        for (std::size_t s = 0; s < nshards; ++s) {
            const std::uint32_t slot = batch->slices[s].slot;
            {
                std::lock_guard<std::mutex> lock(healthMu);
                slotHealth[slot].busy = true;
            }
            tasks.push_back([this, batch, s, slot] {
                SliceState &st = batch->slices[s];
                unsigned my_epoch;
                {
                    // The epoch snapshot races with the supervisor's
                    // abandonment bump unless taken under the batch
                    // lock; a task whose slice was abandoned before it
                    // even started has nothing to serve -- just free
                    // the lease it inherited.
                    std::lock_guard<std::mutex> lock(batch->bmu);
                    if (st.resolved) {
                        std::lock_guard<std::mutex> hl(healthMu);
                        slotHealth[slot].busy = false;
                        return;
                    }
                    my_epoch = st.epoch;
                }
                std::string exc;
                MatchResponse r = serveSliceOn(slot, st.piece, &exc);
                bool owned = false;
                {
                    std::lock_guard<std::mutex> lock(batch->bmu);
                    if (st.epoch == my_epoch && !st.resolved) {
                        st.resp = std::move(r);
                        st.threw = !exc.empty();
                        st.exceptionText = std::move(exc);
                        st.attemptBeats += st.resp.beats;
                        st.resolved = true;
                        --batch->unresolved;
                        owned = true;
                    }
                }
                batch->resolvedCv.notify_all();
                // A slice the supervisor accepted has its lease
                // released by the supervisor (synchronously, so the
                // next batch sees the slot free); an abandoned
                // straggler keeps the lease until here, so no new
                // task enters this slot's MatchService concurrently.
                if (!owned) {
                    std::lock_guard<std::mutex> lock(healthMu);
                    slotHealth[slot].busy = false;
                }
            });
        }
        enqueue(tasks);
        if (!awaitBatch(*batch, cfg.batchDeadlineMs)) {
            // Abandon the stragglers: bump their epoch so a late
            // write is discarded, mark them timed out, and let the
            // retry loop re-execute them on spares. The wedged worker
            // keeps its slot lease until it actually finishes.
            std::lock_guard<std::mutex> lock(batch->bmu);
            for (std::size_t s = 0; s < nshards; ++s) {
                SliceState &st = batch->slices[s];
                if (st.resolved)
                    continue;
                ++st.epoch;
                st.abandoned = true;
                st.resolved = true;
                st.threw = false;
                st.resp = MatchResponse{};
                st.resp.id = req.id;
                st.resp.error = ServiceError::make(
                    ErrorCode::ShardFailed,
                    "slice timed out after " +
                        std::to_string(cfg.batchDeadlineMs) + " ms");
                --batch->unresolved;
                shardTimeoutsCtr.add();
                ShardError se;
                se.slice = s;
                se.slot = st.slot;
                se.kind = ShardFaultKind::Timeout;
                se.detail = st.resp.error.detail;
                lastErrors.push_back(std::move(se));
                noteSlotOutcome(st.slot, false);
            }
        }
        // Release the leases of slices whose worker answered in time,
        // before the caller can start another batch -- the worker only
        // has bookkeeping left, so the slot is genuinely free. An
        // abandoned slice's lease stays with its straggler.
        {
            std::lock_guard<std::mutex> lock(healthMu);
            for (std::size_t s = 0; s < nshards; ++s) {
                const SliceState &st = batch->slices[s];
                if (!st.abandoned && st.slot < slotHealth.size())
                    slotHealth[st.slot].busy = false;
            }
        }
    }

    // --- Recovery: retry failed slices on spare slots ----------------
    const auto sliceCaseId = [&](const SliceState &st) {
        return telem::literalCaseId(cfg.base.alphabetBits, req.pattern,
                                    st.piece.text);
    };
    const auto retryOnSpare = [&](std::size_t s, SliceState &st,
                                  unsigned attempt,
                                  const std::string &why) -> bool {
        if (cfg.spareShards == 0)
            return false;
        const std::uint32_t spare =
            cfg.threads + (spareRotor++ % cfg.spareShards);
        shardRetriesCtr.add();
        spareServesCtr.add();
        telem::FlightEvent ev;
        ev.kind = telem::FlightKind::ShardFailover;
        ev.shard = st.slot;
        ev.requestId = req.id;
        ev.offset = s;
        ev.caseId = sliceCaseId(st);
        ev.note = why + "; retrying slice " + std::to_string(s) +
                  " on spare slot " + std::to_string(spare);
        flight.record(std::move(ev));
        st.exceptionText.clear();
        st.resp = serveSliceOn(spare, st.piece, &st.exceptionText);
        st.threw = !st.exceptionText.empty();
        st.attemptBeats += st.resp.beats;
        st.slot = spare;
        if (st.threw || !st.resp.ok()) {
            ShardError se;
            se.slice = s;
            se.slot = spare;
            se.attempt = attempt;
            se.kind = st.threw ? ShardFaultKind::Exception
                               : ShardFaultKind::ServeError;
            se.detail = st.threw ? st.exceptionText
                                 : st.resp.error.toString();
            lastErrors.push_back(std::move(se));
        }
        return true;
    };

    for (std::size_t s = 0; s < nshards; ++s) {
        SliceState &st = batch->slices[s];
        if (!st.threw && st.resp.ok()) {
            noteSlotOutcome(st.slot, true);
            continue;
        }
        if (!st.threw && isRequestFault(st.resp.error.code))
            continue; // the request's fault; a retry would not help
        // An operational shard fault: exception, timeout, or a
        // retryable serve error. Charge the slot and fail over.
        if (st.threw) {
            shardExceptionsCtr.add();
            ShardError se;
            se.slice = s;
            se.slot = st.slot;
            se.kind = ShardFaultKind::Exception;
            se.detail = st.exceptionText;
            lastErrors.push_back(std::move(se));
            noteSlotOutcome(st.slot, false);
        } else if (st.resp.error.code != ErrorCode::ShardFailed) {
            // (Timeouts were recorded and charged at abandonment.)
            ShardError se;
            se.slice = s;
            se.slot = st.slot;
            se.kind = ShardFaultKind::ServeError;
            se.detail = st.resp.error.toString();
            lastErrors.push_back(std::move(se));
            noteSlotOutcome(st.slot, false);
        }
        shardFailuresCtr.add();
        const std::string why = st.threw
                                    ? "exception: " + st.exceptionText
                                    : st.resp.error.toString();
        for (unsigned attempt = 1; attempt <= cfg.maxSliceRetries;
             ++attempt) {
            if (!retryOnSpare(s, st, attempt,
                              attempt == 1 ? why : "retry failed"))
                break;
            if (!st.threw &&
                (st.resp.ok() || isRequestFault(st.resp.error.code)))
                break;
        }
        if (st.threw ||
            (!st.resp.ok() && !isRequestFault(st.resp.error.code))) {
            // Unrecovered: surface as the typed shard error.
            const std::string detail =
                st.threw ? "shard task threw: " + st.exceptionText
                         : st.resp.error.toString();
            st.resp.error = ServiceError::make(
                ErrorCode::ShardFailed,
                "slice " + std::to_string(s) + " unrecovered after " +
                    std::to_string(cfg.maxSliceRetries) +
                    " retries: " + detail);
            st.resp.result.clear();
        }
    }
    // Request-level view: pool handoff, shard kernels, recovery
    // retries all happened between the admit mark and here.
    clock.mark(telem::Stage::Kernel);

    // --- Overlap cross-check: a free end-to-end integrity check ------
    // Neighbor shards computed the k-1 overlap twice; disagreement
    // means one of them corrupted bits past its own ladder cross-check
    // (or with that check off). Re-execute both suspects on spares; an
    // unresolved disagreement fails the request typed rather than
    // stitching unverified bits.
    if (cfg.overlapCheck && nshards > 1 && overlap > 0) {
        std::size_t repairs = 0;
        const std::size_t max_repairs =
            nshards * (static_cast<std::size_t>(cfg.maxSliceRetries) + 1);
        for (std::size_t s = 1; s < nshards; ++s) {
            SliceState &cur = batch->slices[s];
            SliceState &left = batch->slices[s - 1];
            if (!cur.resp.ok() || !left.resp.ok() || left.rightExt == 0)
                continue;
            overlapChecksCtr.add();
            // Global positions [starts[s], starts[s] + ext) were
            // computed twice with full history: as the left slice's
            // right extension and as the current slice's first kept
            // bits. Any disagreement is a real fault, not warm-up.
            const std::size_t ext = left.rightExt;
            const std::size_t left_base = left.overlapLen + left.keepLen;
            const auto pairAgrees = [&] {
                for (std::size_t j = 0; j < ext; ++j)
                    if (cur.resp.result[cur.overlapLen + j] !=
                        left.resp.result[left_base + j])
                        return false;
                return true;
            };
            if (pairAgrees())
                continue;
            overlapMismatchesCtr.add();
            ShardError se;
            se.slice = s;
            se.slot = cur.slot;
            se.kind = ShardFaultKind::OverlapMismatch;
            se.detail = "overlap bits disagree with slice " +
                        std::to_string(s - 1);
            lastErrors.push_back(std::move(se));
            telem::FlightEvent ev;
            ev.kind = telem::FlightKind::OverlapMismatch;
            ev.shard = cur.slot;
            ev.requestId = req.id;
            ev.offset = starts[s];
            ev.code = errorCodeName(ErrorCode::ShardFailed);
            ev.caseId = sliceCaseId(cur);
            ev.note = "slices " + std::to_string(s - 1) + "/" +
                      std::to_string(s) + " disagree on " +
                      std::to_string(ext) + " overlap bits";
            flight.trip("overlap mismatch", std::move(ev));
            const bool can_repair =
                cfg.spareShards > 0 && repairs + 2 <= max_repairs;
            bool repaired = false;
            if (can_repair) {
                repairs += 2;
                retryOnSpare(s - 1, left, 1, "overlap mismatch suspect");
                retryOnSpare(s, cur, 1, "overlap mismatch suspect");
                repaired = !left.threw && left.resp.ok() && !cur.threw &&
                           cur.resp.ok() && pairAgrees();
            }
            if (!repaired) {
                cur.resp.error = ServiceError::make(
                    ErrorCode::ShardFailed,
                    "overlap mismatch between slices " +
                        std::to_string(s - 1) + " and " +
                        std::to_string(s) + " unresolved");
                cur.resp.result.clear();
            } else if (s >= 2) {
                // The repaired left slice must still agree with *its*
                // left neighbor; rewind to re-check that pair.
                s -= 2;
            }
        }
    }
    clock.mark(telem::Stage::CrossCheck);

    // --- Stitch ------------------------------------------------------
    MatchResponse out;
    out.id = req.id;
    out.backend = batch->slices[0].resp.backend;
    lastCritical = 0;
    lastTotal = 0;
    for (std::size_t s = 0; s < nshards; ++s) {
        const SliceState &st = batch->slices[s];
        const MatchResponse &r = st.resp;
        if (!r.ok() && out.ok()) {
            out.error = r.error;
            if (nshards > 1)
                out.error.detail =
                    "shard " + std::to_string(s) + ": " + r.error.detail;
        }
        if (r.backend != out.backend)
            out.backend += "+" + r.backend;
        out.degradations += r.degradations;
        out.chunks += r.chunks;
        out.checkpoints += r.checkpoints;
        out.watchdogTrips += r.watchdogTrips;
        out.crossCheckFailures += r.crossCheckFailures;
        lastTotal += st.attemptBeats;
        lastCritical = std::max(lastCritical, r.beats);
        out.busSeconds = std::max(out.busSeconds, r.busSeconds);
        if (out.ok()) {
            // Keep only the slice's own positions: the warm-up prefix
            // belongs to shard s-1, the right extension to shard s+1.
            out.result.insert(
                out.result.end(), r.result.begin() + st.overlapLen,
                r.result.begin() + st.overlapLen + st.keepLen);
        }
    }
    // The host waits for the slowest shard, not the sum.
    out.beats = lastCritical;
    batch_span.setBeat(lastCritical);
    if (!out.ok())
        out.result.clear();

    clock.mark(telem::Stage::Commit);
    clock.addBeats(out.beats);
    const char *reason = nullptr;
    for (const ShardError &se : lastErrors)
        if (se.kind == ShardFaultKind::OverlapMismatch)
            reason = "overlap mismatch";
    if (!reason && !lastErrors.empty())
        reason = "shard fault";
    if (!reason && out.watchdogTrips > 0)
        reason = "watchdog trip";
    reqObs.observe(clock, req.id, reason != nullptr, reason, [&] {
        return telem::literalCaseId(cfg.base.alphabetBits, req.pattern,
                                    req.text);
    });
    return out;
}

telem::Snapshot
ShardedMatchService::metricsSnapshot() const
{
    telem::Snapshot snap;
    for (const auto &shard : shards)
        snap.merge(shard->metricsSnapshot());
    // The shards' own request observers measure *slices*; re-key them
    // under "shard." so they don't read as a whole-request service
    // next to the request-level "sharded.req.*" histograms below.
    for (auto &entry : snap.logHistograms)
        if (entry.first.rfind("req.", 0) == 0)
            entry.first = "shard." + entry.first;
    std::size_t quarantined = 0;
    {
        std::lock_guard<std::mutex> lock(healthMu);
        for (const SlotHealth &h : slotHealth)
            if (h.state == BreakerState::Open)
                ++quarantined;
    }
    snap.setGauge("threads", static_cast<double>(threadCount()));
    snap.setGauge("last_shards", static_cast<double>(nLastShards));
    snap.setGauge("spares", static_cast<double>(cfg.spareShards));
    snap.setGauge("quarantined_now", static_cast<double>(quarantined));
    const telem::Snapshot sup = supMetrics.snapshot();
    for (const auto &[name, value] : sup.counters)
        snap.setCounter("sharded." + name, value);
    for (const auto &[name, hist] : sup.histograms)
        snap.setHistogram("sharded." + name, hist);
    for (const auto &[name, hist] : sup.logHistograms)
        snap.setLogHistogram("sharded." + name, hist);
    return snap;
}

std::string
ShardedMatchService::statsDump() const
{
    std::string s;
    s += "sharded.threads = " + std::to_string(threadCount()) + "\n";
    s += "sharded.spares = " + std::to_string(cfg.spareShards) + "\n";
    s += "sharded.last_shards = " + std::to_string(nLastShards) + "\n";
    s += "sharded.last_critical_beats = " + std::to_string(lastCritical) +
         "\n";
    s += "sharded.last_total_beats = " + std::to_string(lastTotal) + "\n";
    const telem::Snapshot sup = supMetrics.snapshot();
    for (const auto &[name, value] : sup.counters)
        s += "sharded." + name + " = " + std::to_string(value) + "\n";
    for (const auto &[name, hist] : sup.histograms)
        s += "sharded." + name + ".samples = " +
             std::to_string(hist.samples()) + "\n";
    for (std::size_t i = 0; i < shards.size(); ++i) {
        s += "sharded.shard" + std::to_string(i) + ".served = " +
             std::to_string(
                 shards[i]->stats().counter("served").value()) +
             "\n";
        if (i < slotHealth.size())
            s += "sharded.shard" + std::to_string(i) + ".breaker = " +
                 breakerStateName(breakerState(i)) + "\n";
    }
    return s;
}

} // namespace spm::service
