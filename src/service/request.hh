/**
 * @file
 * Request and response records of the streaming match service.
 *
 * A request is the Section 3.1 problem (text stream, pattern with
 * wild cards) plus serving metadata: an id for the journal and an
 * optional whole-request beat deadline. The response carries the
 * result stream together with everything a host needs to audit how
 * it was produced -- which ladder rung answered, how many times the
 * service degraded, how many checkpoints were cut, and the bus-paced
 * wall-clock charge.
 */

#ifndef SPM_SERVICE_REQUEST_HH
#define SPM_SERVICE_REQUEST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "service/error.hh"
#include "util/types.hh"

namespace spm::service
{

/** One match request submitted to the service. */
struct MatchRequest
{
    /** Caller-chosen id; echoed in the response and the journal. */
    std::uint64_t id = 0;
    std::vector<Symbol> text;
    std::vector<Symbol> pattern;
    /**
     * Whole-request beat budget; the request is cancelled with
     * DeadlineExceeded once its chunks have consumed this many beats.
     * 0 means no deadline beyond the per-window watchdog budget.
     */
    Beat deadlineBeats = 0;
    /**
     * Monotonic telem::nowNs() stamp taken when the request entered
     * an admission queue; the stage clock credits now-minus-stamp to
     * its queue-wait bucket when serving starts. 0 (never queued)
     * charges no wait. Front ends stamp this themselves; callers
     * submitting directly may leave it alone.
     */
    std::uint64_t enqueuedNs = 0;
};

/** The service's answer to one request. */
struct MatchResponse
{
    std::uint64_t id = 0;
    ServiceError error;
    /** r_i bits, one per text character; valid only when ok(). */
    std::vector<bool> result;
    /** Name of the ladder rung that produced the final chunks. */
    std::string backend;
    /** Rungs fallen during this request (0 = primary served it all). */
    std::size_t degradations = 0;
    /** Text chunks streamed. */
    std::size_t chunks = 0;
    /** Checkpoints cut (one per committed chunk). */
    std::size_t checkpoints = 0;
    /** True when the request resumed from a prior checkpoint. */
    bool resumed = false;
    /** Watchdog cancellations survived via degradation. */
    std::uint64_t watchdogTrips = 0;
    /** Cross-check mismatches caught (never silently returned). */
    std::uint64_t crossCheckFailures = 0;
    /** Chip beats consumed across all chunks and rungs. */
    Beat beats = 0;
    /** Bus-paced seconds for those beats (HostBusModel). */
    double busSeconds = 0.0;

    bool ok() const { return error.code == ErrorCode::Ok; }
};

} // namespace spm::service

#endif // SPM_SERVICE_REQUEST_HH
