/**
 * @file
 * Checkpoints and the deterministic replay journal.
 *
 * The array is a sliding-window machine: the only state a resumed
 * match needs from the processed prefix is the last k-1 text
 * characters (the window overlap) and the result bits already
 * emitted. A Checkpoint captures exactly that, cut after every
 * committed chunk, so a killed request restarts from its last chunk
 * boundary instead of re-scanning the whole text -- the restartable
 * windowed processing long-stream workloads need.
 *
 * The ReplayJournal is the service's flight recorder: an ordered,
 * wall-clock-free list of serving events (admissions, chunk commits,
 * watchdog trips, degradations, checkpoint digests). Two identical
 * runs produce byte-identical journals, which is what makes the
 * journal usable for post-mortem debugging: replay the workload and
 * diff the journals to find the first divergent event.
 */

#ifndef SPM_SERVICE_CHECKPOINT_HH
#define SPM_SERVICE_CHECKPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/types.hh"

namespace spm::service
{

/** Resumable state of a streaming match at a chunk boundary. */
struct Checkpoint
{
    /** Text characters fully processed (result bits emitted). */
    std::size_t offset = 0;
    /** The last min(k-1, offset) processed characters, in order. */
    std::vector<Symbol> tail;
    /** Result bits emitted for positions [0, offset). */
    std::vector<bool> emitted;
    /** Ladder rung that was serving when the checkpoint was cut. */
    std::size_t rung = 0;
    /** Beats consumed so far (for deadline accounting on resume). */
    Beat beats = 0;

    /** FNV-1a digest over the checkpoint contents, for the journal. */
    std::uint64_t digest() const;
};

/** Ordered, deterministic event log of one service instance. */
class ReplayJournal
{
  public:
    /** @param enabled when false, record() is a no-op. */
    explicit ReplayJournal(bool enabled = true) : active(enabled) {}

    /** Append "seq=<n> <event>" to the journal. */
    void record(const std::string &event);

    /**
     * True when record() stores events. Hot paths check this before
     * building an event string (journal lines concatenate ids and
     * checkpoint digests; a disabled journal must not pay for them).
     */
    bool enabled() const { return active; }

    const std::vector<std::string> &events() const { return entries; }
    std::size_t size() const { return entries.size(); }
    void clear();

    /** The full journal, one event per line. */
    std::string dump() const;

  private:
    bool active;
    std::uint64_t seq = 0;
    std::vector<std::string> entries;
};

} // namespace spm::service

#endif // SPM_SERVICE_CHECKPOINT_HH
