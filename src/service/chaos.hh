/**
 * @file
 * The chaos harness: seeded, replayable fault plans for the sharded
 * service.
 *
 * Section 5's yield argument only works if the reconfiguration
 * machinery actually catches defective cells; the serving layer's
 * spare-shard failover deserves the same scrutiny. This module wraps
 * a shard's ladder rungs in a decorator that injects the failure
 * modes the supervision code claims to survive:
 *
 *   Stall    the window charges past its watchdog budget in one tick
 *            (a wedged array: validity choreography corrupted);
 *   Hang     the worker sleeps past the batch deadline before
 *            answering (a dead worker: the host-side thread, not the
 *            chip, is gone) -- the late result must be discarded;
 *   Throw    the rung throws through the "must not throw" contract
 *            (a software defect in the host-side driver);
 *   Corrupt  the rung silently flips a result bit (an undetected
 *            chip defect) -- the poison for the overlap cross-check
 *            and the per-chunk reference cross-check to catch.
 *
 * Every decision is a pure function of (seed, slot, window index), so
 * a campaign replays identically regardless of thread interleaving:
 * the same windows fail the same way on every run. For hardware-true
 * corruption, hardestUndetectedSites() harvests the E16 fault-grading
 * escape list (stuck-at classes no workload in the pool detects) and
 * makePoisonedGateBackend() forces those nets on every freshly built
 * gate-level chip -- the exact defect population a screened prototype
 * could still ship with.
 */

#ifndef SPM_SERVICE_CHAOS_HH
#define SPM_SERVICE_CHAOS_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fault/collapse.hh"
#include "service/backend.hh"
#include "service/sharded.hh"
#include "util/types.hh"

namespace spm::service
{

/** What the plan injects into one window. */
enum class ChaosKind : unsigned char
{
    None,    ///< serve the window honestly
    Stall,   ///< exhaust the watchdog budget (wedged array)
    Hang,    ///< sleep past the batch deadline (dead worker)
    Throw,   ///< throw through the no-throw backend contract
    Corrupt, ///< flip a result bit silently
};

/** Printable name of a chaos kind ("stall", "hang", ...). */
const char *chaosKindName(ChaosKind kind);

/** One seeded fault storm: probabilities, targets and caps. */
struct ChaosConfig
{
    /** Root of every injection decision; same seed = same storm. */
    std::uint64_t seed = 1;

    /** @{ Per-window injection probabilities, each in [0, 1]. */
    double stallProb = 0.0;
    double hangProb = 0.0;
    double throwProb = 0.0;
    double corruptProb = 0.0;
    /** @} */

    /** Wall-clock sleep of a Hang injection, in milliseconds. */
    std::uint32_t hangMs = 50;

    /**
     * Injections per slot after which the slot behaves honestly again
     * (lets quarantine-then-heal tests model a transient fault burst).
     * 0 = the storm never abates.
     */
    unsigned maxInjectionsPerSlot = 0;

    /** Slots the storm targets; empty = every slot (spares included). */
    std::vector<std::uint32_t> targetSlots;

    /**
     * Fixed result-bit index a Corrupt injection flips (clamped to
     * the window); -1 picks a seeded pseudo-random position. Pinning
     * index 0 puts the flip in the k-1 overlap region of the slice's
     * first window -- the bit the neighbor shard also computes.
     */
    int corruptAt = -1;
};

/**
 * The replayable storm: decisions are pure functions of (seed, slot,
 * window), never of wall-clock or interleaving. Shared by every
 * ChaosBackend of a service via shared_ptr; the injection tally is
 * the only mutable state (and is observational, not decisional).
 */
class ChaosPlan
{
  public:
    explicit ChaosPlan(ChaosConfig config);

    const ChaosConfig &config() const { return cfg; }

    /** Whether the storm targets @p slot at all. */
    bool targets(std::uint32_t slot) const;

    /**
     * The injection for the @p window 'th window slot @p slot serves.
     * Honors maxInjectionsPerSlot by replaying the slot's decision
     * prefix, so the verdict stays pure and interleaving-free.
     */
    ChaosKind decide(std::uint32_t slot, std::uint64_t window) const;

    /** Corrupt-bit index for one window (cfg.corruptAt or seeded). */
    std::size_t corruptIndex(std::uint32_t slot, std::uint64_t window,
                             std::size_t window_len) const;

    /** Total injections performed under this plan (all slots). */
    std::uint64_t injections() const
    {
        return injected.load(std::memory_order_relaxed);
    }

    /** Called by ChaosBackend when it actually injects. */
    void noteInjection() const
    {
        injected.fetch_add(1, std::memory_order_relaxed);
    }

  private:
    ChaosKind rawDecision(std::uint32_t slot, std::uint64_t window) const;

    ChaosConfig cfg;
    mutable std::atomic<std::uint64_t> injected{0};
};

/**
 * Decorator rung: forwards to the wrapped backend unless the plan
 * injects. Keeps the inner rung's name so journals and ladder
 * transitions read the same as an un-faulted run.
 */
class ChaosBackend : public ServiceBackend
{
  public:
    ChaosBackend(std::unique_ptr<ServiceBackend> wrapped,
                 std::shared_ptr<const ChaosPlan> chaos_plan,
                 std::uint32_t slot_id);

    std::string name() const override { return inner->name(); }

    bool supports(const std::vector<Symbol> &pattern) const override
    {
        return inner->supports(pattern);
    }

    WindowResult matchWindow(const std::vector<Symbol> &window,
                             const std::vector<Symbol> &pattern,
                             BeatWatchdog &dog) override;

    /** Windows this rung has been asked to serve. */
    std::uint64_t windowsSeen() const
    {
        return windowCounter.load(std::memory_order_relaxed);
    }

  private:
    std::unique_ptr<ServiceBackend> inner;
    std::shared_ptr<const ChaosPlan> plan;
    std::uint32_t slot;
    std::atomic<std::uint64_t> windowCounter{0};
};

/**
 * Harvest up to @p count of the hardest undetected stuck-at fault
 * classes from a fault-grading run of the (@p cells, @p alphabet_bits)
 * chip -- the E16 test-escape list, hardest first. These are the
 * defects a screened part could still ship with, which makes them the
 * honest poison corpus for chaos campaigns. Node ids are valid for
 * any freshly built GateChip of the same shape (construction is
 * deterministic).
 */
std::vector<fault::FaultSite> hardestUndetectedSites(
    std::size_t cells, BitWidth alphabet_bits, std::size_t count,
    std::uint64_t seed = 1979);

/**
 * A gate-level rung whose every freshly built chip has @p sites
 * forced stuck (Netlist::forceStuckAt) before the protocol starts.
 * @p sites must come from a chip of the same cells/alphabetBits
 * shape as @p config (see hardestUndetectedSites).
 */
std::unique_ptr<ServiceBackend> makePoisonedGateBackend(
    const ServiceConfig &config, std::vector<fault::FaultSite> sites);

/**
 * A ladder factory for ShardedMatchService that wraps @p inner's
 * rungs in ChaosBackend decorators for the slots @p plan targets
 * (untargeted slots -- typically the spares -- get the inner ladder
 * untouched, so recovery paths are clean). When @p poison_sites is
 * non-empty a poisoned gate rung (also chaos-wrapped) is prepended to
 * targeted slots' ladders. @p inner defaults to makeDefaultLadder.
 */
ShardedMatchService::LadderFactory makeChaosLadderFactory(
    std::shared_ptr<const ChaosPlan> plan,
    ShardedMatchService::LadderFactory inner = nullptr,
    std::vector<fault::FaultSite> poison_sites = {});

/** One chaos campaign: a sharded service under a seeded fault storm. */
struct ChaosCampaignConfig
{
    /** Sharded service shape (threads, spares, deadline, ...). */
    ShardedConfig sharded;
    /** The storm. */
    ChaosConfig chaos;
    /**
     * Ladder each slot starts from before chaos wrapping; null =
     * makeDefaultLadder (benches pass a software-only factory so the
     * storm, not gate simulation, dominates the wall clock).
     */
    ShardedMatchService::LadderFactory innerFactory;
    /** Poison corpus forced on targeted slots' gate rungs. */
    std::vector<fault::FaultSite> poisonSites;
    std::size_t requests = 16;
    std::size_t textLen = 2048;
    std::size_t patternLen = 5;
    double wildcardProb = 0.2;
    /** Workload generator seed (independent of the storm seed). */
    std::uint64_t seed = 2026;
    /**
     * Observer hook called after each served request with the count
     * served so far and the live service; chaos_storm uses it to dump
     * periodic metrics snapshots for spm_top. Null = no observation.
     * The callback runs on the campaign thread between requests.
     */
    std::function<void(std::size_t served, const ShardedMatchService &svc)>
        progress;
};

/**
 * What a campaign proved. The acceptance invariant is
 * silentCorruptions == 0: every injected fault was either recovered
 * bit-identical to the un-faulted answer or rejected with a typed
 * ServiceError -- never returned wrong bits as ok().
 */
struct ChaosCampaignReport
{
    std::size_t requests = 0;
    std::size_t okRequests = 0;       ///< served with ok() responses
    std::size_t exactRequests = 0;    ///< ok() and bit-identical to reference
    std::size_t typedFailures = 0;    ///< rejected with a typed error
    std::size_t silentCorruptions = 0;///< ok() but wrong bits -- must be 0
    std::size_t recoveredRequests = 0;///< ok() despite shard faults

    std::uint64_t faultsInjected = 0;
    std::uint64_t shardFailures = 0;
    std::uint64_t shardTimeouts = 0;
    std::uint64_t shardExceptions = 0;
    std::uint64_t shardRetries = 0;
    std::uint64_t spareServes = 0;
    std::uint64_t quarantines = 0;
    std::uint64_t probes = 0;
    std::uint64_t overlapChecks = 0;
    std::uint64_t overlapMismatches = 0;

    double availabilityPct = 0.0; ///< okRequests / requests * 100
    double meanServeMs = 0.0;
    double maxServeMs = 0.0; ///< worst-case recovery latency

    /** "chaos.x = y" lines, stable order. */
    std::string renderText() const;
};

/**
 * Run one campaign: seeded random workloads through a chaos-wrapped
 * ShardedMatchService, every ok() response verified bit-for-bit
 * against the reference matcher. Deterministic in verdicts (the storm
 * and workloads are seeded); only the wall-clock fields vary.
 */
ChaosCampaignReport runChaosCampaign(const ChaosCampaignConfig &config);

} // namespace spm::service

#endif // SPM_SERVICE_CHAOS_HH
