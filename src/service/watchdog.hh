/**
 * @file
 * The beat-budget watchdog.
 *
 * A healthy array produces all results for a window within a beat
 * count that is known in advance from the feed plan (Section 3.1:
 * "a constant time between data items"). A backend that runs past
 * that budget without finishing is wedged -- a fault corrupted the
 * validity choreography, or the implementation is stuck -- and the
 * service must cancel it rather than wait forever. The watchdog is
 * cooperative and deterministic: backends charge simulated beats
 * against an armed budget, and the trip condition is a pure function
 * of the charge, so tests reproduce cancellations exactly.
 */

#ifndef SPM_SERVICE_WATCHDOG_HH
#define SPM_SERVICE_WATCHDOG_HH

#include <cstdint>

#include "util/types.hh"

namespace spm::service
{

/**
 * Counts beats charged by a backend against an armed budget. Once the
 * charge exceeds the budget the watchdog is tripped and stays tripped
 * until re-armed; lifetime trip statistics survive re-arming.
 */
class BeatWatchdog
{
  public:
    /** @param beat_budget initial budget; 0 means "trip on any charge". */
    explicit BeatWatchdog(Beat beat_budget = 0) : allowance(beat_budget) {}

    /** Re-arm with a fresh budget for the next window. */
    void arm(Beat beat_budget)
    {
        allowance = beat_budget;
        charged = 0;
        wedged = false;
    }

    /**
     * Charge @p beats of backend work. Returns true while the total
     * charge stays within the budget; false once tripped (and records
     * the trip exactly once per armed window).
     */
    bool tick(Beat beats = 1)
    {
        charged += beats;
        if (charged > allowance && !wedged) {
            wedged = true;
            ++nTrips;
        }
        return !wedged;
    }

    /** True once the armed budget has been exhausted. */
    bool tripped() const { return wedged; }

    Beat budget() const { return allowance; }
    Beat used() const { return charged; }

    /** Windows cancelled over the watchdog's lifetime. */
    std::uint64_t trips() const { return nTrips; }

  private:
    Beat allowance;
    Beat charged = 0;
    bool wedged = false;
    std::uint64_t nTrips = 0;
};

} // namespace spm::service

#endif // SPM_SERVICE_WATCHDOG_HH
