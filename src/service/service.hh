/**
 * @file
 * The resilient streaming match service.
 *
 * MatchService fronts the pattern-matching machine with the serving
 * discipline a host-attached peripheral needs (Section 3.1: the chip
 * runs "at a steady rate ... with a constant time between data
 * items"; the host, not the array, must absorb everything irregular):
 *
 *   admission    - a bounded queue with a configurable backpressure
 *                  policy (reject / shed-oldest / block);
 *   validation   - every request checked against a typed error
 *                  taxonomy before it touches hardware;
 *   streaming    - text fed in chunks over the HostBusModel pacing,
 *                  each chunk a window overlapping the last by k-1
 *                  characters;
 *   watchdog     - a beat budget per window; a wedged backend is
 *                  cancelled, not waited on;
 *   checkpoints  - resumable state cut after every committed chunk,
 *                  with a deterministic replay journal;
 *   degradation  - a ladder of backends (gate level -> behavioral ->
 *                  software baseline); a rung that trips the watchdog
 *                  or exceeds its cross-check fault budget is
 *                  abandoned for the rest of the request, and every
 *                  committed chunk is verified against the reference
 *                  matcher, so degraded results are never silently
 *                  wrong.
 */

#ifndef SPM_SERVICE_SERVICE_HH
#define SPM_SERVICE_SERVICE_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/hostbus.hh"
#include "service/backend.hh"
#include "service/checkpoint.hh"
#include "service/queue.hh"
#include "service/request.hh"
#include "service/watchdog.hh"
#include "telemetry/flightrec.hh"
#include "telemetry/metrics.hh"
#include "telemetry/reqobs.hh"
#include "util/types.hh"

namespace spm::service
{

/** Serving-side configuration. */
struct ServiceConfig
{
    /** Character cells per hardware chip. */
    std::size_t cells = 8;
    /** Bits per alphabet character; symbols must be < 2^bits. */
    BitWidth alphabetBits = 2;
    /** Largest admissible text, in characters. */
    std::size_t maxTextLen = 1 << 16;
    /** Largest admissible pattern. */
    std::size_t maxPatternLen = 64;
    /** Text characters streamed per chunk. */
    std::size_t chunkChars = 32;
    /**
     * Watchdog slack: the per-window beat budget is the feed-plan
     * beat count scaled by this margin.
     */
    double watchdogMargin = 1.5;
    /** Cross-check mismatches tolerated per rung before it falls. */
    unsigned rungFaultBudget = 1;
    /** Verify every committed chunk against the reference matcher. */
    bool crossCheck = true;
    /** Record the replay journal. */
    bool journalEnabled = true;
    /** Admission queue depth. */
    std::size_t queueCapacity = 8;
    BackpressurePolicy policy = BackpressurePolicy::Reject;
    /**
     * Shard slot this service occupies (0 when unsharded); stamped on
     * every flight-recorder event so a merged post-mortem attributes
     * each chunk to its worker.
     */
    std::uint32_t shardId = 0;
    /** Flight-recorder ring depth (recent chunk/trip events kept). */
    std::size_t flightCapacity = 64;
    /** Bus pacing and parity; parity on by default for the service. */
    core::HostBusModel bus{prototypeBeatPs, 8, true};
};

class MatchService;

/**
 * One streaming match in flight. step() processes one chunk and cuts
 * a checkpoint; a caller that stops stepping (a crash, a cancel) can
 * later resume a fresh session from the last checkpoint and the
 * output is bit-identical to an uninterrupted run.
 */
class StreamSession
{
  public:
    /** Process the next chunk. True while more chunks remain. */
    bool step();

    /** True once the request is fully served or has failed. */
    bool done() const { return finished; }

    /** The last durable checkpoint (resume token). */
    const Checkpoint &checkpoint() const { return cp; }

    /** Finish the session and take the response. */
    MatchResponse finish();

    /** Abandon the session; the response reports Cancelled. */
    void cancel(const std::string &reason);

  private:
    friend class MatchService;
    StreamSession(MatchService &svc, MatchRequest req,
                  std::optional<Checkpoint> resume_from);

    void fail(ErrorCode code, const std::string &detail);
    Beat windowBudget(std::size_t window_len) const;

    MatchService &service;
    MatchRequest request;
    Checkpoint cp;
    MatchResponse response;
    /** Chunk window scratch, reused across step() calls. */
    std::vector<Symbol> window;
    /** Cross-check failures charged against each rung this request. */
    std::vector<unsigned> rungFaults;
    /** Stage attribution for this request (reqobs). */
    telem::StageClock clock;
    bool finished = false;
    bool observed = false;
};

/** The resilient streaming match service. */
class MatchService
{
  public:
    /** Build with the default ladder for @p config (see makeDefaultLadder). */
    explicit MatchService(ServiceConfig config);

    /** Build with a caller-supplied degradation ladder (rung 0 first). */
    MatchService(ServiceConfig config,
                 std::vector<std::unique_ptr<ServiceBackend>> ladder_rungs);

    const ServiceConfig &config() const { return cfg; }

    /** Rung names, in degradation order. */
    std::vector<std::string> ladderNames() const;

    /** Typed validation; nullopt when the request is admissible. */
    std::optional<ServiceError> validate(const MatchRequest &req) const;

    /** Serve one request end to end (validate + stream + respond). */
    MatchResponse serve(const MatchRequest &req);

    /** Open a streaming session (validated; check the first error). */
    StreamSession startSession(const MatchRequest &req);

    /** Resume a killed request from @p from; output is bit-identical. */
    MatchResponse resume(const MatchRequest &req, const Checkpoint &from);

    /** Result of submitting through the admission queue. */
    struct SubmitResult
    {
        /** True when the request was queued (or served via Block). */
        bool accepted = false;
        /** The typed rejection when not accepted. */
        ServiceError error;
        /** Response for a request shed to make room, if any. */
        std::optional<MatchResponse> shedResponse;
        /** Responses drained inline by the Block policy. */
        std::vector<MatchResponse> drained;
    };

    /** Offer a request to the admission queue under the policy. */
    SubmitResult submit(MatchRequest req);

    /** Serve everything queued, in order. */
    std::vector<MatchResponse> drain();

    std::size_t queuedRequests() const { return queue.size(); }
    const AdmissionQueue &admission() const { return queue; }

    const ReplayJournal &journal() const { return log; }
    ReplayJournal &journal() { return log; }

    /**
     * Lifetime serving metrics, registry-backed: counters served,
     * completed, failed, degradations, watchdogTrips,
     * crossCheckFailures, checkpoints, resumes; gauge queue_depth;
     * histogram chunk_beats (per-committed-chunk beat cost).
     */
    const telem::Registry &stats() const { return metrics; }

    /**
     * Serving + admission-queue counters as one snapshot (bare
     * names); the sharded front end merges these across shards.
     */
    telem::Snapshot metricsSnapshot() const;

    /** "service.x = n" lines: serving, queue and bus-parity counters. */
    std::string statsDump() const;

    /**
     * The flight recorder: recent chunk commits plus watchdog trips,
     * ladder transitions and cross-check mismatches, each stamped
     * with beat index, shard id, error-taxonomy code and the chunk's
     * replayable conformance case ID. Trips dump automatically.
     */
    const telem::FlightRecorder &flightRecorder() const { return flight; }
    telem::FlightRecorder &flightRecorder() { return flight; }

    /**
     * Tail-sampled exemplar traces: the slowest requests, a uniform
     * sample, and every watchdog-trip / ladder-fall request, each
     * with its per-stage latency split and replayable case ID.
     */
    const telem::ExemplarReservoir &exemplars() const
    {
        return exemplarStore;
    }
    telem::ExemplarReservoir &exemplars() { return exemplarStore; }

  private:
    friend class StreamSession;

    ServiceConfig cfg;
    std::vector<std::unique_ptr<ServiceBackend>> ladder;
    AdmissionQueue queue;
    BeatWatchdog dog;
    ReplayJournal log;

    // Per-instance single-stripe registry: one service, one serving
    // thread (the sharded front end gives each shard its own).
    telem::Registry metrics{1};
    telem::Counter &servedCtr;
    telem::Counter &completedCtr;
    telem::Counter &failedCtr;
    telem::Counter &degradationsCtr;
    telem::Counter &watchdogTripsCtr;
    telem::Counter &crossCheckFailuresCtr;
    telem::Counter &checkpointsCtr;
    telem::Counter &resumesCtr;
    telem::Gauge &queueDepthGauge;
    telem::Histogram &chunkBeatsHist;
    telem::FlightRecorder flight;
    telem::ExemplarReservoir exemplarStore;
    telem::RequestObserver reqObs;
};

/**
 * The default degradation ladder for @p config: gate-level netlist,
 * then the behavioral array, then the software baseline. The gate
 * rung is the fabricated prototype's fidelity; the software rung can
 * always answer.
 */
std::vector<std::unique_ptr<ServiceBackend>> makeDefaultLadder(
    const ServiceConfig &config);

/**
 * The request admission rules, shared by every front end (streaming,
 * sharded, batched, dictionary): typed validation of pattern shape,
 * size bounds and alphabet membership against @p cfg; nullopt when
 * admissible.  validateRequest composes the two primitives below;
 * front ends with their own request shapes (batch groups, dictionary
 * sessions) call the primitives directly so one rule set admits
 * everywhere.
 */
std::optional<ServiceError> validateRequest(const ServiceConfig &cfg,
                                            const MatchRequest &req);

/**
 * Pattern admission alone: non-empty, within maxPatternLen, every
 * non-wild symbol inside the configured alphabet.  @p label names the
 * pattern in error details ("pattern", "dict[3]", ...).
 */
std::optional<ServiceError> validatePattern(
    const ServiceConfig &cfg, const std::vector<Symbol> &pattern,
    const std::string &label = "pattern");

/**
 * Text/chunk admission alone: every symbol inside the alphabet (wild
 * cards are NOT admitted in text) and the cumulative stream length --
 * @p already_seen characters fed before this slice plus the slice --
 * within maxTextLen.  @p label names the slice in error details.
 */
std::optional<ServiceError> validateText(const ServiceConfig &cfg,
                                         const std::vector<Symbol> &text,
                                         std::uint64_t already_seen = 0,
                                         const std::string &label = "text");

} // namespace spm::service

#endif // SPM_SERVICE_SERVICE_HH
