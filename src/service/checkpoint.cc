#include "service/checkpoint.hh"

namespace spm::service
{

namespace
{

constexpr std::uint64_t fnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t fnvPrime = 0x100000001B3ULL;

void
fnvMix(std::uint64_t &h, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xFF;
        h *= fnvPrime;
    }
}

} // namespace

std::uint64_t
Checkpoint::digest() const
{
    std::uint64_t h = fnvOffset;
    fnvMix(h, offset);
    fnvMix(h, rung);
    fnvMix(h, beats);
    for (Symbol s : tail)
        fnvMix(h, s);
    // Pack the emitted bits 64 at a time so the digest price stays
    // negligible next to the match itself.
    std::uint64_t word = 0;
    std::size_t fill = 0;
    for (bool b : emitted) {
        word = (word << 1) | (b ? 1 : 0);
        if (++fill == 64) {
            fnvMix(h, word);
            word = 0;
            fill = 0;
        }
    }
    if (fill > 0)
        fnvMix(h, word | (std::uint64_t(1) << fill));
    return h;
}

void
ReplayJournal::record(const std::string &event)
{
    if (!active)
        return;
    entries.push_back("seq=" + std::to_string(seq++) + " " + event);
}

void
ReplayJournal::clear()
{
    entries.clear();
    seq = 0;
}

std::string
ReplayJournal::dump() const
{
    std::string out;
    for (const std::string &e : entries) {
        out += e;
        out += '\n';
    }
    return out;
}

} // namespace spm::service
