/**
 * @file
 * The dictionary (multi-pattern) serving path.
 *
 * The streaming service matches one pattern per request; this front
 * end serves the rule-set scenario the hardware co-design literature
 * scales the Foster-Kung data flow to: a whole dictionary checked
 * against every text chunk, with per-pattern hit reporting.  A
 * session binds a validated dictionary once (the bit-sliced engine
 * amortizes its suffix trie and character-class planes across every
 * chunk); chunks then stream through with whole-stream semantics,
 * bit-identical to one-shot matching of the concatenated text.
 *
 * Serving-layer contract, same as the siblings: typed validation
 * (DictError names the offending dictionary member), every admitted
 * character charged through the host bus model, and telemetry that
 * capacity planning can read (dictionary-size / hits-per-chunk /
 * planes-per-sweep histograms).  An optional sampled cross-check
 * replays chunks through the naive per-pattern reference.
 */

#ifndef SPM_SERVICE_DICTSERVE_HH
#define SPM_SERVICE_DICTSERVE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "multipattern/dict.hh"
#include "multipattern/planes.hh"
#include "service/service.hh"

namespace spm::service
{

/** Configuration of the dictionary serving path. */
struct DictServiceConfig
{
    /** Bounds, alphabet and bus shared with the streaming service. */
    ServiceConfig base;
    /** Most dictionary members admitted per session. */
    std::size_t maxDictPatterns = 4096;
    /**
     * Replay every Nth chunk through the naive per-pattern reference
     * and compare bit for bit (0 disables).
     */
    unsigned crossCheckEvery = 0;
};

/**
 * A typed dictionary-path error: the ServiceError names the violated
 * contract; patternIndex pins it to the offending member when one
 * member (not the dictionary shape or a chunk) is at fault.
 */
struct DictError
{
    static constexpr std::size_t noPattern = static_cast<std::size_t>(-1);

    ServiceError error;
    std::size_t patternIndex = noPattern;

    bool ok() const { return error.code == ErrorCode::Ok; }
    explicit operator bool() const { return !ok(); }

    /** "dict[i]: <code_name>: <detail>" (bare error when no index). */
    std::string toString() const;

    static DictError okValue() { return {}; }
    static DictError make(ServiceError err,
                          std::size_t pattern_index = noPattern)
    {
        return {std::move(err), pattern_index};
    }
};

class DictMatchService;

/** One dictionary bound to a chunk stream; host-side handle. */
class DictSession
{
  public:
    /** True once openSession validated the dictionary. */
    bool open() const { return !dict.empty(); }
    std::size_t dictSize() const { return dict.size(); }
    std::uint64_t streamed() const { return stream.seen; }

  private:
    friend class DictMatchService;
    multipattern::DictPatterns dict;
    multipattern::DictStreamState stream;
    std::uint64_t chunksFed = 0;
};

/** The dictionary match service. */
class DictMatchService
{
  public:
    explicit DictMatchService(DictServiceConfig config);

    const DictServiceConfig &config() const { return cfg; }

    /** Typed dictionary admission; Ok when every member is valid. */
    DictError validateDict(const multipattern::DictPatterns &dict) const;

    /** Result of one feedChunk() call. */
    struct ChunkResult
    {
        /** Typed error; hits are valid only when ok(). */
        DictError error;
        /** Per-pattern hit bits for exactly the new chunk positions. */
        multipattern::DictHits hits;

        bool ok() const { return error.ok(); }
    };

    /** Result of one-shot whole-text matching. */
    struct DictMatchResult
    {
        DictError error;
        multipattern::DictHits hits;
        std::uint64_t totalHits = 0;

        bool ok() const { return error.ok(); }
    };

    /**
     * Open a session against @p dict.  The dictionary is validated
     * here, once; @p err receives the typed result.
     */
    DictSession openSession(multipattern::DictPatterns dict,
                            DictError &err);

    /**
     * Feed the next chunk of the session's text stream.  Results have
     * whole-stream semantics: a member straddling the chunk boundary
     * reports at its true end position, bit-identical to one-shot
     * matching of the concatenated stream.
     *
     * @param enqueued_ns optional telem::nowNs() stamp taken when the
     *        host queued this chunk; the wait is credited to the
     *        queue-wait stage histogram (0 charges no wait)
     */
    ChunkResult feedChunk(DictSession &session,
                          const std::vector<Symbol> &chunk,
                          std::uint64_t enqueued_ns = 0);

    /** Validate + serve @p text against @p dict in one call. */
    DictMatchResult matchDict(const std::vector<Symbol> &text,
                              const multipattern::DictPatterns &dict);

    /**
     * Lifetime metrics: counters dictionaries, chunks, chunkChars,
     * hits, rejected, crossChecks, crossCheckFailures; histograms
     * dict_size (members per session), hits_per_chunk,
     * planes_per_sweep (bit planes the engine built per chunk).
     */
    const telem::Registry &stats() const { return metrics; }

    /** The counters and histograms as one snapshot (bare names). */
    telem::Snapshot metricsSnapshot() const;

    /** "dict.x = n" stat lines plus the bus transfer counters. */
    std::string statsDump() const;

    /**
     * Tail-sampled exemplar traces: the slowest chunks, a uniform
     * sample, and every chunk whose sampled cross-check mismatched.
     * The case ID replays dictionary member 0 against the chunk's
     * window (the conformance case format is single-pattern).
     */
    const telem::ExemplarReservoir &exemplars() const
    {
        return exemplarStore;
    }
    telem::ExemplarReservoir &exemplars() { return exemplarStore; }

  private:
    DictServiceConfig cfg;
    multipattern::BitSlicedDictMatcher engine;

    telem::Registry metrics{1};
    telem::Counter &dictionariesCtr;
    telem::Counter &chunksCtr;
    telem::Counter &chunkCharsCtr;
    telem::Counter &hitsCtr;
    telem::Counter &rejectedCtr;
    telem::Counter &crossChecksCtr;
    telem::Counter &crossCheckFailuresCtr;
    telem::Histogram &dictSizeHist;
    telem::Histogram &hitsPerChunkHist;
    telem::Histogram &planesPerSweepHist;
    telem::ExemplarReservoir exemplarStore;
    telem::RequestObserver reqObs;
};

} // namespace spm::service

#endif // SPM_SERVICE_DICTSERVE_HH
