#include "service/batch.hh"

#include <algorithm>
#include <utility>

#include "core/reference.hh"
#include "telemetry/flightrec.hh"
#include "telemetry/telem.hh"
#include "util/logging.hh"

namespace spm::service
{

BatchMatchService::BatchMatchService(BatchServiceConfig config)
    : BatchMatchService(std::move(config), core::bestSimdIsa())
{
}

BatchMatchService::BatchMatchService(BatchServiceConfig config,
                                     core::SimdIsa isa)
    : cfg(std::move(config)), engine(isa),
      batchesCtr(metrics.counter("batches")),
      streamsCtr(metrics.counter("streams")),
      streamCharsCtr(metrics.counter("streamChars")),
      kernelPassesCtr(metrics.counter("kernelPasses")),
      rejectedCtr(metrics.counter("rejected")),
      crossChecksCtr(metrics.counter("crossChecks")),
      crossCheckFailuresCtr(metrics.counter("crossCheckFailures")),
      batchWidthHist(metrics.histogram(
          "batch_width", 0.0,
          static_cast<double>(std::max<std::size_t>(cfg.maxBatchStreams, 1)),
          16)),
      reqObs(metrics, "batch", &exemplarStore)
{
    spm_assert(cfg.maxBatchStreams > 0,
               "batch service needs room for at least one stream");
    spm_assert(cfg.base.alphabetBits >= 1 && cfg.base.alphabetBits <= 16,
               "alphabet width must be in [1, 16] bits");
}

std::vector<std::vector<bool>>
BatchMatchService::runPass(
    std::vector<core::StreamCarry> &carries,
    const std::vector<const std::vector<Symbol> *> &chunks,
    const std::vector<Symbol> &pattern, bool &checked,
    std::uint64_t &mismatches, telem::StageClock &clock)
{
    // A sampled cross-check needs the pre-pass carries; snapshot them
    // only on the passes that audit.
    const std::uint64_t pass = kernelPassesCtr.value();
    checked = cfg.crossCheckEvery != 0 &&
              pass % cfg.crossCheckEvery == 0;
    std::vector<core::StreamCarry> before;
    if (checked)
        before = carries;

    auto bits = engine.feedChunks(carries, chunks, pattern);
    kernelPassesCtr.add();
    clock.mark(telem::Stage::Kernel);
    SPM_THIST(batchWidthHist,
              static_cast<double>(engine.lastBatchWidth()));

    mismatches = 0;
    if (checked) {
        crossChecksCtr.add();
        core::ReferenceMatcher ref;
        const std::size_t k = pattern.size();
        for (std::size_t i = 0; i < chunks.size(); ++i) {
            std::vector<Symbol> window = before[i].tail;
            window.insert(window.end(), chunks[i]->begin(),
                          chunks[i]->end());
            const std::vector<bool> expect = ref.match(window, pattern);
            const std::size_t skip = before[i].tail.size();
            bool bad = false;
            for (std::size_t c = 0; c < chunks[i]->size(); ++c) {
                const bool want = before[i].seen + c + 1 >= k &&
                                  expect[skip + c];
                if (bits[i][c] != want) {
                    bad = true;
                    break;
                }
            }
            if (bad)
                ++mismatches;
        }
        if (mismatches != 0) {
            crossCheckFailuresCtr.add(mismatches);
            SPM_TCOUNT_GLOBAL("batch.cross_check_failures", mismatches);
        }
        clock.mark(telem::Stage::CrossCheck);
    }
    return bits;
}

std::vector<MatchResponse>
BatchMatchService::serveBatch(const std::vector<MatchRequest> &batch)
{
    batchesCtr.add();
    std::vector<MatchResponse> out(batch.size());

    // One stage clock for the whole call: the kernel pass is shared,
    // so per-pass attribution is the honest granularity. Per-member
    // queue waits feed the stage histogram directly (noteQueueWait).
    telem::StageClock clock;
    clock.start();

    // Validate independently; collect the admissible requests.
    std::vector<std::size_t> admitted;
    admitted.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        out[i].id = batch[i].id;
        if (admitted.size() >= cfg.maxBatchStreams) {
            out[i].error = ServiceError::make(
                ErrorCode::QueueOverflow,
                "batch width limit of " +
                    std::to_string(cfg.maxBatchStreams) + " streams");
            rejectedCtr.add();
            continue;
        }
        if (auto err = validateRequest(cfg.base, batch[i])) {
            out[i].error = *err;
            rejectedCtr.add();
            continue;
        }
        if (clock.running() && batch[i].enqueuedNs != 0)
            reqObs.noteQueueWait(telem::nowNs() - batch[i].enqueuedNs);
        admitted.push_back(i);
    }
    streamsCtr.add(admitted.size());
    clock.mark(telem::Stage::Admit);

    // One kernel pass per distinct pattern among the admitted
    // requests; requests sharing a pattern pack into the same pass.
    std::vector<bool> served(batch.size(), false);
    std::uint64_t totalMismatches = 0;
    for (std::size_t a = 0; a < admitted.size(); ++a) {
        const std::size_t lead = admitted[a];
        if (served[lead])
            continue;
        const std::vector<Symbol> &pattern = batch[lead].pattern;
        std::vector<std::size_t> members;
        std::vector<const std::vector<Symbol> *> texts;
        for (std::size_t b = a; b < admitted.size(); ++b) {
            const std::size_t idx = admitted[b];
            if (!served[idx] && batch[idx].pattern == pattern) {
                served[idx] = true;
                members.push_back(idx);
                texts.push_back(&batch[idx].text);
            }
        }

        std::vector<core::StreamCarry> carries(texts.size());
        bool checked = false;
        std::uint64_t mismatches = 0;
        auto bits =
            runPass(carries, texts, pattern, checked, mismatches, clock);
        totalMismatches += mismatches;

        const std::string backend =
            "batch+" + engine.kernel().name();
        for (std::size_t m = 0; m < members.size(); ++m) {
            const std::size_t idx = members[m];
            MatchResponse &resp = out[idx];
            const std::size_t n = batch[idx].text.size();
            cfg.base.bus.transferChunk(batch[idx].text.data(),
                                       batch[idx].text.data(), n);
            resp.result = std::move(bits[m]);
            resp.backend = backend;
            resp.chunks = 1;
            // The steady-rate contract: one text character per beat.
            resp.beats = static_cast<Beat>(n);
            resp.busSeconds = cfg.base.bus.secondsForBeats(resp.beats);
            streamCharsCtr.add(n);
            clock.addBeats(resp.beats);
            if (checked && mismatches != 0)
                resp.error = ServiceError::make(
                    ErrorCode::BackendFailed,
                    "sampled cross-check caught a kernel mismatch in "
                    "this pass");
        }
        clock.mark(telem::Stage::Commit);
    }
    if (!admitted.empty()) {
        const std::size_t lead = admitted.front();
        reqObs.observe(clock, batch[lead].id, totalMismatches != 0,
                       "cross-check mismatch", [&] {
                           return telem::literalCaseId(
                               cfg.base.alphabetBits, batch[lead].pattern,
                               batch[lead].text);
                       });
    }
    return out;
}

BatchStreamGroup
BatchMatchService::openGroup(std::vector<Symbol> pattern,
                             std::size_t width, ServiceError &err)
{
    BatchStreamGroup group;
    err = ServiceError::ok();
    if (width > cfg.maxBatchStreams) {
        err = ServiceError::make(
            ErrorCode::QueueOverflow,
            "group of " + std::to_string(width) +
                " streams exceeds batch width limit " +
                std::to_string(cfg.maxBatchStreams));
        rejectedCtr.add();
        return group;
    }
    if (auto verr = validatePattern(cfg.base, pattern)) {
        err = *verr;
        rejectedCtr.add();
        return group;
    }
    group.pattern = std::move(pattern);
    group.carries.assign(width, core::StreamCarry{});
    streamsCtr.add(width);
    return group;
}

BatchMatchService::GroupFeedResult
BatchMatchService::feedGroup(BatchStreamGroup &group,
                             const std::vector<std::vector<Symbol>> &chunks)
{
    GroupFeedResult res;
    if (group.pattern.empty()) {
        res.error = ServiceError::make(ErrorCode::InvalidPattern,
                                       "group was never opened");
        return res;
    }
    if (chunks.size() != group.carries.size()) {
        res.error = ServiceError::make(
            ErrorCode::BatchMismatch,
            std::to_string(chunks.size()) + " chunks for a group of " +
                std::to_string(group.carries.size()) + " streams");
        return res;
    }

    telem::StageClock clock;
    clock.start();

    // Admission through the shared rule set (service.hh), checked
    // before any carry advances (a rejected feed is a no-op).
    for (std::size_t i = 0; i < chunks.size(); ++i)
        if (auto verr =
                validateText(cfg.base, chunks[i], group.carries[i].seen,
                             "stream[" + std::to_string(i) + "]")) {
            res.error = *verr;
            return res;
        }

    batchesCtr.add();
    std::vector<const std::vector<Symbol> *> ptrs;
    ptrs.reserve(chunks.size());
    std::size_t total = 0;
    for (const std::vector<Symbol> &c : chunks) {
        ptrs.push_back(&c);
        total += c.size();
        cfg.base.bus.transferChunk(c.data(), c.data(), c.size());
    }
    streamCharsCtr.add(total);
    clock.mark(telem::Stage::Admit);

    bool checked = false;
    std::uint64_t mismatches = 0;
    res.bits = runPass(group.carries, ptrs, group.pattern, checked,
                       mismatches, clock);
    if (checked && mismatches != 0)
        res.error = ServiceError::make(
            ErrorCode::BackendFailed,
            "sampled cross-check caught a kernel mismatch in this pass");
    clock.mark(telem::Stage::Commit);
    clock.addBeats(static_cast<Beat>(total));
    reqObs.observe(clock, 0, mismatches != 0, "cross-check mismatch", [&] {
        return telem::literalCaseId(cfg.base.alphabetBits, group.pattern,
                                    chunks.empty() ? std::vector<Symbol>{}
                                                   : chunks.front());
    });
    return res;
}

telem::Snapshot
BatchMatchService::metricsSnapshot() const
{
    return metrics.snapshot();
}

std::string
BatchMatchService::statsDump() const
{
    return metricsSnapshot().renderText("batch.") + cfg.base.bus.statsDump();
}

} // namespace spm::service
