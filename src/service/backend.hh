/**
 * @file
 * Ladder rungs: backends the service can stream windows through.
 *
 * A ServiceBackend matches one text window under a cooperative beat
 * budget. The service owns an ordered ladder of them -- gate-level
 * netlist first (highest fidelity), the behavioral array next, and a
 * software baseline (KMP for exact patterns, the reference definition
 * under wild cards) as the floor that cannot be wedged by an array
 * fault. The hardware/software co-design point: the host-side
 * software path is a first-class fallback, not an afterthought.
 *
 * BehavioralBackend is driven beat by beat, ticking the watchdog on
 * every step, so a fault-wedged array is cancelled mid-protocol;
 * MatcherBackend adapts any blocking core::Matcher (gate level,
 * bit-serial, cascade, multipass) by charging its beat count after
 * the fact. Both expose a chip-prep seam so the fault injector of
 * src/fault can attack the freshly built chip of each window.
 */

#ifndef SPM_SERVICE_BACKEND_HH
#define SPM_SERVICE_BACKEND_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/kmp.hh"
#include "core/behavioral.hh"
#include "core/matcher.hh"
#include "core/reference.hh"
#include "service/watchdog.hh"
#include "util/types.hh"

namespace spm::service
{

/** What one window produced. */
struct WindowResult
{
    /** r_i bits, one per window character; valid when completed. */
    std::vector<bool> bits;
    /** Beats this window consumed (charged to the watchdog). */
    Beat beats = 0;
    /**
     * True when all window results emerged within budget. False means
     * the watchdog tripped or the backend failed; bits are invalid.
     */
    bool completed = false;
    /** Failure note for the journal ("watchdog", exception text). */
    std::string note;
};

/** One rung of the degradation ladder. */
class ServiceBackend
{
  public:
    virtual ~ServiceBackend() = default;

    virtual std::string name() const = 0;

    /** Whether this rung can serve the request shape at all. */
    virtual bool supports(const std::vector<Symbol> &pattern) const
    {
        (void)pattern;
        return true;
    }

    /**
     * Match @p window against @p pattern, charging beats to @p dog.
     * Implementations must stop and report completed = false once the
     * watchdog trips; they must not throw.
     */
    virtual WindowResult matchWindow(const std::vector<Symbol> &window,
                                     const std::vector<Symbol> &pattern,
                                     BeatWatchdog &dog) = 0;
};

/**
 * The behavioral array driven beat by beat under the watchdog. A
 * fresh chip is built per window (exactly as BehavioralMatcher does),
 * and the optional chip-prep hook lets fault campaigns corrupt it.
 */
class BehavioralBackend : public ServiceBackend
{
  public:
    /** @param num_cells character cells per chip; must be > 0. */
    explicit BehavioralBackend(std::size_t num_cells);

    std::string name() const override { return "systolic-behavioral"; }

    /** Pattern must fit the array (no recirculating multipass here). */
    bool supports(const std::vector<Symbol> &pattern) const override
    {
        return !pattern.empty() && pattern.size() <= cells;
    }

    WindowResult matchWindow(const std::vector<Symbol> &window,
                             const std::vector<Symbol> &pattern,
                             BeatWatchdog &dog) override;

    /** Hook run on every freshly built chip (fault injection seam). */
    void setChipPrep(std::function<void(core::BehavioralChip &)> prep)
    {
        chipPrep = std::move(prep);
    }

  private:
    std::size_t cells;
    std::function<void(core::BehavioralChip &)> chipPrep;
};

/**
 * Adapter rung over any blocking core::Matcher. The matcher runs to
 * completion, then its beat count (from @p last_beats when provided,
 * else the protocol estimate) is charged in one tick; exceeding the
 * budget post hoc still cancels the window, it just cannot stop the
 * simulation mid-run. Exceptions from the matcher are converted to a
 * failed window, never propagated.
 */
class MatcherBackend : public ServiceBackend
{
  public:
    /**
     * @param matcher_impl the wrapped matcher
     * @param max_pattern largest pattern this rung accepts (0 = any)
     * @param last_beats called after match() for the true beat count
     */
    MatcherBackend(std::unique_ptr<core::Matcher> matcher_impl,
                   std::size_t max_pattern = 0,
                   std::function<Beat()> last_beats = nullptr);

    std::string name() const override { return impl->name(); }

    bool supports(const std::vector<Symbol> &pattern) const override
    {
        if (pattern.empty())
            return false;
        if (!impl->supportsWildcards()) {
            for (Symbol p : pattern)
                if (p == wildcardSymbol)
                    return false;
        }
        return maxPattern == 0 || pattern.size() <= maxPattern;
    }

    WindowResult matchWindow(const std::vector<Symbol> &window,
                             const std::vector<Symbol> &pattern,
                             BeatWatchdog &dog) override;

  private:
    std::unique_ptr<core::Matcher> impl;
    std::size_t maxPattern;
    std::function<Beat()> lastBeats;
};

/**
 * The software floor: KMP when the pattern is exact, the reference
 * definition when it has wild cards. Host CPU work is charged at one
 * beat per window character, half the hardware protocol's rate, so
 * the floor fits comfortably in any budget a hardware rung had.
 */
class SoftwareBackend : public ServiceBackend
{
  public:
    std::string name() const override { return "software-baseline"; }

    bool supports(const std::vector<Symbol> &pattern) const override
    {
        return !pattern.empty();
    }

    WindowResult matchWindow(const std::vector<Symbol> &window,
                             const std::vector<Symbol> &pattern,
                             BeatWatchdog &dog) override;

  private:
    baselines::KmpMatcher kmp;
    core::ReferenceMatcher reference;
};

} // namespace spm::service

#endif // SPM_SERVICE_BACKEND_HH
