#include "service/service.hh"

#include <algorithm>
#include <utility>

#include "core/gatechip.hh"
#include "core/reference.hh"
#include "telemetry/telem.hh"
#include "util/logging.hh"

namespace spm::service
{

namespace
{

std::string
joinNames(const std::vector<std::string> &names)
{
    std::string s;
    for (const std::string &n : names) {
        if (!s.empty())
            s += ",";
        s += n;
    }
    return s;
}

} // namespace

// --- StreamSession ----------------------------------------------------

StreamSession::StreamSession(MatchService &svc, MatchRequest req,
                             std::optional<Checkpoint> resume_from)
    : service(svc), request(std::move(req)),
      rungFaults(svc.ladder.size(), 0)
{
    clock.start();
    if (clock.running() && request.enqueuedNs != 0)
        clock.note(telem::Stage::QueueWait,
                   telem::nowNs() - request.enqueuedNs);
    response.id = request.id;
    if (resume_from) {
        cp = std::move(*resume_from);
        response.resumed = true;
        response.beats = cp.beats;
        service.resumesCtr.add();
        if (service.log.enabled())
            service.log.record(
                "req=" + std::to_string(request.id) + " resume offset=" +
                std::to_string(cp.offset) + " rung=" +
                std::to_string(cp.rung) + " ckpt=" +
                std::to_string(cp.digest()));
    } else if (service.log.enabled()) {
        service.log.record("req=" + std::to_string(request.id) +
                           " start n=" +
                           std::to_string(request.text.size()) + " k=" +
                           std::to_string(request.pattern.size()) +
                           " ladder=" +
                           joinNames(service.ladderNames()));
    }
    cp.emitted.reserve(request.text.size());
}

void
StreamSession::fail(ErrorCode code, const std::string &detail)
{
    response.error = ServiceError::make(code, detail);
    finished = true;
    if (service.log.enabled())
        service.log.record("req=" + std::to_string(request.id) +
                           " fail code=" + errorCodeName(code) + " " +
                           detail);
}

Beat
StreamSession::windowBudget(std::size_t window_len) const
{
    // The behavioral feed plan finishes a window of n characters in
    // 2n + phi + cells + 4 beats; the bit-serial organization adds
    // one beat per character bit of drain. The margin covers both
    // and leaves the slack that separates "slow" from "wedged".
    const ServiceConfig &cfg = service.cfg;
    const double plan_beats = 2.0 * static_cast<double>(window_len) +
                              static_cast<double>(cfg.cells) +
                              static_cast<double>(request.pattern.size()) +
                              static_cast<double>(cfg.alphabetBits) + 8.0;
    return static_cast<Beat>(plan_beats * cfg.watchdogMargin);
}

bool
StreamSession::step()
{
    if (finished)
        return false;

    const std::size_t n = request.text.size();
    const std::size_t k = request.pattern.size();
    if (cp.offset >= n) {
        // Fully served: publish the accumulated stream.
        response.result = cp.emitted;
        response.backend = service.ladder.empty()
            ? "none"
            : service.ladder[cp.rung]->name();
        finished = true;
        if (service.log.enabled())
            service.log.record("req=" + std::to_string(request.id) +
                               " done ok backend=" + response.backend +
                               " beats=" +
                               std::to_string(response.beats));
        return false;
    }

    ServiceConfig &cfg = service.cfg;
    const std::size_t chunk =
        std::min(cfg.chunkChars, n - cp.offset);

    // The window re-presents the k-1 checkpointed tail characters so
    // the first result bit of this chunk sees its full substring. The
    // buffer is a session member: its capacity survives across chunks
    // so the steady state allocates nothing per chunk.
    window.assign(cp.tail.begin(), cp.tail.end());
    window.insert(window.end(),
                  request.text.begin() +
                      static_cast<std::ptrdiff_t>(cp.offset),
                  request.text.begin() +
                      static_cast<std::ptrdiff_t>(cp.offset + chunk));

    SPM_TSPAN_NAMED(chunk_span, "service.chunk", telem::cat::service,
                    response.beats, request.id);

    // The flight recorder's replay handle for this chunk: the window
    // and pattern as a self-contained conformance case.
    auto chunkCaseId = [&] {
        return telem::literalCaseId(cfg.alphabetBits, request.pattern,
                                    window);
    };
    auto flightEvent = [&](telem::FlightKind kind) {
        telem::FlightEvent ev;
        ev.kind = kind;
        ev.beat = response.beats;
        ev.shard = cfg.shardId;
        ev.requestId = request.id;
        ev.offset = cp.offset;
        return ev;
    };

    // Everything up to here -- queue pop, window assembly, budget
    // math -- is admission work.
    clock.mark(telem::Stage::Admit);

    bool last_fail_watchdog = false;
    std::size_t rung = cp.rung;
    while (rung < service.ladder.size()) {
        ServiceBackend &backend = *service.ladder[rung];
        if (!backend.supports(request.pattern)) {
            if (service.log.enabled())
                service.log.record("req=" + std::to_string(request.id) +
                                   " skip rung=" + backend.name() +
                                   " reason=unsupported");
            cp.rung = ++rung;
            continue;
        }

        Beat budget = windowBudget(window.size());
        if (request.deadlineBeats > 0) {
            if (response.beats >= request.deadlineBeats) {
                fail(ErrorCode::DeadlineExceeded,
                     "request deadline of " +
                         std::to_string(request.deadlineBeats) +
                         " beats exhausted at offset " +
                         std::to_string(cp.offset));
                return false;
            }
            budget = std::min(budget,
                              request.deadlineBeats - response.beats);
        }

        service.dog.arm(budget);
        WindowResult wr =
            backend.matchWindow(window, request.pattern, service.dog);
        response.beats += wr.beats;
        clock.mark(telem::Stage::Kernel);
        clock.addBeats(wr.beats);

        if (!wr.completed) {
            last_fail_watchdog = service.dog.tripped();
            if (last_fail_watchdog) {
                ++response.watchdogTrips;
                service.watchdogTripsCtr.add();
                telem::FlightEvent trip =
                    flightEvent(telem::FlightKind::WatchdogTrip);
                trip.beat = response.beats;
                trip.code = errorCodeName(ErrorCode::DeadlineExceeded);
                trip.caseId = chunkCaseId();
                trip.note = "rung=" + backend.name() + " budget=" +
                            std::to_string(budget);
                service.flight.trip("watchdog trip", std::move(trip));
                SPM_TINSTANT("service.watchdog_trip",
                             telem::cat::service, response.beats,
                             request.id);
            }
            if (service.log.enabled())
                service.log.record(
                    "req=" + std::to_string(request.id) +
                    " cancel rung=" + backend.name() + " offset=" +
                    std::to_string(cp.offset) + " " +
                    (wr.note.empty() ? "failed" : wr.note));
            ++response.degradations;
            service.degradationsCtr.add();
            telem::FlightEvent fall =
                flightEvent(telem::FlightKind::LadderTransition);
            fall.beat = response.beats;
            fall.code = errorCodeName(last_fail_watchdog
                                          ? ErrorCode::DeadlineExceeded
                                          : ErrorCode::BackendFailed);
            fall.caseId = chunkCaseId();
            fall.note = "fall from=" + backend.name() + " to_rung=" +
                        std::to_string(rung + 1);
            service.flight.trip("ladder transition", std::move(fall));
            SPM_TINSTANT("service.ladder_fall", telem::cat::service,
                         response.beats, rung + 1);
            cp.rung = ++rung;
            continue;
        }

        if (cfg.crossCheck) {
            const std::vector<bool> expect =
                core::ReferenceMatcher().match(window, request.pattern);
            clock.mark(telem::Stage::CrossCheck);
            if (wr.bits != expect) {
                ++response.crossCheckFailures;
                service.crossCheckFailuresCtr.add();
                const unsigned faults = ++rungFaults[rung];
                telem::FlightEvent mismatch =
                    flightEvent(telem::FlightKind::CrossCheckMismatch);
                mismatch.code = errorCodeName(ErrorCode::BackendFailed);
                mismatch.caseId = chunkCaseId();
                mismatch.note =
                    "rung=" + backend.name() + " faults=" +
                    std::to_string(faults) + "/" +
                    std::to_string(cfg.rungFaultBudget);
                service.flight.record(std::move(mismatch));
                if (service.log.enabled())
                    service.log.record(
                        "req=" + std::to_string(request.id) +
                        " crosscheck-mismatch rung=" + backend.name() +
                        " offset=" + std::to_string(cp.offset) +
                        " faults=" + std::to_string(faults) + "/" +
                        std::to_string(cfg.rungFaultBudget));
                if (faults > cfg.rungFaultBudget) {
                    last_fail_watchdog = false;
                    ++response.degradations;
                    service.degradationsCtr.add();
                    telem::FlightEvent fall = flightEvent(
                        telem::FlightKind::LadderTransition);
                    fall.code =
                        errorCodeName(ErrorCode::BackendFailed);
                    fall.caseId = chunkCaseId();
                    fall.note = "fault budget burned from=" +
                                backend.name() + " to_rung=" +
                                std::to_string(rung + 1);
                    service.flight.trip("ladder transition",
                                        std::move(fall));
                    SPM_TINSTANT("service.ladder_fall",
                                 telem::cat::service, response.beats,
                                 rung + 1);
                    cp.rung = ++rung;
                }
                // Within budget: re-run the same rung (a transient
                // clears on the re-run; a permanent fault burns the
                // budget and forces the fall).
                continue;
            }
        }

        // Commit: pace the chunk over the bus as one batched handoff
        // (parity checked end to end; same counters as the per-char
        // path), append the new result bits, cut a checkpoint.
        service.cfg.bus.transferChunk(request.text.data() + cp.offset,
                                      request.text.data() + cp.offset,
                                      chunk);
        const std::size_t skip = window.size() - chunk;
        for (std::size_t j = skip; j < window.size(); ++j)
            cp.emitted.push_back(wr.bits[j]);

        cp.offset += chunk;
        const std::size_t tail_len =
            std::min(k > 0 ? k - 1 : 0, cp.offset);
        cp.tail.assign(request.text.begin() +
                           static_cast<std::ptrdiff_t>(cp.offset -
                                                       tail_len),
                       request.text.begin() +
                           static_cast<std::ptrdiff_t>(cp.offset));
        cp.rung = rung;
        cp.beats = response.beats;
        ++response.chunks;
        ++response.checkpoints;
        service.checkpointsCtr.add();
        SPM_THIST(service.chunkBeatsHist,
                  static_cast<double>(wr.beats));
        chunk_span.setBeat(response.beats);
        service.flight.record(
            flightEvent(telem::FlightKind::ChunkCommit));
        clock.mark(telem::Stage::Commit);
        if (service.log.enabled()) {
            service.log.record(
                "req=" + std::to_string(request.id) + " chunk offset=" +
                std::to_string(cp.offset) + "/" + std::to_string(n) +
                " rung=" + backend.name() + " beats=" +
                std::to_string(wr.beats) + " ckpt=" +
                std::to_string(cp.digest()));
            clock.mark(telem::Stage::Journal);
        }
        // Even when this was the last chunk, one more step() call
        // publishes the response; callers loop on the return value.
        return true;
    }

    // Every rung skipped, cancelled or out of fault budget.
    if (last_fail_watchdog)
        fail(ErrorCode::DeadlineExceeded,
             "watchdog cancelled every remaining rung at offset " +
                 std::to_string(cp.offset));
    else
        fail(ErrorCode::BackendFailed,
             "degradation ladder exhausted at offset " +
                 std::to_string(cp.offset));
    return false;
}

MatchResponse
StreamSession::finish()
{
    if (!finished) {
        if (cp.offset >= request.text.size()) {
            // All chunks done; step() once more to publish.
            step();
        } else {
            cancel("finish() before completion");
        }
    }
    service.servedCtr.add();
    if (response.ok())
        service.completedCtr.add();
    else
        service.failedCtr.add();
    if (!observed) {
        observed = true;
        // Watchdog trips and ladder falls force-retain their trace;
        // the whole request replays as one conformance case.
        const char *reason = nullptr;
        if (response.watchdogTrips > 0)
            reason = "watchdog trip";
        else if (response.crossCheckFailures > 0)
            reason = "cross-check mismatch";
        else if (response.degradations > 0)
            reason = "ladder fall";
        service.reqObs.observe(
            clock, request.id, reason != nullptr, reason, [this] {
                return telem::literalCaseId(service.cfg.alphabetBits,
                                            request.pattern,
                                            request.text);
            });
    }
    return response;
}

void
StreamSession::cancel(const std::string &reason)
{
    if (finished)
        return;
    fail(ErrorCode::Cancelled, reason);
}

// --- MatchService -----------------------------------------------------

MatchService::MatchService(ServiceConfig config)
    : MatchService(std::move(config), {})
{
}

MatchService::MatchService(
    ServiceConfig config,
    std::vector<std::unique_ptr<ServiceBackend>> ladder_rungs)
    : cfg(std::move(config)), ladder(std::move(ladder_rungs)),
      queue(cfg.queueCapacity, cfg.policy), log(cfg.journalEnabled),
      servedCtr(metrics.counter("served")),
      completedCtr(metrics.counter("completed")),
      failedCtr(metrics.counter("failed")),
      degradationsCtr(metrics.counter("degradations")),
      watchdogTripsCtr(metrics.counter("watchdogTrips")),
      crossCheckFailuresCtr(metrics.counter("crossCheckFailures")),
      checkpointsCtr(metrics.counter("checkpoints")),
      resumesCtr(metrics.counter("resumes")),
      queueDepthGauge(metrics.gauge("queue_depth")),
      chunkBeatsHist(metrics.histogram("chunk_beats", 0.0, 1024.0, 16)),
      flight(cfg.flightCapacity),
      reqObs(metrics, "stream", &exemplarStore)
{
    spm_assert(cfg.cells > 0, "service needs at least one cell");
    spm_assert(cfg.chunkChars > 0, "service needs a nonzero chunk size");
    spm_assert(cfg.alphabetBits >= 1 && cfg.alphabetBits <= 16,
               "alphabet width must be in [1, 16] bits");
    if (ladder.empty())
        ladder = makeDefaultLadder(cfg);
    spm_assert(!ladder.empty(), "service needs at least one backend");
}

std::vector<std::string>
MatchService::ladderNames() const
{
    std::vector<std::string> names;
    names.reserve(ladder.size());
    for (const auto &b : ladder)
        names.push_back(b->name());
    return names;
}

std::optional<ServiceError>
MatchService::validate(const MatchRequest &req) const
{
    return validateRequest(cfg, req);
}

std::optional<ServiceError>
validatePattern(const ServiceConfig &cfg, const std::vector<Symbol> &pattern,
                const std::string &label)
{
    if (pattern.empty())
        return ServiceError::make(ErrorCode::InvalidPattern,
                                  "empty " + label);
    if (pattern.size() > cfg.maxPatternLen)
        return ServiceError::make(
            ErrorCode::OversizedRequest,
            label + " of " + std::to_string(pattern.size()) +
                " exceeds limit " + std::to_string(cfg.maxPatternLen));
    const Symbol sigma = static_cast<Symbol>(1u << cfg.alphabetBits);
    for (std::size_t i = 0; i < pattern.size(); ++i)
        if (pattern[i] != wildcardSymbol && pattern[i] >= sigma)
            return ServiceError::make(
                ErrorCode::AlphabetOverflow,
                label + "[" + std::to_string(i) + "]=" +
                    std::to_string(pattern[i]) + " outside alphabet of " +
                    std::to_string(sigma));
    return std::nullopt;
}

std::optional<ServiceError>
validateText(const ServiceConfig &cfg, const std::vector<Symbol> &text,
             std::uint64_t already_seen, const std::string &label)
{
    if (already_seen + text.size() > cfg.maxTextLen)
        return ServiceError::make(
            ErrorCode::OversizedRequest,
            label + " of " + std::to_string(already_seen + text.size()) +
                " chars exceeds limit " + std::to_string(cfg.maxTextLen));
    const Symbol sigma = static_cast<Symbol>(1u << cfg.alphabetBits);
    for (std::size_t i = 0; i < text.size(); ++i)
        if (text[i] >= sigma)
            return ServiceError::make(
                ErrorCode::AlphabetOverflow,
                label + "[" + std::to_string(i) + "]=" +
                    std::to_string(text[i]) + " outside alphabet of " +
                    std::to_string(sigma));
    return std::nullopt;
}

std::optional<ServiceError>
validateRequest(const ServiceConfig &cfg, const MatchRequest &req)
{
    if (auto err = validatePattern(cfg, req.pattern))
        return err;
    return validateText(cfg, req.text);
}

StreamSession
MatchService::startSession(const MatchRequest &req)
{
    StreamSession session(*this, req, std::nullopt);
    if (auto err = validate(req))
        session.fail(err->code, err->detail);
    return session;
}

MatchResponse
MatchService::serve(const MatchRequest &req)
{
    StreamSession session = startSession(req);
    while (session.step()) {
    }
    return session.finish();
}

MatchResponse
MatchService::resume(const MatchRequest &req, const Checkpoint &from)
{
    StreamSession session(*this, req, from);
    if (auto err = validate(req)) {
        session.fail(err->code, err->detail);
        return session.finish();
    }
    const std::size_t k = req.pattern.size();
    const std::size_t want_tail = std::min(k > 0 ? k - 1 : 0, from.offset);
    if (from.offset > req.text.size() ||
        from.emitted.size() != from.offset ||
        from.tail.size() != want_tail || from.rung >= ladder.size()) {
        session.fail(ErrorCode::InvalidCheckpoint,
                     "checkpoint inconsistent with request (offset " +
                         std::to_string(from.offset) + ", " +
                         std::to_string(from.emitted.size()) +
                         " emitted, tail " +
                         std::to_string(from.tail.size()) + ")");
        return session.finish();
    }
    while (session.step()) {
    }
    return session.finish();
}

MatchService::SubmitResult
MatchService::submit(MatchRequest req)
{
    SubmitResult out;
    if (auto err = validate(req)) {
        // Invalid requests never consume queue space; the rejection
        // is typed just like an admission rejection.
        out.error = *err;
        if (log.enabled())
            log.record("req=" + std::to_string(req.id) +
                       " rejected at validation: " + err->toString());
        return out;
    }

#ifndef SPM_TELEM_OFF
    if (telem::samplingEnabled() && req.enqueuedNs == 0)
        req.enqueuedNs = telem::nowNs();
#endif
    for (;;) {
        Admission adm = queue.offer(std::move(req));
        if (adm.shed) {
            // The displaced request is answered, never dropped.
            MatchResponse shed_resp;
            shed_resp.id = adm.shed->id;
            shed_resp.error = ServiceError::make(
                ErrorCode::Shed, "evicted under shed-oldest policy");
            if (log.enabled())
                log.record("req=" + std::to_string(shed_resp.id) +
                           " shed");
            servedCtr.add();
            failedCtr.add();
            out.shedResponse = std::move(shed_resp);
        }
        if (adm.admitted) {
            out.accepted = true;
            queueDepthGauge.set(static_cast<double>(queue.size()));
            return out;
        }
        if (adm.mustDrain) {
            // Block policy: the producer stalls while the service
            // drains the queue head, then the offer is retried with
            // the bounced request.
            spm_assert(adm.bounced.has_value(),
                       "blocked offer must bounce the request");
            if (auto head = queue.pop()) {
                queueDepthGauge.set(static_cast<double>(queue.size()));
                out.drained.push_back(serve(*head));
            }
            req = std::move(*adm.bounced);
            continue;
        }
        out.error = adm.error;
        return out;
    }
}

std::vector<MatchResponse>
MatchService::drain()
{
    std::vector<MatchResponse> out;
    while (auto req = queue.pop()) {
        queueDepthGauge.set(static_cast<double>(queue.size()));
        out.push_back(serve(*req));
    }
    return out;
}

telem::Snapshot
MatchService::metricsSnapshot() const
{
    telem::Snapshot snap = metrics.snapshot();
    snap.setCounter("queue.offered", queue.offered());
    snap.setCounter("queue.admitted", queue.admitted());
    snap.setCounter("queue.rejected", queue.rejected());
    snap.setCounter("queue.shed", queue.shedCount());
    snap.setCounter("queue.blockedOffers", queue.blockedOffers());
    return snap;
}

std::string
MatchService::statsDump() const
{
    return metricsSnapshot().renderText("service.") +
           cfg.bus.statsDump();
}

std::vector<std::unique_ptr<ServiceBackend>>
makeDefaultLadder(const ServiceConfig &config)
{
    std::vector<std::unique_ptr<ServiceBackend>> ladder;

    auto gate = std::make_unique<core::GateLevelMatcher>(
        config.cells, config.alphabetBits);
    core::GateLevelMatcher *gate_raw = gate.get();
    ladder.push_back(std::make_unique<MatcherBackend>(
        std::move(gate), config.cells,
        [gate_raw] { return gate_raw->lastBeats(); }));

    ladder.push_back(std::make_unique<BehavioralBackend>(config.cells));
    ladder.push_back(std::make_unique<SoftwareBackend>());
    return ladder;
}

} // namespace spm::service
