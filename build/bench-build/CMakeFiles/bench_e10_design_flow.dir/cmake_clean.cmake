file(REMOVE_RECURSE
  "../bench/bench_e10_design_flow"
  "../bench/bench_e10_design_flow.pdb"
  "CMakeFiles/bench_e10_design_flow.dir/bench_e10_design_flow.cc.o"
  "CMakeFiles/bench_e10_design_flow.dir/bench_e10_design_flow.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_design_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
