# Empty compiler generated dependencies file for bench_e10_design_flow.
# This may be replaced when dependencies are built.
