file(REMOVE_RECURSE
  "../bench/bench_a1_ablations"
  "../bench/bench_a1_ablations.pdb"
  "CMakeFiles/bench_a1_ablations.dir/bench_a1_ablations.cc.o"
  "CMakeFiles/bench_a1_ablations.dir/bench_a1_ablations.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
