file(REMOVE_RECURSE
  "../bench/bench_e7_cascade"
  "../bench/bench_e7_cascade.pdb"
  "CMakeFiles/bench_e7_cascade.dir/bench_e7_cascade.cc.o"
  "CMakeFiles/bench_e7_cascade.dir/bench_e7_cascade.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_cascade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
