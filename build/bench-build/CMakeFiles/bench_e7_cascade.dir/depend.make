# Empty dependencies file for bench_e7_cascade.
# This may be replaced when dependencies are built.
