file(REMOVE_RECURSE
  "../bench/bench_e6_alternatives"
  "../bench/bench_e6_alternatives.pdb"
  "CMakeFiles/bench_e6_alternatives.dir/bench_e6_alternatives.cc.o"
  "CMakeFiles/bench_e6_alternatives.dir/bench_e6_alternatives.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_alternatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
