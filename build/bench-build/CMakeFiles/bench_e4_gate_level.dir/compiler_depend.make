# Empty compiler generated dependencies file for bench_e4_gate_level.
# This may be replaced when dependencies are built.
