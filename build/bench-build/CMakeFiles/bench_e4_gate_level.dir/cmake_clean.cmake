file(REMOVE_RECURSE
  "../bench/bench_e4_gate_level"
  "../bench/bench_e4_gate_level.pdb"
  "CMakeFiles/bench_e4_gate_level.dir/bench_e4_gate_level.cc.o"
  "CMakeFiles/bench_e4_gate_level.dir/bench_e4_gate_level.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_gate_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
