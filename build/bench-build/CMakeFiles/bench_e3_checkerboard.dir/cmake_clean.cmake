file(REMOVE_RECURSE
  "../bench/bench_e3_checkerboard"
  "../bench/bench_e3_checkerboard.pdb"
  "CMakeFiles/bench_e3_checkerboard.dir/bench_e3_checkerboard.cc.o"
  "CMakeFiles/bench_e3_checkerboard.dir/bench_e3_checkerboard.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_checkerboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
