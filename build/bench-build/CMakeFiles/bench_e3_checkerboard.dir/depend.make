# Empty dependencies file for bench_e3_checkerboard.
# This may be replaced when dependencies are built.
