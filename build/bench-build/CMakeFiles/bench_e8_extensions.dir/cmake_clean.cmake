file(REMOVE_RECURSE
  "../bench/bench_e8_extensions"
  "../bench/bench_e8_extensions.pdb"
  "CMakeFiles/bench_e8_extensions.dir/bench_e8_extensions.cc.o"
  "CMakeFiles/bench_e8_extensions.dir/bench_e8_extensions.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
