# Empty compiler generated dependencies file for bench_e5_data_rate.
# This may be replaced when dependencies are built.
