file(REMOVE_RECURSE
  "../bench/bench_e5_data_rate"
  "../bench/bench_e5_data_rate.pdb"
  "CMakeFiles/bench_e5_data_rate.dir/bench_e5_data_rate.cc.o"
  "CMakeFiles/bench_e5_data_rate.dir/bench_e5_data_rate.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_data_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
