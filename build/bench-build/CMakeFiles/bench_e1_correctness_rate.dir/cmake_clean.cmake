file(REMOVE_RECURSE
  "../bench/bench_e1_correctness_rate"
  "../bench/bench_e1_correctness_rate.pdb"
  "CMakeFiles/bench_e1_correctness_rate.dir/bench_e1_correctness_rate.cc.o"
  "CMakeFiles/bench_e1_correctness_rate.dir/bench_e1_correctness_rate.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_correctness_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
