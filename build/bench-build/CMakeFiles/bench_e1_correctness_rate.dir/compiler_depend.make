# Empty compiler generated dependencies file for bench_e1_correctness_rate.
# This may be replaced when dependencies are built.
