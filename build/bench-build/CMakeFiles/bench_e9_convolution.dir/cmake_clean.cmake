file(REMOVE_RECURSE
  "../bench/bench_e9_convolution"
  "../bench/bench_e9_convolution.pdb"
  "CMakeFiles/bench_e9_convolution.dir/bench_e9_convolution.cc.o"
  "CMakeFiles/bench_e9_convolution.dir/bench_e9_convolution.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_convolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
