file(REMOVE_RECURSE
  "../bench/bench_a2_wafer_scale"
  "../bench/bench_a2_wafer_scale.pdb"
  "CMakeFiles/bench_a2_wafer_scale.dir/bench_a2_wafer_scale.cc.o"
  "CMakeFiles/bench_a2_wafer_scale.dir/bench_a2_wafer_scale.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_wafer_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
