# Empty compiler generated dependencies file for bench_a2_wafer_scale.
# This may be replaced when dependencies are built.
