file(REMOVE_RECURSE
  "../bench/bench_e2_choreography"
  "../bench/bench_e2_choreography.pdb"
  "CMakeFiles/bench_e2_choreography.dir/bench_e2_choreography.cc.o"
  "CMakeFiles/bench_e2_choreography.dir/bench_e2_choreography.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_choreography.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
