# Empty dependencies file for core_bitserial_test.
# This may be replaced when dependencies are built.
