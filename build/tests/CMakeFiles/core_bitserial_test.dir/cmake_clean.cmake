file(REMOVE_RECURSE
  "CMakeFiles/core_bitserial_test.dir/core_bitserial_test.cc.o"
  "CMakeFiles/core_bitserial_test.dir/core_bitserial_test.cc.o.d"
  "core_bitserial_test"
  "core_bitserial_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_bitserial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
