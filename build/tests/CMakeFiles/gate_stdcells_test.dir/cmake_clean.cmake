file(REMOVE_RECURSE
  "CMakeFiles/gate_stdcells_test.dir/gate_stdcells_test.cc.o"
  "CMakeFiles/gate_stdcells_test.dir/gate_stdcells_test.cc.o.d"
  "gate_stdcells_test"
  "gate_stdcells_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gate_stdcells_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
