# Empty compiler generated dependencies file for gate_stdcells_test.
# This may be replaced when dependencies are built.
