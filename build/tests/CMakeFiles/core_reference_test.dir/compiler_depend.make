# Empty compiler generated dependencies file for core_reference_test.
# This may be replaced when dependencies are built.
