file(REMOVE_RECURSE
  "CMakeFiles/core_reference_test.dir/core_reference_test.cc.o"
  "CMakeFiles/core_reference_test.dir/core_reference_test.cc.o.d"
  "core_reference_test"
  "core_reference_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_reference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
