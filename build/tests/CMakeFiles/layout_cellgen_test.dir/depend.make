# Empty dependencies file for layout_cellgen_test.
# This may be replaced when dependencies are built.
