file(REMOVE_RECURSE
  "CMakeFiles/layout_cellgen_test.dir/layout_cellgen_test.cc.o"
  "CMakeFiles/layout_cellgen_test.dir/layout_cellgen_test.cc.o.d"
  "layout_cellgen_test"
  "layout_cellgen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_cellgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
