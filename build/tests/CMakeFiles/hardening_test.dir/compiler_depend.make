# Empty compiler generated dependencies file for hardening_test.
# This may be replaced when dependencies are built.
