file(REMOVE_RECURSE
  "CMakeFiles/hardening_test.dir/hardening_test.cc.o"
  "CMakeFiles/hardening_test.dir/hardening_test.cc.o.d"
  "hardening_test"
  "hardening_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardening_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
