file(REMOVE_RECURSE
  "CMakeFiles/layout_cif_test.dir/layout_cif_test.cc.o"
  "CMakeFiles/layout_cif_test.dir/layout_cif_test.cc.o.d"
  "layout_cif_test"
  "layout_cif_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_cif_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
