# Empty compiler generated dependencies file for layout_cif_test.
# This may be replaced when dependencies are built.
