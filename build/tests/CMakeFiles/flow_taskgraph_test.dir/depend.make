# Empty dependencies file for flow_taskgraph_test.
# This may be replaced when dependencies are built.
