file(REMOVE_RECURSE
  "CMakeFiles/flow_taskgraph_test.dir/flow_taskgraph_test.cc.o"
  "CMakeFiles/flow_taskgraph_test.dir/flow_taskgraph_test.cc.o.d"
  "flow_taskgraph_test"
  "flow_taskgraph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_taskgraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
