file(REMOVE_RECURSE
  "CMakeFiles/gate_logic_test.dir/gate_logic_test.cc.o"
  "CMakeFiles/gate_logic_test.dir/gate_logic_test.cc.o.d"
  "gate_logic_test"
  "gate_logic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gate_logic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
