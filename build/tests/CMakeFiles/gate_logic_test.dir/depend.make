# Empty dependencies file for gate_logic_test.
# This may be replaced when dependencies are built.
