file(REMOVE_RECURSE
  "CMakeFiles/metamorphic_test.dir/metamorphic_test.cc.o"
  "CMakeFiles/metamorphic_test.dir/metamorphic_test.cc.o.d"
  "metamorphic_test"
  "metamorphic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metamorphic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
