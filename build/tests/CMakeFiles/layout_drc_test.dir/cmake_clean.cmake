file(REMOVE_RECURSE
  "CMakeFiles/layout_drc_test.dir/layout_drc_test.cc.o"
  "CMakeFiles/layout_drc_test.dir/layout_drc_test.cc.o.d"
  "layout_drc_test"
  "layout_drc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_drc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
