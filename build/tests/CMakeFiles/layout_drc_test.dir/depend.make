# Empty dependencies file for layout_drc_test.
# This may be replaced when dependencies are built.
