file(REMOVE_RECURSE
  "CMakeFiles/systolic_clock_test.dir/systolic_clock_test.cc.o"
  "CMakeFiles/systolic_clock_test.dir/systolic_clock_test.cc.o.d"
  "systolic_clock_test"
  "systolic_clock_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/systolic_clock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
