# Empty compiler generated dependencies file for systolic_clock_test.
# This may be replaced when dependencies are built.
