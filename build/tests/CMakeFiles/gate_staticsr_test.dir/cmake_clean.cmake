file(REMOVE_RECURSE
  "CMakeFiles/gate_staticsr_test.dir/gate_staticsr_test.cc.o"
  "CMakeFiles/gate_staticsr_test.dir/gate_staticsr_test.cc.o.d"
  "gate_staticsr_test"
  "gate_staticsr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gate_staticsr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
