# Empty compiler generated dependencies file for gate_staticsr_test.
# This may be replaced when dependencies are built.
