file(REMOVE_RECURSE
  "CMakeFiles/systolic_selftimed_test.dir/systolic_selftimed_test.cc.o"
  "CMakeFiles/systolic_selftimed_test.dir/systolic_selftimed_test.cc.o.d"
  "systolic_selftimed_test"
  "systolic_selftimed_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/systolic_selftimed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
