# Empty compiler generated dependencies file for systolic_selftimed_test.
# This may be replaced when dependencies are built.
