# Empty compiler generated dependencies file for layout_geometry_test.
# This may be replaced when dependencies are built.
