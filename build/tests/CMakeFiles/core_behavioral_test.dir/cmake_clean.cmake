file(REMOVE_RECURSE
  "CMakeFiles/core_behavioral_test.dir/core_behavioral_test.cc.o"
  "CMakeFiles/core_behavioral_test.dir/core_behavioral_test.cc.o.d"
  "core_behavioral_test"
  "core_behavioral_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_behavioral_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
