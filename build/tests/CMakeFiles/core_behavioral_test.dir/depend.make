# Empty dependencies file for core_behavioral_test.
# This may be replaced when dependencies are built.
