file(REMOVE_RECURSE
  "CMakeFiles/gate_twophase_test.dir/gate_twophase_test.cc.o"
  "CMakeFiles/gate_twophase_test.dir/gate_twophase_test.cc.o.d"
  "gate_twophase_test"
  "gate_twophase_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gate_twophase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
