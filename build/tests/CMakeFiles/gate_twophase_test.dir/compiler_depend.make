# Empty compiler generated dependencies file for gate_twophase_test.
# This may be replaced when dependencies are built.
