file(REMOVE_RECURSE
  "CMakeFiles/systolic_engine_test.dir/systolic_engine_test.cc.o"
  "CMakeFiles/systolic_engine_test.dir/systolic_engine_test.cc.o.d"
  "systolic_engine_test"
  "systolic_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/systolic_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
