# Empty compiler generated dependencies file for systolic_engine_test.
# This may be replaced when dependencies are built.
