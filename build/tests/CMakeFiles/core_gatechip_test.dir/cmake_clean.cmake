file(REMOVE_RECURSE
  "CMakeFiles/core_gatechip_test.dir/core_gatechip_test.cc.o"
  "CMakeFiles/core_gatechip_test.dir/core_gatechip_test.cc.o.d"
  "core_gatechip_test"
  "core_gatechip_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_gatechip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
