# Empty dependencies file for core_gatechip_test.
# This may be replaced when dependencies are built.
