file(REMOVE_RECURSE
  "CMakeFiles/util_bitvec_test.dir/util_bitvec_test.cc.o"
  "CMakeFiles/util_bitvec_test.dir/util_bitvec_test.cc.o.d"
  "util_bitvec_test"
  "util_bitvec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_bitvec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
