# Empty dependencies file for util_bitvec_test.
# This may be replaced when dependencies are built.
