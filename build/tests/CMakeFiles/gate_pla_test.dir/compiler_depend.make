# Empty compiler generated dependencies file for gate_pla_test.
# This may be replaced when dependencies are built.
