file(REMOVE_RECURSE
  "CMakeFiles/gate_pla_test.dir/gate_pla_test.cc.o"
  "CMakeFiles/gate_pla_test.dir/gate_pla_test.cc.o.d"
  "gate_pla_test"
  "gate_pla_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gate_pla_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
