file(REMOVE_RECURSE
  "CMakeFiles/core_multipass_test.dir/core_multipass_test.cc.o"
  "CMakeFiles/core_multipass_test.dir/core_multipass_test.cc.o.d"
  "core_multipass_test"
  "core_multipass_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_multipass_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
