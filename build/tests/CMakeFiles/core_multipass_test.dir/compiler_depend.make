# Empty compiler generated dependencies file for core_multipass_test.
# This may be replaced when dependencies are built.
