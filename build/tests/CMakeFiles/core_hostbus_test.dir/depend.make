# Empty dependencies file for core_hostbus_test.
# This may be replaced when dependencies are built.
