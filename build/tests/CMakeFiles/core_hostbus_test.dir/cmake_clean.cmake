file(REMOVE_RECURSE
  "CMakeFiles/core_hostbus_test.dir/core_hostbus_test.cc.o"
  "CMakeFiles/core_hostbus_test.dir/core_hostbus_test.cc.o.d"
  "core_hostbus_test"
  "core_hostbus_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_hostbus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
