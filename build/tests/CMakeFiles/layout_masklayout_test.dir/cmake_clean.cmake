file(REMOVE_RECURSE
  "CMakeFiles/layout_masklayout_test.dir/layout_masklayout_test.cc.o"
  "CMakeFiles/layout_masklayout_test.dir/layout_masklayout_test.cc.o.d"
  "layout_masklayout_test"
  "layout_masklayout_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_masklayout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
