# Empty compiler generated dependencies file for layout_masklayout_test.
# This may be replaced when dependencies are built.
