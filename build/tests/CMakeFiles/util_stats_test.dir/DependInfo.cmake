
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util_stats_test.cc" "tests/CMakeFiles/util_stats_test.dir/util_stats_test.cc.o" "gcc" "tests/CMakeFiles/util_stats_test.dir/util_stats_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flow/CMakeFiles/spm_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/extensions/CMakeFiles/spm_extensions.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/spm_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/spm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/spm_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/gate/CMakeFiles/spm_gate.dir/DependInfo.cmake"
  "/root/repo/build/src/systolic/CMakeFiles/spm_systolic.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/spm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
