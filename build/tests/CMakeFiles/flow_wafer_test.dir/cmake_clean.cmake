file(REMOVE_RECURSE
  "CMakeFiles/flow_wafer_test.dir/flow_wafer_test.cc.o"
  "CMakeFiles/flow_wafer_test.dir/flow_wafer_test.cc.o.d"
  "flow_wafer_test"
  "flow_wafer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_wafer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
