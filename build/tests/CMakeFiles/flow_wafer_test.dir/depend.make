# Empty dependencies file for flow_wafer_test.
# This may be replaced when dependencies are built.
