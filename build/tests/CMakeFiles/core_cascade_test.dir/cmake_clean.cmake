file(REMOVE_RECURSE
  "CMakeFiles/core_cascade_test.dir/core_cascade_test.cc.o"
  "CMakeFiles/core_cascade_test.dir/core_cascade_test.cc.o.d"
  "core_cascade_test"
  "core_cascade_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_cascade_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
