# Empty compiler generated dependencies file for core_cascade_test.
# This may be replaced when dependencies are built.
