# Empty dependencies file for flow_designflow_test.
# This may be replaced when dependencies are built.
