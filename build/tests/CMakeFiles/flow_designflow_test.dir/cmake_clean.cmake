file(REMOVE_RECURSE
  "CMakeFiles/flow_designflow_test.dir/flow_designflow_test.cc.o"
  "CMakeFiles/flow_designflow_test.dir/flow_designflow_test.cc.o.d"
  "flow_designflow_test"
  "flow_designflow_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_designflow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
