# Empty dependencies file for ext_counting_test.
# This may be replaced when dependencies are built.
