file(REMOVE_RECURSE
  "CMakeFiles/ext_counting_test.dir/ext_counting_test.cc.o"
  "CMakeFiles/ext_counting_test.dir/ext_counting_test.cc.o.d"
  "ext_counting_test"
  "ext_counting_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_counting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
