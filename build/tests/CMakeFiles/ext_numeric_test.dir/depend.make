# Empty dependencies file for ext_numeric_test.
# This may be replaced when dependencies are built.
