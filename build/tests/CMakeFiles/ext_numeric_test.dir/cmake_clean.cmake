file(REMOVE_RECURSE
  "CMakeFiles/ext_numeric_test.dir/ext_numeric_test.cc.o"
  "CMakeFiles/ext_numeric_test.dir/ext_numeric_test.cc.o.d"
  "ext_numeric_test"
  "ext_numeric_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_numeric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
