# Empty dependencies file for gate_netlist_test.
# This may be replaced when dependencies are built.
