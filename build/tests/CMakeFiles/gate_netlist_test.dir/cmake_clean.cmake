file(REMOVE_RECURSE
  "CMakeFiles/gate_netlist_test.dir/gate_netlist_test.cc.o"
  "CMakeFiles/gate_netlist_test.dir/gate_netlist_test.cc.o.d"
  "gate_netlist_test"
  "gate_netlist_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gate_netlist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
