file(REMOVE_RECURSE
  "CMakeFiles/spm_extensions.dir/counting.cc.o"
  "CMakeFiles/spm_extensions.dir/counting.cc.o.d"
  "CMakeFiles/spm_extensions.dir/numarray.cc.o"
  "CMakeFiles/spm_extensions.dir/numarray.cc.o.d"
  "CMakeFiles/spm_extensions.dir/numcells.cc.o"
  "CMakeFiles/spm_extensions.dir/numcells.cc.o.d"
  "libspm_extensions.a"
  "libspm_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spm_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
