file(REMOVE_RECURSE
  "libspm_extensions.a"
)
