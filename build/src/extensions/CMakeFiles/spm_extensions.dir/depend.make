# Empty dependencies file for spm_extensions.
# This may be replaced when dependencies are built.
