# Empty compiler generated dependencies file for spm_layout.
# This may be replaced when dependencies are built.
