file(REMOVE_RECURSE
  "libspm_layout.a"
)
