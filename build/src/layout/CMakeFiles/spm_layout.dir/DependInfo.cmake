
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/cellgen.cc" "src/layout/CMakeFiles/spm_layout.dir/cellgen.cc.o" "gcc" "src/layout/CMakeFiles/spm_layout.dir/cellgen.cc.o.d"
  "/root/repo/src/layout/cif.cc" "src/layout/CMakeFiles/spm_layout.dir/cif.cc.o" "gcc" "src/layout/CMakeFiles/spm_layout.dir/cif.cc.o.d"
  "/root/repo/src/layout/drc.cc" "src/layout/CMakeFiles/spm_layout.dir/drc.cc.o" "gcc" "src/layout/CMakeFiles/spm_layout.dir/drc.cc.o.d"
  "/root/repo/src/layout/geometry.cc" "src/layout/CMakeFiles/spm_layout.dir/geometry.cc.o" "gcc" "src/layout/CMakeFiles/spm_layout.dir/geometry.cc.o.d"
  "/root/repo/src/layout/masklayout.cc" "src/layout/CMakeFiles/spm_layout.dir/masklayout.cc.o" "gcc" "src/layout/CMakeFiles/spm_layout.dir/masklayout.cc.o.d"
  "/root/repo/src/layout/rules.cc" "src/layout/CMakeFiles/spm_layout.dir/rules.cc.o" "gcc" "src/layout/CMakeFiles/spm_layout.dir/rules.cc.o.d"
  "/root/repo/src/layout/sticks.cc" "src/layout/CMakeFiles/spm_layout.dir/sticks.cc.o" "gcc" "src/layout/CMakeFiles/spm_layout.dir/sticks.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/spm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/gate/CMakeFiles/spm_gate.dir/DependInfo.cmake"
  "/root/repo/build/src/systolic/CMakeFiles/spm_systolic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
