file(REMOVE_RECURSE
  "CMakeFiles/spm_layout.dir/cellgen.cc.o"
  "CMakeFiles/spm_layout.dir/cellgen.cc.o.d"
  "CMakeFiles/spm_layout.dir/cif.cc.o"
  "CMakeFiles/spm_layout.dir/cif.cc.o.d"
  "CMakeFiles/spm_layout.dir/drc.cc.o"
  "CMakeFiles/spm_layout.dir/drc.cc.o.d"
  "CMakeFiles/spm_layout.dir/geometry.cc.o"
  "CMakeFiles/spm_layout.dir/geometry.cc.o.d"
  "CMakeFiles/spm_layout.dir/masklayout.cc.o"
  "CMakeFiles/spm_layout.dir/masklayout.cc.o.d"
  "CMakeFiles/spm_layout.dir/rules.cc.o"
  "CMakeFiles/spm_layout.dir/rules.cc.o.d"
  "CMakeFiles/spm_layout.dir/sticks.cc.o"
  "CMakeFiles/spm_layout.dir/sticks.cc.o.d"
  "libspm_layout.a"
  "libspm_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spm_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
