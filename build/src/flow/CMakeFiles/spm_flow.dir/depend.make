# Empty dependencies file for spm_flow.
# This may be replaced when dependencies are built.
