file(REMOVE_RECURSE
  "libspm_flow.a"
)
