file(REMOVE_RECURSE
  "CMakeFiles/spm_flow.dir/designflow.cc.o"
  "CMakeFiles/spm_flow.dir/designflow.cc.o.d"
  "CMakeFiles/spm_flow.dir/taskgraph.cc.o"
  "CMakeFiles/spm_flow.dir/taskgraph.cc.o.d"
  "CMakeFiles/spm_flow.dir/wafer.cc.o"
  "CMakeFiles/spm_flow.dir/wafer.cc.o.d"
  "libspm_flow.a"
  "libspm_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spm_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
