# Empty compiler generated dependencies file for spm_util.
# This may be replaced when dependencies are built.
