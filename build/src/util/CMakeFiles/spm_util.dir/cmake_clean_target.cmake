file(REMOVE_RECURSE
  "libspm_util.a"
)
