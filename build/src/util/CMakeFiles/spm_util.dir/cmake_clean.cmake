file(REMOVE_RECURSE
  "CMakeFiles/spm_util.dir/bitvec.cc.o"
  "CMakeFiles/spm_util.dir/bitvec.cc.o.d"
  "CMakeFiles/spm_util.dir/logging.cc.o"
  "CMakeFiles/spm_util.dir/logging.cc.o.d"
  "CMakeFiles/spm_util.dir/rng.cc.o"
  "CMakeFiles/spm_util.dir/rng.cc.o.d"
  "CMakeFiles/spm_util.dir/stats.cc.o"
  "CMakeFiles/spm_util.dir/stats.cc.o.d"
  "CMakeFiles/spm_util.dir/strings.cc.o"
  "CMakeFiles/spm_util.dir/strings.cc.o.d"
  "CMakeFiles/spm_util.dir/table.cc.o"
  "CMakeFiles/spm_util.dir/table.cc.o.d"
  "libspm_util.a"
  "libspm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
