file(REMOVE_RECURSE
  "CMakeFiles/spm_core.dir/behavioral.cc.o"
  "CMakeFiles/spm_core.dir/behavioral.cc.o.d"
  "CMakeFiles/spm_core.dir/bitserial.cc.o"
  "CMakeFiles/spm_core.dir/bitserial.cc.o.d"
  "CMakeFiles/spm_core.dir/cascade.cc.o"
  "CMakeFiles/spm_core.dir/cascade.cc.o.d"
  "CMakeFiles/spm_core.dir/cells.cc.o"
  "CMakeFiles/spm_core.dir/cells.cc.o.d"
  "CMakeFiles/spm_core.dir/gatechip.cc.o"
  "CMakeFiles/spm_core.dir/gatechip.cc.o.d"
  "CMakeFiles/spm_core.dir/hostbus.cc.o"
  "CMakeFiles/spm_core.dir/hostbus.cc.o.d"
  "CMakeFiles/spm_core.dir/multipass.cc.o"
  "CMakeFiles/spm_core.dir/multipass.cc.o.d"
  "CMakeFiles/spm_core.dir/reference.cc.o"
  "CMakeFiles/spm_core.dir/reference.cc.o.d"
  "libspm_core.a"
  "libspm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
