file(REMOVE_RECURSE
  "libspm_core.a"
)
